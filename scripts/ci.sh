#!/usr/bin/env bash
# Hermetic CI gate: format, lint (clippy + masc-lint), build (including
# bench targets) and test the whole workspace with the network forbidden.
# Exits nonzero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all --check
run cargo clippy --offline --workspace --all-targets -- -D warnings
run cargo build --release --offline --workspace --benches
run env RUSTDOCFLAGS="-D warnings" cargo doc --offline --workspace --no-deps
run cargo run -q --offline --release -p masc-lint
run cargo test -q --offline -p masc-lint
# Scheduler-shim coverage runs serially: each exploration gates its own
# virtual threads, and serial order keeps the explorer's quiet panic
# hook from masking unrelated test output.
run cargo test -q --offline -p masc-testkit --test sched -- --test-threads=1
run cargo test -q --offline --workspace
run cargo run -q --offline --release -p masc-conform -- --budget 30 --seed 4
# Model-check gate: the deterministic interleaving explorer sweeps the
# worker-pool coordination models (serve queue close + single-flight,
# pipelined commit order, window dirty sweep) under a wall-clock budget.
# It prints schedules-explored per model; on failure it prints the
# minimized preemption trace and a MASC_SCHED_REPRO seed to replay the
# exact schedule.
run cargo run -q --offline --release -p masc-conform -- --model-check --budget 20
# Thread-scaling regression gate: quick sweep, modeled 4-thread compress
# speedup must hold (chunk independence / serial-section regression check).
run cargo run -q --offline --release -p masc-bench --bin scaling -- \
    --quick --json BENCH_scaling.json --gate 2.5
# Batched-sweep regression gate: per-instance marginal cost (modeled
# seconds and wire bytes) at N=8 must come in under 0.6x the N=1 cost
# (cross-instance predictor / batch-engine economy-of-scale check).
run cargo run -q --offline --release -p masc-bench --bin sweep -- \
    --quick --json BENCH_sweep.json --gate 0.6
# Serve-cache regression gate: a cache hit (reverse replay only) must be
# at least 5x faster than a cold run on the diode-ladder workload (a hit
# that re-runs the forward pass, or a slow decode path, shows up here).
run cargo run -q --offline --release -p masc-bench --bin serve -- \
    --quick --json BENCH_serve.json --gate 5
# Parallel-in-time regression gate: the modeled W=4 windowed-adjoint
# critical path must beat the monolithic pipeline by 2x with gradients
# within 1e-6 (a broken coarse propagator, a stuck Parareal iteration,
# or a serialized reverse pass shows up here; the model is built from
# the engine's own lane-time tables, so it is core-count independent).
run cargo run -q --offline --release -p masc-bench --bin window -- \
    --quick --json BENCH_window.json --gate 2
# Serve protocol smoke: pipe a miss, a hit, and a shutdown through the
# real binary and check the wire answers.
run scripts/serve_smoke.sh

echo "==> ci: all checks passed"
