#!/usr/bin/env bash
# Regenerates every paper table/figure and stores the outputs under
# results/. Dataset generation is cached in $TMPDIR/masc-dataset-cache, so
# re-runs are fast. Expect ~10 minutes cold on a single core.
set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p results
cargo build --release -p masc-bench --bins

run() {
  local name="$1"; shift
  echo "=== $name $* ==="
  ./target/release/"$name" "$@" | tee "results/$name.txt"
}

run table1 --scale 0.35
run table2 --scale 1.0
run table3 --scale 1.0
run fig1
run fig5 --scale 1.0
run fig6 --scale 1.0
run fig7
run scaling
run window
run ablation --scale 1.0
echo "all experiment outputs written to results/"
