#!/usr/bin/env bash
# End-to-end smoke for the masc-serve binary: a SOLVE miss, an identical
# SOLVE that must hit with zero forward steps, STATS, and SHUTDOWN with a
# clean BYE — all over the real stdin/stdout wire.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=target/release/masc-serve
if [[ ! -x "$BIN" ]]; then
    echo "serve smoke: $BIN not built (run cargo build --release first)" >&2
    exit 1
fi

DECK='I1 n0 0 DC 1e-3\nR0 n0 n1 1000\nC1 n1 0 1e-9\nRG1 n1 0 1e6\n.tran 0.2u 20u\n.end'
OUT=$("$BIN" <<EOF
SOLVE j1 final:n1 * $DECK
SOLVE j2 final:n1 * $DECK
STATS
SHUTDOWN
EOF
)

echo "$OUT"
grep -q '^OK j1 miss steps=[1-9]' <<<"$OUT" || {
    echo "serve smoke: first solve did not answer as a miss" >&2
    exit 1
}
grep -q '^OK j2 hit steps=0 ' <<<"$OUT" || {
    echo "serve smoke: identical resubmission did not hit with zero forward steps" >&2
    exit 1
}
grep -q '^STATS jobs=2 cold_runs=1 ' <<<"$OUT" || {
    echo "serve smoke: STATS did not report one cold run for two jobs" >&2
    exit 1
}
grep -q '^BYE$' <<<"$OUT" || {
    echo "serve smoke: shutdown did not answer BYE" >&2
    exit 1
}
# The two answers must agree on everything after the hit/miss and steps
# tokens (objective values and sensitivities are bit-identical).
P1=$(grep '^OK j1 ' <<<"$OUT" | cut -d' ' -f5-)
P2=$(grep '^OK j2 ' <<<"$OUT" | cut -d' ' -f5-)
if [[ "$P1" != "$P2" ]]; then
    echo "serve smoke: hit payload diverged from miss payload" >&2
    echo "  miss: $P1" >&2
    echo "  hit:  $P2" >&2
    exit 1
fi
echo "serve smoke: ok"
