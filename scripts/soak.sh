#!/usr/bin/env bash
# Long-running fuzz soak: runs the masc-conform harness far past the CI
# budget, with a time-derived seed so successive soaks explore different
# cases. Any failure is minimized and persisted under tests/corpus/ —
# commit the new .case file together with the fix.
#
# Usage: scripts/soak.sh [budget-seconds] [extra masc-conform args...]
# Default budget: 600 s. Examples:
#   scripts/soak.sh 3600
#   scripts/soak.sh 120 --only store-equiv
set -euo pipefail
cd "$(dirname "$0")/.."

budget="${1:-600}"
shift || true

seed="${MASC_SOAK_SEED:-$(date +%s)}"
echo "==> soak: budget ${budget}s, seed ${seed} (rerun with MASC_SOAK_SEED=${seed})"

cargo run -q --offline --release -p masc-conform -- \
    --budget "${budget}" --seed "${seed}" "$@"
