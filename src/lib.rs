//! # MASC — Memory-efficient Adjoint Sensitivity analysis through Compression
//!
//! A from-scratch Rust reproduction of *"MASC: A Memory-Efficient Adjoint
//! Sensitivity Analysis through Compression Using Novel Spatiotemporal
//! Prediction"* (DAC 2024): a SPICE-like circuit simulator whose transient
//! Jacobian matrices are stored — losslessly compressed — during forward
//! integration and replayed during the adjoint reverse pass, instead of
//! being recomputed or spilled to disk.
//!
//! This crate is a facade re-exporting the whole stack:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`bitio`] | `masc-bitio` | bit I/O, varint/zigzag |
//! | [`codec`] | `masc-codec` | Huffman, rANS, range coder, LZSS, RLE |
//! | [`sparse`] | `masc-sparse` | shared-pattern CSR, sparse LU (+ transpose solves) |
//! | [`circuit`] | `masc-circuit` | devices, MNA, DC, transient, netlist parser |
//! | [`adjoint`] | `masc-adjoint` | adjoint/direct/FD sensitivities, Jacobian stores |
//! | [`compress`] | `masc-compress` | **the paper's contribution**: spatiotemporal Jacobian-tensor compression |
//! | [`baselines`] | `masc-baselines` | GZIP/FPZIP/NDZIP/SpiceMate/Chimp-style comparators |
//! | [`datasets`] | `masc-datasets` | synthetic workload generators + registry |
//!
//! # Quick start
//!
//! ```
//! use masc::adjoint::{run_adjoint, Objective, StoreConfig};
//! use masc::circuit::parser::parse_netlist;
//! use masc::compress::MascConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut parsed = parse_netlist(
//!     "V1 in 0 PULSE(0 5 0 10n 10n 1u 2u)\n\
//!      R1 in out 1k\n\
//!      C1 out 0 1n\n\
//!      .tran 10n 2u\n\
//!      .end",
//! )?;
//! let tran = parsed.tran.clone().expect(".tran card");
//! let out = parsed.circuit.find_node("out").expect("node").unknown().expect("non-ground");
//! let objectives = [Objective::Integral { unknown: out }];
//! let params = [parsed.circuit.find_param("R1.r").expect("param")];
//!
//! let run = run_adjoint(
//!     &mut parsed.circuit,
//!     &tran,
//!     &StoreConfig::Compressed(MascConfig::default()),
//!     &objectives,
//!     &params,
//! )?;
//! println!("d ∫v(out) / d R1 = {:.3e}", run.sensitivities.values[0][0]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use masc_adjoint as adjoint;
pub use masc_baselines as baselines;
pub use masc_bitio as bitio;
pub use masc_circuit as circuit;
pub use masc_codec as codec;
pub use masc_compress as compress;
pub use masc_datasets as datasets;
pub use masc_sparse as sparse;
