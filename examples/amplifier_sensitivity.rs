//! Amplifier sensitivity study: a three-stage BJT amplifier analyzed with
//! every Jacobian store, demonstrating that the results are identical
//! while the memory/time profiles differ (the paper's Fig. 7 story).
//!
//! ```sh
//! cargo run --release --example amplifier_sensitivity
//! ```

use masc::adjoint::{run_adjoint, run_xyce_like, Objective, StoreConfig};
use masc::circuit::devices::{Bjt, Capacitor, Device, Resistor, VoltageSource};
use masc::circuit::{Circuit, TranOptions, Waveform};
use masc::compress::MascConfig;

/// Builds a three-stage common-emitter amplifier programmatically.
fn amplifier() -> Circuit {
    let mut ckt = Circuit::new();
    let vcc = ckt.node("vcc").unknown();
    ckt.add(Device::VoltageSource(VoltageSource::new(
        "VCC",
        vcc,
        None,
        Waveform::Dc(5.0),
    )))
    .expect("fresh circuit");
    let vin = ckt.node("in").unknown();
    ckt.add(Device::VoltageSource(VoltageSource::new(
        "VIN",
        vin,
        None,
        Waveform::Sin {
            vo: 0.65,
            va: 0.002,
            freq: 1e6,
            td: 0.0,
            theta: 0.0,
        },
    )))
    .expect("unique name");
    let mut drive = vin;
    for stage in 0..3 {
        let b = ckt.node(&format!("b{stage}")).unknown();
        let c = ckt.node(&format!("c{stage}")).unknown();
        let s = ckt.node(&format!("s{stage}")).unknown();
        ckt.add(Device::Resistor(Resistor::new(
            format!("RB{stage}"),
            drive,
            b,
            1_000.0,
        )))
        .expect("unique name");
        ckt.add(Device::Resistor(Resistor::new(
            format!("RC{stage}"),
            vcc,
            c,
            2_200.0,
        )))
        .expect("unique name");
        ckt.add(Device::Bjt(
            Bjt::new(format!("Q{stage}"), c, b, None).with_transit_times(0.5e-9, 5e-9),
        ))
        .expect("unique name");
        ckt.add(Device::Resistor(Resistor::new(
            format!("RS{stage}"),
            c,
            s,
            22_000.0,
        )))
        .expect("unique name");
        ckt.add(Device::Resistor(Resistor::new(
            format!("RG{stage}"),
            s,
            None,
            4_300.0,
        )))
        .expect("unique name");
        ckt.add(Device::Capacitor(Capacitor::new(
            format!("CL{stage}"),
            c,
            None,
            2e-12,
        )))
        .expect("unique name");
        drive = s;
    }
    ckt
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = amplifier();
    let tran = TranOptions::new(4e-6, 4e-9);

    let mut probe = circuit.clone();
    let out = probe.node("c2").unknown().expect("internal node");
    let objectives = [
        Objective::Integral { unknown: out },
        Objective::IntegralSquared { unknown: out },
    ];
    // Sweep every BJT's gain and transit time plus the collector loads.
    let params: Vec<_> = probe
        .params()
        .into_iter()
        .filter(|p| p.path.ends_with(".bf") || p.path.ends_with(".tf") || p.path.starts_with("RC"))
        .collect();
    println!(
        "{} devices, {} parameters, {} objectives, {} steps\n",
        circuit.devices().len(),
        params.len(),
        objectives.len(),
        tran.step_count()
    );

    let stores: Vec<(&str, Option<StoreConfig>)> = vec![
        ("Xyce-like (per-objective recompute)", None),
        ("raw in-memory", Some(StoreConfig::RawMemory)),
        (
            "MASC compressed",
            Some(StoreConfig::Compressed(MascConfig::default())),
        ),
    ];
    let mut reference: Option<Vec<Vec<f64>>> = None;
    for (label, store) in stores {
        let mut ckt = circuit.clone();
        let run = match &store {
            None => run_xyce_like(&mut ckt, &tran, &objectives, &params)?,
            Some(store) => run_adjoint(&mut ckt, &tran, store, &objectives, &params)?,
        };
        println!(
            "{label:<36} reverse {:>8.3} ms   peak storage {:>9.1} kB",
            run.sensitivities.stats.total_time.as_secs_f64() * 1e3,
            run.store_metrics.peak_resident_bytes as f64 / 1e3,
        );
        match &reference {
            None => reference = Some(run.sensitivities.values),
            Some(reference) => {
                for (r_row, v_row) in reference.iter().zip(&run.sensitivities.values) {
                    for (r, v) in r_row.iter().zip(v_row) {
                        let scale = r.abs().max(1e-12);
                        assert!(
                            ((r - v) / scale).abs() < 1e-9,
                            "stores disagree: {r:e} vs {v:e}"
                        );
                    }
                }
            }
        }
    }

    let reference = reference.expect("at least one run");
    println!("\nlargest sensitivities of ∫v(c2)dt:");
    let mut ranked: Vec<(usize, f64)> = reference[0]
        .iter()
        .enumerate()
        .map(|(j, &v)| (j, v))
        .collect();
    ranked.sort_by(|a, b| b.1.abs().total_cmp(&a.1.abs()));
    for (j, value) in ranked.iter().take(5) {
        println!("  {:<8} {:>12.4e}", params[*j].path, value);
    }
    println!("\nall stores produced identical sensitivities.");
    Ok(())
}
