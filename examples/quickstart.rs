//! Quickstart: parse a netlist, run transient + adjoint sensitivity with
//! the MASC compressed Jacobian store, and print the results.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use masc::adjoint::{run_adjoint, Objective, StoreConfig};
use masc::circuit::parser::parse_netlist;
use masc::compress::MascConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An RC lowpass driven by a pulse train.
    let netlist = "\
RC lowpass quickstart
V1 in 0 PULSE(0 5 0 10n 10n 1u 2u)
R1 in out 1k
C1 out 0 1n
.tran 10n 4u
.end";
    let mut parsed = parse_netlist(netlist)?;
    println!("parsed: {:?}", parsed.title);
    let tran = parsed.tran.clone().expect("netlist has .tran");

    let out = parsed
        .circuit
        .find_node("out")
        .expect("node exists")
        .unknown()
        .expect("not ground");
    let objectives = [
        Objective::FinalValue { unknown: out },
        Objective::Integral { unknown: out },
    ];
    let params = [
        parsed.circuit.find_param("R1.r").expect("param"),
        parsed.circuit.find_param("C1.c").expect("param"),
        parsed.circuit.find_param("V1.scale").expect("param"),
    ];

    let run = run_adjoint(
        &mut parsed.circuit,
        &tran,
        &StoreConfig::Compressed(MascConfig::default()),
        &objectives,
        &params,
    )?;

    println!("\nobjective values:");
    println!("  v(out) at t_stop   = {:.6} V", run.objective_values[0]);
    println!("  ∫ v(out) dt        = {:.6e} V·s", run.objective_values[1]);

    println!("\nsensitivities (adjoint, MASC-compressed Jacobian store):");
    for (i, name) in ["v(out)@end", "∫v(out)dt"].iter().enumerate() {
        for (j, p) in params.iter().enumerate() {
            println!(
                "  d {name} / d {:<9} = {:>12.4e}",
                p.path, run.sensitivities.values[i][j]
            );
        }
    }

    println!(
        "\nforward: {} steps in {:.3} ms ({} Newton iterations)",
        run.tran_stats.steps,
        run.tran_stats.total_time.as_secs_f64() * 1e3,
        run.tran_stats.newton_iterations
    );
    println!(
        "reverse: {:.3} ms; peak Jacobian storage {:.1} kB (compressed)",
        run.sensitivities.stats.total_time.as_secs_f64() * 1e3,
        run.store_metrics.peak_resident_bytes as f64 / 1e3
    );
    Ok(())
}
