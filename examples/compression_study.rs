//! Compression study: capture a real Jacobian tensor from a simulation and
//! compare MASC against every baseline compressor (a miniature paper
//! Table 3), then demonstrate the backward streaming decompression the
//! adjoint pass relies on.
//!
//! ```sh
//! cargo run --release --example compression_study
//! ```

use masc::baselines::{ChimpLike, Compressor, FpzipLike, GzipLike, NdzipLike, SpiceMate};
use masc::compress::{MascConfig, ModelClass, TensorCompressor};
use masc::datasets::registry::table2_datasets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The `mem_plus` analogue: a RAM-like pass-transistor array.
    let spec = table2_datasets()
        .into_iter()
        .find(|s| s.name == "mem_plus")
        .expect("registry dataset");
    println!("generating dataset {} ...", spec.name);
    let dataset = spec.generate(0.5)?;
    println!(
        "  {} elements, {} steps, {} non-zeros/matrix, S_NZ = {:.2} MB\n",
        dataset.elements,
        dataset.steps(),
        dataset.nnz_per_step(),
        dataset.s_nz_bytes() as f64 / 1e6
    );

    // Baselines see the flat value stream.
    let stream = dataset.value_stream();
    println!("{:<22} {:>8}  {:>12}", "compressor", "ratio", "lossless");
    let baselines: Vec<Box<dyn Compressor>> = vec![
        Box::new(GzipLike::new()),
        Box::new(FpzipLike::with_row_len(dataset.nnz_per_step())),
        Box::new(NdzipLike::new()),
        Box::new(SpiceMate::new(1e-6)),
        Box::new(ChimpLike::new()),
    ];
    for compressor in baselines {
        let packed = compressor.compress(&stream);
        println!(
            "{:<22} {:>7.2}x  {:>12}",
            compressor.name(),
            dataset.s_nz_bytes() as f64 / packed.len() as f64,
            if compressor.is_lossless() {
                "yes".to_string()
            } else {
                format!("±{:.0e}", compressor.max_error())
            }
        );
    }

    // MASC uses the shared pattern and stamp structure.
    for (label, config) in [
        ("MASC w/o Markov", MascConfig::default().with_markov(false)),
        ("MASC w/ Markov", MascConfig::default()),
    ] {
        let compress = |pattern: &std::sync::Arc<masc::sparse::Pattern>, series: &[Vec<f64>]| {
            let mut tc = TensorCompressor::new(pattern.clone(), config.clone());
            for m in series {
                tc.push(m);
            }
            tc.finish()
        };
        let g = compress(&dataset.g_pattern, &dataset.g_series);
        let c = compress(&dataset.c_pattern, &dataset.c_series);
        let ratio =
            dataset.s_nz_bytes() as f64 / (g.compressed_bytes() + c.compressed_bytes()) as f64;
        println!("{label:<22} {ratio:>7.2}x  {:>12}", "yes");
        if label.ends_with("w/o Markov") {
            let stats = g.stats();
            println!(
                "    zero residuals {:.1}%; model selection: temporal {:.1}% / stamp {:.1}% / last-value {:.1}%",
                stats.zero_residual_rate() * 100.0,
                stats.selection_rate(ModelClass::Temporal) * 100.0,
                stats.selection_rate(ModelClass::Stamp) * 100.0,
                stats.selection_rate(ModelClass::LastValue) * 100.0,
            );
        }
    }

    // Backward streaming: the adjoint's access pattern.
    println!("\nbackward streaming replay (adjoint order):");
    let mut tc = TensorCompressor::new(dataset.g_pattern.clone(), MascConfig::default());
    for m in &dataset.g_series {
        tc.push(m);
    }
    let tensor = tc.finish();
    let before = tensor.compressed_bytes();
    let mut back = tensor.into_backward();
    let mut checked = 0usize;
    while let Some((step, values)) = back.next_matrix()? {
        assert_eq!(values, dataset.g_series[step], "lossless by construction");
        checked += 1;
    }
    println!(
        "  replayed {checked} matrices newest-first, bit-exact; {:.2} MB compressed shrank to {:.2} MB as steps were freed",
        before as f64 / 1e6,
        back.memory_bytes() as f64 / 1e6
    );
    Ok(())
}
