//! Memory-budget walkthrough (paper Fig. 1 in miniature): watch the
//! Jacobian-storage footprint of a growing circuit under the three storage
//! regimes — per-step CSR, shared indices, and MASC compression.
//!
//! ```sh
//! cargo run --release --example memory_budget
//! ```

use masc::adjoint::{ForwardRecord, StoreConfig, TensorLayout};
use masc::circuit::transient::{transient, TranOptions};
use masc::compress::MascConfig;
use masc::datasets::generators::mos_inverter_chain;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>7} {:>9} {:>12} {:>12} {:>12} {:>9}",
        "stages", "steps", "CSR (kB)", "shared (kB)", "MASC (kB)", "ratio"
    );
    for stages in [8usize, 16, 32, 64] {
        let mut circuit = mos_inverter_chain(stages, 0.25e-6);
        let mut system = circuit.elaborate()?;
        let tran = TranOptions::new(1e-6, 5e-9);

        let mut record = ForwardRecord::new(
            TensorLayout::of(&system),
            &StoreConfig::Compressed(MascConfig::default()),
        )?;
        let result = transient(&circuit, &mut system, &tran, &mut record)?;

        let steps = result.stats.steps + 1;
        let g_nnz = system.g_pattern.nnz();
        let c_nnz = system.c_pattern.nnz();
        let index_bytes = system.g_pattern.index_bytes() + system.c_pattern.index_bytes();
        let csr = steps
            * (system.g_pattern.index_bytes()
                + g_nnz * 8
                + system.c_pattern.index_bytes()
                + c_nnz * 8);
        let shared = steps * (g_nnz + c_nnz) * 8 + index_bytes;
        let masc = record.storage_bytes() + index_bytes;
        println!(
            "{stages:>7} {steps:>9} {:>12.1} {:>12.1} {:>12.1} {:>8.1}x",
            csr as f64 / 1e3,
            shared as f64 / 1e3,
            masc as f64 / 1e3,
            csr as f64 / masc as f64
        );
    }
    println!(
        "\nCSR column = storing indices + values for every step (the paper's S_CSR);\n\
         shared     = one index set + raw values (shared-indices technique);\n\
         MASC       = one index set + spatiotemporally compressed values."
    );
    Ok(())
}
