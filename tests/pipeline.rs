//! Cross-crate integration tests: netlist text → simulator → Jacobian
//! stores → adjoint sensitivities → compression, exercised together.

use masc::adjoint::{finite_difference, run_adjoint, run_xyce_like, Objective, StoreConfig};
use masc::baselines::{Compressor, GzipLike, NdzipLike, SpiceMate};
use masc::circuit::parser::parse_netlist;
use masc::circuit::transient::TranOptions;
use masc::compress::{MascConfig, TensorCompressor};
use masc::datasets::capture;
use masc::datasets::generators::rc_ladder;
use masc::datasets::registry::{table1_circuits, table2_datasets};
use masc_testkit::rng::Rng;

/// Full pipeline from netlist text through the compressed-store adjoint.
#[test]
fn netlist_to_sensitivity_with_compression() {
    let mut parsed = parse_netlist(
        "integration test deck\n\
         V1 in 0 PULSE(0 3.3 0 20n 20n 400n 1u)\n\
         R1 in mid 2.2k\n\
         D1 mid load IS=1e-14 CJ0=4p\n\
         R2 load 0 10k\n\
         C1 load 0 3p\n\
         M1 out mid 0 NMOS KP=1e-4 CGS=15f CGD=5f\n\
         RL vdd out 12k\n\
         VDD vdd 0 DC 3.3\n\
         C2 out 0 10f\n\
         .tran 2n 1u\n\
         .end",
    )
    .expect("valid netlist");
    let tran = parsed.tran.clone().expect(".tran present");
    let out = parsed
        .circuit
        .find_node("out")
        .expect("node")
        .unknown()
        .expect("not ground");
    let objectives = [
        Objective::Integral { unknown: out },
        Objective::FinalValue { unknown: out },
    ];
    let params: Vec<_> = parsed.circuit.params();
    assert!(params.len() >= 10);

    let run = run_adjoint(
        &mut parsed.circuit,
        &tran,
        &StoreConfig::Compressed(MascConfig::default()),
        &objectives,
        &params,
    )
    .expect("pipeline runs");
    assert_eq!(run.sensitivities.values.len(), 2);
    assert_eq!(run.sensitivities.values[0].len(), params.len());
    // The integral of a driven node must depend on the drive level.
    let j_vin = params
        .iter()
        .position(|p| p.path == "V1.scale")
        .expect("param exists");
    assert!(
        run.sensitivities.values[0][j_vin].abs() > 1e-12,
        "output must be sensitive to its input"
    );
    // Everything finite.
    for row in &run.sensitivities.values {
        assert!(row.iter().all(|v| v.is_finite()));
    }
}

/// The Xyce-like schedule and the batched compressed store agree exactly.
#[test]
fn xyce_like_and_masc_store_agree() {
    let spec = &table1_circuits()[0]; // CHIP_01 analogue
    let (circuit, tran) = spec.build_circuit(0.2);
    let params: Vec<_> = circuit
        .params()
        .into_iter()
        .filter(|p| p.path.ends_with(".r"))
        .take(6)
        .collect();
    let objectives = [Objective::Integral { unknown: 2 }];

    let mut a = circuit.clone();
    let xyce = run_xyce_like(&mut a, &tran, &objectives, &params).expect("runs");
    let mut b = circuit.clone();
    let masc = run_adjoint(
        &mut b,
        &tran,
        &StoreConfig::Compressed(MascConfig::default()),
        &objectives,
        &params,
    )
    .expect("runs");
    for (x, m) in xyce.sensitivities.values[0]
        .iter()
        .zip(&masc.sensitivities.values[0])
    {
        let scale = x.abs().max(1e-15);
        assert!(
            ((x - m) / scale).abs() < 1e-9,
            "xyce-like {x:e} vs masc {m:e}"
        );
    }
}

/// Every registry dataset compresses losslessly through the tensor path
/// and beats the pattern-blind NDZIP-style baseline.
#[test]
fn registry_datasets_compress_losslessly() {
    for spec in table2_datasets().iter().take(3) {
        let dataset = spec.generate(0.06).expect("generates");
        // MASC tensor round trip, both tensors.
        for (pattern, series) in [
            (&dataset.g_pattern, &dataset.g_series),
            (&dataset.c_pattern, &dataset.c_series),
        ] {
            let mut tc = TensorCompressor::new(pattern.clone(), MascConfig::default());
            for m in series.iter() {
                tc.push(m);
            }
            let tensor = tc.finish();
            let all = tensor.decompress_all().expect("lossless");
            for (a, b) in all.iter().zip(series.iter()) {
                assert_eq!(a, b, "{}", spec.name);
            }
        }
        // Baselines round-trip the same stream.
        let stream = dataset.value_stream();
        for c in [
            Box::new(GzipLike::new()) as Box<dyn Compressor>,
            Box::new(NdzipLike::new()),
        ] {
            let out = c.decompress(&c.compress(&stream)).expect("valid");
            assert_eq!(out.len(), stream.len());
        }
        // Lossy baseline honors its bound on simulator data.
        let sm = SpiceMate::new(1e-9);
        let out = sm.decompress(&sm.compress(&stream)).expect("valid");
        for (a, b) in stream.iter().zip(&out) {
            if a.is_finite() {
                assert!((a - b).abs() <= 1e-9 * 1.0001, "{a} vs {b}");
            }
        }
    }
}

/// End-to-end on an RC ladder: transient → capture both Jacobian tensors →
/// MASC compress → decompress byte-exactly, then validate the compressed
/// store's adjoint gradients against central finite differences.
#[test]
fn rc_ladder_end_to_end() {
    // 20 ns window: comparable to the ladder's aggregate RC delay, so the
    // objective is genuinely sensitive to every R and C.
    let sections = 12usize;
    let period = 2e-8;
    let circuit = rc_ladder(sections, period);
    let tran = TranOptions::new(period, period / 100.0);

    // 1. Transient run, capturing the G and C tensors at every step.
    let dataset = capture("rc12", circuit.clone(), &tran).expect("transient runs");
    assert!(dataset.steps() > 10, "transient produced too few steps");

    // 2. Tensor compress → decompress must be a byte-exact round trip.
    for (pattern, series) in [
        (&dataset.g_pattern, &dataset.g_series),
        (&dataset.c_pattern, &dataset.c_series),
    ] {
        let mut tc = TensorCompressor::new(pattern.clone(), MascConfig::default());
        for m in series.iter() {
            tc.push(m);
        }
        let tensor = tc.finish();
        let restored = tensor.decompress_all().expect("lossless");
        assert_eq!(restored.len(), series.len());
        for (step, (a, b)) in restored.iter().zip(series.iter()).enumerate() {
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "step {step} differs");
            }
        }
    }

    // 3. Adjoint through the compressed store vs finite differences, on a
    //    deterministic random sample of R and C parameters.
    let mut circuit = circuit;
    let tail = circuit
        .find_node(&format!("n{}", sections - 1))
        .expect("ladder tail exists")
        .unknown()
        .expect("not ground");
    let objectives = [Objective::Integral { unknown: tail }];
    let mut params: Vec<_> = circuit
        .params()
        .into_iter()
        .filter(|p| p.path.ends_with(".r") || p.path.ends_with(".c"))
        .collect();
    let mut rng = Rng::new(0x4C41_4444_4552); // "LADDER"
    let mut picked = Vec::new();
    for _ in 0..6 {
        picked.push(params.remove(rng.range_usize(0, params.len())));
    }
    let run = run_adjoint(
        &mut circuit,
        &tran,
        &StoreConfig::Compressed(MascConfig::default()),
        &objectives,
        &picked,
    )
    .expect("adjoint runs");
    for (j, param) in picked.iter().enumerate() {
        let a = run.sensitivities.values[0][j];
        assert!(a.is_finite(), "{}: non-finite sensitivity", param.path);
        let fd = finite_difference(&circuit, &tran, &objectives[0], param, 1e-5).expect("fd runs");
        let scale = a.abs().max(fd.abs());
        assert!(
            scale > 1e-15,
            "{}: objective insensitive to param",
            param.path
        );
        assert!(
            (a - fd).abs() / scale < 1e-6,
            "{}: adjoint {a:e} vs fd {fd:e}",
            param.path
        );
    }

    // 4. The hybrid compressed+spill store must reproduce the same
    //    gradients to the same finite-difference tolerance.
    let hybrid = run_adjoint(
        &mut circuit,
        &tran,
        &StoreConfig::Hybrid {
            dir: std::env::temp_dir().join("masc-pipeline"),
            bandwidth: None,
            resident_blocks: 4,
            masc: MascConfig::default(),
        },
        &objectives,
        &picked,
    )
    .expect("hybrid adjoint runs");
    assert!(
        hybrid.store_metrics.bytes_read > 0,
        "with 4 resident blocks over ~100 steps the reverse pass must hit disk"
    );
    for (j, param) in picked.iter().enumerate() {
        let a = hybrid.sensitivities.values[0][j];
        let fd = finite_difference(&circuit, &tran, &objectives[0], param, 1e-5).expect("fd runs");
        let scale = a.abs().max(fd.abs()).max(1e-15);
        assert!(
            (a - fd).abs() / scale < 1e-6,
            "{}: hybrid adjoint {a:e} vs fd {fd:e}",
            param.path
        );
    }

    // 5. The asynchronous pipelined hybrid (worker-thread compression +
    //    spill, prefetched reverse pass) must reproduce the synchronous
    //    hybrid's gradients *bit-for-bit*, stay within the same
    //    finite-difference tolerance, and report its async telemetry.
    let piped = run_adjoint(
        &mut circuit,
        &tran,
        &StoreConfig::pipelined(StoreConfig::Hybrid {
            dir: std::env::temp_dir().join("masc-pipeline"),
            bandwidth: None,
            resident_blocks: 4,
            masc: MascConfig::default(),
        }),
        &objectives,
        &picked,
    )
    .expect("pipelined adjoint runs");
    for (j, param) in picked.iter().enumerate() {
        let a = piped.sensitivities.values[0][j];
        let s = hybrid.sensitivities.values[0][j];
        assert_eq!(
            a.to_bits(),
            s.to_bits(),
            "{}: pipelined {a:e} vs sync hybrid {s:e}",
            param.path
        );
        let fd = finite_difference(&circuit, &tran, &objectives[0], param, 1e-5).expect("fd runs");
        let scale = a.abs().max(fd.abs()).max(1e-15);
        assert!(
            (a - fd).abs() / scale < 1e-6,
            "{}: pipelined adjoint {a:e} vs fd {fd:e}",
            param.path
        );
    }
    let m = &piped.store_metrics;
    assert_eq!(
        m.bytes_written, hybrid.store_metrics.bytes_written,
        "the pipeline must not change the compressed stream size"
    );
    assert!(
        m.prefetch_hits + m.prefetch_misses > 0,
        "every reverse fetch is classified as prefetch hit or miss"
    );
    assert!(m.max_queue_depth >= 1, "the put queue was exercised");
}

/// Store choice does not change results even with Markov + parallel chunks.
#[test]
fn parallel_markov_store_matches_raw() {
    let spec = &table2_datasets()[0];
    let (mut circuit, tran) = spec.build_circuit(0.06);
    let params: Vec<_> = circuit.params().into_iter().take(4).collect();
    let objectives = [Objective::IntegralSquared { unknown: 1 }];
    let config = MascConfig {
        threads: 2,
        chunk_size: 64,
        markov_min_warmup: 16,
        ..MascConfig::default()
    };
    let raw = run_adjoint(
        &mut circuit.clone(),
        &tran,
        &StoreConfig::RawMemory,
        &objectives,
        &params,
    )
    .expect("runs");
    let masc = run_adjoint(
        &mut circuit,
        &tran,
        &StoreConfig::Compressed(config),
        &objectives,
        &params,
    )
    .expect("runs");
    for (a, b) in raw.sensitivities.values[0]
        .iter()
        .zip(&masc.sensitivities.values[0])
    {
        assert_eq!(a.to_bits(), b.to_bits(), "lossless ⇒ bit-identical");
    }
}
