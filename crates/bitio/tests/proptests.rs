//! Property-based tests for bit I/O and varint coding.

use masc_bitio::{varint, BitReader, BitWriter};
use proptest::prelude::*;

/// An arbitrary (value, width) pair with the value masked to the width.
fn bits_strategy() -> impl Strategy<Value = (u64, u32)> {
    (any::<u64>(), 1u32..=64).prop_map(|(v, n)| {
        let masked = if n == 64 { v } else { v & ((1u64 << n) - 1) };
        (masked, n)
    })
}

proptest! {
    #[test]
    fn bit_sequences_round_trip(items in proptest::collection::vec(bits_strategy(), 0..200)) {
        let mut w = BitWriter::new();
        for &(v, n) in &items {
            w.write_bits(v, n);
        }
        let expected_bits: usize = items.iter().map(|&(_, n)| n as usize).sum();
        prop_assert_eq!(w.bit_len(), expected_bits);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &items {
            prop_assert_eq!(r.read_bits(n).unwrap(), v);
        }
    }

    #[test]
    fn interleaved_bits_and_words(bools in proptest::collection::vec(any::<bool>(), 0..64),
                                  words in proptest::collection::vec(any::<u64>(), 0..16)) {
        let mut w = BitWriter::new();
        for (i, &b) in bools.iter().enumerate() {
            w.write_bit(b);
            if i < words.len() {
                w.write_u64(words[i]);
            }
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for (i, &b) in bools.iter().enumerate() {
            prop_assert_eq!(r.read_bit().unwrap(), b);
            if i < words.len() {
                prop_assert_eq!(r.read_u64().unwrap(), words[i]);
            }
        }
    }

    #[test]
    fn append_equals_inline(first in proptest::collection::vec(bits_strategy(), 0..50),
                            second in proptest::collection::vec(bits_strategy(), 0..50)) {
        let mut inline = BitWriter::new();
        for &(v, n) in first.iter().chain(&second) {
            inline.write_bits(v, n);
        }
        let mut a = BitWriter::new();
        for &(v, n) in &first {
            a.write_bits(v, n);
        }
        let mut b = BitWriter::new();
        for &(v, n) in &second {
            b.write_bits(v, n);
        }
        let mut stitched = BitWriter::new();
        stitched.append(&a);
        stitched.append(&b);
        prop_assert_eq!(stitched.into_bytes(), inline.into_bytes());
    }

    #[test]
    fn varint_round_trip(v in any::<u64>()) {
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, v);
        let (decoded, used) = varint::read_u64(&buf).unwrap();
        prop_assert_eq!(decoded, v);
        prop_assert_eq!(used, buf.len());
    }

    #[test]
    fn zigzag_round_trip(v in any::<i64>()) {
        prop_assert_eq!(varint::zigzag_decode(varint::zigzag_encode(v)), v);
    }

    #[test]
    fn deltas_round_trip(values in proptest::collection::vec(0usize..1_000_000_000, 0..300)) {
        let buf = varint::encode_deltas(&values);
        prop_assert_eq!(varint::decode_deltas(&buf).unwrap(), values);
    }

    #[test]
    fn sorted_deltas_are_compact(gaps in proptest::collection::vec(0usize..64, 1..300)) {
        let mut values = Vec::with_capacity(gaps.len());
        let mut acc = 0usize;
        for g in gaps {
            acc += g;
            values.push(acc);
        }
        let buf = varint::encode_deltas(&values);
        // ZigZag doubles the gap, so gaps < 64 always fit one LEB128 byte;
        // the length header is ≤ 5 bytes here.
        prop_assert!(buf.len() <= values.len() + 5);
    }
}
