//! Property-based tests for bit I/O and varint coding (masc-testkit).

// Tests may assert with unwrap/expect; the crate's clippy.toml bans them
// in shipping code only (masc-lint rule R1).
#![allow(clippy::disallowed_methods)]

use masc_bitio::{varint, BitReader, BitWriter};
use masc_testkit::gen::{self, Gen};
use masc_testkit::{prop, prop_assert, prop_assert_eq};

/// An arbitrary (value, width) pair with the value masked to the width.
fn bits() -> impl Gen<Value = (u64, u32)> {
    gen::from_fn(|rng| {
        let n = rng.range_u32(1, 65);
        let v = rng.next_u64();
        let masked = if n == 64 { v } else { v & ((1u64 << n) - 1) };
        (masked, n)
    })
}

prop! {
    fn bit_sequences_round_trip(items in gen::vecs(bits(), 0..200)) {
        let mut w = BitWriter::new();
        for &(v, n) in &items {
            w.write_bits(v, n);
        }
        let expected_bits: usize = items.iter().map(|&(_, n)| n as usize).sum();
        prop_assert_eq!(w.bit_len(), expected_bits);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &items {
            prop_assert_eq!(r.read_bits(n).unwrap(), v);
        }
    }

    fn interleaved_bits_and_words(bools in gen::vecs(gen::bools(), 0..64),
                                  words in gen::vecs(gen::u64s(), 0..16)) {
        let mut w = BitWriter::new();
        for (i, &b) in bools.iter().enumerate() {
            w.write_bit(b);
            if i < words.len() {
                w.write_u64(words[i]);
            }
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for (i, &b) in bools.iter().enumerate() {
            prop_assert_eq!(r.read_bit().unwrap(), b);
            if i < words.len() {
                prop_assert_eq!(r.read_u64().unwrap(), words[i]);
            }
        }
    }

    fn append_equals_inline(first in gen::vecs(bits(), 0..50),
                            second in gen::vecs(bits(), 0..50)) {
        let mut inline = BitWriter::new();
        for &(v, n) in first.iter().chain(&second) {
            inline.write_bits(v, n);
        }
        let mut a = BitWriter::new();
        for &(v, n) in &first {
            a.write_bits(v, n);
        }
        let mut b = BitWriter::new();
        for &(v, n) in &second {
            b.write_bits(v, n);
        }
        let mut stitched = BitWriter::new();
        stitched.append(&a);
        stitched.append(&b);
        prop_assert_eq!(stitched.into_bytes(), inline.into_bytes());
    }

    fn varint_round_trip(v in gen::u64s()) {
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, v);
        let (decoded, used) = varint::read_u64(&buf).unwrap();
        prop_assert_eq!(decoded, v);
        prop_assert_eq!(used, buf.len());
    }

    fn zigzag_round_trip(v in gen::i64s()) {
        prop_assert_eq!(varint::zigzag_decode(varint::zigzag_encode(v)), v);
    }

    fn deltas_round_trip(values in gen::vecs(gen::range_usize(0, 1_000_000_000), 0..300)) {
        let buf = varint::encode_deltas(&values);
        prop_assert_eq!(varint::decode_deltas(&buf).unwrap(), values);
    }

    fn sorted_deltas_are_compact(gaps in gen::vecs(gen::range_usize(0, 64), 1..300)) {
        let mut values = Vec::with_capacity(gaps.len());
        let mut acc = 0usize;
        for g in gaps {
            acc += g;
            values.push(acc);
        }
        let buf = varint::encode_deltas(&values);
        // ZigZag doubles the gap, so gaps < 64 always fit one LEB128 byte;
        // the length header is ≤ 5 bytes here.
        prop_assert!(buf.len() <= values.len() + 5);
    }
}

/// Adversarial fixed cases the random sweep might miss.
#[test]
fn varint_boundary_values_round_trip() {
    for v in [
        0u64,
        1,
        127,
        128,
        16_383,
        16_384,
        u64::from(u32::MAX),
        u64::MAX - 1,
        u64::MAX,
    ] {
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, v);
        let (decoded, used) = varint::read_u64(&buf).unwrap();
        assert_eq!(decoded, v);
        assert_eq!(used, buf.len());
    }
}

#[test]
fn varint_empty_and_truncated_inputs_are_errors() {
    assert!(varint::read_u64(&[]).is_err());
    // A continuation byte with no terminator.
    assert!(varint::read_u64(&[0x80]).is_err());
    let mut buf = Vec::new();
    varint::write_u64(&mut buf, u64::MAX);
    for cut in 0..buf.len() {
        assert!(varint::read_u64(&buf[..cut]).is_err(), "cut at {cut}");
    }
}

#[test]
fn empty_delta_list_round_trips() {
    let buf = varint::encode_deltas(&[]);
    assert_eq!(varint::decode_deltas(&buf).unwrap(), Vec::<usize>::new());
}
