//! Variable-length integer coding (LEB128) and ZigZag mapping.
//!
//! These are the primitives behind MASC's *shared indices* serialization:
//! CSR `row_ptr` and `col_idx` arrays are delta-encoded (producing small,
//! often-negative gaps), ZigZag-mapped to unsigned, then LEB128-packed.
//!
//! # Examples
//!
//! ```
//! use masc_bitio::varint;
//!
//! let mut buf = Vec::new();
//! varint::write_u64(&mut buf, 300);
//! let (value, used) = varint::read_u64(&buf).expect("valid varint");
//! assert_eq!(value, 300);
//! assert_eq!(used, 2);
//! ```

use core::fmt;

/// Error returned when a varint cannot be decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarintError {
    /// The buffer ended in the middle of a varint.
    Truncated,
    /// The varint encoded a value wider than 64 bits.
    Overflow,
}

impl fmt::Display for VarintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VarintError::Truncated => write!(f, "varint truncated"),
            VarintError::Overflow => write!(f, "varint exceeds 64 bits"),
        }
    }
}

impl std::error::Error for VarintError {}

/// Appends `value` to `buf` in LEB128 form (7 bits per byte, high bit =
/// continuation). Returns the number of bytes written (1–10).
pub fn write_u64(buf: &mut Vec<u8>, mut value: u64) -> usize {
    let mut n = 0;
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        n += 1;
        if value == 0 {
            buf.push(byte);
            return n;
        }
        buf.push(byte | 0x80);
    }
}

/// Decodes a LEB128 varint from the front of `buf`.
///
/// Returns the decoded value and the number of bytes consumed.
///
/// # Errors
///
/// [`VarintError::Truncated`] if the buffer ends mid-varint;
/// [`VarintError::Overflow`] if more than 64 bits are encoded.
pub fn read_u64(buf: &[u8]) -> Result<(u64, usize), VarintError> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in buf.iter().enumerate() {
        let payload = u64::from(byte & 0x7F);
        if shift >= 64 || (shift == 63 && payload > 1) {
            return Err(VarintError::Overflow);
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
        shift += 7;
    }
    Err(VarintError::Truncated)
}

/// Maps a signed integer to an unsigned one so small-magnitude values (of
/// either sign) get small codes: `0 → 0, -1 → 1, 1 → 2, -2 → 3, …`.
#[inline]
pub fn zigzag_encode(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
#[inline]
pub fn zigzag_decode(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Delta + ZigZag + LEB128 encodes a slice of indices.
///
/// The first element is stored as-is (ZigZag of its value); each subsequent
/// element stores the gap to its predecessor. Sorted index arrays (CSR
/// `row_ptr`, per-row sorted `col_idx`) compress to roughly one byte per
/// entry.
pub fn encode_deltas(values: &[usize]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(values.len() + 8);
    write_u64(&mut buf, values.len() as u64);
    let mut prev: i64 = 0;
    for &v in values {
        let v = v as i64;
        write_u64(&mut buf, zigzag_encode(v - prev));
        prev = v;
    }
    buf
}

/// Inverse of [`encode_deltas`].
///
/// # Errors
///
/// Returns a [`VarintError`] if the buffer is truncated or malformed, or if
/// a decoded value is negative (sorted index arrays are non-negative).
pub fn decode_deltas(buf: &[u8]) -> Result<Vec<usize>, VarintError> {
    let (len, mut pos) = read_u64(buf)?;
    // Every delta costs at least one byte, so a claimed count beyond the
    // remaining input is truncated garbage; reject it before trusting it
    // with an allocation.
    let mut out = crate::bounded::bounded_capacity(
        "delta-coded index array",
        len as usize,
        buf.len().saturating_sub(pos),
    )
    .map_err(|_| VarintError::Truncated)?;
    let mut prev: i64 = 0;
    for _ in 0..len {
        let (raw, used) = read_u64(&buf[pos..])?;
        pos += used;
        prev += zigzag_decode(raw);
        if prev < 0 {
            return Err(VarintError::Overflow);
        }
        out.push(prev as usize);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_boundaries() {
        for value in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            let written = write_u64(&mut buf, value);
            assert_eq!(written, buf.len());
            let (decoded, used) = read_u64(&buf).unwrap();
            assert_eq!(decoded, value);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn varint_sizes() {
        let mut buf = Vec::new();
        assert_eq!(write_u64(&mut buf, 0), 1);
        buf.clear();
        assert_eq!(write_u64(&mut buf, 127), 1);
        buf.clear();
        assert_eq!(write_u64(&mut buf, 128), 2);
        buf.clear();
        assert_eq!(write_u64(&mut buf, u64::MAX), 10);
    }

    #[test]
    fn truncated_is_detected() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 1 << 40);
        buf.pop();
        assert_eq!(read_u64(&buf), Err(VarintError::Truncated));
        assert_eq!(read_u64(&[]), Err(VarintError::Truncated));
    }

    #[test]
    fn overflow_is_detected() {
        // 11 continuation bytes encode > 64 bits.
        let buf = [0xFFu8; 11];
        assert_eq!(read_u64(&buf), Err(VarintError::Overflow));
    }

    #[test]
    fn zigzag_round_trip() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
    }

    #[test]
    fn delta_round_trip_sorted() {
        let values: Vec<usize> = (0..1000).map(|i| i * 3).collect();
        let buf = encode_deltas(&values);
        // Sorted with small gaps: ~1 byte per entry plus the length header.
        assert!(buf.len() < values.len() * 2);
        assert_eq!(decode_deltas(&buf).unwrap(), values);
    }

    #[test]
    fn delta_round_trip_unsorted() {
        let values = vec![5usize, 0, 1_000_000, 3, 3, 42];
        let buf = encode_deltas(&values);
        assert_eq!(decode_deltas(&buf).unwrap(), values);
    }

    #[test]
    fn delta_empty() {
        let buf = encode_deltas(&[]);
        assert_eq!(decode_deltas(&buf).unwrap(), Vec::<usize>::new());
    }
}
