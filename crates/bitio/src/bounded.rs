//! Bounded allocation helpers for decode paths.
//!
//! MASC's R2 invariant (see `DESIGN.md` §3.10) requires every allocation
//! whose size comes from *decoded* data — a length claim read off the wire —
//! to be validated against a hard limit before memory is reserved. A
//! corrupt or adversarial stream may claim a 2⁶⁴-element payload in a
//! 10-byte file; decoding must fail with a structured error, not abort the
//! process inside the allocator.
//!
//! The helpers here make the check and the allocation a single step, so the
//! guard cannot drift away from the `Vec` it protects:
//!
//! ```
//! use masc_bitio::bounded;
//!
//! const MAX_SYMBOLS: usize = 1 << 20;
//! let claimed = 12usize; // decoded from the stream
//! let buf: Vec<u8> = bounded::bounded_vec("rle symbol table", claimed, MAX_SYMBOLS)?;
//! assert_eq!(buf.len(), 12);
//! # Ok::<(), bounded::AllocBoundError>(())
//! ```
//!
//! `masc-lint` recognizes calls into this module (any identifier containing
//! `bounded`) as satisfying R2, which is the carrot that goes with the
//! analyzer's stick.

use core::fmt;

/// Error returned when a decoded size claim exceeds its hard limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AllocBoundError {
    /// What was being allocated (e.g. `"rle run buffer"`).
    pub what: &'static str,
    /// The size the stream claimed.
    pub requested: usize,
    /// The hard limit the claim violated.
    pub limit: usize,
}

impl fmt::Display for AllocBoundError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "decoded size claim for {} is {} but the limit is {}",
            self.what, self.requested, self.limit
        )
    }
}

impl std::error::Error for AllocBoundError {}

/// Validates a decoded size claim against a hard limit.
///
/// Returns the claim unchanged when `requested <= limit`.
///
/// # Errors
///
/// Returns [`AllocBoundError`] when the claim exceeds the limit.
#[inline]
pub fn check_claim(
    what: &'static str,
    requested: usize,
    limit: usize,
) -> Result<usize, AllocBoundError> {
    if requested <= limit {
        Ok(requested)
    } else {
        Err(AllocBoundError {
            what,
            requested,
            limit,
        })
    }
}

/// Allocates a `len`-element vector of default values after validating the
/// claim. The bounded-allocation replacement for `vec![T::default(); len]`.
///
/// # Errors
///
/// Returns [`AllocBoundError`] when `len > limit`.
pub fn bounded_vec<T: Clone + Default>(
    what: &'static str,
    len: usize,
    limit: usize,
) -> Result<Vec<T>, AllocBoundError> {
    Ok(vec![T::default(); check_claim(what, len, limit)?])
}

/// Allocates a `len`-element vector filled with `fill` after validating the
/// claim. The bounded-allocation replacement for `vec![fill; len]`.
///
/// # Errors
///
/// Returns [`AllocBoundError`] when `len > limit`.
pub fn bounded_filled<T: Clone>(
    what: &'static str,
    fill: T,
    len: usize,
    limit: usize,
) -> Result<Vec<T>, AllocBoundError> {
    Ok(vec![fill; check_claim(what, len, limit)?])
}

/// Reserves capacity for `cap` elements after validating the claim. The
/// bounded-allocation replacement for `Vec::with_capacity(cap)` on a decode
/// path.
///
/// # Errors
///
/// Returns [`AllocBoundError`] when `cap > limit`.
pub fn bounded_capacity<T>(
    what: &'static str,
    cap: usize,
    limit: usize,
) -> Result<Vec<T>, AllocBoundError> {
    Ok(Vec::with_capacity(check_claim(what, cap, limit)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_within_limit_passes_through() {
        assert_eq!(check_claim("x", 10, 10), Ok(10));
        assert_eq!(check_claim("x", 0, 0), Ok(0));
    }

    #[test]
    fn claim_over_limit_is_structured() {
        let err = check_claim("huffman code table", usize::MAX, 1 << 16).unwrap_err();
        assert_eq!(err.limit, 1 << 16);
        let msg = err.to_string();
        assert!(msg.contains("huffman code table"));
        assert!(msg.contains(&(1usize << 16).to_string()));
    }

    #[test]
    fn bounded_vec_allocates_exact_len() {
        let v: Vec<u32> = bounded_vec("t", 7, 8).unwrap();
        assert_eq!(v, vec![0u32; 7]);
        assert!(bounded_vec::<u32>("t", 9, 8).is_err());
    }

    #[test]
    fn bounded_filled_uses_fill_value() {
        let v = bounded_filled("t", 0xAAu8, 3, 4).unwrap();
        assert_eq!(v, vec![0xAA; 3]);
    }

    #[test]
    fn bounded_capacity_reserves_without_len() {
        let v: Vec<u8> = bounded_capacity("t", 64, 64).unwrap();
        assert!(v.capacity() >= 64);
        assert!(v.is_empty());
        assert!(bounded_capacity::<u8>("t", 65, 64).is_err());
    }
}
