//! Bit-level I/O primitives for the MASC compression stack.
//!
//! Every coder in the workspace (the MASC residual coder, Huffman, rANS, the
//! range coder, LZSS, varint index compression) is built on the two central
//! types of this crate:
//!
//! - [`BitWriter`] — an append-only, MSB-first bit sink backed by `Vec<u8>`.
//! - [`BitReader`] — the matching MSB-first bit source over a byte slice.
//!
//! Byte-oriented helpers live in [`varint`] (LEB128 + ZigZag) and are used to
//! compress integer index arrays.
//!
//! # Examples
//!
//! ```
//! use masc_bitio::{BitReader, BitWriter};
//!
//! # fn main() -> Result<(), masc_bitio::BitReadError> {
//! let mut w = BitWriter::new();
//! w.write_bit(true);
//! w.write_bits(0b1011, 4);
//! w.write_u64(u64::MAX);
//! let bytes = w.into_bytes();
//!
//! let mut r = BitReader::new(&bytes);
//! assert!(r.read_bit()?);
//! assert_eq!(r.read_bits(4)?, 0b1011);
//! assert_eq!(r.read_u64()?, u64::MAX);
//! # Ok(())
//! # }
//! ```

// Unit tests may assert with unwrap/expect; shipping code may not (see
// clippy.toml and masc-lint rule R1).
#![cfg_attr(test, allow(clippy::disallowed_methods))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounded;
pub mod varint;

use core::fmt;

/// Error returned when a [`BitReader`] runs out of input.
///
/// Carries the bit position at which the read was attempted, which makes
/// truncated-stream bugs in the coders easy to localize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BitReadError {
    /// Bit offset (from the start of the stream) of the failed read.
    pub bit_pos: usize,
    /// Number of bits that the failed call asked for.
    pub requested: usize,
}

impl fmt::Display for BitReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bit stream exhausted at bit {} (requested {} bits)",
            self.bit_pos, self.requested
        )
    }
}

impl std::error::Error for BitReadError {}

/// An append-only MSB-first bit sink.
///
/// Bits are packed most-significant-bit first into successive bytes; the
/// final byte is zero-padded. MSB-first order means a sequence of
/// `write_bits(v, n)` calls produces the same bytes as writing the binary
/// expansion of the concatenated values, which keeps encoded streams easy to
/// inspect in tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Number of valid bits in `current`.
    nbits: u32,
    /// Pending bits, right-aligned within the low `nbits` bits.
    current: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty writer with capacity for `bytes` output bytes.
    pub fn with_capacity(bytes: usize) -> Self {
        Self {
            // masc-lint: allow(unbounded-alloc, reason = "encoder-side capacity hint chosen by the caller, not decoded from a stream")
            bytes: Vec::with_capacity(bytes),
            nbits: 0,
            current: 0,
        }
    }

    /// Total number of bits written so far.
    pub fn bit_len(&self) -> usize {
        self.bytes.len() * 8 + self.nbits as usize
    }

    /// Number of bytes the finished stream will occupy (including the
    /// partially-filled trailing byte, if any).
    pub fn byte_len(&self) -> usize {
        self.bytes.len() + usize::from(self.nbits > 0)
    }

    /// Returns `true` if no bits have been written.
    pub fn is_empty(&self) -> bool {
        self.bit_len() == 0
    }

    /// Appends a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.current = (self.current << 1) | u8::from(bit);
        self.nbits += 1;
        if self.nbits == 8 {
            self.bytes.push(self.current);
            self.current = 0;
            self.nbits = 0;
        }
    }

    /// Appends the low `n` bits of `value`, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    #[inline]
    pub fn write_bits(&mut self, value: u64, n: u32) {
        assert!(n <= 64, "cannot write more than 64 bits at once");
        if n == 0 {
            return;
        }
        let mut remaining = n;
        // Fill the current partial byte first.
        while self.nbits != 0 && remaining > 0 {
            let bit = (value >> (remaining - 1)) & 1;
            self.write_bit(bit != 0);
            remaining -= 1;
        }
        // Then emit whole bytes directly.
        while remaining >= 8 {
            remaining -= 8;
            self.bytes.push(((value >> remaining) & 0xFF) as u8);
        }
        // Leftover tail (< 8 bits) goes through the bit path.
        while remaining > 0 {
            let bit = (value >> (remaining - 1)) & 1;
            self.write_bit(bit != 0);
            remaining -= 1;
        }
    }

    /// Appends a full 64-bit word.
    #[inline]
    pub fn write_u64(&mut self, value: u64) {
        self.write_bits(value, 64);
    }

    /// Appends `n` zero bits.
    pub fn write_zeros(&mut self, n: u32) {
        let mut remaining = n;
        while remaining > 64 {
            self.write_bits(0, 64);
            remaining -= 64;
        }
        self.write_bits(0, remaining);
    }

    /// Pads with zero bits up to the next byte boundary.
    pub fn align_to_byte(&mut self) {
        while self.nbits != 0 {
            self.write_bit(false);
        }
    }

    /// Finishes the stream and returns the packed bytes.
    ///
    /// The trailing partial byte, if any, is zero-padded on the right.
    pub fn into_bytes(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            let pad = 8 - self.nbits;
            self.bytes.push(self.current << pad);
        }
        self.bytes
    }

    /// Appends every bit of another writer to this one.
    ///
    /// This is used by the parallel tensor compressor to stitch
    /// independently-encoded chunks together.
    pub fn append(&mut self, other: &BitWriter) {
        for &b in &other.bytes {
            self.write_bits(u64::from(b), 8);
        }
        if other.nbits > 0 {
            self.write_bits(u64::from(other.current), other.nbits);
        }
    }
}

/// An MSB-first bit source over a byte slice.
///
/// The reader borrows its input; it never copies the underlying bytes.
/// A failed read consumes nothing, so callers may retry with a smaller width.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Next bit to read, as an absolute bit offset.
    bit_pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`, positioned at the first bit.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, bit_pos: 0 }
    }

    /// Creates a reader positioned at an absolute bit offset.
    ///
    /// Used by the parallel decompressor to jump to a chunk boundary.
    pub fn at_bit(bytes: &'a [u8], bit_pos: usize) -> Self {
        Self { bytes, bit_pos }
    }

    /// Current absolute bit position.
    pub fn bit_pos(&self) -> usize {
        self.bit_pos
    }

    /// Number of bits remaining before exhaustion.
    pub fn remaining_bits(&self) -> usize {
        (self.bytes.len() * 8).saturating_sub(self.bit_pos)
    }

    fn error(&self, requested: usize) -> BitReadError {
        BitReadError {
            bit_pos: self.bit_pos,
            requested,
        }
    }

    /// Reads one bit.
    ///
    /// # Errors
    ///
    /// Returns [`BitReadError`] if the stream is exhausted.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool, BitReadError> {
        let byte = self.bit_pos / 8;
        if byte >= self.bytes.len() {
            return Err(self.error(1));
        }
        let shift = 7 - (self.bit_pos % 8);
        self.bit_pos += 1;
        Ok((self.bytes[byte] >> shift) & 1 != 0)
    }

    /// Reads `n` bits into the low bits of a `u64`, most significant first.
    ///
    /// # Errors
    ///
    /// Returns [`BitReadError`] if fewer than `n` bits remain; the position
    /// is unchanged in that case.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Result<u64, BitReadError> {
        assert!(n <= 64, "cannot read more than 64 bits at once");
        if n == 0 {
            return Ok(0);
        }
        if self.remaining_bits() < n as usize {
            return Err(self.error(n as usize));
        }
        let mut value: u64 = 0;
        let mut remaining = n;
        // Unaligned head.
        while !self.bit_pos.is_multiple_of(8) && remaining > 0 {
            let byte = self.bytes[self.bit_pos / 8];
            let shift = 7 - (self.bit_pos % 8);
            value = (value << 1) | u64::from((byte >> shift) & 1);
            self.bit_pos += 1;
            remaining -= 1;
        }
        // Whole bytes.
        while remaining >= 8 {
            let byte = self.bytes[self.bit_pos / 8];
            value = (value << 8) | u64::from(byte);
            self.bit_pos += 8;
            remaining -= 8;
        }
        // Tail.
        while remaining > 0 {
            let byte = self.bytes[self.bit_pos / 8];
            let shift = 7 - (self.bit_pos % 8);
            value = (value << 1) | u64::from((byte >> shift) & 1);
            self.bit_pos += 1;
            remaining -= 1;
        }
        Ok(value)
    }

    /// Reads a full 64-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`BitReadError`] if fewer than 64 bits remain.
    #[inline]
    pub fn read_u64(&mut self) -> Result<u64, BitReadError> {
        self.read_bits(64)
    }

    /// Skips forward to the next byte boundary.
    pub fn align_to_byte(&mut self) {
        self.bit_pos = self.bit_pos.div_ceil(8) * 8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_round_trip() {
        let pattern = [true, false, true, true, false, false, true, false, true];
        let mut w = BitWriter::new();
        for &b in &pattern {
            w.write_bit(b);
        }
        assert_eq!(w.bit_len(), pattern.len());
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit().unwrap(), b);
        }
    }

    #[test]
    fn write_bits_matches_bit_by_bit() {
        let mut a = BitWriter::new();
        let mut b = BitWriter::new();
        let value: u64 = 0xDEAD_BEEF_0123_4567;
        for n in [1u32, 3, 7, 8, 9, 15, 16, 17, 31, 33, 63, 64] {
            a.write_bits(value, n);
            for i in (0..n).rev() {
                b.write_bit((value >> i) & 1 != 0);
            }
        }
        assert_eq!(a.into_bytes(), b.into_bytes());
    }

    #[test]
    fn mixed_widths_round_trip() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_u64(0x0123_4567_89AB_CDEF);
        w.write_bit(true);
        w.write_bits(0x7F, 7);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert!(r.read_bit().unwrap());
        assert_eq!(r.read_bits(7).unwrap(), 0x7F);
    }

    #[test]
    fn zero_width_operations_are_noops() {
        let mut w = BitWriter::new();
        w.write_bits(0xFFFF, 0);
        assert!(w.is_empty());
        w.write_bit(true);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(0).unwrap(), 0);
        assert!(r.read_bit().unwrap());
    }

    #[test]
    fn exhaustion_reports_position() {
        let bytes = [0xFFu8];
        let mut r = BitReader::new(&bytes);
        r.read_bits(8).unwrap();
        let err = r.read_bit().unwrap_err();
        assert_eq!(err.bit_pos, 8);
        assert_eq!(err.requested, 1);
        assert!(err.to_string().contains("bit 8"));
    }

    #[test]
    fn read_past_end_with_partial_remaining() {
        let bytes = [0xAB, 0xCD];
        let mut r = BitReader::new(&bytes);
        r.read_bits(10).unwrap();
        assert_eq!(r.remaining_bits(), 6);
        assert!(r.read_bits(7).is_err());
        // Failed read must not consume bits.
        assert_eq!(r.read_bits(6).unwrap(), 0b001101);
    }

    #[test]
    fn align_writer_and_reader() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        w.align_to_byte();
        w.write_bits(0xAA, 8);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b1100_0000, 0xAA]);
        let mut r = BitReader::new(&bytes);
        r.read_bits(2).unwrap();
        r.align_to_byte();
        assert_eq!(r.read_bits(8).unwrap(), 0xAA);
    }

    #[test]
    fn append_stitches_unaligned_streams() {
        let mut a = BitWriter::new();
        a.write_bits(0b101, 3);
        let mut b = BitWriter::new();
        b.write_bits(0x1FF, 9);
        b.write_bit(false);
        let mut combined = BitWriter::new();
        combined.append(&a);
        combined.append(&b);
        let bytes = combined.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(9).unwrap(), 0x1FF);
        assert!(!r.read_bit().unwrap());
    }

    #[test]
    fn write_zeros_bulk() {
        let mut w = BitWriter::new();
        w.write_bit(true);
        w.write_zeros(130);
        w.write_bit(true);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert!(r.read_bit().unwrap());
        for _ in 0..130 {
            assert!(!r.read_bit().unwrap());
        }
        assert!(r.read_bit().unwrap());
    }

    #[test]
    fn reader_at_bit_offset() {
        let mut w = BitWriter::new();
        w.write_bits(0xFF, 8);
        w.write_bits(0b1010, 4);
        let bytes = w.into_bytes();
        let mut r = BitReader::at_bit(&bytes, 8);
        assert_eq!(r.read_bits(4).unwrap(), 0b1010);
    }

    #[test]
    fn byte_len_counts_partial_byte() {
        let mut w = BitWriter::new();
        assert_eq!(w.byte_len(), 0);
        w.write_bit(true);
        assert_eq!(w.byte_len(), 1);
        w.write_bits(0, 7);
        assert_eq!(w.byte_len(), 1);
        w.write_bit(true);
        assert_eq!(w.byte_len(), 2);
    }
}
