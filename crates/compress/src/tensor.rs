//! The Jacobian-tensor store (paper Algorithm 2).
//!
//! During forward transient integration, [`TensorCompressor::push`]
//! receives each step's value array. It keeps only the newest matrix raw
//! ("store `M_n`") and compresses its predecessor against it ("compress
//! `M_{n−1}` using `M_n`"). [`CompressedTensor::into_backward`] replays the
//! matrices newest-first — exactly the order the adjoint reverse pass
//! consumes them — freeing each compressed block as it is expanded.

use crate::config::MascConfig;
use crate::matrix::{decompress_matrix, FLAG_CHUNKED, FLAG_SEEDED};
use crate::parallel::{
    compress_matrix_cross, compress_matrix_parallel, compress_matrix_seeded,
    decompress_matrix_parallel,
};
use crate::predictor::StampMaps;
use crate::stats::CompressStats;
use crate::CompressError;
use masc_bitio::varint;
use masc_sparse::Pattern;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn compress_dispatch(
    values: &[f64],
    reference: &[f64],
    maps: &StampMaps,
    config: &MascConfig,
) -> (Vec<u8>, CompressStats) {
    compress_matrix_parallel(values, reference, maps, config)
}

/// Whether a compressed block carries the seed flag (self-referential: it
/// decodes without a temporal predecessor). The flag byte is the stream's
/// first byte in every era.
fn is_seeded_block(bytes: &[u8]) -> bool {
    bytes.first().is_some_and(|f| f & FLAG_SEEDED != 0)
}

fn decompress_dispatch(
    bytes: &[u8],
    reference: &[f64],
    maps: &StampMaps,
    config: &MascConfig,
) -> Result<Vec<f64>, CompressError> {
    // Dispatch on the stream itself, not on the config: a tensor may mix
    // serial-era blocks (old persisted data) with chunked blocks.
    let chunked = bytes.first().is_some_and(|f| f & FLAG_CHUNKED != 0);
    if chunked {
        decompress_matrix_parallel(bytes, reference, maps, config)
    } else {
        decompress_matrix(bytes, reference, maps)
    }
}

/// Compresses one matrix into a standalone block against `reference`
/// (block-level byte API: tiered stores move these blocks between memory
/// and disk without re-encoding).
pub fn encode_block(
    values: &[f64],
    reference: &[f64],
    maps: &StampMaps,
    config: &MascConfig,
) -> (Vec<u8>, CompressStats) {
    compress_dispatch(values, reference, maps, config)
}

/// Compresses one matrix as a *seed* block: self-referential, decodable
/// without a temporal predecessor. Tensor chains restart at seed blocks,
/// which is what makes groups of blocks independently decodable.
pub fn encode_seed_block(
    values: &[f64],
    maps: &StampMaps,
    config: &MascConfig,
) -> (Vec<u8>, CompressStats) {
    compress_matrix_seeded(values, maps, config)
}

/// Compresses one matrix as a *cross-instance* block: `reference` is the
/// same-timestep matrix of the previous sweep instance rather than the
/// temporal successor. Super-tensors write instance 0 through the ordinary
/// temporal chain and instances k ≥ 1 as cross blocks against instance
/// k − 1 — the paper's spatiotemporal prediction gaining a third, batch
/// axis. Decode with [`decode_block`], passing instance k − 1's decoded
/// same-step values as the reference.
pub fn encode_cross_block(
    values: &[f64],
    reference: &[f64],
    maps: &StampMaps,
    config: &MascConfig,
) -> (Vec<u8>, CompressStats) {
    compress_matrix_cross(values, reference, maps, config)
}

/// Decodes one compressed block against `reference` (the newest block of a
/// tensor was encoded against an all-zero reference).
///
/// # Errors
///
/// Returns [`CompressError`] if the block fails to decode.
pub fn decode_block(
    bytes: &[u8],
    reference: &[f64],
    maps: &StampMaps,
    config: &MascConfig,
) -> Result<Vec<f64>, CompressError> {
    decompress_dispatch(bytes, reference, maps, config)
}

/// Streaming compressor for a time series of same-pattern matrices.
#[derive(Debug, Clone)]
pub struct TensorCompressor {
    pattern: Arc<Pattern>,
    maps: Arc<StampMaps>,
    config: MascConfig,
    /// Newest matrix, kept raw until its successor arrives.
    pending: Option<Vec<f64>>,
    /// `blocks[t]` = `M_t` compressed against `M_{t+1}`.
    blocks: Vec<Vec<u8>>,
    stats: CompressStats,
    compress_time: Duration,
}

impl TensorCompressor {
    /// Creates a compressor for matrices over `pattern`.
    pub fn new(pattern: Arc<Pattern>, config: MascConfig) -> Self {
        let maps = Arc::new(StampMaps::new(&pattern));
        Self {
            pattern,
            maps,
            config,
            pending: None,
            blocks: Vec::new(),
            stats: CompressStats::new(),
            compress_time: Duration::ZERO,
        }
    }

    /// Creates a compressor reusing precomputed stamp maps (two tensors of
    /// one run — `G` and `C` — share them).
    pub fn with_maps(pattern: Arc<Pattern>, maps: Arc<StampMaps>, config: MascConfig) -> Self {
        Self {
            pattern,
            maps,
            config,
            pending: None,
            blocks: Vec::new(),
            stats: CompressStats::new(),
            compress_time: Duration::ZERO,
        }
    }

    /// The shared pattern.
    pub fn pattern(&self) -> &Arc<Pattern> {
        &self.pattern
    }

    /// The shared stamp maps.
    pub fn maps(&self) -> &Arc<StampMaps> {
        &self.maps
    }

    /// The compressor configuration.
    pub fn config(&self) -> MascConfig {
        self.config.clone()
    }

    /// Accepts the matrix of the next timestep (paper Algorithm 2 line 6:
    /// "compress `M_{n−1}` using `M_n`; store `M_n`").
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the pattern's nnz.
    pub fn push(&mut self, values: &[f64]) {
        assert_eq!(
            values.len(),
            self.pattern.nnz(),
            "value count != pattern nnz"
        );
        let prev = self.pending.replace(values.to_vec());
        if let (Some(prev), Some(newest)) = (prev, self.pending.as_ref()) {
            let t = self.blocks.len();
            let start = Instant::now();
            let (bytes, stats) = if self.config.is_seed_step(t) {
                compress_matrix_seeded(&prev, &self.maps, &self.config)
            } else {
                compress_dispatch(&prev, newest, &self.maps, &self.config)
            };
            self.compress_time += start.elapsed();
            self.stats.merge(&stats);
            self.blocks.push(bytes);
        }
    }

    /// Appends a block that was encoded out-of-band (a pipelined store's
    /// worker pool). The caller guarantees the block was produced by
    /// [`encode_block`] against the values of step `sealed_len() + 1` — or
    /// by [`encode_seed_block`] — with this compressor's config.
    pub fn push_encoded(&mut self, bytes: Vec<u8>, stats: &CompressStats) {
        self.stats.merge(stats);
        self.blocks.push(bytes);
    }

    /// Number of matrices pushed so far.
    pub fn len(&self) -> usize {
        self.blocks.len() + usize::from(self.pending.is_some())
    }

    /// Whether no matrices have been pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current in-memory footprint: compressed blocks + the one raw
    /// pending matrix (what Fig. 1's "with compression" line would show).
    pub fn memory_bytes(&self) -> usize {
        let blocks: usize = self.blocks.iter().map(Vec::len).sum();
        blocks + self.pending.as_ref().map_or(0, |p| p.len() * 8)
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CompressStats {
        &self.stats
    }

    /// Wall time spent compressing.
    pub fn compress_time(&self) -> Duration {
        self.compress_time
    }

    /// Number of *sealed* compressed blocks (excludes the raw pending
    /// matrix). Block `t` holds `M_t` compressed against `M_{t+1}`.
    pub fn sealed_len(&self) -> usize {
        self.blocks.len()
    }

    /// The compressed bytes of sealed block `t`, if it exists and has not
    /// been moved out with [`take_block`](Self::take_block).
    pub fn compressed_block(&self, t: usize) -> Option<&[u8]> {
        self.blocks.get(t).map(Vec::as_slice)
    }

    /// Moves sealed block `t` out of the compressor (a tiered store spills
    /// it to a slower tier), leaving an empty placeholder so later block
    /// indices are unaffected. Returns `None` for an unsealed or
    /// already-taken block.
    pub fn take_block(&mut self, t: usize) -> Option<Vec<u8>> {
        match self.blocks.get_mut(t) {
            Some(b) if !b.is_empty() => Some(std::mem::take(b)),
            _ => None,
        }
    }

    /// Seals the trailing pending matrix by compressing it against a zero
    /// reference, leaving the compressor usable for block extraction. No-op
    /// when nothing is pending.
    pub fn seal(&mut self) {
        if let Some(last) = self.pending.take() {
            let start = Instant::now();
            let (bytes, stats) = compress_matrix_seeded(&last, &self.maps, &self.config);
            self.compress_time += start.elapsed();
            self.stats.merge(&stats);
            self.blocks.push(bytes);
        }
    }

    /// Finalizes the tensor. The trailing matrix is compressed against a
    /// zero reference so the whole tensor is compressed at rest.
    pub fn finish(mut self) -> CompressedTensor {
        self.seal();
        CompressedTensor {
            pattern: self.pattern,
            maps: self.maps,
            config: self.config,
            blocks: self.blocks,
            stats: self.stats,
            compress_time: self.compress_time,
        }
    }
}

/// A fully-compressed matrix time series.
#[derive(Debug, Clone)]
pub struct CompressedTensor {
    pattern: Arc<Pattern>,
    maps: Arc<StampMaps>,
    config: MascConfig,
    /// `blocks[t]` compressed against `blocks[t+1]`'s values (the final
    /// block against zeros).
    blocks: Vec<Vec<u8>>,
    stats: CompressStats,
    compress_time: Duration,
}

impl CompressedTensor {
    /// Number of stored matrices.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the tensor is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Total compressed payload bytes.
    pub fn compressed_bytes(&self) -> usize {
        self.blocks.iter().map(Vec::len).sum()
    }

    /// Uncompressed size of the stored values (`S_NZ` of paper Table 2).
    pub fn raw_bytes(&self) -> usize {
        self.len() * self.pattern.nnz() * 8
    }

    /// Compression ratio over the non-zero values.
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes() == 0 {
            return 0.0;
        }
        self.raw_bytes() as f64 / self.compressed_bytes() as f64
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CompressStats {
        &self.stats
    }

    /// Wall time spent compressing (forward pass).
    pub fn compress_time(&self) -> Duration {
        self.compress_time
    }

    /// The shared pattern.
    pub fn pattern(&self) -> &Arc<Pattern> {
        &self.pattern
    }

    /// The compressed bytes of block `t`, if it exists.
    pub fn block(&self, t: usize) -> Option<&[u8]> {
        self.blocks.get(t).map(Vec::as_slice)
    }

    /// Decodes blocks `start..=end` newest-first, with the group's newest
    /// block decoded against a zero reference (it is either a seed block —
    /// which ignores the reference — or the tensor's final block, whose
    /// chain was sealed against zeros). Returns values oldest-first.
    fn decode_group(&self, start: usize, end: usize) -> Result<Vec<Vec<f64>>, CompressError> {
        let mut out = Vec::new();
        let mut reference = vec![0.0; self.pattern.nnz()];
        for t in (start..=end).rev() {
            let values =
                decompress_dispatch(&self.blocks[t], &reference, &self.maps, &self.config)?;
            reference.copy_from_slice(&values);
            out.push(values);
        }
        out.reverse();
        Ok(out)
    }

    /// Indices of blocks that end an independently decodable group: every
    /// seed block, plus the final block (whose chain roots in zeros).
    fn group_ends(&self) -> Vec<usize> {
        let mut ends: Vec<usize> = (0..self.blocks.len())
            .filter(|&t| is_seeded_block(&self.blocks[t]))
            .collect();
        if ends.last() != Some(&(self.blocks.len() - 1)) {
            ends.push(self.blocks.len() - 1);
        }
        ends
    }

    /// Decompresses every matrix, oldest first (testing/inspection; peak
    /// memory is the whole tensor).
    ///
    /// Seed blocks split the reference chain into independent groups; with
    /// `config.threads > 1` the groups decode concurrently.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError`] if any block fails to decode.
    pub fn decompress_all(&self) -> Result<Vec<Vec<f64>>, CompressError> {
        if self.blocks.is_empty() {
            return Ok(Vec::new());
        }
        let ends = self.group_ends();
        let mut starts = Vec::with_capacity(ends.len());
        let mut prev = 0usize;
        for &end in &ends {
            starts.push(prev);
            prev = end + 1;
        }
        let mut out = Vec::with_capacity(self.blocks.len());
        if self.config.threads > 1 && ends.len() > 1 {
            let groups: Vec<Result<Vec<Vec<f64>>, CompressError>> = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for (&start, &end) in starts.iter().zip(&ends) {
                    handles.push(scope.spawn(move || self.decode_group(start, end)));
                }
                handles
                    .into_iter()
                    .map(|h| {
                        h.join()
                            .unwrap_or(Err(CompressError::Corrupt("decode worker panicked")))
                    })
                    .collect()
            });
            for group in groups {
                out.extend(group?);
            }
        } else {
            for (&start, &end) in starts.iter().zip(&ends) {
                out.extend(self.decode_group(start, end)?);
            }
        }
        Ok(out)
    }

    /// Consumes the tensor into a newest-first decompression stream — the
    /// adjoint pass's access order ("decompress `M_{n−1}` using `M_n`; free
    /// memory for `M_n`").
    pub fn into_backward(self) -> BackwardDecompressor {
        BackwardDecompressor {
            maps: self.maps,
            config: self.config,
            nnz: self.pattern.nnz(),
            blocks: self.blocks,
            reference: None,
            decompress_time: Duration::ZERO,
        }
    }
}

/// Newest-first decompression stream over a [`CompressedTensor`].
///
/// Each call to [`next_matrix`](Self::next_matrix) frees the block it
/// expanded, so peak residency is one raw matrix plus the not-yet-consumed
/// compressed blocks.
#[derive(Debug)]
pub struct BackwardDecompressor {
    maps: Arc<StampMaps>,
    config: MascConfig,
    nnz: usize,
    blocks: Vec<Vec<u8>>,
    /// The previously yielded (newer) matrix — the reference for the next.
    reference: Option<Vec<f64>>,
    decompress_time: Duration,
}

impl BackwardDecompressor {
    /// Creates an *empty* chained decoder: it owns no blocks, and callers
    /// feed compressed bytes newest-first through
    /// [`decode_block`](Self::decode_block). Tiered stores use this to
    /// decode blocks pulled from memory or disk interchangeably.
    pub fn chained(pattern: &Arc<Pattern>, maps: Arc<StampMaps>, config: MascConfig) -> Self {
        Self {
            maps,
            config,
            nnz: pattern.nnz(),
            blocks: Vec::new(),
            reference: None,
            decompress_time: Duration::ZERO,
        }
    }

    /// Steps remaining.
    pub fn remaining(&self) -> usize {
        self.blocks.len()
    }

    /// Decodes one externally supplied block against the decoder's
    /// reference chain (zeros for the first/newest block), advancing the
    /// chain. Blocks must arrive newest-first, exactly as the matching
    /// compressor sealed them.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError`] if the block fails to decode.
    pub fn decode_block(&mut self, bytes: &[u8]) -> Result<Vec<f64>, CompressError> {
        let zeros;
        let reference: &[f64] = match &self.reference {
            Some(r) => r,
            None => {
                zeros = vec![0.0; self.nnz];
                &zeros
            }
        };
        let start = Instant::now();
        let values = decompress_dispatch(bytes, reference, &self.maps, &self.config)?;
        self.decompress_time += start.elapsed();
        self.reference = Some(values.clone());
        Ok(values)
    }

    /// Decompresses and yields the next matrix, newest first. Returns
    /// `(step_index, values)`, or `None` when exhausted.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError`] if the block fails to decode.
    #[allow(clippy::should_implement_trait)] // fallible, not an Iterator
    pub fn next_matrix(&mut self) -> Result<Option<(usize, Vec<f64>)>, CompressError> {
        let Some(block) = self.blocks.pop() else {
            return Ok(None);
        };
        let step = self.blocks.len();
        let values = self.decode_block(&block)?;
        Ok(Some((step, values)))
    }

    /// Current memory footprint (remaining blocks + the reference matrix).
    pub fn memory_bytes(&self) -> usize {
        let blocks: usize = self.blocks.iter().map(Vec::len).sum();
        blocks + self.reference.as_ref().map_or(0, |r| r.len() * 8)
    }

    /// Wall time spent decompressing so far.
    pub fn decompress_time(&self) -> Duration {
        self.decompress_time
    }
}

/// Serialized form of a [`CompressedTensor`] (used by the compressed-disk
/// store and for persistence): pattern + config echo + framed blocks.
impl CompressedTensor {
    /// Serializes the tensor to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let pat = self.pattern.to_compressed_bytes();
        varint::write_u64(&mut out, pat.len() as u64);
        out.extend_from_slice(&pat);
        varint::write_u64(&mut out, u64::from(self.config.threads > 1));
        varint::write_u64(&mut out, self.config.chunk_size as u64);
        varint::write_u64(&mut out, self.blocks.len() as u64);
        for b in &self.blocks {
            #[cfg(feature = "mutation-hooks")]
            varint::write_u64(&mut out, crate::mutation::perturb_block_len(b.len()));
            #[cfg(not(feature = "mutation-hooks"))]
            varint::write_u64(&mut out, b.len() as u64);
            out.extend_from_slice(b);
        }
        out
    }

    /// Deserializes a tensor written by [`CompressedTensor::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`CompressError`] on truncation or a malformed pattern.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CompressError> {
        let mut pos = 0usize;
        let (pat_len, used) = varint::read_u64(bytes.get(pos..).ok_or(CompressError::Truncated)?)?;
        pos += used;
        let pat_end = pos
            .checked_add(pat_len as usize)
            .ok_or(CompressError::Truncated)?;
        let pattern = Pattern::from_compressed_bytes(
            bytes.get(pos..pat_end).ok_or(CompressError::Truncated)?,
        )
        .map_err(|_| CompressError::Corrupt("bad pattern in tensor header"))?;
        pos = pat_end;
        let (parallel, used) = varint::read_u64(bytes.get(pos..).ok_or(CompressError::Truncated)?)?;
        pos += used;
        let (chunk_size, used) =
            varint::read_u64(bytes.get(pos..).ok_or(CompressError::Truncated)?)?;
        pos += used;
        let (count, used) = varint::read_u64(bytes.get(pos..).ok_or(CompressError::Truncated)?)?;
        pos += used;
        // Every framed block costs at least its one-byte length varint, so a
        // claimed count beyond the remaining input is truncated garbage;
        // reject it before trusting it with an allocation.
        if count > bytes.len() as u64 {
            return Err(CompressError::Truncated);
        }
        let mut blocks = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let (len, used) = varint::read_u64(bytes.get(pos..).ok_or(CompressError::Truncated)?)?;
            pos += used;
            let end = pos
                .checked_add(len as usize)
                .ok_or(CompressError::Truncated)?;
            blocks.push(
                bytes
                    .get(pos..end)
                    .ok_or(CompressError::Truncated)?
                    .to_vec(),
            );
            pos = end;
        }
        let pattern = Arc::new(pattern);
        let maps = Arc::new(StampMaps::new(&pattern));
        let config = MascConfig {
            threads: if parallel != 0 { 2 } else { 1 },
            chunk_size: chunk_size as usize,
            ..MascConfig::default()
        };
        Ok(Self {
            pattern,
            maps,
            config,
            blocks,
            stats: CompressStats::new(),
            compress_time: Duration::ZERO,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use masc_sparse::TripletMatrix;

    fn pattern(n: usize) -> Arc<Pattern> {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.add(i, i, 1.0);
            if i > 0 {
                t.add(i, i - 1, 1.0);
                t.add(i - 1, i, 1.0);
            }
        }
        t.to_csr().pattern().clone()
    }

    fn series(p: &Pattern, steps: usize) -> Vec<Vec<f64>> {
        (0..steps)
            .map(|s| {
                let time = s as f64 * 0.01;
                (0..p.nnz())
                    .map(|k| {
                        let sign = if k % 3 == 0 { 2.0 } else { -1.0 };
                        // 3 of 4 entries are linear-device stamps: constant.
                        let wobble = if k % 4 == 0 {
                            0.001 * (time + k as f64).sin()
                        } else {
                            0.0
                        };
                        sign * 1e-3 * (1.0 + wobble)
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn tensor_round_trips_in_both_directions() {
        let p = pattern(25);
        let matrices = series(&p, 12);
        let mut tc = TensorCompressor::new(p.clone(), MascConfig::default());
        for m in &matrices {
            tc.push(m);
        }
        assert_eq!(tc.len(), 12);
        let tensor = tc.finish();
        assert_eq!(tensor.len(), 12);

        // Forward (testing) order.
        let all = tensor.decompress_all().unwrap();
        for (a, b) in all.iter().zip(&matrices) {
            assert_eq!(a, b);
        }

        // Backward (adjoint) order.
        let mut back = tensor.into_backward();
        let mut seen = Vec::new();
        while let Some((step, values)) = back.next_matrix().unwrap() {
            seen.push((step, values));
        }
        assert_eq!(seen.len(), 12);
        for (i, (step, values)) in seen.iter().enumerate() {
            assert_eq!(*step, 11 - i);
            assert_eq!(values, &matrices[*step]);
        }
        assert_eq!(back.remaining(), 0);
    }

    #[test]
    fn empty_pattern_tensor_round_trips() {
        // nnz == 0: every block is an empty value slice, both directions.
        let p = TripletMatrix::new(0, 0).to_csr().pattern().clone();
        let mut tc = TensorCompressor::new(p, MascConfig::default());
        for _ in 0..3 {
            tc.push(&[]);
        }
        let tensor = tc.finish();
        assert_eq!(tensor.len(), 3);
        let all = tensor.decompress_all().unwrap();
        assert!(all.iter().all(|m| m.is_empty()));
        let mut back = tensor.into_backward();
        let mut steps = 0;
        while let Some((_, values)) = back.next_matrix().unwrap() {
            assert!(values.is_empty());
            steps += 1;
        }
        assert_eq!(steps, 3);
    }

    #[test]
    fn zero_step_tensor_is_empty() {
        let p = pattern(10);
        let tc = TensorCompressor::new(p, MascConfig::default());
        assert!(tc.is_empty());
        let tensor = tc.finish();
        assert!(tensor.is_empty());
        assert!(tensor.decompress_all().unwrap().is_empty());
        let mut back = tensor.into_backward();
        assert!(back.next_matrix().unwrap().is_none());
    }

    #[test]
    fn memory_shrinks_as_backward_consumes() {
        let p = pattern(40);
        let matrices = series(&p, 20);
        let mut tc = TensorCompressor::new(p, MascConfig::default());
        for m in &matrices {
            tc.push(m);
        }
        let tensor = tc.finish();
        let mut back = tensor.into_backward();
        back.next_matrix().unwrap();
        let first = back.memory_bytes();
        for _ in 0..10 {
            back.next_matrix().unwrap();
        }
        let later = back.memory_bytes();
        assert!(later < first, "{later} should be < {first}");
    }

    #[test]
    fn smooth_series_beats_raw_storage() {
        let p = pattern(100);
        let matrices = series(&p, 50);
        let mut tc = TensorCompressor::new(p, MascConfig::default().with_markov(false));
        for m in &matrices {
            tc.push(m);
        }
        let tensor = tc.finish();
        assert!(
            tensor.ratio() > 4.0,
            "expected strong tensor compression, got {:.2}x",
            tensor.ratio()
        );
    }

    #[test]
    fn pending_matrix_counted_in_memory() {
        let p = pattern(30);
        let mut tc = TensorCompressor::new(p.clone(), MascConfig::default());
        assert!(tc.is_empty());
        assert_eq!(tc.memory_bytes(), 0);
        tc.push(&vec![1.0; p.nnz()]);
        assert_eq!(tc.len(), 1);
        assert_eq!(tc.memory_bytes(), p.nnz() * 8);
    }

    #[test]
    fn empty_tensor_is_fine() {
        let p = pattern(5);
        let tc = TensorCompressor::new(p, MascConfig::default());
        let tensor = tc.finish();
        assert!(tensor.is_empty());
        assert_eq!(tensor.ratio(), 0.0);
        let mut back = tensor.into_backward();
        assert!(back.next_matrix().unwrap().is_none());
    }

    #[test]
    fn single_matrix_tensor() {
        let p = pattern(10);
        let values: Vec<f64> = (0..p.nnz()).map(|k| k as f64 * 0.5 - 3.0).collect();
        let mut tc = TensorCompressor::new(p, MascConfig::default());
        tc.push(&values);
        let tensor = tc.finish();
        assert_eq!(tensor.len(), 1);
        let all = tensor.decompress_all().unwrap();
        assert_eq!(all[0], values);
    }

    #[test]
    fn serialization_round_trips() {
        let p = pattern(20);
        let matrices = series(&p, 8);
        let mut tc = TensorCompressor::new(p, MascConfig::default());
        for m in &matrices {
            tc.push(m);
        }
        let tensor = tc.finish();
        let bytes = tensor.to_bytes();
        let restored = CompressedTensor::from_bytes(&bytes).unwrap();
        assert_eq!(restored.len(), 8);
        let all = restored.decompress_all().unwrap();
        for (a, b) in all.iter().zip(&matrices) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn corrupt_serialized_tensor_rejected() {
        let p = pattern(10);
        let mut tc = TensorCompressor::new(p, MascConfig::default());
        tc.push(&vec![1.0; 28]);
        let tensor = tc.finish();
        let bytes = tensor.to_bytes();
        assert!(CompressedTensor::from_bytes(&bytes[..bytes.len() / 2]).is_err());
        assert!(CompressedTensor::from_bytes(&[]).is_err());
    }

    #[test]
    fn shared_maps_between_g_and_c_tensors() {
        let p = pattern(15);
        let maps = Arc::new(StampMaps::new(&p));
        let g = TensorCompressor::with_maps(p.clone(), maps.clone(), MascConfig::default());
        let c = TensorCompressor::with_maps(p, maps.clone(), MascConfig::default());
        assert!(Arc::ptr_eq(g.maps(), c.maps()));
        assert_eq!(Arc::strong_count(&maps), 3);
    }
}
