//! The leading-zero residual code of paper Fig. 5(a).
//!
//! Each value's XOR residual against its prediction is encoded as:
//!
//! - `1` — residual is all zeros (~60 % of residuals per the paper);
//! - `0 1 <sig bits>` — the residual's meaningful bits fit inside the
//!   previous residual's window, so its (class, length) encoding is shared;
//! - `0 0 <3-bit lz class> <6-bit sig length − 1> <sig bits>` — a fresh
//!   window. The leading-zero count is quantized to 8-bit classes
//!   (`class = min(lz, 63) / 8`), matching the paper's "treat 0–7 leading
//!   zeros as 0" rule; the significant length excludes trailing zeros.

use crate::stats::CompressStats;
use masc_bitio::{BitReadError, BitReader, BitWriter};

/// Sliding window state shared between consecutive residuals.
///
/// `start` is the bit offset of the least-significant meaningful bit and
/// `len` the number of meaningful bits; together with the class they define
/// the reusable window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResidualWindow {
    /// Effective leading zeros (8·class).
    eff_lz: u32,
    /// Meaningful-bit count.
    len: u32,
    /// Bit offset of the window's LSB.
    start: u32,
}

/// Encoder/decoder state for a residual stream.
///
/// Reset at the start of every independently-decodable chunk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResidualState {
    window: Option<ResidualWindow>,
}

impl ResidualState {
    /// Fresh state with no previous window.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Encodes one residual.
pub fn encode_residual(
    w: &mut BitWriter,
    state: &mut ResidualState,
    residual: u64,
    stats: &mut CompressStats,
) {
    if residual == 0 {
        w.write_bit(true);
        stats.zero_residuals += 1;
        return;
    }
    w.write_bit(false);
    let lz = residual.leading_zeros();
    let tz = residual.trailing_zeros();
    let class = (lz / 8).min(7);
    stats.lz_class_histogram[class as usize] += 1;
    let eff_lz = class * 8;
    // Window reuse: the current meaningful span [tz, 64−lz) must lie inside
    // the previous window [start, start+len).
    if let Some(win) = state.window {
        if lz >= win.eff_lz && tz >= win.start && 64 - win.eff_lz >= tz + (64 - lz - tz) {
            // Fits: emit the shared-window flag and the bits.
            w.write_bit(true);
            w.write_bits(residual >> win.start, win.len);
            stats.shared_windows += 1;
            return;
        }
    }
    w.write_bit(false);
    let sig_len = 64 - eff_lz - tz;
    debug_assert!((1..=64).contains(&sig_len));
    w.write_bits(u64::from(class), 3);
    w.write_bits(u64::from(sig_len - 1), 6);
    w.write_bits(residual >> tz, sig_len);
    state.window = Some(ResidualWindow {
        eff_lz,
        len: sig_len,
        start: tz,
    });
}

/// Encodes a whole run of residuals using precomputed lane classifications.
///
/// Bit-exact equivalent of calling [`encode_residual`] once per element —
/// the unit and property tests cross-check the two — but structured for
/// throughput: runs of zero residuals are emitted as batched one-bits (up
/// to 64 per write) and the leading/trailing-zero counts come from
/// [`crate::lanes::classify_residuals`] instead of per-element scalar
/// intrinsics inside the bit loop.
///
/// # Panics
///
/// Panics if the slice lengths differ (caller bug: all three derive from
/// one chunk range).
pub fn encode_residuals_batched(
    w: &mut BitWriter,
    state: &mut ResidualState,
    residuals: &[u64],
    lz: &[u8],
    tz: &[u8],
    stats: &mut CompressStats,
) {
    assert_eq!(residuals.len(), lz.len(), "lz length mismatch");
    assert_eq!(residuals.len(), tz.len(), "tz length mismatch");
    let mut i = 0usize;
    while i < residuals.len() {
        if residuals[i] == 0 {
            // A run of n zero residuals is n consecutive `1` bits.
            let start = i;
            while i < residuals.len() && residuals[i] == 0 {
                i += 1;
            }
            let mut run = i - start;
            stats.zero_residuals += run as u64;
            while run >= 64 {
                w.write_bits(u64::MAX, 64);
                run -= 64;
            }
            if run > 0 {
                w.write_bits(u64::MAX >> (64 - run), run as u32);
            }
            continue;
        }
        let residual = residuals[i];
        w.write_bit(false);
        let lzi = u32::from(lz[i]);
        let tzi = u32::from(tz[i]);
        let class = (lzi / 8).min(7);
        stats.lz_class_histogram[class as usize] += 1;
        let eff_lz = class * 8;
        if let Some(win) = state.window {
            if lzi >= win.eff_lz && tzi >= win.start && 64 - win.eff_lz >= tzi + (64 - lzi - tzi) {
                w.write_bit(true);
                w.write_bits(residual >> win.start, win.len);
                stats.shared_windows += 1;
                i += 1;
                continue;
            }
        }
        w.write_bit(false);
        let sig_len = 64 - eff_lz - tzi;
        debug_assert!((1..=64).contains(&sig_len));
        w.write_bits(u64::from(class), 3);
        w.write_bits(u64::from(sig_len - 1), 6);
        w.write_bits(residual >> tzi, sig_len);
        state.window = Some(ResidualWindow {
            eff_lz,
            len: sig_len,
            start: tzi,
        });
        i += 1;
    }
}

/// Errors from residual decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResidualError {
    /// The bit stream ended mid-residual.
    Truncated(BitReadError),
    /// A shared-window flag appeared before any window was established —
    /// the stream is corrupt (the encoder never emits this).
    OrphanSharedWindow {
        /// Bit position of the offending flag.
        bit_pos: usize,
    },
    /// A fresh-window code claimed a leading-zero class and significant
    /// length that together exceed 64 bits — impossible output of a valid
    /// encoder, so the stream is corrupt.
    ImpossibleWindow {
        /// Bit position of the offending code.
        bit_pos: usize,
    },
}

impl std::fmt::Display for ResidualError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResidualError::Truncated(e) => write!(f, "residual stream truncated: {e}"),
            ResidualError::OrphanSharedWindow { bit_pos } => {
                write!(
                    f,
                    "shared-window flag with no prior window at bit {bit_pos}"
                )
            }
            ResidualError::ImpossibleWindow { bit_pos } => {
                write!(f, "residual window wider than 64 bits at bit {bit_pos}")
            }
        }
    }
}

impl std::error::Error for ResidualError {}

impl From<BitReadError> for ResidualError {
    fn from(e: BitReadError) -> Self {
        ResidualError::Truncated(e)
    }
}

/// Decodes one residual.
///
/// # Errors
///
/// Returns [`ResidualError`] if the stream is exhausted or corrupt.
pub fn decode_residual(
    r: &mut BitReader<'_>,
    state: &mut ResidualState,
) -> Result<u64, ResidualError> {
    if r.read_bit()? {
        return Ok(0);
    }
    if r.read_bit()? {
        // Shared window.
        let win = state.window.ok_or(ResidualError::OrphanSharedWindow {
            bit_pos: r.bit_pos(),
        })?;
        let bits = r.read_bits(win.len)?;
        return Ok(bits << win.start);
    }
    let class = r.read_bits(3)? as u32;
    let sig_len = r.read_bits(6)? as u32 + 1;
    let bits = r.read_bits(sig_len)?;
    let eff_lz = class * 8;
    // A valid encoder guarantees eff_lz + sig_len <= 64; a hostile stream
    // can claim class 7 with sig_len 64, which would underflow `start`.
    let start = 64u32
        .checked_sub(eff_lz + sig_len)
        .ok_or(ResidualError::ImpossibleWindow {
            bit_pos: r.bit_pos(),
        })?;
    state.window = Some(ResidualWindow {
        eff_lz,
        len: sig_len,
        start,
    });
    Ok(bits << start)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(residuals: &[u64]) -> (Vec<u8>, CompressStats) {
        let mut stats = CompressStats::new();
        let mut w = BitWriter::new();
        let mut st = ResidualState::new();
        for &res in residuals {
            encode_residual(&mut w, &mut st, res, &mut stats);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let mut st = ResidualState::new();
        for (i, &res) in residuals.iter().enumerate() {
            assert_eq!(
                decode_residual(&mut r, &mut st).unwrap(),
                res,
                "residual {i}"
            );
        }
        (bytes, stats)
    }

    #[test]
    fn zero_residual_costs_one_bit() {
        let (bytes, stats) = round_trip(&[0; 800]);
        assert_eq!(bytes.len(), 100);
        assert_eq!(stats.zero_residuals, 800);
    }

    #[test]
    fn assorted_residuals_round_trip() {
        round_trip(&[
            0,
            1,
            u64::MAX,
            1 << 63,
            0xFF00,
            0x0000_0000_0001_0000,
            0x8000_0000_0000_0001,
            3,
            0,
            0xDEAD_BEEF,
        ]);
    }

    #[test]
    fn similar_small_residuals_share_windows() {
        // Residuals with the same magnitude class: the second onward
        // should reuse the first's window.
        let residuals = vec![0x0000_0000_00FF_0000u64; 50];
        let (_, stats) = round_trip(&residuals);
        assert_eq!(stats.shared_windows, 49);
    }

    #[test]
    fn window_reuse_requires_fit() {
        // Second residual is wider than the first's window: no share.
        let (_, stats) = round_trip(&[0x0000_0000_000F_0000, 0x0FFF_FFFF_FFFF_FFFF]);
        assert_eq!(stats.shared_windows, 0);
    }

    #[test]
    fn lz_histogram_classes() {
        // lz = 0 → class 0; lz = 8 → class 1; lz = 60 → class 7.
        let (_, stats) = round_trip(&[u64::MAX, 0x00FF_FFFF_FFFF_FFFF, 0xF]);
        assert_eq!(stats.lz_class_histogram[0], 1);
        assert_eq!(stats.lz_class_histogram[1], 1);
        assert_eq!(stats.lz_class_histogram[7], 1);
    }

    #[test]
    fn class_treats_small_lz_as_zero() {
        // lz in 1..=7 must be class 0 (paper: "treating it as 0 if the
        // count of leading zero bits is between 0 and 7").
        for lz in 0..8u32 {
            let res = (1u64 << 63) >> lz;
            let (_, stats) = round_trip(&[res]);
            assert_eq!(stats.lz_class_histogram[0], 1, "lz = {lz}");
        }
    }

    #[test]
    fn close_floats_produce_cheap_residuals() {
        // XOR of adjacent simulated values: mostly zeros + tiny residuals.
        let mut vals = Vec::new();
        let mut x = 1.0f64;
        for _ in 0..1000 {
            x += 1e-12;
            vals.push(x);
        }
        let residuals: Vec<u64> = vals
            .windows(2)
            .map(|w| w[0].to_bits() ^ w[1].to_bits())
            .collect();
        let (bytes, _) = round_trip(&residuals);
        // ≪ 8 bytes per residual.
        assert!(
            bytes.len() < residuals.len() * 3,
            "residual stream {} bytes for {} residuals",
            bytes.len(),
            residuals.len()
        );
    }

    #[test]
    fn full_width_residual_round_trips() {
        // class 0, sig_len 64 exercises the 6-bit length field's maximum.
        round_trip(&[0x8000_0000_0000_0001, u64::MAX, 0xAAAA_AAAA_AAAA_AAAB]);
    }

    fn scalar_bytes(residuals: &[u64]) -> (Vec<u8>, CompressStats) {
        let mut stats = CompressStats::new();
        let mut w = BitWriter::new();
        let mut st = ResidualState::new();
        for &res in residuals {
            encode_residual(&mut w, &mut st, res, &mut stats);
        }
        (w.into_bytes(), stats)
    }

    fn batched_bytes(residuals: &[u64]) -> (Vec<u8>, CompressStats) {
        let mut lz = vec![0u8; residuals.len()];
        let mut tz = vec![0u8; residuals.len()];
        crate::lanes::classify_residuals(residuals, &mut lz, &mut tz);
        let mut stats = CompressStats::new();
        let mut w = BitWriter::new();
        let mut st = ResidualState::new();
        encode_residuals_batched(&mut w, &mut st, residuals, &lz, &tz, &mut stats);
        (w.into_bytes(), stats)
    }

    fn assert_batched_matches_scalar(residuals: &[u64]) {
        let (sb, ss) = scalar_bytes(residuals);
        let (bb, bs) = batched_bytes(residuals);
        assert_eq!(sb, bb, "byte streams diverge for {residuals:?}");
        assert_eq!(ss.zero_residuals, bs.zero_residuals);
        assert_eq!(ss.shared_windows, bs.shared_windows);
        assert_eq!(ss.lz_class_histogram, bs.lz_class_histogram);
    }

    #[test]
    fn batched_encoder_matches_scalar_bit_exactly() {
        assert_batched_matches_scalar(&[]);
        assert_batched_matches_scalar(&[0]);
        assert_batched_matches_scalar(&[
            0,
            1,
            u64::MAX,
            1 << 63,
            0xFF00,
            0,
            0,
            0x8000_0000_0000_0001,
            3,
            0xDEAD_BEEF,
        ]);
        // Shared-window heavy stream.
        assert_batched_matches_scalar(&vec![0x0000_0000_00FF_0000u64; 50]);
    }

    #[test]
    fn batched_encoder_matches_scalar_on_long_zero_runs() {
        // Runs straddling the 64-bit batching boundary: 63, 64, 65, 200.
        for run in [63usize, 64, 65, 200] {
            let mut residuals = vec![0u64; run];
            residuals.push(0xABCD);
            residuals.extend_from_slice(&[0; 3]);
            assert_batched_matches_scalar(&residuals);
        }
    }

    #[test]
    fn truncated_stream_errors() {
        let mut stats = CompressStats::new();
        let mut w = BitWriter::new();
        let mut st = ResidualState::new();
        encode_residual(&mut w, &mut st, 0xDEAD, &mut stats);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes[..1]);
        let mut st = ResidualState::new();
        assert!(decode_residual(&mut r, &mut st).is_err());
    }
}
