//! First-order Markov predictor over prediction-model selections
//! (paper §4.2, Fig. 4).
//!
//! Best-fit selection needs 1–2 bits per value *and* the argmin work. The
//! Markov predictor removes both: a per-region transition table
//! `P(next selection | previous selection)` is estimated by frequency
//! counting during a best-fit warm-up prefix, after which selections are
//! predicted outright and **no selection bits are written**.
//!
//! The table is *per matrix* (reset at each matrix, trained on that
//! matrix's own warm-up prefix). This keeps every compressed matrix
//! independently decodable, which the MASC pipeline requires: matrices are
//! compressed in forward time order but decompressed in reverse during the
//! adjoint pass, so any cross-matrix predictor state would force a full
//! forward replay before the backward sweep could start.

use crate::predictor::Region;

/// Number of selection codes (max over regions).
const CODES: usize = 4;

/// A per-region, order-1 Markov model over selection codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarkovModel {
    /// `counts[region][prev][next]`.
    counts: [[[u32; CODES]; CODES]; 3],
    /// Last selection seen per region (state of the chain).
    prev: [u32; 3],
}

impl Default for MarkovModel {
    fn default() -> Self {
        Self::new()
    }
}

impl MarkovModel {
    /// Fresh model: uniform counts, chains at code 0 (temporal).
    pub fn new() -> Self {
        Self {
            counts: [[[0; CODES]; CODES]; 3],
            prev: [0; 3],
        }
    }

    /// Records an observed best-fit selection (warm-up phase) and advances
    /// the chain.
    ///
    /// Callers must validate `code < candidate_count()` first (the decode
    /// path rejects out-of-range wire codes before observing them).
    pub fn observe(&mut self, region: Region, code: u32) {
        debug_assert!((code as usize) < CODES, "selection code out of range");
        let r = region.index();
        let p = self.prev[r] as usize;
        self.counts[r][p][code as usize] += 1;
        self.prev[r] = code;
    }

    /// Predicts the next selection for a region (Markov phase) and
    /// advances the chain with its own prediction.
    ///
    /// Deterministic (argmax with lowest-code tie-breaking), so encoder and
    /// decoder stay synchronized without any side information.
    pub fn predict(&mut self, region: Region) -> u32 {
        // The chain state only ever holds validated codes (see `observe`).
        debug_assert!(self.prev.iter().all(|&p| (p as usize) < CODES));
        let r = region.index();
        let p = self.prev[r] as usize;
        let row = &self.counts[r][p];
        let mut best = 0usize;
        for c in 1..region.candidate_count() {
            if row[c] > row[best] {
                best = c;
            }
        }
        self.prev[r] = best as u32;
        best as u32
    }

    /// The most probable next code without advancing the chain.
    pub fn peek(&self, region: Region) -> u32 {
        let r = region.index();
        let row = &self.counts[r][self.prev[r] as usize];
        let mut best = 0usize;
        for c in 1..region.candidate_count() {
            if row[c] > row[best] {
                best = c;
            }
        }
        best as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untrained_model_predicts_temporal() {
        let mut m = MarkovModel::new();
        assert_eq!(m.predict(Region::Upper), 0);
        assert_eq!(m.predict(Region::Lower), 0);
        assert_eq!(m.predict(Region::Diag), 0);
    }

    #[test]
    fn learns_a_constant_stream() {
        let mut m = MarkovModel::new();
        for _ in 0..10 {
            m.observe(Region::Upper, 2);
        }
        assert_eq!(m.predict(Region::Upper), 2);
        // Chain advanced with its own prediction → still 2.
        assert_eq!(m.predict(Region::Upper), 2);
    }

    #[test]
    fn learns_an_alternating_stream() {
        let mut m = MarkovModel::new();
        // 1, 3, 1, 3, … — transition 1→3 and 3→1.
        for _ in 0..20 {
            m.observe(Region::Lower, 1);
            m.observe(Region::Lower, 3);
        }
        // Chain currently at 3 → predicts 1, then 3, then 1 …
        assert_eq!(m.predict(Region::Lower), 1);
        assert_eq!(m.predict(Region::Lower), 3);
        assert_eq!(m.predict(Region::Lower), 1);
    }

    #[test]
    fn regions_are_independent() {
        let mut m = MarkovModel::new();
        for _ in 0..5 {
            m.observe(Region::Upper, 3);
            m.observe(Region::Diag, 1);
        }
        assert_eq!(m.peek(Region::Upper), 3);
        assert_eq!(m.peek(Region::Diag), 1);
        assert_eq!(m.peek(Region::Lower), 0);
    }

    #[test]
    fn diag_prediction_respects_candidate_count() {
        let mut m = MarkovModel::new();
        // Corrupt-ish training: force counts on code 3 for Diag's row by
        // observing through Upper (shared chain layout is per-region, so
        // this cannot leak) — Diag must still only predict 0 or 1.
        for _ in 0..5 {
            m.observe(Region::Diag, 1);
        }
        let p = m.predict(Region::Diag);
        assert!(p < 2);
    }

    #[test]
    fn peek_does_not_advance() {
        let mut m = MarkovModel::new();
        m.observe(Region::Upper, 2); // chain at 2; counts[0→2] = 1
        m.observe(Region::Upper, 1); // counts[2→1] = 1; chain at 1
        m.observe(Region::Upper, 2); // counts[1→2] = 1; chain at 2
        let first = m.peek(Region::Upper);
        let second = m.peek(Region::Upper);
        assert_eq!(first, second);
        assert_eq!(m.predict(Region::Upper), first);
    }
}
