//! Parallel (chunked) matrix compression.
//!
//! The paper's compressor has an OpenMP-parallel version whose throughput
//! (~2.3 GB/s) comfortably exceeds SSD bandwidth — the key to Fig. 7's 6×
//! win over the disk baseline. This module reproduces the design: the
//! non-zero stream is split into fixed chunks, each encoded independently
//! (own residual window, own Markov warm-up, in-matrix predictions confined
//! to the chunk), so both compression and decompression parallelize.
//!
//! Two stream eras coexist:
//!
//! Era 2 (written by this encoder) — per-chunk headers, segregated
//! selection/residual substreams, chunk-local decode buffers:
//!
//! ```text
//! [common header with FLAG_CHUNKED | FLAG_CHUNK_HEADERS]
//! [varint chunk_size] [varint n_chunks]
//! per chunk: [u8 chunk flags (0)] [varint count] [varint sel_bits] [varint byte_len]
//! [chunk payloads, byte-aligned]
//! ```
//!
//! Era 1 (legacy, still decodable) — `FLAG_CHUNKED` alone, interleaved
//! selection/residual bits, `[varint byte_len × n]` length table only.
//!
//! The era-2 decoder gives each chunk a buffer of exactly the chunk's
//! length (`decode_range_local`); the era-1 decoder needed an nnz-sized
//! scratch matrix per worker, which made wide matrices memory-bound and
//! flattened thread scaling.

use crate::config::MascConfig;
use crate::matrix::{
    checksum, decode_range, decode_range_local, encode_range_split, parse_header, write_header,
    HeaderParams, ParsedHeader, FLAG_CHUNKED, FLAG_CHUNK_HEADERS, FLAG_CROSS_INSTANCE, FLAG_SEEDED,
};
use crate::predictor::StampMaps;
use crate::stats::CompressStats;
use crate::CompressError;
use masc_bitio::{varint, BitReader, BitWriter};
use std::time::{Duration, Instant};

/// Splits `0..nnz` into `chunk_size` ranges.
fn chunk_ranges(nnz: usize, chunk_size: usize) -> Vec<core::ops::Range<usize>> {
    let chunk = chunk_size.max(1);
    (0..nnz.div_ceil(chunk))
        .map(|i| i * chunk..((i + 1) * chunk).min(nnz))
        .collect()
}

/// One independently-encoded chunk.
struct EncodedChunk {
    bytes: Vec<u8>,
    sel_bits: u64,
    stats: CompressStats,
}

fn encode_chunk(
    values: &[f64],
    reference: &[f64],
    maps: &StampMaps,
    params: &HeaderParams,
    range: core::ops::Range<usize>,
) -> EncodedChunk {
    let mut stats = CompressStats::new();
    let mut w = BitWriter::with_capacity(range.len() / 2 + 16);
    let sel_bits = encode_range_split(&mut w, values, reference, maps, params, range, &mut stats);
    EncodedChunk {
        bytes: w.into_bytes(),
        sel_bits,
        stats,
    }
}

/// Encodes every chunk, in parallel when `threads > 1`; order restored by
/// index, so the output is thread-count invariant.
fn encode_chunks(
    values: &[f64],
    reference: &[f64],
    maps: &StampMaps,
    params: &HeaderParams,
    ranges: &[core::ops::Range<usize>],
    threads: usize,
) -> Vec<EncodedChunk> {
    if threads <= 1 || ranges.len() <= 1 {
        return ranges
            .iter()
            .map(|range| encode_chunk(values, reference, maps, params, range.clone()))
            .collect();
    }
    // Strided assignment (worker t takes chunks t, t+T, t+2T, …): chunk
    // cost is usually skewed toward one end of the matrix, and striding
    // spreads that skew across workers where a contiguous split would
    // pile it onto one.
    let threads = threads.min(ranges.len());
    let mut buckets: Vec<Vec<EncodedChunk>> = Vec::new();
    buckets.resize_with(threads, Vec::new);
    std::thread::scope(|scope| {
        for (tid, bucket) in buckets.iter_mut().enumerate() {
            // masc-lint: allow(spawn-discard, reason = "encode lanes return no value and write straight into their bucket; scope exit joins them and re-raises any panic, which is the intended propagation here")
            scope.spawn(move || {
                for i in (tid..ranges.len()).step_by(threads) {
                    bucket.push(encode_chunk(
                        values,
                        reference,
                        maps,
                        params,
                        ranges[i].clone(),
                    ));
                }
            });
        }
    });
    // Every bucket is complete before the scope exits (a panicking worker
    // aborts the scope); reassemble in chunk order.
    let mut slots: Vec<Option<EncodedChunk>> = Vec::new();
    slots.resize_with(ranges.len(), || None);
    for (tid, bucket) in buckets.into_iter().enumerate() {
        for (k, chunk) in bucket.into_iter().enumerate() {
            slots[tid + k * threads] = Some(chunk);
        }
    }
    slots.into_iter().flatten().collect()
}

/// Assembles the era-2 stream from encoded chunks. `block_flags` carries
/// the block-kind bits (none, [`FLAG_SEEDED`], or [`FLAG_CROSS_INSTANCE`])
/// on top of the chunked-layout flags.
fn assemble_chunked(
    values: &[f64],
    config: &MascConfig,
    ranges: &[core::ops::Range<usize>],
    encoded: &[EncodedChunk],
    block_flags: u8,
    stats: &mut CompressStats,
) -> Vec<u8> {
    let flags = FLAG_CHUNKED | FLAG_CHUNK_HEADERS | block_flags;
    let mut out = write_header(values, config, flags);
    varint::write_u64(&mut out, config.chunk_size as u64);
    varint::write_u64(&mut out, encoded.len() as u64);
    for (range, chunk) in ranges.iter().zip(encoded) {
        out.push(0); // per-chunk flags: none defined in era 2
        varint::write_u64(&mut out, range.len() as u64);
        varint::write_u64(&mut out, chunk.sel_bits);
        varint::write_u64(&mut out, chunk.bytes.len() as u64);
    }
    for chunk in encoded {
        out.extend_from_slice(&chunk.bytes);
        stats.merge(&chunk.stats);
    }
    stats.input_bytes = (values.len() * 8) as u64; // merge() double-adds; reset
    stats.output_bytes = out.len() as u64;
    out
}

fn compress_chunked(
    values: &[f64],
    reference: &[f64],
    maps: &StampMaps,
    config: &MascConfig,
    block_flags: u8,
) -> (Vec<u8>, CompressStats) {
    let nnz = maps.order().len();
    assert_eq!(values.len(), nnz, "value count != pattern nnz");
    assert_eq!(reference.len(), nnz, "reference count != pattern nnz");
    let ranges = chunk_ranges(nnz, config.chunk_size);
    let params = HeaderParams::from_config(config);
    let threads = config.threads.max(1).min(ranges.len().max(1));
    let encoded = encode_chunks(values, reference, maps, &params, &ranges, threads);
    let mut stats = CompressStats::new();
    let out = assemble_chunked(values, config, &ranges, &encoded, block_flags, &mut stats);
    (out, stats)
}

/// Compresses a matrix with chunk-level parallelism (era-2 stream).
///
/// The output is byte-identical for any thread count, so compression
/// results are reproducible.
///
/// # Panics
///
/// Panics if `values.len()` or `reference.len()` differ from the pattern
/// nnz.
pub fn compress_matrix_parallel(
    values: &[f64],
    reference: &[f64],
    maps: &StampMaps,
    config: &MascConfig,
) -> (Vec<u8>, CompressStats) {
    compress_chunked(values, reference, maps, config, 0)
}

/// Compresses a matrix as a *seed* block: encoded against an all-zero
/// reference and flagged so the decoder needs no temporal predecessor.
/// Seed blocks are what let a tensor's backward chain split into
/// independently-decodable groups.
///
/// # Panics
///
/// Panics if `values.len()` differs from the pattern nnz.
pub fn compress_matrix_seeded(
    values: &[f64],
    maps: &StampMaps,
    config: &MascConfig,
) -> (Vec<u8>, CompressStats) {
    let zeros = vec![0.0f64; maps.order().len()];
    compress_chunked(values, &zeros, maps, config, FLAG_SEEDED)
}

/// Compresses a matrix as an era-3 *cross-instance* block: `reference` is
/// the same-timestep matrix of the *previous sweep instance* rather than
/// the temporal successor. Parameter sweeps elaborate the same netlist N
/// times with small parameter deltas, so adjacent instances' Jacobians at
/// the same step differ in only the swept stamps — the residuals are far
/// sparser than along the temporal axis. The payload layout is identical to
/// [`compress_matrix_parallel`]; the `FLAG_CROSS_INSTANCE` header bit
/// records which axis the reference came from, and decoding against the
/// wrong reference is caught by the stream checksum.
///
/// Decode with [`decompress_matrix_parallel`], passing the previous
/// instance's decoded same-step values as `reference`.
///
/// # Panics
///
/// Panics if `values.len()` or `reference.len()` differ from the pattern
/// nnz.
pub fn compress_matrix_cross(
    values: &[f64],
    reference: &[f64],
    maps: &StampMaps,
    config: &MascConfig,
) -> (Vec<u8>, CompressStats) {
    compress_chunked(values, reference, maps, config, FLAG_CROSS_INSTANCE)
}

/// Parsed era-2 per-chunk header entry.
struct ChunkEntry {
    sel_bits: u64,
    offset: usize,
    len: usize,
}

/// Parses the era-2 chunk table; returns the chunk grid and entries.
#[allow(clippy::type_complexity)]
fn parse_chunk_table(
    bytes: &[u8],
    nnz: usize,
    mut pos: usize,
) -> Result<(Vec<core::ops::Range<usize>>, Vec<ChunkEntry>), CompressError> {
    let (chunk_size, used) = varint::read_u64(bytes.get(pos..).ok_or(CompressError::Truncated)?)?;
    pos += used;
    let (n_chunks, used) = varint::read_u64(bytes.get(pos..).ok_or(CompressError::Truncated)?)?;
    pos += used;
    let ranges = chunk_ranges(nnz, chunk_size as usize);
    if ranges.len() != n_chunks as usize {
        return Err(CompressError::Corrupt("chunk count mismatch"));
    }
    let mut entries: Vec<ChunkEntry> = Vec::with_capacity(ranges.len());
    for range in &ranges {
        let chunk_flags = *bytes.get(pos).ok_or(CompressError::Truncated)?;
        pos += 1;
        if chunk_flags != 0 {
            return Err(CompressError::Corrupt("unknown chunk flag bits"));
        }
        let (count, used) = varint::read_u64(bytes.get(pos..).ok_or(CompressError::Truncated)?)?;
        pos += used;
        if count as usize != range.len() {
            return Err(CompressError::Corrupt("chunk element count mismatch"));
        }
        let (sel_bits, used) = varint::read_u64(bytes.get(pos..).ok_or(CompressError::Truncated)?)?;
        pos += used;
        let (len, used) = varint::read_u64(bytes.get(pos..).ok_or(CompressError::Truncated)?)?;
        pos += used;
        entries.push(ChunkEntry {
            sel_bits,
            offset: 0,
            len: len as usize,
        });
    }
    for entry in entries.iter_mut() {
        entry.offset = pos;
        pos = pos.checked_add(entry.len).ok_or(CompressError::Truncated)?;
    }
    if pos > bytes.len() {
        return Err(CompressError::Truncated);
    }
    Ok((ranges, entries))
}

/// Decodes one era-2 chunk into a freshly allocated chunk-local buffer.
fn decode_chunk_local(
    bytes: &[u8],
    entry: &ChunkEntry,
    reference: &[f64],
    maps: &StampMaps,
    params: &HeaderParams,
    range: core::ops::Range<usize>,
) -> Result<Vec<f64>, CompressError> {
    let payload = bytes
        .get(entry.offset..entry.offset + entry.len)
        .ok_or(CompressError::Truncated)?;
    let mut local = vec![0.0f64; range.len()];
    decode_range_local(
        payload,
        entry.sel_bits,
        &mut local,
        reference,
        maps,
        params,
        range,
    )?;
    Ok(local)
}

/// Era-2 decode: chunk-local buffers, parallel across chunks, one serial
/// scatter at the end.
fn decompress_chunked_v2(
    bytes: &[u8],
    reference: &[f64],
    maps: &StampMaps,
    config: &MascConfig,
    header: &ParsedHeader,
) -> Result<Vec<f64>, CompressError> {
    let nnz = maps.order().len();
    let (ranges, entries) = parse_chunk_table(bytes, nnz, header.payload_offset)?;
    let threads = config.threads.max(1).min(ranges.len().max(1));
    let mut out = vec![0.0f64; nnz];
    if threads <= 1 || ranges.len() <= 1 {
        for (range, entry) in ranges.iter().zip(&entries) {
            let local =
                decode_chunk_local(bytes, entry, reference, maps, &header.params, range.clone())?;
            for (off, p) in range.clone().enumerate() {
                out[maps.order()[p]] = local[off];
            }
        }
    } else {
        // Same strided schedule as the encoder (worker t takes chunks
        // t, t+T, t+2T, …) to spread skewed chunk costs. Workers also
        // compute their chunks' checksum contributions, so the serial
        // epilogue is just the scatter plus an XOR fold.
        let want_checksum = header.expected_checksum.is_some();
        type ChunkValues = Vec<(usize, Vec<f64>, u64)>;
        let results: Vec<Result<ChunkValues, CompressError>> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for tid in 0..threads {
                let ranges = &ranges;
                let entries = &entries;
                let params = &header.params;
                handles.push(scope.spawn(move || {
                    let mut locals = Vec::new();
                    for i in (tid..ranges.len()).step_by(threads) {
                        let local = decode_chunk_local(
                            bytes,
                            &entries[i],
                            reference,
                            maps,
                            params,
                            ranges[i].clone(),
                        )?;
                        let partial = if want_checksum {
                            checksum_partial(&local, ranges[i].clone(), maps, nnz)
                        } else {
                            0
                        };
                        locals.push((i, local, partial));
                    }
                    Ok(locals)
                }));
            }
            handles
                .into_iter()
                .map(|h| {
                    // Joining consumes a worker panic; surface it as a
                    // structured decode error instead of unwinding.
                    h.join()
                        .unwrap_or(Err(CompressError::Corrupt("decode worker panicked")))
                })
                .collect()
        });
        let mut acc = 0u64;
        for result in results {
            for (i, local, partial) in result? {
                acc ^= partial;
                for (off, p) in ranges[i].clone().enumerate() {
                    out[maps.order()[p]] = local[off];
                }
            }
        }
        if let Some(expected) = header.expected_checksum {
            if acc != expected {
                return Err(CompressError::ChecksumMismatch);
            }
        }
        return Ok(out);
    }
    if let Some(expected) = header.expected_checksum {
        if checksum(&out) != expected {
            return Err(CompressError::ChecksumMismatch);
        }
    }
    Ok(out)
}

/// One chunk's contribution to the whole-matrix chain checksum.
///
/// The chain `acc = rotl(acc, 1) ^ bits` is linear over XOR: the value
/// landing at output index `idx` contributes `rotl(bits, nnz − 1 − idx)`
/// to the final accumulator (rotation amounts wrap mod 64), so per-chunk
/// partials can be computed concurrently and XOR-folded — bit-identical
/// to the serial chain.
fn checksum_partial(
    local: &[f64],
    range: core::ops::Range<usize>,
    maps: &StampMaps,
    nnz: usize,
) -> u64 {
    let mut acc = 0u64;
    for (off, p) in range.enumerate() {
        let idx = maps.order()[p];
        acc ^= local[off]
            .to_bits()
            .rotate_left(((nnz - 1 - idx) % 64) as u32);
    }
    acc
}

/// Era-1 decode (legacy chained-chunk format): kept verbatim so streams
/// minted before the per-chunk-header era stay readable.
fn decompress_chunked_legacy(
    bytes: &[u8],
    reference: &[f64],
    maps: &StampMaps,
    config: &MascConfig,
    header: &ParsedHeader,
) -> Result<Vec<f64>, CompressError> {
    let nnz = maps.order().len();
    let mut pos = header.payload_offset;
    let (chunk_size, used) = varint::read_u64(bytes.get(pos..).ok_or(CompressError::Truncated)?)?;
    pos += used;
    let (n_chunks, used) = varint::read_u64(bytes.get(pos..).ok_or(CompressError::Truncated)?)?;
    pos += used;
    let ranges = chunk_ranges(nnz, chunk_size as usize);
    if ranges.len() != n_chunks as usize {
        return Err(CompressError::Corrupt("chunk count mismatch"));
    }
    let mut lens = Vec::with_capacity(ranges.len());
    for _ in 0..n_chunks {
        let (len, used) = varint::read_u64(bytes.get(pos..).ok_or(CompressError::Truncated)?)?;
        pos += used;
        lens.push(len as usize);
    }
    let mut offsets = Vec::with_capacity(ranges.len());
    for &len in &lens {
        offsets.push(pos);
        pos = pos.checked_add(len).ok_or(CompressError::Truncated)?;
    }
    if pos > bytes.len() {
        return Err(CompressError::Truncated);
    }

    let threads = config.threads.max(1).min(ranges.len().max(1));
    let mut out = vec![0.0f64; nnz];
    if threads <= 1 || ranges.len() <= 1 {
        for (i, range) in ranges.iter().enumerate() {
            let payload = &bytes[offsets[i]..offsets[i] + lens[i]];
            decode_chunk_into(
                &mut out,
                payload,
                reference,
                maps,
                &header.params,
                range.clone(),
            )?;
        }
    } else {
        // Workers decode into nnz-sized scratch buffers (the era-1 bit
        // layout interleaves selections with residuals, so the chunk-local
        // fast path cannot apply); compact and scatter after.
        let per = ranges.len().div_ceil(threads);
        let workers = ranges.len().div_ceil(per);
        type ChunkValues = Vec<(usize, Vec<f64>)>;
        let results: Vec<Result<ChunkValues, CompressError>> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for tid in 0..workers {
                let ranges = &ranges;
                let lens = &lens;
                let offsets = &offsets;
                let params = &header.params;
                handles.push(scope.spawn(move || {
                    let mut local = Vec::new();
                    let mut scratch = vec![0.0f64; nnz];
                    for i in (tid * per)..((tid + 1) * per).min(ranges.len()) {
                        let payload = &bytes[offsets[i]..offsets[i] + lens[i]];
                        decode_chunk_into(
                            &mut scratch,
                            payload,
                            reference,
                            maps,
                            params,
                            ranges[i].clone(),
                        )?;
                        let compact: Vec<f64> = ranges[i]
                            .clone()
                            .map(|p| scratch[maps.order()[p]])
                            .collect();
                        local.push((i, compact));
                    }
                    Ok(local)
                }));
            }
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or(Err(CompressError::Corrupt("decode worker panicked")))
                })
                .collect()
        });
        for result in results {
            for (i, compact) in result? {
                for (p, v) in ranges[i].clone().zip(compact) {
                    out[maps.order()[p]] = v;
                }
            }
        }
    }

    if let Some(expected) = header.expected_checksum {
        if checksum(&out) != expected {
            return Err(CompressError::ChecksumMismatch);
        }
    }
    Ok(out)
}

/// Decompresses a chunked stream of either era.
///
/// # Errors
///
/// Returns [`CompressError`] on truncation, header inconsistency, or
/// checksum mismatch.
pub fn decompress_matrix_parallel(
    bytes: &[u8],
    reference: &[f64],
    maps: &StampMaps,
    config: &MascConfig,
) -> Result<Vec<f64>, CompressError> {
    let nnz = maps.order().len();
    if reference.len() != nnz {
        return Err(CompressError::Corrupt("reference length != pattern nnz"));
    }
    let header = parse_header(bytes, nnz)?;
    if !header.chunked {
        return Err(CompressError::Corrupt(
            "serial stream passed to the chunked decoder",
        ));
    }
    let zeros;
    let reference: &[f64] = if header.seeded {
        zeros = vec![0.0f64; nnz];
        &zeros
    } else {
        reference
    };
    if header.chunk_headers {
        decompress_chunked_v2(bytes, reference, maps, config, &header)
    } else {
        decompress_chunked_legacy(bytes, reference, maps, config, &header)
    }
}

fn decode_chunk_into(
    out: &mut [f64],
    payload: &[u8],
    reference: &[f64],
    maps: &StampMaps,
    params: &HeaderParams,
    range: core::ops::Range<usize>,
) -> Result<(), CompressError> {
    let chunk_start = range.start;
    let mut r = BitReader::new(payload);
    decode_range(&mut r, out, reference, maps, params, range, chunk_start)
}

/// Per-chunk wall timings of one compress + decompress cycle.
///
/// Every chunk is executed *serially* and timed individually, so the
/// numbers describe the true parallel work distribution independent of how
/// many cores the measuring host happens to have. A scheduler can replay
/// these timings to compute the critical-path makespan for any worker
/// count — which is how the scaling benchmark reports thread scaling
/// honestly from a single-core CI box.
#[derive(Debug, Clone, Default)]
pub struct MatrixProfile {
    /// Wall time to encode each chunk (independent units of work).
    pub encode_chunk: Vec<Duration>,
    /// Wall time to decode each chunk into its chunk-local buffer.
    pub decode_chunk: Vec<Duration>,
    /// Serial encode overhead: header write + stream assembly.
    pub encode_serial: Duration,
    /// Serial decode overhead: header/table parse + scatter + checksum.
    pub decode_serial: Duration,
    /// Size of the assembled era-2 stream.
    pub compressed_bytes: usize,
}

/// Compresses and decompresses `values` once, timing each chunk serially.
///
/// # Errors
///
/// Returns [`CompressError`] if the freshly encoded stream fails to decode
/// (which would be a codec bug, not an input property).
///
/// # Panics
///
/// Panics if `values.len()` or `reference.len()` differ from the pattern
/// nnz.
pub fn profile_matrix(
    values: &[f64],
    reference: &[f64],
    maps: &StampMaps,
    config: &MascConfig,
) -> Result<MatrixProfile, CompressError> {
    let nnz = maps.order().len();
    assert_eq!(values.len(), nnz, "value count != pattern nnz");
    assert_eq!(reference.len(), nnz, "reference count != pattern nnz");
    let ranges = chunk_ranges(nnz, config.chunk_size);
    let params = HeaderParams::from_config(config);
    let mut profile = MatrixProfile::default();

    // Encode: each chunk timed alone, assembly timed as serial overhead.
    let mut encoded = Vec::with_capacity(ranges.len());
    for range in &ranges {
        let t0 = Instant::now();
        let chunk = encode_chunk(values, reference, maps, &params, range.clone());
        profile.encode_chunk.push(t0.elapsed());
        encoded.push(chunk);
    }
    let t0 = Instant::now();
    let mut stats = CompressStats::new();
    let bytes = assemble_chunked(values, config, &ranges, &encoded, 0, &mut stats);
    profile.encode_serial = t0.elapsed();
    profile.compressed_bytes = bytes.len();

    // Decode: table parse + scatter + the checksum fold are serial; each
    // chunk's local decode and checksum partial are an independent timed
    // unit (exactly what one worker does in the parallel path).
    let t0 = Instant::now();
    let header = parse_header(&bytes, nnz)?;
    let (dranges, entries) = parse_chunk_table(&bytes, nnz, header.payload_offset)?;
    let want_checksum = header.expected_checksum.is_some();
    let mut out = vec![0.0f64; nnz];
    let mut acc = 0u64;
    let mut decode_serial = t0.elapsed();
    for (range, entry) in dranges.iter().zip(&entries) {
        let t0 = Instant::now();
        let local = decode_chunk_local(
            &bytes,
            entry,
            reference,
            maps,
            &header.params,
            range.clone(),
        )?;
        let partial = if want_checksum {
            checksum_partial(&local, range.clone(), maps, nnz)
        } else {
            0
        };
        profile.decode_chunk.push(t0.elapsed());
        let t0 = Instant::now();
        acc ^= partial;
        for (off, p) in range.clone().enumerate() {
            out[maps.order()[p]] = local[off];
        }
        decode_serial += t0.elapsed();
    }
    let t0 = Instant::now();
    if let Some(expected) = header.expected_checksum {
        if acc != expected {
            return Err(CompressError::ChecksumMismatch);
        }
    }
    profile.decode_serial = decode_serial + t0.elapsed();
    Ok(profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use masc_sparse::{Pattern, TripletMatrix};

    fn pattern(n: usize, band: usize) -> Pattern {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            for j in i.saturating_sub(band)..(i + band + 1).min(n) {
                t.add(i, j, 1.0);
            }
        }
        t.to_csr().pattern().as_ref().clone()
    }

    fn values(p: &Pattern, time: f64) -> Vec<f64> {
        (0..p.nnz())
            .map(|k| {
                let sign = if k % 5 == 0 { 3.0 } else { -1.0 };
                sign * (1.0 + 1e-4 * (time + k as f64 * 0.01).sin())
            })
            .collect()
    }

    fn check(config: &MascConfig, n: usize) {
        let p = pattern(n, 2);
        let maps = StampMaps::new(&p);
        let cur = values(&p, 1.0);
        let reference = values(&p, 1.01);
        let (bytes, stats) = compress_matrix_parallel(&cur, &reference, &maps, config);
        assert!(stats.output_bytes > 0);
        let out = decompress_matrix_parallel(&bytes, &reference, &maps, config).unwrap();
        for (a, b) in cur.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn single_chunk_round_trip() {
        let config = MascConfig {
            chunk_size: 1 << 20,
            threads: 1,
            ..MascConfig::default()
        };
        check(&config, 40);
    }

    #[test]
    fn many_small_chunks_round_trip() {
        let config = MascConfig {
            chunk_size: 17, // deliberately awkward
            threads: 1,
            markov_min_warmup: 4,
            ..MascConfig::default()
        };
        check(&config, 60);
    }

    #[test]
    fn multithreaded_round_trip() {
        let config = MascConfig {
            chunk_size: 64,
            threads: 4,
            markov_min_warmup: 8,
            ..MascConfig::default()
        };
        check(&config, 100);
    }

    #[test]
    fn checksum_partials_fold_to_the_chain_checksum() {
        let p = pattern(23, 2);
        let maps = StampMaps::new(&p);
        let nnz = p.nnz();
        let vals = values(&p, 0.7);
        // Decoded order: chunk elements land at maps.order()[p]; rebuild
        // out and fold partials over awkward chunk boundaries.
        let mut out = vec![0.0f64; nnz];
        let mut acc = 0u64;
        for range in chunk_ranges(nnz, 7) {
            let local: Vec<f64> = range.clone().map(|pos| vals[maps.order()[pos]]).collect();
            acc ^= checksum_partial(&local, range.clone(), &maps, nnz);
            for (off, pos) in range.enumerate() {
                out[maps.order()[pos]] = local[off];
            }
        }
        assert_eq!(out, vals);
        assert_eq!(acc, crate::matrix::checksum(&vals));
    }

    #[test]
    fn corrupted_payload_fails_the_parallel_checksum() {
        let p = pattern(40, 2);
        let maps = StampMaps::new(&p);
        let cur = values(&p, 1.0);
        let reference = values(&p, 1.01);
        let config = MascConfig {
            chunk_size: 16,
            threads: 4,
            markov_min_warmup: 4,
            ..MascConfig::default()
        };
        let (bytes, _) = compress_matrix_parallel(&cur, &reference, &maps, &config);
        // Flip one payload bit near the end (past the chunk table);
        // either the decoder rejects the stream structurally or the
        // XOR-folded checksum catches the damage — never a silent pass.
        let mut bad = bytes.clone();
        let idx = bad.len() - 3;
        bad[idx] ^= 0x10;
        if let Ok(out) = decompress_matrix_parallel(&bad, &reference, &maps, &config) {
            // The flip may land in dead padding; then the values must be
            // untouched. Different values with no error = silent corruption.
            assert!(
                cur.iter()
                    .zip(&out)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "corrupted stream decoded to different values without a checksum error"
            );
        }
    }

    #[test]
    fn degenerate_chunk_ranges() {
        assert!(chunk_ranges(0, 8).is_empty());
        assert!(chunk_ranges(0, 0).is_empty());
        // chunk_size 0 is clamped to 1 on both sides of the codec.
        assert_eq!(chunk_ranges(5, 0), chunk_ranges(5, 1));
        assert_eq!(chunk_ranges(5, 0).len(), 5);
    }

    #[test]
    fn zero_nnz_round_trip() {
        let p = TripletMatrix::new(0, 0).to_csr().pattern().as_ref().clone();
        let maps = StampMaps::new(&p);
        for threads in [1usize, 4] {
            let config = MascConfig {
                chunk_size: 8,
                threads,
                ..MascConfig::default()
            };
            let (bytes, _) = compress_matrix_parallel(&[], &[], &maps, &config);
            let out = decompress_matrix_parallel(&bytes, &[], &maps, &config).unwrap();
            assert!(out.is_empty());
        }
    }

    #[test]
    fn chunk_size_zero_round_trip() {
        let config = MascConfig {
            chunk_size: 0,
            threads: 3,
            markov_min_warmup: 2,
            ..MascConfig::default()
        };
        check(&config, 20);
    }

    #[test]
    fn more_threads_than_chunks_round_trip() {
        // (chunk, threads) shapes: single chunk with many threads; more
        // threads than chunks; and the rounded-up `per` case (4 chunks
        // over 3 threads) where a naive `0..threads` worker loop spawns
        // an idle worker with an empty chunk range.
        for (chunk, threads) in [(100_000, 8), (100, 8), (75, 3)] {
            let config = MascConfig {
                chunk_size: chunk,
                threads,
                markov_min_warmup: 4,
                ..MascConfig::default()
            };
            check(&config, 60);
        }
    }

    #[test]
    fn thread_count_does_not_change_the_bytes() {
        let p = pattern(80, 2);
        let maps = StampMaps::new(&p);
        let cur = values(&p, 2.0);
        let reference = values(&p, 2.02);
        let serial = MascConfig {
            chunk_size: 50,
            threads: 1,
            ..MascConfig::default()
        };
        let parallel = MascConfig {
            threads: 3,
            ..serial.clone()
        };
        let (b1, _) = compress_matrix_parallel(&cur, &reference, &maps, &serial);
        let (b2, _) = compress_matrix_parallel(&cur, &reference, &maps, &parallel);
        assert_eq!(b1, b2);
        // Cross-decode: serial-compressed stream with parallel decoder.
        let out = decompress_matrix_parallel(&b1, &reference, &maps, &parallel).unwrap();
        for (a, b) in cur.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn chunked_and_serial_formats_are_distinguished() {
        let p = pattern(30, 1);
        let maps = StampMaps::new(&p);
        let cur = values(&p, 0.0);
        let reference = values(&p, 0.01);
        let config = MascConfig {
            chunk_size: 16,
            ..MascConfig::default()
        };
        let (chunked, _) = compress_matrix_parallel(&cur, &reference, &maps, &config);
        assert!(crate::matrix::decompress_matrix(&chunked, &reference, &maps).is_err());
        let (serial, _) = crate::matrix::compress_matrix(&cur, &reference, &maps, &config);
        assert!(decompress_matrix_parallel(&serial, &reference, &maps, &config).is_err());
    }

    #[test]
    fn truncated_chunked_stream_is_error() {
        let p = pattern(30, 1);
        let maps = StampMaps::new(&p);
        let cur = values(&p, 0.0);
        let reference = values(&p, 0.01);
        let config = MascConfig {
            chunk_size: 16,
            ..MascConfig::default()
        };
        let (bytes, _) = compress_matrix_parallel(&cur, &reference, &maps, &config);
        for cut in [0, 3, bytes.len() - 1] {
            assert!(decompress_matrix_parallel(&bytes[..cut], &reference, &maps, &config).is_err());
        }
    }

    #[test]
    fn hostile_values_round_trip_chunked() {
        let p = pattern(16, 1);
        let maps = StampMaps::new(&p);
        let specials = [f64::NAN, f64::INFINITY, -0.0, 1e-308, -1e308, 0.0];
        let cur: Vec<f64> = (0..p.nnz()).map(|i| specials[i % specials.len()]).collect();
        let reference: Vec<f64> = (0..p.nnz())
            .map(|i| specials[(i + 2) % specials.len()])
            .collect();
        let config = MascConfig {
            chunk_size: 7,
            threads: 2,
            markov_min_warmup: 2,
            ..MascConfig::default()
        };
        let (bytes, _) = compress_matrix_parallel(&cur, &reference, &maps, &config);
        let out = decompress_matrix_parallel(&bytes, &reference, &maps, &config).unwrap();
        for (a, b) in cur.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn seeded_stream_ignores_caller_reference() {
        let p = pattern(24, 2);
        let maps = StampMaps::new(&p);
        let cur = values(&p, 5.0);
        let config = MascConfig {
            chunk_size: 32,
            markov_min_warmup: 4,
            ..MascConfig::default()
        };
        let (bytes, _) = compress_matrix_seeded(&cur, &maps, &config);
        // Decoding against garbage references must still reproduce `cur`:
        // the stream is self-referential.
        for reference in [vec![0.0; p.nnz()], values(&p, 99.0)] {
            let out = decompress_matrix_parallel(&bytes, &reference, &maps, &config).unwrap();
            for (a, b) in cur.iter().zip(&out) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn cross_instance_round_trip_and_thread_invariance() {
        let p = pattern(60, 2);
        let maps = StampMaps::new(&p);
        // Adjacent sweep instances: same step, tiny parameter delta.
        let prev_instance = values(&p, 3.0);
        let cur: Vec<f64> = prev_instance
            .iter()
            .enumerate()
            .map(|(k, v)| if k % 11 == 0 { v * 1.001 } else { *v })
            .collect();
        let serial = MascConfig {
            chunk_size: 32,
            threads: 1,
            markov_min_warmup: 4,
            ..MascConfig::default()
        };
        let parallel = MascConfig {
            threads: 4,
            ..serial.clone()
        };
        let (b1, stats) = compress_matrix_cross(&cur, &prev_instance, &maps, &serial);
        let (b2, _) = compress_matrix_cross(&cur, &prev_instance, &maps, &parallel);
        assert_eq!(b1, b2, "cross stream must be thread-count invariant");
        assert!(stats.output_bytes > 0);
        let flags = b1[0];
        assert!(flags & FLAG_CROSS_INSTANCE != 0 && flags & FLAG_SEEDED == 0);
        let header = parse_header(&b1, p.nnz()).unwrap();
        assert!(!header.seeded);
        for config in [&serial, &parallel] {
            let out = decompress_matrix_parallel(&b1, &prev_instance, &maps, config).unwrap();
            for (a, b) in cur.iter().zip(&out) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn cross_block_with_wrong_reference_fails_checksum() {
        let p = pattern(40, 2);
        let maps = StampMaps::new(&p);
        let prev_instance = values(&p, 3.0);
        let cur = values(&p, 3.001);
        let config = MascConfig {
            chunk_size: 16,
            threads: 2,
            markov_min_warmup: 4,
            ..MascConfig::default()
        };
        let (bytes, _) = compress_matrix_cross(&cur, &prev_instance, &maps, &config);
        // Handing the decoder a *temporal* reference (what a reader that
        // ignored the flag would do) must be caught, not silently wrong.
        let wrong = values(&p, 7.0);
        assert_eq!(
            decompress_matrix_parallel(&bytes, &wrong, &maps, &config),
            Err(CompressError::ChecksumMismatch)
        );
    }

    #[test]
    fn cross_plus_seeded_flags_rejected() {
        let p = pattern(20, 1);
        let maps = StampMaps::new(&p);
        let cur = values(&p, 1.0);
        let reference = values(&p, 1.001);
        let config = MascConfig {
            chunk_size: 16,
            ..MascConfig::default()
        };
        let (mut bytes, _) = compress_matrix_cross(&cur, &reference, &maps, &config);
        // A block cannot be both reference-free and cross-referenced.
        bytes[0] |= crate::matrix::FLAG_SEEDED;
        assert_eq!(
            decompress_matrix_parallel(&bytes, &reference, &maps, &config),
            Err(CompressError::Corrupt(
                "cross-instance flag combined with seeded flag"
            ))
        );
    }

    #[test]
    fn hostile_chunk_headers_error_not_panic() {
        let p = pattern(30, 1);
        let maps = StampMaps::new(&p);
        let cur = values(&p, 0.0);
        let reference = values(&p, 0.01);
        let config = MascConfig {
            chunk_size: 16,
            markov_min_warmup: 2,
            ..MascConfig::default()
        };
        let (bytes, _) = compress_matrix_parallel(&cur, &reference, &maps, &config);
        // The chunk table sits right after the common header; flipping any
        // single byte of the stream must never panic, only error or (for
        // payload bits) be caught by the checksum.
        for i in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0xFF;
            let _ = decompress_matrix_parallel(&mutated, &reference, &maps, &config);
        }
    }

    #[test]
    fn unknown_chunk_flag_bits_rejected() {
        let p = pattern(20, 1);
        let maps = StampMaps::new(&p);
        let cur = values(&p, 0.0);
        let reference = values(&p, 0.01);
        let config = MascConfig {
            chunk_size: 16,
            checksum: false,
            ..MascConfig::default()
        };
        let (bytes, _) = compress_matrix_parallel(&cur, &reference, &maps, &config);
        let header = parse_header(&bytes, p.nnz()).unwrap();
        // Skip [varint chunk_size][varint n_chunks] to the first per-chunk
        // flag byte and set a bit there.
        let mut pos = header.payload_offset;
        let (_, used) = varint::read_u64(&bytes[pos..]).unwrap();
        pos += used;
        let (_, used) = varint::read_u64(&bytes[pos..]).unwrap();
        pos += used;
        let mut mutated = bytes.clone();
        mutated[pos] = 0x01;
        assert_eq!(
            decompress_matrix_parallel(&mutated, &reference, &maps, &config),
            Err(CompressError::Corrupt("unknown chunk flag bits"))
        );
    }

    #[test]
    fn profile_covers_every_chunk() {
        let p = pattern(60, 2);
        let maps = StampMaps::new(&p);
        let cur = values(&p, 1.0);
        let reference = values(&p, 1.01);
        let config = MascConfig {
            chunk_size: 50,
            markov_min_warmup: 4,
            ..MascConfig::default()
        };
        let n_chunks = p.nnz().div_ceil(50);
        let profile = profile_matrix(&cur, &reference, &maps, &config).unwrap();
        assert_eq!(profile.encode_chunk.len(), n_chunks);
        assert_eq!(profile.decode_chunk.len(), n_chunks);
        assert!(profile.compressed_bytes > 0);
    }
}
