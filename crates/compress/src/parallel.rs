//! Parallel (chunked) matrix compression.
//!
//! The paper's compressor has an OpenMP-parallel version whose throughput
//! (~2.3 GB/s) comfortably exceeds SSD bandwidth — the key to Fig. 7's 6×
//! win over the disk baseline. This module reproduces the design: the
//! non-zero stream is split into fixed chunks, each encoded independently
//! (own residual window, own Markov warm-up, in-matrix predictions confined
//! to the chunk), so both compression and decompression parallelize.
//!
//! Chunked stream layout:
//!
//! ```text
//! [common header with FLAG_CHUNKED]
//! [varint chunk_size] [varint n_chunks] [varint byte_len × n_chunks]
//! [chunk payloads, byte-aligned]
//! ```

use crate::config::MascConfig;
use crate::matrix::{
    checksum, decode_range, encode_range, parse_header, write_header, HeaderParams, FLAG_CHUNKED,
};
use crate::predictor::StampMaps;
use crate::stats::CompressStats;
use crate::CompressError;
use masc_bitio::{varint, BitReader, BitWriter};

/// Splits `0..nnz` into `chunk_size` ranges.
fn chunk_ranges(nnz: usize, chunk_size: usize) -> Vec<core::ops::Range<usize>> {
    let chunk = chunk_size.max(1);
    (0..nnz.div_ceil(chunk))
        .map(|i| i * chunk..((i + 1) * chunk).min(nnz))
        .collect()
}

/// Compresses a matrix with chunk-level parallelism.
///
/// Produces a *chunked* stream (decodable only by
/// [`decompress_matrix_parallel`]); the output is byte-identical for any
/// thread count, so compression results are reproducible.
///
/// # Panics
///
/// Panics if `values.len()` or `reference.len()` differ from the pattern
/// nnz.
pub fn compress_matrix_parallel(
    values: &[f64],
    reference: &[f64],
    maps: &StampMaps,
    config: &MascConfig,
) -> (Vec<u8>, CompressStats) {
    let nnz = maps.order().len();
    assert_eq!(values.len(), nnz, "value count != pattern nnz");
    assert_eq!(reference.len(), nnz, "reference count != pattern nnz");
    let ranges = chunk_ranges(nnz, config.chunk_size);
    let params = HeaderParams::from_config(config);
    let threads = config.threads.max(1).min(ranges.len().max(1));

    // Encode chunks (possibly) in parallel; order restored by index.
    let mut encoded: Vec<(Vec<u8>, CompressStats)> = Vec::with_capacity(ranges.len());
    if threads <= 1 || ranges.len() <= 1 {
        for range in &ranges {
            encoded.push(encode_chunk(
                values,
                reference,
                maps,
                &params,
                range.clone(),
            ));
        }
    } else {
        let mut slots: Vec<Option<(Vec<u8>, CompressStats)>> = vec![None; ranges.len()];
        let per = ranges.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (tid, slot_chunk) in slots.chunks_mut(per).enumerate() {
                let ranges = &ranges;
                let params = &params;
                let base = tid * per;
                scope.spawn(move || {
                    for (off, slot) in slot_chunk.iter_mut().enumerate() {
                        let range = ranges[base + off].clone();
                        *slot = Some(encode_chunk(values, reference, maps, params, range));
                    }
                });
            }
        });
        // Every slot is filled before the scope exits (a panicking worker
        // aborts the scope), so flattening drops nothing.
        encoded.extend(slots.into_iter().flatten());
    }

    let mut stats = CompressStats::new();
    stats.input_bytes = (nnz * 8) as u64;
    let mut out = write_header(values, config, FLAG_CHUNKED);
    varint::write_u64(&mut out, config.chunk_size as u64);
    varint::write_u64(&mut out, encoded.len() as u64);
    for (bytes, _) in &encoded {
        varint::write_u64(&mut out, bytes.len() as u64);
    }
    for (bytes, chunk_stats) in &encoded {
        out.extend_from_slice(bytes);
        stats.merge(chunk_stats);
    }
    stats.input_bytes = (nnz * 8) as u64; // merge() double-adds; reset
    stats.output_bytes = out.len() as u64;
    (out, stats)
}

fn encode_chunk(
    values: &[f64],
    reference: &[f64],
    maps: &StampMaps,
    params: &HeaderParams,
    range: core::ops::Range<usize>,
) -> (Vec<u8>, CompressStats) {
    let mut stats = CompressStats::new();
    let chunk_start = range.start;
    let mut w = BitWriter::with_capacity(range.len() / 2 + 16);
    encode_range(
        &mut w,
        values,
        reference,
        maps,
        params,
        range,
        chunk_start,
        &mut stats,
    );
    (w.into_bytes(), stats)
}

/// Decompresses a stream produced by [`compress_matrix_parallel`].
///
/// # Errors
///
/// Returns [`CompressError`] on truncation, header inconsistency, or
/// checksum mismatch.
pub fn decompress_matrix_parallel(
    bytes: &[u8],
    reference: &[f64],
    maps: &StampMaps,
    config: &MascConfig,
) -> Result<Vec<f64>, CompressError> {
    let nnz = maps.order().len();
    if reference.len() != nnz {
        return Err(CompressError::Corrupt("reference length != pattern nnz"));
    }
    let header = parse_header(bytes, nnz)?;
    if !header.chunked {
        return Err(CompressError::Corrupt(
            "serial stream passed to the chunked decoder",
        ));
    }
    let mut pos = header.payload_offset;
    let (chunk_size, used) = varint::read_u64(bytes.get(pos..).ok_or(CompressError::Truncated)?)?;
    pos += used;
    let (n_chunks, used) = varint::read_u64(bytes.get(pos..).ok_or(CompressError::Truncated)?)?;
    pos += used;
    let ranges = chunk_ranges(nnz, chunk_size as usize);
    if ranges.len() != n_chunks as usize {
        return Err(CompressError::Corrupt("chunk count mismatch"));
    }
    let mut lens = Vec::with_capacity(ranges.len());
    for _ in 0..n_chunks {
        let (len, used) = varint::read_u64(bytes.get(pos..).ok_or(CompressError::Truncated)?)?;
        pos += used;
        lens.push(len as usize);
    }
    let mut offsets = Vec::with_capacity(ranges.len());
    for &len in &lens {
        offsets.push(pos);
        pos += len;
    }
    if pos > bytes.len() {
        return Err(CompressError::Truncated);
    }

    let threads = config.threads.max(1).min(ranges.len().max(1));
    let mut out = vec![0.0f64; nnz];
    if threads <= 1 || ranges.len() <= 1 {
        for (i, range) in ranges.iter().enumerate() {
            let payload = &bytes[offsets[i]..offsets[i] + lens[i]];
            decode_chunk_into(
                &mut out,
                payload,
                reference,
                maps,
                &header.params,
                range.clone(),
            )?;
        }
    } else {
        // Workers decode into compact per-chunk buffers; scatter after.
        let per = ranges.len().div_ceil(threads);
        // `per` is rounded up, so spawning `threads` workers outright can
        // leave trailing workers with an empty chunk range — each still
        // allocating an nnz-sized scratch buffer for nothing (e.g. 4
        // chunks over 3 threads: per = 2, worker 2 idles).
        let workers = ranges.len().div_ceil(per);
        type ChunkValues = Vec<(usize, Vec<f64>)>;
        let results: Vec<Result<ChunkValues, CompressError>> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for tid in 0..workers {
                let ranges = &ranges;
                let lens = &lens;
                let offsets = &offsets;
                let params = &header.params;
                handles.push(scope.spawn(move || {
                    let mut local = Vec::new();
                    let mut scratch = vec![0.0f64; nnz];
                    for i in (tid * per)..((tid + 1) * per).min(ranges.len()) {
                        let payload = &bytes[offsets[i]..offsets[i] + lens[i]];
                        decode_chunk_into(
                            &mut scratch,
                            payload,
                            reference,
                            maps,
                            params,
                            ranges[i].clone(),
                        )?;
                        let compact: Vec<f64> = ranges[i]
                            .clone()
                            .map(|p| scratch[maps.order()[p]])
                            .collect();
                        local.push((i, compact));
                    }
                    Ok(local)
                }));
            }
            handles
                .into_iter()
                .map(|h| {
                    // Joining consumes a worker panic; surface it as a
                    // structured decode error instead of unwinding.
                    h.join()
                        .unwrap_or(Err(CompressError::Corrupt("decode worker panicked")))
                })
                .collect()
        });
        for result in results {
            for (i, compact) in result? {
                for (p, v) in ranges[i].clone().zip(compact) {
                    out[maps.order()[p]] = v;
                }
            }
        }
    }

    if let Some(expected) = header.expected_checksum {
        if checksum(&out) != expected {
            return Err(CompressError::ChecksumMismatch);
        }
    }
    Ok(out)
}

fn decode_chunk_into(
    out: &mut [f64],
    payload: &[u8],
    reference: &[f64],
    maps: &StampMaps,
    params: &HeaderParams,
    range: core::ops::Range<usize>,
) -> Result<(), CompressError> {
    let chunk_start = range.start;
    let mut r = BitReader::new(payload);
    decode_range(&mut r, out, reference, maps, params, range, chunk_start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use masc_sparse::{Pattern, TripletMatrix};

    fn pattern(n: usize, band: usize) -> Pattern {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            for j in i.saturating_sub(band)..(i + band + 1).min(n) {
                t.add(i, j, 1.0);
            }
        }
        t.to_csr().pattern().as_ref().clone()
    }

    fn values(p: &Pattern, time: f64) -> Vec<f64> {
        (0..p.nnz())
            .map(|k| {
                let sign = if k % 5 == 0 { 3.0 } else { -1.0 };
                sign * (1.0 + 1e-4 * (time + k as f64 * 0.01).sin())
            })
            .collect()
    }

    fn check(config: &MascConfig, n: usize) {
        let p = pattern(n, 2);
        let maps = StampMaps::new(&p);
        let cur = values(&p, 1.0);
        let reference = values(&p, 1.01);
        let (bytes, stats) = compress_matrix_parallel(&cur, &reference, &maps, config);
        assert!(stats.output_bytes > 0);
        let out = decompress_matrix_parallel(&bytes, &reference, &maps, config).unwrap();
        for (a, b) in cur.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn single_chunk_round_trip() {
        let config = MascConfig {
            chunk_size: 1 << 20,
            threads: 1,
            ..MascConfig::default()
        };
        check(&config, 40);
    }

    #[test]
    fn many_small_chunks_round_trip() {
        let config = MascConfig {
            chunk_size: 17, // deliberately awkward
            threads: 1,
            markov_min_warmup: 4,
            ..MascConfig::default()
        };
        check(&config, 60);
    }

    #[test]
    fn multithreaded_round_trip() {
        let config = MascConfig {
            chunk_size: 64,
            threads: 4,
            markov_min_warmup: 8,
            ..MascConfig::default()
        };
        check(&config, 100);
    }

    #[test]
    fn degenerate_chunk_ranges() {
        assert!(chunk_ranges(0, 8).is_empty());
        assert!(chunk_ranges(0, 0).is_empty());
        // chunk_size 0 is clamped to 1 on both sides of the codec.
        assert_eq!(chunk_ranges(5, 0), chunk_ranges(5, 1));
        assert_eq!(chunk_ranges(5, 0).len(), 5);
    }

    #[test]
    fn zero_nnz_round_trip() {
        let p = TripletMatrix::new(0, 0).to_csr().pattern().as_ref().clone();
        let maps = StampMaps::new(&p);
        for threads in [1usize, 4] {
            let config = MascConfig {
                chunk_size: 8,
                threads,
                ..MascConfig::default()
            };
            let (bytes, _) = compress_matrix_parallel(&[], &[], &maps, &config);
            let out = decompress_matrix_parallel(&bytes, &[], &maps, &config).unwrap();
            assert!(out.is_empty());
        }
    }

    #[test]
    fn chunk_size_zero_round_trip() {
        let config = MascConfig {
            chunk_size: 0,
            threads: 3,
            markov_min_warmup: 2,
            ..MascConfig::default()
        };
        check(&config, 20);
    }

    #[test]
    fn more_threads_than_chunks_round_trip() {
        // (chunk, threads) shapes: single chunk with many threads; more
        // threads than chunks; and the rounded-up `per` case (4 chunks
        // over 3 threads) where a naive `0..threads` worker loop spawns
        // an idle worker with an empty chunk range.
        for (chunk, threads) in [(100_000, 8), (100, 8), (75, 3)] {
            let config = MascConfig {
                chunk_size: chunk,
                threads,
                markov_min_warmup: 4,
                ..MascConfig::default()
            };
            check(&config, 60);
        }
    }

    #[test]
    fn thread_count_does_not_change_the_bytes() {
        let p = pattern(80, 2);
        let maps = StampMaps::new(&p);
        let cur = values(&p, 2.0);
        let reference = values(&p, 2.02);
        let serial = MascConfig {
            chunk_size: 50,
            threads: 1,
            ..MascConfig::default()
        };
        let parallel = MascConfig {
            threads: 3,
            ..serial.clone()
        };
        let (b1, _) = compress_matrix_parallel(&cur, &reference, &maps, &serial);
        let (b2, _) = compress_matrix_parallel(&cur, &reference, &maps, &parallel);
        assert_eq!(b1, b2);
        // Cross-decode: serial-compressed stream with parallel decoder.
        let out = decompress_matrix_parallel(&b1, &reference, &maps, &parallel).unwrap();
        for (a, b) in cur.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn chunked_and_serial_formats_are_distinguished() {
        let p = pattern(30, 1);
        let maps = StampMaps::new(&p);
        let cur = values(&p, 0.0);
        let reference = values(&p, 0.01);
        let config = MascConfig {
            chunk_size: 16,
            ..MascConfig::default()
        };
        let (chunked, _) = compress_matrix_parallel(&cur, &reference, &maps, &config);
        assert!(crate::matrix::decompress_matrix(&chunked, &reference, &maps).is_err());
        let (serial, _) = crate::matrix::compress_matrix(&cur, &reference, &maps, &config);
        assert!(decompress_matrix_parallel(&serial, &reference, &maps, &config).is_err());
    }

    #[test]
    fn truncated_chunked_stream_is_error() {
        let p = pattern(30, 1);
        let maps = StampMaps::new(&p);
        let cur = values(&p, 0.0);
        let reference = values(&p, 0.01);
        let config = MascConfig {
            chunk_size: 16,
            ..MascConfig::default()
        };
        let (bytes, _) = compress_matrix_parallel(&cur, &reference, &maps, &config);
        for cut in [0, 3, bytes.len() - 1] {
            assert!(decompress_matrix_parallel(&bytes[..cut], &reference, &maps, &config).is_err());
        }
    }

    #[test]
    fn hostile_values_round_trip_chunked() {
        let p = pattern(16, 1);
        let maps = StampMaps::new(&p);
        let specials = [f64::NAN, f64::INFINITY, -0.0, 1e-308, -1e308, 0.0];
        let cur: Vec<f64> = (0..p.nnz()).map(|i| specials[i % specials.len()]).collect();
        let reference: Vec<f64> = (0..p.nnz())
            .map(|i| specials[(i + 2) % specials.len()])
            .collect();
        let config = MascConfig {
            chunk_size: 7,
            threads: 2,
            markov_min_warmup: 2,
            ..MascConfig::default()
        };
        let (bytes, _) = compress_matrix_parallel(&cur, &reference, &maps, &config);
        let out = decompress_matrix_parallel(&bytes, &reference, &maps, &config).unwrap();
        for (a, b) in cur.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
