//! Switchable injected defects for validating the conformance harness.
//!
//! The `masc-conform` mutation check activates one of these and asserts
//! that the differential oracles catch it within a bounded fuzz budget.
//! The module only exists with the `mutation-hooks` feature, and even then
//! every hook is inert until [`set_defect`] selects one, so feature
//! unification across a workspace build cannot change behaviour.
//!
//! Each defect breaks exactly one side of an encode/decode pair — a
//! perversion applied symmetrically to both sides would still round-trip
//! and teach us nothing about the oracles.

use std::sync::atomic::{AtomicU8, Ordering};

/// Selectable injected defects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Defect {
    /// No defect (the default state).
    None = 0,
    /// The encoder writes a rotated stamp-predictor selection code on the
    /// wire while coding the residual against the true best-fit candidate,
    /// so the decoder reconstructs from the wrong predictor.
    WrongStampCandidate = 1,
    /// [`CompressedTensor::to_bytes`](crate::CompressedTensor::to_bytes)
    /// frames every block with a length one byte too long.
    VarintLenOffByOne = 2,
}

static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// Activates `defect` process-wide. Tests must serialize around this.
pub fn set_defect(defect: Defect) {
    ACTIVE.store(defect as u8, Ordering::SeqCst);
}

/// Whether `defect` is currently active.
pub fn active(defect: Defect) -> bool {
    ACTIVE.load(Ordering::SeqCst) == defect as u8
}

/// The selection code actually written to the wire for `code`. Identity
/// unless [`Defect::WrongStampCandidate`] is active and there is more than
/// one candidate to confuse.
pub fn perturb_selection(code: u32, candidate_count: usize) -> u32 {
    if candidate_count > 1 && active(Defect::WrongStampCandidate) {
        (code + 1) % candidate_count as u32
    } else {
        code
    }
}

/// The framed length written for a `len`-byte block. Identity unless
/// [`Defect::VarintLenOffByOne`] is active.
pub fn perturb_block_len(len: usize) -> u64 {
    if active(Defect::VarintLenOffByOne) {
        len as u64 + 1
    } else {
        len as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hooks_are_identity_by_default() {
        set_defect(Defect::None);
        assert_eq!(perturb_selection(2, 4), 2);
        assert_eq!(perturb_block_len(17), 17);
        assert!(active(Defect::None));
        assert!(!active(Defect::WrongStampCandidate));
    }
}
