//! The spatiotemporal prediction model (paper §4.2, eq. 6).
//!
//! For every non-zero, a small candidate set is evaluated and the best fit
//! is selected (then identified by 1–2 selection bits, or predicted by the
//! Markov model). The temporal candidate comes from the temporally
//! adjacent reference matrix `M_{t+1}`; the *stamp-spatial* candidates of
//! eq. 6 come from the **current matrix's already-processed values** —
//! which is what makes them powerful: MNA reciprocity makes the transpose
//! element of the *same* matrix bit-exact for R/C/reciprocal stamps, while
//! the temporal value is merely close. Encoding order is `D`, then `L`,
//! then `U`, so every spatial partner is decoded before it is needed:
//!
//! | region (order) | code 0 | code 1 | code 2 | code 3 |
//! |----------------|--------|--------|--------|--------|
//! | `D` (1st, i=j) | temporal `M̂[i,i]` | previous diagonal `V(i',i')` | — | — |
//! | `L` (2nd, i>j) | temporal `M̂[i,j]` | `−V(i,i)` | `−V(j,j)` | last value (same row) |
//! | `U` (3rd, i<j) | temporal `M̂[i,j]` | transpose `V(j,i)` | `−V(i,i)` | `−V(j,j)` |
//!
//! (`M̂` = reference matrix, `V` = current matrix.) Candidates whose
//! structural partner is absent — or, in chunked mode, lies outside the
//! chunk — fall back to the temporal value, keeping every code decodable.
//! The diagonal negation implements the paper's sign-bit inversion: MNA
//! diagonals carry the opposite sign from off-diagonals
//! (`S(i,i) = −S(i,j)` for linear stamps), so `−V(i,i)` is the natural
//! spatial predictor for off-diagonal values.

use crate::stats::ModelClass;
use masc_sparse::Pattern;

/// Sentinel for "no structural partner".
const NONE: usize = usize::MAX;

/// Triangular region of a non-zero (paper's U/L/D partition).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Strictly upper triangle.
    Upper,
    /// Strictly lower triangle.
    Lower,
    /// Main diagonal.
    Diag,
}

impl Region {
    /// Number of selection bits for best-fit encoding in this region
    /// (paper Algorithm 1, lines 9–13).
    pub fn selection_bits(self) -> u32 {
        match self {
            Region::Diag => 1,
            _ => 2,
        }
    }

    /// Number of candidate predictors in this region.
    pub fn candidate_count(self) -> usize {
        match self {
            Region::Diag => 2,
            _ => 4,
        }
    }

    /// Dense index 0‥3 for table lookups.
    pub fn index(self) -> usize {
        match self {
            Region::Upper => 0,
            Region::Lower => 1,
            Region::Diag => 2,
        }
    }
}

/// Precomputed structural maps for one shared pattern — the paper's
/// "matrix partitioning step", done once per tensor instead of per matrix.
#[derive(Debug, Clone)]
pub struct StampMaps {
    /// Value indices in encode order: all `D`, then all `L`, then all `U`.
    order: Vec<usize>,
    /// Region boundaries in `order`: `[0, d_end, l_end, total]`.
    bounds: [usize; 4],
    /// Per value index: region.
    region: Vec<Region>,
    /// Per value index: transpose partner value index (or `NONE`).
    transpose: Vec<usize>,
    /// Per value index: diagonal of the row (or `NONE`).
    diag_row: Vec<usize>,
    /// Per value index: diagonal of the column (or `NONE`).
    diag_col: Vec<usize>,
    /// Per value index: the in-matrix predecessor — previous `L` non-zero
    /// in the same row for `L`, previous diagonal for `D` (or `NONE`).
    prev_same: Vec<usize>,
    /// Per value index: its position in `order` (inverse permutation);
    /// chunked codecs use it to confine in-matrix references to a chunk.
    order_pos: Vec<usize>,
}

impl StampMaps {
    /// Builds the maps for a pattern.
    pub fn new(pattern: &Pattern) -> Self {
        let nnz = pattern.nnz();
        let part = pattern.partition_uld();
        let mut order = Vec::with_capacity(nnz);
        order.extend_from_slice(&part.diag);
        let d_end = order.len();
        order.extend_from_slice(&part.lower);
        let l_end = order.len();
        order.extend_from_slice(&part.upper);

        let mut region = vec![Region::Upper; nnz];
        for &k in &part.lower {
            region[k] = Region::Lower;
        }
        for &k in &part.diag {
            region[k] = Region::Diag;
        }

        let mut transpose = vec![NONE; nnz];
        let mut diag_row = vec![NONE; nnz];
        let mut diag_col = vec![NONE; nnz];
        let mut prev_same = vec![NONE; nnz];

        let col_idx = pattern.col_idx();
        for k in 0..nnz {
            let row = pattern.row_of(k);
            let col = col_idx[k];
            transpose[k] = pattern.transpose_of(k).unwrap_or(NONE);
            diag_row[k] = pattern.diag_of(row).unwrap_or(NONE);
            diag_col[k] = pattern.diag_of(col).unwrap_or(NONE);
            let _ = (row, col);
        }
        // Last-value chains: previous L non-zero in the same row.
        // part.lower is row-major, so a linear scan suffices.
        let mut prev_in_row: Option<(usize, usize)> = None; // (row, value idx)
        for &k in &part.lower {
            let row = pattern.row_of(k);
            if let Some((prow, pk)) = prev_in_row {
                if prow == row {
                    prev_same[k] = pk;
                }
            }
            prev_in_row = Some((row, k));
        }
        // Previous-diagonal chain.
        for w in part.diag.windows(2) {
            prev_same[w[1]] = w[0];
        }

        let mut order_pos = vec![0usize; order.len()];
        for (pos, &k) in order.iter().enumerate() {
            order_pos[k] = pos;
        }

        Self {
            order,
            bounds: [0, d_end, l_end, nnz],
            region,
            transpose,
            diag_row,
            diag_col,
            prev_same,
            order_pos,
        }
    }

    /// Value indices in encode order (D, L, U).
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Region of value index `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not a value index of the pattern.
    pub fn region_of(&self, k: usize) -> Region {
        debug_assert!(k < self.region.len(), "k must be a value index");
        self.region[k]
    }

    /// `[d_start, d_end, l_end, total]` boundaries within [`order`].
    ///
    /// [`order`]: StampMaps::order
    pub fn bounds(&self) -> [usize; 4] {
        self.bounds
    }

    /// Position of value index `k` in the encode [`order`](Self::order).
    ///
    /// # Panics
    ///
    /// Panics if `k` is not a value index of the pattern.
    pub fn order_pos_of(&self, k: usize) -> usize {
        debug_assert!(k < self.order_pos.len(), "k must be a value index");
        self.order_pos[k]
    }

    /// The candidate predictions for value index `k`.
    ///
    /// `reference` is `M_{t+1}`'s values; `current` is the partially
    /// decoded/encoded `M_t` (only already-processed positions are read).
    /// `sign_invert` controls the diagonal negation (an ablation knob; the
    /// paper's eq. 6 uses the negated form). In-matrix candidates
    /// (last-value, previous-diagonal) are only used when their source lies
    /// at order position `>= chunk_start`, so independently-decoded chunks
    /// never reference values outside themselves; pass `0` for the serial
    /// whole-matrix codec.
    #[inline]
    pub fn candidates(
        &self,
        k: usize,
        reference: &[f64],
        current: &[f64],
        sign_invert: bool,
        chunk_start: usize,
    ) -> [f64; 4] {
        debug_assert!(k < self.region.len(), "k must be a value index");
        let temporal = reference[k];
        let s = if sign_invert { -1.0 } else { 1.0 };
        // All spatial candidates read the current matrix; a partner is
        // usable only if it is structurally present AND already processed
        // within this chunk (D ≺ L ≺ U ordering guarantees the region-level
        // causality; `order_pos` enforces it per chunk).
        let my_pos = self.order_pos[k];
        let (transpose, diag_row, diag_col, prev_same) = (
            self.transpose[k],
            self.diag_row[k],
            self.diag_col[k],
            self.prev_same[k],
        );
        let fetch_cur = |idx: usize, scale: f64| -> f64 {
            if idx == NONE || self.order_pos[idx] < chunk_start || self.order_pos[idx] >= my_pos {
                temporal
            } else {
                scale * current[idx]
            }
        };
        match self.region[k] {
            Region::Upper => [
                temporal,
                fetch_cur(transpose, 1.0),
                fetch_cur(diag_row, s),
                fetch_cur(diag_col, s),
            ],
            Region::Lower => [
                temporal,
                fetch_cur(diag_row, s),
                fetch_cur(diag_col, s),
                fetch_cur(prev_same, 1.0),
            ],
            Region::Diag => [temporal, fetch_cur(prev_same, 1.0), temporal, temporal],
        }
    }

    /// [`candidates`](Self::candidates) over a *chunk-local* value buffer.
    ///
    /// `local[p - chunk_start]` holds the decoded value of order position
    /// `p`; only positions in `chunk_start..my_pos` are ever read, so a
    /// parallel decoder can give each chunk a buffer of exactly the chunk's
    /// length instead of an nnz-sized scratch matrix — the allocation that
    /// made the original chunked decoder effectively serial.
    #[inline]
    pub fn candidates_local(
        &self,
        k: usize,
        reference: &[f64],
        local: &[f64],
        sign_invert: bool,
        chunk_start: usize,
    ) -> [f64; 4] {
        debug_assert!(k < self.region.len(), "k must be a value index");
        let temporal = reference[k];
        let s = if sign_invert { -1.0 } else { 1.0 };
        let my_pos = self.order_pos[k];
        let (transpose, diag_row, diag_col, prev_same) = (
            self.transpose[k],
            self.diag_row[k],
            self.diag_col[k],
            self.prev_same[k],
        );
        let fetch_cur = |idx: usize, scale: f64| -> f64 {
            if idx == NONE {
                return temporal;
            }
            let pos = self.order_pos[idx];
            if pos < chunk_start || pos >= my_pos {
                temporal
            } else {
                scale * local[pos - chunk_start]
            }
        };
        match self.region[k] {
            Region::Upper => [
                temporal,
                fetch_cur(transpose, 1.0),
                fetch_cur(diag_row, s),
                fetch_cur(diag_col, s),
            ],
            Region::Lower => [
                temporal,
                fetch_cur(diag_row, s),
                fetch_cur(diag_col, s),
                fetch_cur(prev_same, 1.0),
            ],
            Region::Diag => [temporal, fetch_cur(prev_same, 1.0), temporal, temporal],
        }
    }

    /// Maps a (region, selection-code) pair to the aggregate model class
    /// reported in paper Fig. 6.
    pub fn model_class(region: Region, code: u32) -> ModelClass {
        match (region, code) {
            (_, 0) => ModelClass::Temporal,
            // The paper's last-value predictor applies to set L only; the
            // diagonal's previous-diagonal candidate realizes eq. 6's
            // V̂(j,j) = V̂(i,i) stamp relation.
            (Region::Lower, 3) => ModelClass::LastValue,
            _ => ModelClass::Stamp,
        }
    }
}

/// Picks the candidate closest to `truth` (the paper's `eval`/argmin).
///
/// Bit-exact matches short-circuit, with the *stamp* candidates (codes
/// 1‥3) checked before the temporal candidate: when a linear element makes
/// both predictors exact, the spatial model is credited — eq. 6 leaves the
/// tie unspecified, and the paper's Fig. 6 selection rates (stamp chosen
/// up to ~60 %) are only reachable under this preference. The choice does
/// not affect the compressed size (both residuals are zero and the
/// selection field has fixed width); it only shifts the selection
/// statistics and the Markov model's transition mass. Inexact ties resolve
/// to the lowest code; non-finite differences lose.
#[inline]
pub fn best_fit(candidates: &[f64; 4], count: usize, truth: f64) -> u32 {
    for i in (1..count).chain([0]) {
        if candidates[i].to_bits() == truth.to_bits() {
            return i as u32;
        }
    }
    let mut best = 0u32;
    let mut best_diff = f64::INFINITY;
    for (i, &cand) in candidates.iter().take(count).enumerate() {
        let diff = (cand - truth).abs();
        if diff < best_diff {
            best_diff = diff;
            best = i as u32;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use masc_sparse::TripletMatrix;

    /// 3×3 structurally-symmetric pattern with full tridiagonal structure.
    fn tridiag() -> (Pattern, StampMaps) {
        let mut t = TripletMatrix::new(3, 3);
        for i in 0..3usize {
            t.add(i, i, 1.0);
            if i > 0 {
                t.add(i, i - 1, 1.0);
                t.add(i - 1, i, 1.0);
            }
        }
        let p = t.to_csr().pattern().as_ref().clone();
        let m = StampMaps::new(&p);
        (p, m)
    }

    #[test]
    fn order_covers_all_values_d_l_u() {
        let (p, m) = tridiag();
        assert_eq!(m.order().len(), p.nnz());
        let [s, d_end, l_end, total] = m.bounds();
        assert_eq!(s, 0);
        assert_eq!(d_end, 3); // (0,0), (1,1), (2,2)
        assert_eq!(l_end, 5); // (1,0), (2,1)
        assert_eq!(total, 7);
        // Everything before d_end is Diag, then Lower, then Upper.
        for (i, &k) in m.order().iter().enumerate() {
            let expect = if i < d_end {
                Region::Diag
            } else if i < l_end {
                Region::Lower
            } else {
                Region::Upper
            };
            assert_eq!(m.region_of(k), expect);
        }
    }

    #[test]
    fn upper_candidates_follow_eq6() {
        let (p, m) = tridiag();
        let reference: Vec<f64> = (0..p.nnz()).map(|k| 10.0 + k as f64).collect();
        // Current matrix partially decoded (D and L regions done).
        let current: Vec<f64> = (0..p.nnz()).map(|k| 100.0 + k as f64).collect();
        // Upper element (0,1): spatial candidates come from the *current*
        // matrix (transpose + negated diagonals), temporal from reference.
        let k = p.find(0, 1).unwrap();
        let c = m.candidates(k, &reference, &current, true, 0);
        assert_eq!(c[0], reference[k]); // temporal
        assert_eq!(c[1], current[p.find(1, 0).unwrap()]); // transpose (current)
        assert_eq!(c[2], -current[p.find(0, 0).unwrap()]); // −diag row (current)
        assert_eq!(c[3], -current[p.find(1, 1).unwrap()]); // −diag col (current)
    }

    #[test]
    fn sign_invert_flag_controls_negation() {
        let (p, m) = tridiag();
        let reference: Vec<f64> = (0..p.nnz()).map(|k| 1.0 + k as f64).collect();
        let current: Vec<f64> = (0..p.nnz()).map(|k| 5.0 + k as f64).collect();
        let k = p.find(0, 1).unwrap();
        let with = m.candidates(k, &reference, &current, true, 0);
        let without = m.candidates(k, &reference, &current, false, 0);
        assert_eq!(with[2], -without[2]);
        assert_eq!(with[1], without[1]); // transpose unaffected
    }

    #[test]
    fn lower_uses_last_value_from_current_matrix() {
        let mut t = TripletMatrix::new(3, 3);
        // Row 2 has two lower non-zeros: (2,0) and (2,1).
        for i in 0..3usize {
            t.add(i, i, 1.0);
        }
        t.add(2, 0, 1.0);
        t.add(2, 1, 1.0);
        let p = t.to_csr().pattern().as_ref().clone();
        let m = StampMaps::new(&p);
        let k01 = p.find(2, 0).unwrap();
        let k11 = p.find(2, 1).unwrap();
        let reference = vec![0.5; p.nnz()];
        let mut current = vec![0.0; p.nnz()];
        current[k01] = 42.0;
        let c = m.candidates(k11, &reference, &current, true, 0);
        assert_eq!(c[3], 42.0); // last value = (2,0) of the current matrix
                                // First lower nz in the row has no predecessor → temporal fallback.
        let c0 = m.candidates(k01, &reference, &current, true, 0);
        assert_eq!(c0[3], reference[k01]);
    }

    #[test]
    fn diag_chain_uses_previous_diag() {
        let (p, m) = tridiag();
        let reference = vec![0.25; p.nnz()];
        let mut current = vec![0.0; p.nnz()];
        let d0 = p.find(0, 0).unwrap();
        let d1 = p.find(1, 1).unwrap();
        current[d0] = -3.0;
        let c = m.candidates(d1, &reference, &current, true, 0);
        assert_eq!(c[0], reference[d1]);
        assert_eq!(c[1], -3.0);
        // First diagonal falls back to temporal.
        let c0 = m.candidates(d0, &reference, &current, true, 0);
        assert_eq!(c0[1], reference[d0]);
    }

    #[test]
    fn best_fit_selects_argmin_with_exact_shortcut() {
        let cands = [1.0, 2.0, 3.0, 2.01];
        assert_eq!(best_fit(&cands, 4, 2.005), 1);
        assert_eq!(best_fit(&cands, 4, 3.0), 2); // exact match wins
        assert_eq!(best_fit(&cands, 2, 5.0), 1); // restricted count
        assert_eq!(best_fit(&cands, 4, f64::NAN), 0); // NaN: all diffs NaN → code 0
    }

    #[test]
    fn model_class_mapping() {
        assert_eq!(
            StampMaps::model_class(Region::Upper, 0),
            ModelClass::Temporal
        );
        assert_eq!(StampMaps::model_class(Region::Upper, 1), ModelClass::Stamp);
        assert_eq!(
            StampMaps::model_class(Region::Lower, 3),
            ModelClass::LastValue
        );
        assert_eq!(StampMaps::model_class(Region::Diag, 1), ModelClass::Stamp);
        assert_eq!(StampMaps::model_class(Region::Lower, 1), ModelClass::Stamp);
    }

    #[test]
    fn selection_bits_match_paper() {
        assert_eq!(Region::Diag.selection_bits(), 1);
        assert_eq!(Region::Upper.selection_bits(), 2);
        assert_eq!(Region::Lower.selection_bits(), 2);
    }

    #[test]
    fn asymmetric_pattern_falls_back_gracefully() {
        let mut t = TripletMatrix::new(2, 2);
        t.add(0, 1, 1.0); // no (1,0), no (0,0) diagonal
        t.add(1, 1, 1.0);
        let p = t.to_csr().pattern().as_ref().clone();
        let m = StampMaps::new(&p);
        let k = p.find(0, 1).unwrap();
        let reference = vec![7.0, 8.0];
        let mut current = vec![0.0, 0.0];
        current[p.find(1, 1).unwrap()] = 20.0; // diagonal decoded first
        let c = m.candidates(k, &reference, &current, true, 0);
        // Transpose missing, diag row missing → temporal fallbacks;
        // diag col (1,1) present and already decoded.
        assert_eq!(c[1], 7.0);
        assert_eq!(c[2], 7.0);
        assert_eq!(c[3], -20.0);
    }

    #[test]
    fn local_candidates_agree_with_global() {
        let (p, m) = tridiag();
        let reference: Vec<f64> = (0..p.nnz()).map(|k| 10.0 + k as f64).collect();
        let current: Vec<f64> = (0..p.nnz()).map(|k| 100.0 + 3.0 * k as f64).collect();
        // Whole matrix as one chunk: local is the order-gathered current.
        let local: Vec<f64> = m.order().iter().map(|&k| current[k]).collect();
        for &k in m.order() {
            assert_eq!(
                m.candidates(k, &reference, &current, true, 0),
                m.candidates_local(k, &reference, &local, true, 0),
                "value {k}"
            );
        }
        // Chunked: a chunk starting mid-order sees only its own span.
        let start = 3;
        let local_chunk: Vec<f64> = m.order()[start..].iter().map(|&k| current[k]).collect();
        for (off, &k) in m.order()[start..].iter().enumerate() {
            let _ = off;
            assert_eq!(
                m.candidates(k, &reference, &current, true, start),
                m.candidates_local(k, &reference, &local_chunk, true, start),
                "value {k} at chunk_start {start}"
            );
        }
    }

    #[test]
    fn chunk_start_confines_current_matrix_reads() {
        let (p, m) = tridiag();
        let reference = vec![1.0; p.nnz()];
        let current = vec![9.0; p.nnz()];
        let k = p.find(0, 1).unwrap(); // an Upper element, late in order
                                       // With the chunk starting at this element's own position, every
                                       // current-matrix partner is out of reach → all temporal.
        let pos = m.order_pos_of(k);
        let c = m.candidates(k, &reference, &current, true, pos);
        assert_eq!(c, [1.0; 4]);
    }
}
