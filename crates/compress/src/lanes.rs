//! Batched u64-lane kernels for residual computation.
//!
//! The residual *bit I/O* is inherently sequential (variable-width codes),
//! but everything before it — XOR against the prediction, leading/trailing
//! zero classification — is element-wise over `u64` lanes. These kernels
//! process fixed-width lane groups with exact-size iteration
//! (`chunks_exact`) so the compiler can keep the hot loops branch-free and
//! autovectorized; the misaligned tail is handled by the same scalar body.
//!
//! All kernels are bit-exact equivalents of the scalar expressions they
//! replace — the unit tests cross-check them against a scalar reference on
//! hostile payloads (subnormals, ±0.0, NaN payload bits, short tails).

/// Lane group width: one AVX-512 register of `u64`s, two NEON/SSE pairs.
pub const LANES: usize = 8;

/// Writes `values[i].to_bits() ^ preds[i]` into `out`.
///
/// # Panics
///
/// Panics if the three slices differ in length (caller bug: all derive
/// from one chunk range).
pub fn xor_residuals(values: &[f64], preds: &[u64], out: &mut [u64]) {
    assert_eq!(values.len(), preds.len(), "lane input length mismatch");
    assert_eq!(values.len(), out.len(), "lane output length mismatch");
    let mut v = values.chunks_exact(LANES);
    let mut p = preds.chunks_exact(LANES);
    let mut o = out.chunks_exact_mut(LANES);
    for ((vg, pg), og) in (&mut v).zip(&mut p).zip(&mut o) {
        for i in 0..LANES {
            og[i] = vg[i].to_bits() ^ pg[i];
        }
    }
    for ((val, pred), slot) in v
        .remainder()
        .iter()
        .zip(p.remainder())
        .zip(o.into_remainder())
    {
        *slot = val.to_bits() ^ pred;
    }
}

/// Classifies residuals into leading/trailing-zero counts.
///
/// Zero residuals get `(64, 64)`; the bit-packer's all-zero fast path keys
/// off `lz == 64` without re-touching the residual array.
///
/// # Panics
///
/// Panics if the slice lengths differ (caller bug).
pub fn classify_residuals(residuals: &[u64], lz: &mut [u8], tz: &mut [u8]) {
    assert_eq!(residuals.len(), lz.len(), "lane lz length mismatch");
    assert_eq!(residuals.len(), tz.len(), "lane tz length mismatch");
    let mut r = residuals.chunks_exact(LANES);
    let mut l = lz.chunks_exact_mut(LANES);
    let mut t = tz.chunks_exact_mut(LANES);
    for ((rg, lg), tg) in (&mut r).zip(&mut l).zip(&mut t) {
        for i in 0..LANES {
            lg[i] = rg[i].leading_zeros() as u8;
            tg[i] = rg[i].trailing_zeros() as u8;
        }
    }
    for ((res, lslot), tslot) in r
        .remainder()
        .iter()
        .zip(l.into_remainder())
        .zip(t.into_remainder())
    {
        *lslot = res.leading_zeros() as u8;
        *tslot = res.trailing_zeros() as u8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_xor(values: &[f64], preds: &[u64]) -> Vec<u64> {
        values
            .iter()
            .zip(preds)
            .map(|(v, p)| v.to_bits() ^ p)
            .collect()
    }

    #[test]
    fn xor_matches_scalar_on_all_tail_lengths() {
        // 0..=2·LANES+1 covers empty, sub-lane, exact-lane, and misaligned
        // tails on both sides of the lane boundary.
        for len in 0..=(2 * LANES + 1) {
            let values: Vec<f64> = (0..len).map(|i| (i as f64) * 1.5 - 3.0).collect();
            let preds: Vec<u64> = (0..len as u64).map(|i| i.wrapping_mul(0x9E37)).collect();
            let mut out = vec![0u64; len];
            xor_residuals(&values, &preds, &mut out);
            assert_eq!(out, scalar_xor(&values, &preds), "len {len}");
        }
    }

    #[test]
    fn classify_matches_scalar() {
        let residuals: Vec<u64> = vec![
            0,
            1,
            u64::MAX,
            1 << 63,
            0x0000_FF00_0000_0000,
            3,
            0x8000_0000_0000_0001,
            42,
            0,
            0xFFFF_FFFF_0000_0000,
        ];
        let mut lz = vec![0u8; residuals.len()];
        let mut tz = vec![0u8; residuals.len()];
        classify_residuals(&residuals, &mut lz, &mut tz);
        for (i, &r) in residuals.iter().enumerate() {
            assert_eq!(u32::from(lz[i]), r.leading_zeros(), "lz of residual {i}");
            assert_eq!(u32::from(tz[i]), r.trailing_zeros(), "tz of residual {i}");
        }
    }

    #[test]
    fn zero_residual_classifies_as_64_64() {
        let mut lz = [0u8; 1];
        let mut tz = [0u8; 1];
        classify_residuals(&[0], &mut lz, &mut tz);
        assert_eq!((lz[0], tz[0]), (64, 64));
    }

    #[test]
    #[should_panic(expected = "lane input length mismatch")]
    fn mismatched_lengths_panic() {
        let mut out = [0u64; 2];
        xor_residuals(&[1.0], &[0, 0], &mut out);
    }
}
