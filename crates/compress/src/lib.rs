//! MASC: lossless spatiotemporal compression of Jacobian tensors.
//!
//! This crate is the paper's primary contribution — a lossless
//! floating-point compressor specialized for the sparse Jacobian matrices
//! a SPICE transient simulation produces at every timestep:
//!
//! - **Shared indices** (paper §4.1): the CSR index arrays live once in a
//!   shared [`masc_sparse::Pattern`]; only float values are compressed.
//! - **Spatiotemporal prediction** (paper §4.2, [`predictor`]): each value
//!   is predicted from the temporally adjacent matrix, from its MNA
//!   *matrix-stamp* partners (transpose element, negated diagonals — the
//!   sign-bit inversion), or from the last value in its row; the best fit
//!   is recorded in 1–2 bits, or predicted outright by a per-matrix
//!   [`markov`] model ("MASC w/ Markov") that eliminates the selection
//!   bits.
//! - **Residual coding** (paper §4.3, Fig. 5a, [`residual`]): XOR residuals
//!   with a 1-bit all-zero case, 3-bit 8-granular leading-zero classes, and
//!   shared significant-bit windows.
//! - **Tensor streaming** (paper Algorithm 2, [`tensor`]): matrices are
//!   compressed one step late against their successor during the forward
//!   sweep and decompressed newest-first during the adjoint reverse sweep.
//! - **Parallel chunked codec** ([`parallel`]) mirroring the paper's
//!   OpenMP compressor.
//!
//! # Examples
//!
//! ```
//! use masc_compress::{MascConfig, TensorCompressor};
//! use masc_sparse::TripletMatrix;
//!
//! # fn main() -> Result<(), masc_compress::CompressError> {
//! let mut t = TripletMatrix::new(2, 2);
//! t.add(0, 0, 1.0);
//! t.add(0, 1, -1.0);
//! t.add(1, 0, -1.0);
//! t.add(1, 1, 1.0);
//! let pattern = t.to_csr().pattern().clone();
//!
//! let mut tensor = TensorCompressor::new(pattern, MascConfig::default());
//! tensor.push(&[1.0, -1.0, -1.0, 1.0]);
//! tensor.push(&[1.1, -1.1, -1.1, 1.1]);
//! let compressed = tensor.finish();
//!
//! let mut backward = compressed.into_backward();
//! let (step, newest) = backward.next_matrix()?.expect("two matrices stored");
//! assert_eq!(step, 1);
//! assert_eq!(newest, vec![1.1, -1.1, -1.1, 1.1]);
//! # Ok(())
//! # }
//! ```

// Unit tests may assert with unwrap/expect; shipping code may not (see
// clippy.toml and masc-lint rule R1).
#![cfg_attr(test, allow(clippy::disallowed_methods))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod lanes;
pub mod markov;
pub mod matrix;
pub mod parallel;
pub mod predictor;
pub mod residual;
pub mod stats;
pub mod tensor;

#[cfg(feature = "mutation-hooks")]
pub mod mutation;

pub use config::MascConfig;
pub use matrix::{compress_matrix, decompress_matrix};
pub use parallel::{
    compress_matrix_cross, compress_matrix_parallel, compress_matrix_seeded,
    decompress_matrix_parallel, profile_matrix, MatrixProfile,
};
pub use predictor::{Region, StampMaps};
pub use stats::{CompressStats, ModelClass};
pub use tensor::{
    decode_block, encode_block, encode_cross_block, encode_seed_block, BackwardDecompressor,
    CompressedTensor, TensorCompressor,
};

use crate::residual::ResidualError;
use core::fmt;

/// Errors from decompression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressError {
    /// The compressed stream ended early.
    Truncated,
    /// The stream is internally inconsistent.
    Corrupt(&'static str),
    /// The embedded checksum did not match the decoded values.
    ChecksumMismatch,
}

impl fmt::Display for CompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressError::Truncated => write!(f, "compressed matrix truncated"),
            CompressError::Corrupt(what) => write!(f, "compressed matrix corrupt: {what}"),
            CompressError::ChecksumMismatch => {
                write!(f, "decoded values fail the integrity checksum")
            }
        }
    }
}

impl std::error::Error for CompressError {}

impl From<masc_bitio::BitReadError> for CompressError {
    fn from(_: masc_bitio::BitReadError) -> Self {
        CompressError::Truncated
    }
}

impl From<masc_bitio::varint::VarintError> for CompressError {
    fn from(e: masc_bitio::varint::VarintError) -> Self {
        match e {
            masc_bitio::varint::VarintError::Truncated => CompressError::Truncated,
            masc_bitio::varint::VarintError::Overflow => CompressError::Corrupt("varint overflow"),
        }
    }
}

impl From<ResidualError> for CompressError {
    fn from(e: ResidualError) -> Self {
        match e {
            ResidualError::Truncated(_) => CompressError::Truncated,
            ResidualError::OrphanSharedWindow { .. } => {
                CompressError::Corrupt("orphan shared-window flag")
            }
            ResidualError::ImpossibleWindow { .. } => {
                CompressError::Corrupt("residual window wider than 64 bits")
            }
        }
    }
}
