//! Per-matrix compression (paper Algorithm 1).
//!
//! `compress_matrix` losslessly encodes one Jacobian's value array against
//! the temporally-adjacent reference matrix (`M_{t+1}`); `decompress_matrix`
//! inverts it bit-exactly. The stream is self-describing (mode flags and
//! Markov warm-up parameters live in the header), so a matrix can be
//! decoded knowing only the shared pattern and the reference values.
//!
//! Stream layout:
//!
//! ```text
//! [flags u8] [varint nnz] [u64 checksum]?
//! [u16 warmup ‰] [varint min warmup]      (markov flag only)
//! [payload bits…]
//! ```
//!
//! The encode loop itself is expressed over an *order range* so the
//! parallel codec in [`crate::parallel`] can reuse it per chunk.

use crate::config::MascConfig;
use crate::markov::MarkovModel;
use crate::predictor::{best_fit, StampMaps};
use crate::residual::{decode_residual, encode_residual, encode_residuals_batched, ResidualState};
use crate::stats::CompressStats;
use crate::CompressError;
use masc_bitio::{varint, BitReader, BitWriter};

pub(crate) const FLAG_MARKOV: u8 = 1 << 0;
pub(crate) const FLAG_SIGN_INVERT: u8 = 1 << 1;
pub(crate) const FLAG_CHECKSUM: u8 = 1 << 2;
pub(crate) const FLAG_CHUNKED: u8 = 1 << 3;
/// The stream was encoded against an all-zero reference (a *seed* block):
/// the decoder substitutes zeros for whatever reference the caller hands
/// it, making the block decodable with no temporal predecessor.
pub(crate) const FLAG_SEEDED: u8 = 1 << 4;
/// Era-2 chunked layout: each chunk carries its own header (flags, element
/// count, selection-substream length, byte length) ahead of the payloads.
/// Always set together with [`FLAG_CHUNKED`].
pub(crate) const FLAG_CHUNK_HEADERS: u8 = 1 << 5;
/// Era-3 cross-instance block: the reference is the *same-timestep* matrix
/// of the previous sweep instance, not the temporal successor. The payload
/// layout is unchanged — the flag only tells the reader which reference the
/// encoder used, so decoding with a temporal reference (or vice versa) is
/// caught by the checksum instead of silently producing garbage.
/// Mutually exclusive with [`FLAG_SEEDED`]: a block cannot be both
/// reference-free and cross-referenced.
pub(crate) const FLAG_CROSS_INSTANCE: u8 = 1 << 6;
/// Bits no known era uses; streams carrying them are from the future and
/// must be rejected rather than misread.
const FLAG_UNKNOWN_MASK: u8 = !(FLAG_MARKOV
    | FLAG_SIGN_INVERT
    | FLAG_CHECKSUM
    | FLAG_CHUNKED
    | FLAG_SEEDED
    | FLAG_CHUNK_HEADERS
    | FLAG_CROSS_INSTANCE);

/// Rotating XOR fold over value bit patterns — cheap integrity check.
pub(crate) fn checksum(values: &[f64]) -> u64 {
    let mut acc = 0u64;
    for v in values {
        acc = acc.rotate_left(1) ^ v.to_bits();
    }
    acc
}

/// Decoded header parameters shared by the serial and chunked formats.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HeaderParams {
    pub markov: bool,
    pub sign_invert: bool,
    pub warmup_permille: u32,
    pub min_warmup: usize,
}

impl HeaderParams {
    pub(crate) fn from_config(config: &MascConfig) -> Self {
        Self {
            markov: config.markov,
            sign_invert: config.sign_invert_diag,
            warmup_permille: (config.markov_warmup_frac.clamp(0.0, 1.0) * 1000.0).round() as u32,
            min_warmup: config.markov_min_warmup,
        }
    }
}

/// Per-region warm-up budget within one encode range.
fn region_warmups(
    maps: &StampMaps,
    range: core::ops::Range<usize>,
    params: &HeaderParams,
) -> [usize; 3] {
    if !params.markov {
        // Best-fit everywhere.
        return [usize::MAX; 3];
    }
    let mut counts = [0usize; 3];
    for i in range {
        counts[maps.region_of(maps.order()[i]).index()] += 1;
    }
    let mut out = [0usize; 3];
    for (o, &cnt) in out.iter_mut().zip(&counts) {
        let frac = (cnt as u64 * u64::from(params.warmup_permille)).div_ceil(1000) as usize;
        *o = frac.max(params.min_warmup).min(cnt);
    }
    out
}

/// Number of selection bits the encoder emits for `range` — the warm-up
/// elements' 1–2 bit codes (post-warm-up selections are Markov-predicted
/// and cost nothing). Deterministic from the maps and params, so encoder
/// and decoder independently agree on where the selection substream ends.
pub(crate) fn selection_bit_count(
    maps: &StampMaps,
    range: core::ops::Range<usize>,
    params: &HeaderParams,
) -> u64 {
    let warmups = region_warmups(maps, range.clone(), params);
    let mut seen = [0usize; 3];
    let mut bits = 0u64;
    for i in range {
        let region = maps.region_of(maps.order()[i]);
        let ri = region.index();
        if seen[ri] < warmups[ri] {
            seen[ri] += 1;
            bits += u64::from(region.selection_bits());
        }
    }
    bits
}

/// Encodes the order positions `range` of `values` into `w`.
///
/// `chunk_start` marks the first order position of the enclosing
/// independently-decodable unit (equal to `range.start` for chunks, `0` for
/// the serial whole-matrix codec).
#[allow(clippy::too_many_arguments)]
pub(crate) fn encode_range(
    w: &mut BitWriter,
    values: &[f64],
    reference: &[f64],
    maps: &StampMaps,
    params: &HeaderParams,
    range: core::ops::Range<usize>,
    chunk_start: usize,
    stats: &mut CompressStats,
) {
    let warmups = region_warmups(maps, range.clone(), params);
    let mut seen = [0usize; 3];
    let mut res_state = ResidualState::new();
    let mut markov = MarkovModel::new();
    for i in range {
        let k = maps.order()[i];
        let region = maps.region_of(k);
        let ri = region.index();
        let truth = values[k];
        let cands = maps.candidates(k, reference, values, params.sign_invert, chunk_start);
        let code = if seen[ri] < warmups[ri] {
            seen[ri] += 1;
            let code = best_fit(&cands, region.candidate_count(), truth);
            #[cfg(feature = "mutation-hooks")]
            let wire = crate::mutation::perturb_selection(code, region.candidate_count());
            #[cfg(not(feature = "mutation-hooks"))]
            let wire = code;
            w.write_bits(u64::from(wire), region.selection_bits());
            markov.observe(region, code);
            code
        } else {
            let predicted = markov.predict(region);
            stats.markov_predicted += 1;
            if predicted != best_fit(&cands, region.candidate_count(), truth) {
                stats.markov_misses += 1;
            }
            predicted
        };
        stats.record_selection(StampMaps::model_class(region, code));
        debug_assert!((code as usize) < cands.len(), "selection within candidates");
        let residual = truth.to_bits() ^ cands[code as usize].to_bits();
        encode_residual(w, &mut res_state, residual, stats);
    }
}

/// Decodes the order positions `range` from `r` into `out`.
///
/// # Errors
///
/// Returns [`CompressError`] on truncation or invalid selection codes.
pub(crate) fn decode_range(
    r: &mut BitReader<'_>,
    out: &mut [f64],
    reference: &[f64],
    maps: &StampMaps,
    params: &HeaderParams,
    range: core::ops::Range<usize>,
    chunk_start: usize,
) -> Result<(), CompressError> {
    let warmups = region_warmups(maps, range.clone(), params);
    let mut seen = [0usize; 3];
    let mut res_state = ResidualState::new();
    let mut markov = MarkovModel::new();
    for i in range {
        let k = maps.order()[i];
        let region = maps.region_of(k);
        let ri = region.index();
        let cands = maps.candidates(k, reference, out, params.sign_invert, chunk_start);
        let code = if seen[ri] < warmups[ri] {
            seen[ri] += 1;
            let code = r.read_bits(region.selection_bits())? as u32;
            if code as usize >= region.candidate_count() {
                return Err(CompressError::Corrupt("selection code out of range"));
            }
            markov.observe(region, code);
            code
        } else {
            markov.predict(region)
        };
        let residual = decode_residual(r, &mut res_state)?;
        out[k] = f64::from_bits(cands[code as usize].to_bits() ^ residual);
    }
    Ok(())
}

/// Era-2 chunk encoder: selection substream first, then the residual
/// substream, in one bit-contiguous payload. Returns the number of
/// selection bits written (recorded in the chunk header so the decoder can
/// split the payload without replaying the warm-up bookkeeping).
///
/// Segregating the substreams is what lets the residual side run through
/// the batched u64-lane kernels ([`crate::lanes`]): predictions for the
/// whole chunk are resolved in one scalar pass (the encoder has every true
/// value, so spatial candidates never wait on decoding), after which the
/// XOR and leading/trailing-zero classification are straight-line
/// lane-parallel array work.
pub(crate) fn encode_range_split(
    w: &mut BitWriter,
    values: &[f64],
    reference: &[f64],
    maps: &StampMaps,
    params: &HeaderParams,
    range: core::ops::Range<usize>,
    stats: &mut CompressStats,
) -> u64 {
    let chunk_start = range.start;
    let warmups = region_warmups(maps, range.clone(), params);
    let mut seen = [0usize; 3];
    let mut markov = MarkovModel::new();
    let len = range.len();
    let mut ordered = Vec::with_capacity(len);
    let mut preds = Vec::with_capacity(len);
    let sel_start = w.bit_len() as u64;
    // Pass 1 (scalar): resolve every selection, emit the warm-up selection
    // bits, and collect ordered truths + chosen predictions.
    for i in range {
        let k = maps.order()[i];
        let region = maps.region_of(k);
        let ri = region.index();
        let truth = values[k];
        let cands = maps.candidates(k, reference, values, params.sign_invert, chunk_start);
        let code = if seen[ri] < warmups[ri] {
            seen[ri] += 1;
            let code = best_fit(&cands, region.candidate_count(), truth);
            #[cfg(feature = "mutation-hooks")]
            let wire = crate::mutation::perturb_selection(code, region.candidate_count());
            #[cfg(not(feature = "mutation-hooks"))]
            let wire = code;
            w.write_bits(u64::from(wire), region.selection_bits());
            markov.observe(region, code);
            code
        } else {
            let predicted = markov.predict(region);
            stats.markov_predicted += 1;
            if predicted != best_fit(&cands, region.candidate_count(), truth) {
                stats.markov_misses += 1;
            }
            predicted
        };
        stats.record_selection(StampMaps::model_class(region, code));
        debug_assert!((code as usize) < cands.len(), "selection within candidates");
        ordered.push(truth);
        preds.push(cands[code as usize].to_bits());
    }
    let sel_bits = w.bit_len() as u64 - sel_start;
    // Pass 2 (lanes): batched XOR + leading/trailing-zero classification.
    let mut residuals = vec![0u64; ordered.len()];
    crate::lanes::xor_residuals(&ordered, &preds, &mut residuals);
    let mut lz = vec![0u8; residuals.len()];
    let mut tz = vec![0u8; residuals.len()];
    crate::lanes::classify_residuals(&residuals, &mut lz, &mut tz);
    // Pass 3: batched residual bit-packing appended after the selections.
    let mut res_state = ResidualState::new();
    encode_residuals_batched(w, &mut res_state, &residuals, &lz, &tz, stats);
    sel_bits
}

/// Era-2 chunk decoder into a *chunk-local* buffer.
///
/// `payload` is one chunk's bit-contiguous substreams; `sel_bits` is the
/// selection-substream length claimed by the chunk header (validated here
/// against the independently recomputed count). `local` must have exactly
/// the range's length; `local[p - range.start]` receives order position
/// `p`'s value. No nnz-sized scratch is touched, so N chunks decode
/// truly concurrently.
///
/// # Errors
///
/// Returns [`CompressError`] on truncation, invalid selection codes, or a
/// selection-substream length that disagrees with the header parameters.
pub(crate) fn decode_range_local(
    payload: &[u8],
    sel_bits: u64,
    local: &mut [f64],
    reference: &[f64],
    maps: &StampMaps,
    params: &HeaderParams,
    range: core::ops::Range<usize>,
) -> Result<(), CompressError> {
    let chunk_start = range.start;
    let len = range.len();
    if local.len() != len {
        return Err(CompressError::Corrupt("chunk buffer length mismatch"));
    }
    if sel_bits != selection_bit_count(maps, range.clone(), params) {
        return Err(CompressError::Corrupt(
            "chunk selection-substream length mismatch",
        ));
    }
    if sel_bits > (payload.len() as u64) * 8 {
        return Err(CompressError::Truncated);
    }
    // Pass 1: resolve the full selection-code sequence. Only the selection
    // substream is consumed; codes never depend on decoded values.
    let warmups = region_warmups(maps, range.clone(), params);
    let mut seen = [0usize; 3];
    let mut markov = MarkovModel::new();
    let mut sel = BitReader::new(payload);
    let mut codes: Vec<u32> = Vec::with_capacity(range.len());
    for i in range.clone() {
        let region = maps.region_of(maps.order()[i]);
        let ri = region.index();
        let code = if seen[ri] < warmups[ri] {
            seen[ri] += 1;
            let code = sel.read_bits(region.selection_bits())? as u32;
            if code as usize >= region.candidate_count() {
                return Err(CompressError::Corrupt("selection code out of range"));
            }
            markov.observe(region, code);
            code
        } else {
            markov.predict(region)
        };
        codes.push(code);
    }
    // Pass 2: decode the residual substream (bit-serial, value-independent).
    let mut res = BitReader::at_bit(payload, sel_bits as usize);
    let mut res_state = ResidualState::new();
    let mut residuals = vec![0u64; codes.len()];
    for slot in residuals.iter_mut() {
        *slot = decode_residual(&mut res, &mut res_state)?;
    }
    // Pass 3: reconstruct values against the chunk-local prediction state.
    for (off, i) in range.enumerate() {
        let k = maps.order()[i];
        let cands = maps.candidates_local(k, reference, local, params.sign_invert, chunk_start);
        let code = codes[off] as usize;
        local[off] = f64::from_bits(cands[code].to_bits() ^ residuals[off]);
    }
    Ok(())
}

/// Writes the common stream header; returns the buffer.
pub(crate) fn write_header(values: &[f64], config: &MascConfig, extra_flags: u8) -> Vec<u8> {
    let mut header = Vec::with_capacity(24);
    let mut flags = extra_flags;
    if config.markov {
        flags |= FLAG_MARKOV;
    }
    if config.sign_invert_diag {
        flags |= FLAG_SIGN_INVERT;
    }
    if config.checksum {
        flags |= FLAG_CHECKSUM;
    }
    header.push(flags);
    varint::write_u64(&mut header, values.len() as u64);
    if config.checksum {
        header.extend_from_slice(&checksum(values).to_le_bytes());
    }
    if config.markov {
        let params = HeaderParams::from_config(config);
        header.extend_from_slice(&(params.warmup_permille as u16).to_le_bytes());
        varint::write_u64(&mut header, params.min_warmup as u64);
    }
    header
}

/// Parsed header plus the offset where the payload begins.
pub(crate) struct ParsedHeader {
    pub params: HeaderParams,
    pub expected_checksum: Option<u64>,
    pub chunked: bool,
    /// Era-2 chunked layout with per-chunk headers.
    pub chunk_headers: bool,
    /// Seed block: decode against zeros, not the caller's reference.
    pub seeded: bool,
    pub payload_offset: usize,
}

/// Parses a stream header, validating nnz against the maps.
pub(crate) fn parse_header(
    bytes: &[u8],
    expected_nnz: usize,
) -> Result<ParsedHeader, CompressError> {
    let mut pos = 0usize;
    let flags = *bytes.first().ok_or(CompressError::Truncated)?;
    pos += 1;
    if flags & FLAG_UNKNOWN_MASK != 0 {
        return Err(CompressError::Corrupt("unknown header flag bits"));
    }
    if flags & FLAG_CHUNK_HEADERS != 0 && flags & FLAG_CHUNKED == 0 {
        return Err(CompressError::Corrupt(
            "chunk-header flag without chunked flag",
        ));
    }
    if flags & FLAG_CROSS_INSTANCE != 0 && flags & FLAG_SEEDED != 0 {
        return Err(CompressError::Corrupt(
            "cross-instance flag combined with seeded flag",
        ));
    }
    let (stored_nnz, used) = varint::read_u64(bytes.get(pos..).ok_or(CompressError::Truncated)?)?;
    pos += used;
    if stored_nnz as usize != expected_nnz {
        return Err(CompressError::Corrupt("stored nnz != pattern nnz"));
    }
    let expected_checksum = if flags & FLAG_CHECKSUM != 0 {
        let cs: [u8; 8] = bytes
            .get(pos..pos + 8)
            .and_then(|s| s.try_into().ok())
            .ok_or(CompressError::Truncated)?;
        pos += 8;
        Some(u64::from_le_bytes(cs))
    } else {
        None
    };
    let markov = flags & FLAG_MARKOV != 0;
    let (warmup_permille, min_warmup) = if markov {
        let pm: [u8; 2] = bytes
            .get(pos..pos + 2)
            .and_then(|s| s.try_into().ok())
            .ok_or(CompressError::Truncated)?;
        pos += 2;
        let (mw, used) = varint::read_u64(bytes.get(pos..).ok_or(CompressError::Truncated)?)?;
        pos += used;
        (u32::from(u16::from_le_bytes(pm)), mw as usize)
    } else {
        (0, 0)
    };
    Ok(ParsedHeader {
        params: HeaderParams {
            markov,
            sign_invert: flags & FLAG_SIGN_INVERT != 0,
            warmup_permille,
            min_warmup,
        },
        expected_checksum,
        chunked: flags & FLAG_CHUNKED != 0,
        chunk_headers: flags & FLAG_CHUNK_HEADERS != 0,
        seeded: flags & FLAG_SEEDED != 0,
        payload_offset: pos,
    })
}

/// Compresses `values` (the matrix `M_t`) against `reference` (`M_{t+1}`).
///
/// Returns the compressed bytes and the statistics of this matrix.
///
/// # Panics
///
/// Panics if `values.len()`, `reference.len()` and the maps' pattern nnz
/// disagree — these all derive from one shared pattern, so a mismatch is a
/// caller bug.
pub fn compress_matrix(
    values: &[f64],
    reference: &[f64],
    maps: &StampMaps,
    config: &MascConfig,
) -> (Vec<u8>, CompressStats) {
    let nnz = maps.order().len();
    assert_eq!(values.len(), nnz, "value count != pattern nnz");
    assert_eq!(reference.len(), nnz, "reference count != pattern nnz");

    let mut stats = CompressStats::new();
    stats.input_bytes = (nnz * 8) as u64;
    let mut out = write_header(values, config, 0);
    let params = HeaderParams::from_config(config);
    let mut w = BitWriter::with_capacity(nnz / 2 + 64);
    encode_range(
        &mut w,
        values,
        reference,
        maps,
        &params,
        0..nnz,
        0,
        &mut stats,
    );
    out.extend_from_slice(&w.into_bytes());
    stats.output_bytes = out.len() as u64;
    (out, stats)
}

/// Decompresses a matrix produced by [`compress_matrix`].
///
/// `reference` must be the same `M_{t+1}` values used at compression time.
///
/// # Errors
///
/// Returns [`CompressError`] on truncation, header inconsistency, or
/// checksum mismatch.
pub fn decompress_matrix(
    bytes: &[u8],
    reference: &[f64],
    maps: &StampMaps,
) -> Result<Vec<f64>, CompressError> {
    let nnz = maps.order().len();
    if reference.len() != nnz {
        return Err(CompressError::Corrupt("reference length != pattern nnz"));
    }
    let header = parse_header(bytes, nnz)?;
    if header.chunked {
        return Err(CompressError::Corrupt(
            "chunked stream passed to the serial decoder",
        ));
    }
    let zeros;
    let reference: &[f64] = if header.seeded {
        zeros = vec![0.0f64; nnz];
        &zeros
    } else {
        reference
    };
    let mut out = vec![0.0f64; nnz];
    let payload = bytes
        .get(header.payload_offset..)
        .ok_or(CompressError::Corrupt("payload offset past end of stream"))?;
    let mut r = BitReader::new(payload);
    decode_range(&mut r, &mut out, reference, maps, &header.params, 0..nnz, 0)?;
    if let Some(expected) = header.expected_checksum {
        if checksum(&out) != expected {
            return Err(CompressError::ChecksumMismatch);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use masc_sparse::{Pattern, TripletMatrix};

    pub(crate) fn banded_pattern(n: usize, band: usize) -> Pattern {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            for j in i.saturating_sub(band)..(i + band + 1).min(n) {
                t.add(i, j, 1.0);
            }
        }
        t.to_csr().pattern().as_ref().clone()
    }

    /// Simulated-looking values: diagonal positive, off-diagonal negative,
    /// smooth in "time".
    pub(crate) fn jacobian_like(pattern: &Pattern, time: f64) -> Vec<f64> {
        // Realistic mix: most entries come from linear devices and are
        // constant over time; a minority (nonlinear device stamps) vary
        // smoothly. This is the structure the paper's 60 %-zero-residual
        // statistic reflects.
        let mut vals = vec![0.0; pattern.nnz()];
        #[allow(clippy::needless_range_loop)]
        for r in 0..pattern.rows() {
            for k in pattern.row_ptr()[r]..pattern.row_ptr()[r + 1] {
                let c = pattern.col_idx()[k];
                let varying = r % 3 == 0;
                let base = if varying {
                    1e-3 * (1.0 + 0.01 * (time + r as f64 * 0.1).sin())
                } else {
                    1e-3 * (1.0 + (r as f64) * 1e-4)
                };
                vals[k] = if r == c { 2.0 * base } else { -base };
            }
        }
        vals
    }

    fn check_round_trip(values: &[f64], reference: &[f64], maps: &StampMaps, config: &MascConfig) {
        let (bytes, _) = compress_matrix(values, reference, maps, config);
        let out = decompress_matrix(&bytes, reference, maps).expect("decompress");
        for (i, (a, b)) in values.iter().zip(&out).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "value {i} differs");
        }
    }

    #[test]
    fn best_fit_round_trip() {
        let p = banded_pattern(20, 2);
        let maps = StampMaps::new(&p);
        let config = MascConfig::default().with_markov(false);
        let cur = jacobian_like(&p, 1.0);
        let reference = jacobian_like(&p, 1.01);
        check_round_trip(&cur, &reference, &maps, &config);
    }

    #[test]
    fn warmup_clamps_to_region_length() {
        // A min_warmup far beyond the matrix size must clamp each
        // region's budget to that region's element count, never past it.
        let p = banded_pattern(3, 1);
        let maps = StampMaps::new(&p);
        let params = HeaderParams {
            markov: true,
            sign_invert: true,
            warmup_permille: 125,
            min_warmup: 1000,
        };
        let warmups = region_warmups(&maps, 0..p.nnz(), &params);
        let mut counts = [0usize; 3];
        for i in 0..p.nnz() {
            counts[maps.region_of(maps.order()[i]).index()] += 1;
        }
        assert_eq!(warmups, counts);
        // An empty range gets an all-zero budget.
        assert_eq!(region_warmups(&maps, 0..0, &params), [0; 3]);
    }

    #[test]
    fn markov_round_trip() {
        let p = banded_pattern(30, 3);
        let maps = StampMaps::new(&p);
        let config = MascConfig {
            markov_min_warmup: 8,
            ..MascConfig::default()
        };
        let cur = jacobian_like(&p, 2.0);
        let reference = jacobian_like(&p, 2.01);
        check_round_trip(&cur, &reference, &maps, &config);
    }

    #[test]
    fn identical_matrices_compress_to_almost_nothing() {
        let p = banded_pattern(50, 2);
        let maps = StampMaps::new(&p);
        let config = MascConfig::default().with_markov(false);
        let cur = jacobian_like(&p, 3.0);
        let (bytes, stats) = compress_matrix(&cur, &cur, &maps, &config);
        // Temporal prediction is exact: ~3 bits/value (selection + zero).
        assert!(stats.zero_residual_rate() > 0.99);
        assert!(
            bytes.len() < cur.len(),
            "{} bytes for {} values",
            bytes.len(),
            cur.len()
        );
        check_round_trip(&cur, &cur, &maps, &config);
    }

    #[test]
    fn hostile_values_round_trip() {
        let p = banded_pattern(8, 1);
        let maps = StampMaps::new(&p);
        let nnz = p.nnz();
        let specials = [
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            -0.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            1e-300,
            -1e300,
        ];
        let cur: Vec<f64> = (0..nnz).map(|i| specials[i % specials.len()]).collect();
        let reference: Vec<f64> = (0..nnz)
            .map(|i| specials[(i + 3) % specials.len()])
            .collect();
        for markov in [false, true] {
            let config = MascConfig {
                markov,
                markov_min_warmup: 4,
                ..MascConfig::default()
            };
            let (bytes, _) = compress_matrix(&cur, &reference, &maps, &config);
            let out = decompress_matrix(&bytes, &reference, &maps).unwrap();
            for (a, b) in cur.iter().zip(&out) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn zero_reference_still_round_trips() {
        // The newest matrix of a tensor has no successor: compressed
        // against a zero reference.
        let p = banded_pattern(15, 2);
        let maps = StampMaps::new(&p);
        let cur = jacobian_like(&p, 0.5);
        let zeros = vec![0.0; p.nnz()];
        check_round_trip(&cur, &zeros, &maps, &MascConfig::default());
    }

    #[test]
    fn corrupt_stream_detected_by_checksum() {
        let p = banded_pattern(20, 2);
        let maps = StampMaps::new(&p);
        let cur = jacobian_like(&p, 1.0);
        let reference = jacobian_like(&p, 1.01);
        let (mut bytes, _) = compress_matrix(&cur, &reference, &maps, &MascConfig::default());
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        let result = decompress_matrix(&bytes, &reference, &maps);
        assert!(
            matches!(
                result,
                Err(CompressError::ChecksumMismatch)
                    | Err(CompressError::Truncated)
                    | Err(CompressError::Corrupt(_))
            ),
            "corruption not detected: {result:?}"
        );
    }

    #[test]
    fn truncated_stream_is_error() {
        let p = banded_pattern(20, 2);
        let maps = StampMaps::new(&p);
        let cur = jacobian_like(&p, 1.0);
        let reference = jacobian_like(&p, 1.01);
        let (bytes, _) = compress_matrix(&cur, &reference, &maps, &MascConfig::default());
        for cut in [0, 1, 5, bytes.len() / 2] {
            assert!(decompress_matrix(&bytes[..cut], &reference, &maps).is_err());
        }
    }

    #[test]
    fn wrong_nnz_rejected() {
        let p = banded_pattern(10, 1);
        let maps = StampMaps::new(&p);
        let cur = jacobian_like(&p, 1.0);
        let (bytes, _) = compress_matrix(&cur, &cur, &maps, &MascConfig::default());
        let p2 = banded_pattern(11, 1);
        let maps2 = StampMaps::new(&p2);
        let ref2 = vec![0.0; p2.nnz()];
        assert!(decompress_matrix(&bytes, &ref2, &maps2).is_err());
    }

    #[test]
    fn smooth_temporal_data_compresses_well() {
        let p = banded_pattern(100, 3);
        let maps = StampMaps::new(&p);
        let cur = jacobian_like(&p, 5.0);
        let reference = jacobian_like(&p, 5.0001); // very close in time
        let (bytes, stats) = compress_matrix(
            &cur,
            &reference,
            &maps,
            &MascConfig::default().with_markov(false),
        );
        let ratio = stats.input_bytes as f64 / bytes.len() as f64;
        assert!(ratio > 3.0, "expected decent compression, got {ratio:.2}x");
    }

    #[test]
    fn markov_has_lower_or_equal_accuracy_but_round_trips() {
        let p = banded_pattern(80, 2);
        let maps = StampMaps::new(&p);
        let cur = jacobian_like(&p, 4.0);
        let reference = jacobian_like(&p, 4.01);
        let (_, best_stats) = compress_matrix(
            &cur,
            &reference,
            &maps,
            &MascConfig::default().with_markov(false),
        );
        let config = MascConfig {
            markov_min_warmup: 16,
            ..MascConfig::default()
        };
        let (_, mk_stats) = compress_matrix(&cur, &reference, &maps, &config);
        assert!(mk_stats.markov_predicted > 0);
        assert!(mk_stats.markov_accuracy() <= 1.0);
        assert_eq!(best_stats.markov_predicted, 0);
        check_round_trip(&cur, &reference, &maps, &config);
    }

    #[test]
    fn sign_inversion_helps_on_stamp_symmetric_data() {
        // Values with exact MNA stamp symmetry: offdiag = −diag. The
        // reference's off-diagonals are useless (noise) but its diagonals
        // track the truth, so the only good off-diagonal predictor is the
        // (negated) diagonal — precisely the paper's sign-inversion case.
        let p = banded_pattern(60, 1);
        let maps = StampMaps::new(&p);
        let g = |r: usize| 1e-3 * (1.0 + 0.05 * (r as f64).sin());
        let mut cur = vec![0.0; p.nnz()];
        let mut reference = vec![0.0; p.nnz()];
        let mut noise = 0x9E37_79B9u64;
        for r in 0..p.rows() {
            for k in p.row_ptr()[r]..p.row_ptr()[r + 1] {
                let c = p.col_idx()[k];
                if r == c {
                    cur[k] = g(r);
                    reference[k] = g(r) * 1.0001;
                } else {
                    cur[k] = -g(r);
                    noise = noise.wrapping_mul(6364136223846793005).wrapping_add(1);
                    reference[k] = ((noise >> 40) as f64) * 1e-7 + 0.5;
                }
            }
        }
        let (with_bytes, _) = compress_matrix(
            &cur,
            &reference,
            &maps,
            &MascConfig::default()
                .with_markov(false)
                .with_sign_invert(true),
        );
        let (without_bytes, _) = compress_matrix(
            &cur,
            &reference,
            &maps,
            &MascConfig::default()
                .with_markov(false)
                .with_sign_invert(false),
        );
        assert!(
            with_bytes.len() < without_bytes.len(),
            "sign inversion should help: {} vs {}",
            with_bytes.len(),
            without_bytes.len()
        );
        check_round_trip(
            &cur,
            &reference,
            &maps,
            &MascConfig::default().with_sign_invert(false),
        );
    }
}
