//! Compressor configuration.

/// Knobs of the MASC compressor.
///
/// The defaults match the paper's "MASC w/ Markov" configuration; use
/// [`MascConfig::with_markov`]`(false)` for the higher-ratio, slower
/// "MASC w/o Markov" variant of paper Table 3.
#[derive(Debug, Clone, PartialEq)]
pub struct MascConfig {
    /// Predict model selections with the per-matrix Markov model instead
    /// of writing 1–2 selection bits per value.
    pub markov: bool,
    /// Fraction of each region encoded best-fit to train the Markov table.
    pub markov_warmup_frac: f64,
    /// Minimum warm-up length per region (small matrices train poorly on
    /// pure fractions).
    pub markov_min_warmup: usize,
    /// Negate diagonal values when used as spatial predictors for
    /// off-diagonal elements (the paper's sign-bit inversion; eq. 6).
    pub sign_invert_diag: bool,
    /// Embed a 64-bit integrity checksum per matrix.
    pub checksum: bool,
    /// Values per chunk for parallel (de)compression; chunks are encoded
    /// independently so they can be processed concurrently.
    pub chunk_size: usize,
    /// Worker threads for the parallel paths (1 = serial).
    pub threads: usize,
    /// Every `seed_interval`-th block of a tensor is sealed as a *seed*:
    /// encoded against an all-zero reference instead of its successor, so
    /// the backward chain breaks into independently-decodable groups of at
    /// most `seed_interval` blocks that can be expanded concurrently.
    ///
    /// `0` (the default) disables periodic seeding — only the final block
    /// of a tensor is a seed, exactly the classic chained layout. Smaller
    /// intervals trade compression ratio (seed blocks lack a temporal
    /// reference) for decode parallelism.
    pub seed_interval: usize,
}

impl Default for MascConfig {
    fn default() -> Self {
        Self {
            markov: true,
            markov_warmup_frac: 0.125,
            markov_min_warmup: 256,
            sign_invert_diag: true,
            checksum: true,
            chunk_size: 1 << 16,
            threads: 1,
            seed_interval: 0,
        }
    }
}

impl MascConfig {
    /// Default configuration ("MASC w/ Markov").
    pub fn new() -> Self {
        Self::default()
    }

    /// Toggles Markov selection prediction.
    pub fn with_markov(mut self, markov: bool) -> Self {
        self.markov = markov;
        self
    }

    /// Toggles diagonal sign inversion (ablation knob).
    pub fn with_sign_invert(mut self, on: bool) -> Self {
        self.sign_invert_diag = on;
        self
    }

    /// Sets the worker-thread count for parallel paths.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the tensor seed interval (`0` = seed only the final block).
    pub fn with_seed_interval(mut self, interval: usize) -> Self {
        self.seed_interval = interval;
        self
    }

    /// Whether tensor block `t` should be sealed as a seed block under this
    /// config (the final block of a tensor is always a seed regardless).
    pub fn is_seed_step(&self, t: usize) -> bool {
        self.seed_interval > 0 && (t + 1).is_multiple_of(self.seed_interval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_markov_variant() {
        let c = MascConfig::default();
        assert!(c.markov);
        assert!(c.sign_invert_diag);
        assert!(c.checksum);
        assert_eq!(c.threads, 1);
    }

    #[test]
    fn builders_compose() {
        let c = MascConfig::new()
            .with_markov(false)
            .with_sign_invert(false)
            .with_threads(0);
        assert!(!c.markov);
        assert!(!c.sign_invert_diag);
        assert_eq!(c.threads, 1); // clamped
    }
}
