//! Compression statistics: everything the paper's evaluation plots need.
//!
//! - Selection rates of the three prediction models (paper Fig. 6);
//! - leading-zero-class distribution of residuals (paper Fig. 5b);
//! - byte counts for compression-ratio reporting (Tables 2–3).

/// Which prediction model produced a value (aggregated for Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelClass {
    /// Temporal prediction from the adjacent-timestep matrix.
    Temporal,
    /// Matrix-stamp (spatial) prediction.
    Stamp,
    /// Last-value prediction within the current matrix.
    LastValue,
}

/// Statistics accumulated while compressing one matrix or a whole tensor.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompressStats {
    /// Values predicted by the temporal model.
    pub temporal: u64,
    /// Values predicted by the stamp-based spatial model.
    pub stamp: u64,
    /// Values predicted by the last-value model.
    pub last_value: u64,
    /// Residuals that were exactly zero (the paper's "64 consecutive zero
    /// bits" bucket, ~60 %).
    pub zero_residuals: u64,
    /// Histogram of 8-bit leading-zero classes for non-zero residuals
    /// (index = class 0‥7).
    pub lz_class_histogram: [u64; 8],
    /// Residuals that reused the previous residual's window.
    pub shared_windows: u64,
    /// Uncompressed value bytes seen.
    pub input_bytes: u64,
    /// Compressed bytes produced.
    pub output_bytes: u64,
    /// Values encoded in Markov mode (no selection bits).
    pub markov_predicted: u64,
    /// Markov predictions that disagreed with the best-fit choice
    /// (accuracy bookkeeping; only measurable on the encoder side).
    pub markov_misses: u64,
}

impl CompressStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one model selection.
    pub fn record_selection(&mut self, class: ModelClass) {
        match class {
            ModelClass::Temporal => self.temporal += 1,
            ModelClass::Stamp => self.stamp += 1,
            ModelClass::LastValue => self.last_value += 1,
        }
    }

    /// Total values processed.
    pub fn total_values(&self) -> u64 {
        self.temporal + self.stamp + self.last_value
    }

    /// Selection rate of a model in `[0, 1]` (Fig. 6's y-axis).
    pub fn selection_rate(&self, class: ModelClass) -> f64 {
        let total = self.total_values();
        if total == 0 {
            return 0.0;
        }
        let count = match class {
            ModelClass::Temporal => self.temporal,
            ModelClass::Stamp => self.stamp,
            ModelClass::LastValue => self.last_value,
        };
        count as f64 / total as f64
    }

    /// Fraction of residuals that were all-zero (Fig. 5b's tall bar).
    pub fn zero_residual_rate(&self) -> f64 {
        let total = self.total_values();
        if total == 0 {
            return 0.0;
        }
        self.zero_residuals as f64 / total as f64
    }

    /// Compression ratio `input/output`.
    pub fn ratio(&self) -> f64 {
        if self.output_bytes == 0 {
            return 0.0;
        }
        self.input_bytes as f64 / self.output_bytes as f64
    }

    /// Markov prediction accuracy (1.0 when Markov mode was never used).
    pub fn markov_accuracy(&self) -> f64 {
        if self.markov_predicted == 0 {
            return 1.0;
        }
        1.0 - self.markov_misses as f64 / self.markov_predicted as f64
    }

    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &CompressStats) {
        self.temporal += other.temporal;
        self.stamp += other.stamp;
        self.last_value += other.last_value;
        self.zero_residuals += other.zero_residuals;
        for (a, b) in self
            .lz_class_histogram
            .iter_mut()
            .zip(&other.lz_class_histogram)
        {
            *a += b;
        }
        self.shared_windows += other.shared_windows;
        self.input_bytes += other.input_bytes;
        self.output_bytes += other.output_bytes;
        self.markov_predicted += other.markov_predicted;
        self.markov_misses += other.markov_misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_rates_sum_to_one() {
        let mut s = CompressStats::new();
        for _ in 0..6 {
            s.record_selection(ModelClass::Temporal);
        }
        for _ in 0..3 {
            s.record_selection(ModelClass::Stamp);
        }
        s.record_selection(ModelClass::LastValue);
        assert_eq!(s.total_values(), 10);
        let sum = s.selection_rate(ModelClass::Temporal)
            + s.selection_rate(ModelClass::Stamp)
            + s.selection_rate(ModelClass::LastValue);
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((s.selection_rate(ModelClass::Temporal) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = CompressStats::new();
        assert_eq!(s.selection_rate(ModelClass::Temporal), 0.0);
        assert_eq!(s.zero_residual_rate(), 0.0);
        assert_eq!(s.ratio(), 0.0);
        assert_eq!(s.markov_accuracy(), 1.0);
    }

    #[test]
    fn merge_accumulates_everything() {
        let mut a = CompressStats {
            temporal: 1,
            zero_residuals: 2,
            input_bytes: 100,
            output_bytes: 10,
            ..CompressStats::default()
        };
        a.lz_class_histogram[3] = 5;
        let mut b = CompressStats {
            stamp: 4,
            shared_windows: 7,
            input_bytes: 50,
            output_bytes: 5,
            ..CompressStats::default()
        };
        b.lz_class_histogram[3] = 2;
        a.merge(&b);
        assert_eq!(a.temporal, 1);
        assert_eq!(a.stamp, 4);
        assert_eq!(a.lz_class_histogram[3], 7);
        assert_eq!(a.input_bytes, 150);
        assert!((a.ratio() - 10.0).abs() < 1e-12);
    }
}
