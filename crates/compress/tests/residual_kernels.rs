//! Batched residual kernels vs. the scalar reference (ISSUE 6 satellite).
//!
//! The u64-lane kernels ([`masc_compress::lanes`]) and the batched residual
//! encoder must be bit-exact drop-ins for the scalar expressions they
//! replace, on every float class a Jacobian can contain — subnormals,
//! ±0.0, NaNs with arbitrary payload bits, infinities — and on every
//! misaligned tail length around the lane width.

// Tests may assert with unwrap/expect; the crate's clippy.toml bans them
// in shipping code only (masc-lint rule R1).
#![allow(clippy::disallowed_methods)]

use masc_bitio::{BitReader, BitWriter};
use masc_compress::lanes::{classify_residuals, xor_residuals, LANES};
use masc_compress::residual::{
    decode_residual, encode_residual, encode_residuals_batched, ResidualState,
};
use masc_compress::CompressStats;
use masc_testkit::gen::{self, Gen};
use masc_testkit::{prop, prop_assert_eq};

/// Payload vectors whose lengths deliberately straddle the lane width.
fn payloads() -> impl Gen<Value = Vec<f64>> {
    gen::vecs(gen::f64_payloads(), 0..3 * LANES + 2)
}

fn scalar_encode(residuals: &[u64]) -> (Vec<u8>, CompressStats) {
    let mut stats = CompressStats::new();
    let mut w = BitWriter::new();
    let mut state = ResidualState::new();
    for &res in residuals {
        encode_residual(&mut w, &mut state, res, &mut stats);
    }
    (w.into_bytes(), stats)
}

fn batched_encode(residuals: &[u64]) -> (Vec<u8>, CompressStats) {
    let mut lz = vec![0u8; residuals.len()];
    let mut tz = vec![0u8; residuals.len()];
    classify_residuals(residuals, &mut lz, &mut tz);
    let mut stats = CompressStats::new();
    let mut w = BitWriter::new();
    let mut state = ResidualState::new();
    encode_residuals_batched(&mut w, &mut state, residuals, &lz, &tz, &mut stats);
    (w.into_bytes(), stats)
}

prop! {
    #![cases = 128]

    /// XOR kernel: identical to the scalar expression on hostile payloads
    /// with hostile predictions.
    fn xor_kernel_matches_scalar(
        (values, preds) in payloads().flat_map(|v| {
            let n = v.len();
            (gen::just(v), gen::vecs(gen::f64_payloads(), n..n + 1))
        })
    ) {
        let pred_bits: Vec<u64> = preds.iter().map(|p| p.to_bits()).collect();
        let mut out = vec![0u64; values.len()];
        xor_residuals(&values, &pred_bits, &mut out);
        for (i, (v, p)) in values.iter().zip(&pred_bits).enumerate() {
            prop_assert_eq!(out[i], v.to_bits() ^ p, "lane {}", i);
        }
    }

    /// Classifier kernel: leading/trailing zero counts match `u64`'s own,
    /// including the all-zero (64, 64) convention.
    fn classify_kernel_matches_scalar(values in payloads()) {
        let residuals: Vec<u64> = values.iter().map(|v| v.to_bits()).collect();
        let mut lz = vec![0u8; residuals.len()];
        let mut tz = vec![0u8; residuals.len()];
        classify_residuals(&residuals, &mut lz, &mut tz);
        for (i, &r) in residuals.iter().enumerate() {
            prop_assert_eq!(u32::from(lz[i]), r.leading_zeros(), "lz lane {}", i);
            prop_assert_eq!(u32::from(tz[i]), r.trailing_zeros(), "tz lane {}", i);
        }
    }

    /// Batched encoder: byte-identical stream and identical stats to the
    /// scalar element-at-a-time encoder, and the shared decoder recovers
    /// every residual.
    fn batched_encoder_matches_scalar_stream(
        (values, preds) in payloads().flat_map(|v| {
            let n = v.len();
            (gen::just(v), gen::vecs(gen::f64_payloads(), n..n + 1))
        })
    ) {
        // Residuals from realistic prediction pairs: XOR of two hostile
        // floats, which produces the full mix of zero runs, short windows,
        // and dense-mantissa patterns.
        let residuals: Vec<u64> = values
            .iter()
            .zip(&preds)
            .map(|(v, p)| v.to_bits() ^ p.to_bits())
            .collect();
        let (scalar_bytes, scalar_stats) = scalar_encode(&residuals);
        let (batched_bytes, batched_stats) = batched_encode(&residuals);
        prop_assert_eq!(&scalar_bytes, &batched_bytes);
        prop_assert_eq!(scalar_stats.zero_residuals, batched_stats.zero_residuals);
        prop_assert_eq!(scalar_stats.shared_windows, batched_stats.shared_windows);

        let mut r = BitReader::new(&batched_bytes);
        let mut state = ResidualState::new();
        for (i, &want) in residuals.iter().enumerate() {
            prop_assert_eq!(decode_residual(&mut r, &mut state).unwrap(), want, "residual {}", i);
        }
    }

    /// Zero-run batching: streams dominated by exact repeats (the common
    /// case for linear-device stamps) hit the 64-bit run fast path; the
    /// bytes must still match the scalar encoder.
    fn batched_encoder_matches_scalar_on_sparse_streams(
        (len, nonzero_every) in (gen::range_usize(0, 400), gen::range_usize(1, 9))
    ) {
        let residuals: Vec<u64> = (0..len)
            .map(|i| {
                if i % nonzero_every == 0 {
                    (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                } else {
                    0
                }
            })
            .collect();
        let (scalar_bytes, _) = scalar_encode(&residuals);
        let (batched_bytes, _) = batched_encode(&residuals);
        prop_assert_eq!(scalar_bytes, batched_bytes);
    }
}

/// Deterministic spot-check of the exact float classes the issue names:
/// subnormals, both zeros, NaN payload bits, and a misaligned tail.
#[test]
fn named_hostile_classes_round_trip_batched() {
    let values: Vec<f64> = vec![
        5e-324,  // smallest positive subnormal
        -5e-324, // smallest negative subnormal
        0.0,
        -0.0,
        f64::from_bits(0x7FF8_0000_0000_0001), // quiet NaN, payload bit 0
        f64::from_bits(0x7FF0_0000_0000_0001), // signalling NaN
        f64::from_bits(0xFFFF_FFFF_FFFF_FFFF), // NaN, all payload bits
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::MAX,
        f64::MIN_POSITIVE,
        1.0, // tail length 12 = LANES + 4: misaligned remainder
    ];
    assert_eq!(values.len() % LANES, 4, "tail must be misaligned");
    let preds: Vec<u64> = values.iter().rev().map(|v| v.to_bits()).collect();
    let mut residuals = vec![0u64; values.len()];
    xor_residuals(&values, &preds, &mut residuals);
    let mut lz = vec![0u8; residuals.len()];
    let mut tz = vec![0u8; residuals.len()];
    classify_residuals(&residuals, &mut lz, &mut tz);

    let mut stats = CompressStats::new();
    let mut w = BitWriter::new();
    let mut state = ResidualState::new();
    encode_residuals_batched(&mut w, &mut state, &residuals, &lz, &tz, &mut stats);
    let bytes = w.into_bytes();

    let mut r = BitReader::new(&bytes);
    let mut state = ResidualState::new();
    for (i, &want) in residuals.iter().enumerate() {
        assert_eq!(
            decode_residual(&mut r, &mut state).unwrap(),
            want,
            "residual {i}"
        );
    }
}
