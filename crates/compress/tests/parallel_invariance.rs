//! Thread-count invariance of the chunked codec (ISSUE 6 satellite).
//!
//! The era-2 format's whole point is that chunks are independent units of
//! work: the *schedule* (how many workers, which worker takes which chunk)
//! must never leak into the bytes or the decoded values. These properties
//! pin that down across adversarial chunk sizes — including `0` (clamped
//! to 1), `1` (maximal chunk count), `nnz` (exactly one chunk), and
//! `nnz + 1` (one chunk with slack) — for threads ∈ {1, 2, 4, 8}.
//!
//! Failures replay with `MASC_PROP_REPRO` (masc-testkit seed replay).

// Tests may assert with unwrap/expect; the crate's clippy.toml bans them
// in shipping code only (masc-lint rule R1).
#![allow(clippy::disallowed_methods)]

use masc_compress::{
    compress_matrix_parallel, compress_matrix_seeded, decompress_matrix_parallel, MascConfig,
    StampMaps, TensorCompressor,
};
use masc_sparse::{Pattern, TripletMatrix};
use masc_testkit::gen::{self, Gen};
use masc_testkit::{prop, prop_assert, prop_assert_eq};
use std::sync::Arc;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn patterns() -> impl Gen<Value = Arc<Pattern>> {
    gen::sparse_coords(2..16, 60).map(|(n, coords)| {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.add(i, i, 0.0);
        }
        for (r, c) in coords {
            t.add(r, c, 0.0);
        }
        t.to_csr().pattern().clone()
    })
}

fn values(nnz: usize) -> impl Gen<Value = Vec<f64>> {
    gen::vecs(gen::f64_payloads(), nnz..nnz + 1)
}

/// The adversarial chunk sizes the issue calls out: degenerate (0 → clamped
/// to 1), single-element chunks, exactly-one-chunk, and one-chunk-with-slack.
fn adversarial_chunk_sizes(nnz: usize) -> [usize; 4] {
    [0, 1, nnz, nnz + 1]
}

prop! {
    #![cases = 48]

    /// Compressed output AND decoded values are byte-identical for every
    /// thread count, at every adversarial chunk size.
    fn stream_and_values_invariant_under_thread_count(
        (pattern, values, reference) in patterns().flat_map(|p| {
            let nnz = p.nnz();
            (gen::just(p), values(nnz), values(nnz))
        })
    ) {
        let maps = StampMaps::new(&pattern);
        for chunk_size in adversarial_chunk_sizes(pattern.nnz()) {
            let base = MascConfig {
                chunk_size,
                threads: 1,
                markov_min_warmup: 4,
                ..MascConfig::default()
            };
            let (baseline_bytes, _) =
                compress_matrix_parallel(&values, &reference, &maps, &base);
            let baseline_out =
                decompress_matrix_parallel(&baseline_bytes, &reference, &maps, &base).unwrap();
            for (a, b) in values.iter().zip(&baseline_out) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            for threads in THREAD_COUNTS {
                let config = MascConfig { threads, ..base.clone() };
                let (bytes, _) = compress_matrix_parallel(&values, &reference, &maps, &config);
                prop_assert_eq!(
                    &bytes, &baseline_bytes,
                    "chunk_size={} threads={} changed the stream", chunk_size, threads
                );
                // Decode the one canonical stream under every worker count.
                let out =
                    decompress_matrix_parallel(&baseline_bytes, &reference, &maps, &config)
                        .unwrap();
                prop_assert_eq!(
                    baseline_out.len(), out.len(),
                    "chunk_size={} threads={} changed the length", chunk_size, threads
                );
                for (a, b) in baseline_out.iter().zip(&out) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    /// Seed blocks (all-zero reference, FLAG_SEEDED) obey the same
    /// invariance, and decode identically no matter what reference the
    /// caller supplies.
    fn seeded_stream_invariant_under_thread_count(
        (pattern, values, garbage_reference) in patterns().flat_map(|p| {
            let nnz = p.nnz();
            (gen::just(p), values(nnz), values(nnz))
        })
    ) {
        let maps = StampMaps::new(&pattern);
        for chunk_size in adversarial_chunk_sizes(pattern.nnz()) {
            let base = MascConfig {
                chunk_size,
                threads: 1,
                markov_min_warmup: 4,
                ..MascConfig::default()
            };
            let (baseline_bytes, _) = compress_matrix_seeded(&values, &maps, &base);
            for threads in THREAD_COUNTS {
                let config = MascConfig { threads, ..base.clone() };
                let (bytes, _) = compress_matrix_seeded(&values, &maps, &config);
                prop_assert_eq!(&bytes, &baseline_bytes);
                let out = decompress_matrix_parallel(
                    &baseline_bytes,
                    &garbage_reference,
                    &maps,
                    &config,
                )
                .unwrap();
                for (a, b) in values.iter().zip(&out) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    /// Tensor level: seed intervals split the chain into groups, and the
    /// grouped (possibly parallel) decode must reproduce the series
    /// bit-exactly with identical block bytes for every thread count.
    fn tensor_blocks_invariant_under_thread_count(
        (pattern, series, seed_interval) in patterns().flat_map(|p| {
            let nnz = p.nnz();
            (
                gen::just(p),
                gen::vecs(values(nnz), 1..7),
                gen::range_usize(0, 4),
            )
        })
    ) {
        let mk = |threads: usize| MascConfig {
            chunk_size: 16,
            threads,
            markov_min_warmup: 4,
            seed_interval,
            ..MascConfig::default()
        };
        let mut baseline_blocks: Option<Vec<Vec<u8>>> = None;
        for threads in THREAD_COUNTS {
            let mut tc = TensorCompressor::new(pattern.clone(), mk(threads));
            for m in &series {
                tc.push(m);
            }
            let tensor = tc.finish();
            let blocks: Vec<Vec<u8>> = (0..tensor.len())
                .map(|t| tensor.block(t).unwrap().to_vec())
                .collect();
            match &baseline_blocks {
                None => baseline_blocks = Some(blocks),
                Some(base) => prop_assert_eq!(
                    base, &blocks,
                    "threads={} changed tensor block bytes", threads
                ),
            }
            let all = tensor.decompress_all().unwrap();
            prop_assert_eq!(all.len(), series.len());
            for (want, got) in series.iter().zip(&all) {
                for (a, b) in want.iter().zip(got) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    /// Every block a positive seed interval marks as a seed really is
    /// self-referential (first-byte flag), and the final block always is.
    fn seed_interval_marks_the_right_blocks(
        (pattern, series, seed_interval) in patterns().flat_map(|p| {
            let nnz = p.nnz();
            (
                gen::just(p),
                gen::vecs(values(nnz), 2..8),
                gen::range_usize(1, 4),
            )
        })
    ) {
        let config = MascConfig {
            chunk_size: 16,
            markov_min_warmup: 4,
            seed_interval,
            ..MascConfig::default()
        };
        let mut tc = TensorCompressor::new(pattern, config.clone());
        for m in &series {
            tc.push(m);
        }
        let tensor = tc.finish();
        const FLAG_SEEDED: u8 = 1 << 4;
        for t in 0..tensor.len() {
            let block = tensor.block(t).unwrap();
            let seeded = block[0] & FLAG_SEEDED != 0;
            let expect = config.is_seed_step(t) || t == tensor.len() - 1;
            prop_assert_eq!(seeded, expect, "block {} seed flag", t);
        }
        prop_assert!(tensor.decompress_all().is_ok());
    }
}
