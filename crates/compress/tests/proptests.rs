//! Property tests: the MASC compressor's central claim is *bit-exact
//! losslessness* for arbitrary values over arbitrary patterns
//! (masc-testkit).

// Tests may assert with unwrap/expect; the crate's clippy.toml bans them
// in shipping code only (masc-lint rule R1).
#![allow(clippy::disallowed_methods)]

use masc_compress::{
    compress_matrix, compress_matrix_parallel, decompress_matrix, decompress_matrix_parallel,
    CompressError, MascConfig, StampMaps, TensorCompressor,
};
use masc_sparse::{Pattern, TripletMatrix};
use masc_testkit::gen::{self, Gen};
use masc_testkit::rng::Rng;
use masc_testkit::{prop, prop_assert_eq};
use std::sync::Arc;

/// Arbitrary sparse square patterns (mix of symmetric and ragged).
fn patterns() -> impl Gen<Value = Arc<Pattern>> {
    gen::sparse_coords(2..20, 80).map(|(n, coords)| {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.add(i, i, 0.0); // diagonals usually exist in MNA
        }
        for (r, c) in coords {
            t.add(r, c, 0.0);
        }
        t.to_csr().pattern().clone()
    })
}

/// Tiny patterns (1×1 up to 4×4) whose regions hold far fewer elements
/// than any realistic Markov warm-up budget.
fn tiny_patterns() -> impl Gen<Value = Arc<Pattern>> {
    gen::sparse_coords(1..5, 6).map(|(n, coords)| {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.add(i, i, 0.0);
        }
        for (r, c) in coords {
            t.add(r, c, 0.0);
        }
        t.to_csr().pattern().clone()
    })
}

/// Value vectors including special floats.
fn values(nnz: usize) -> impl Gen<Value = Vec<f64>> {
    gen::vecs(gen::f64_payloads(), nnz..nnz + 1)
}

fn configs() -> impl Gen<Value = MascConfig> {
    gen::from_fn(|rng| MascConfig {
        markov: rng.bool(),
        markov_min_warmup: rng.range_usize(1, 40),
        sign_invert_diag: rng.bool(),
        checksum: rng.bool(),
        ..MascConfig::default()
    })
}

prop! {
    #![cases = 64]

    fn matrix_round_trip_is_bit_exact(
        (pattern, values, reference, config) in patterns().flat_map(|p| {
            let nnz = p.nnz();
            (gen::just(p), values(nnz), values(nnz), configs())
        })
    ) {
        let maps = StampMaps::new(&pattern);
        let (bytes, stats) = compress_matrix(&values, &reference, &maps, &config);
        prop_assert_eq!(stats.total_values(), values.len() as u64);
        let out = decompress_matrix(&bytes, &reference, &maps).unwrap();
        for (a, b) in values.iter().zip(&out) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    fn chunked_round_trip_is_bit_exact(
        (pattern, values, reference, chunk, threads) in patterns().flat_map(|p| {
            let nnz = p.nnz();
            (
                gen::just(p),
                values(nnz),
                values(nnz),
                gen::range_usize(1, 30),
                gen::range_usize(1, 4),
            )
        })
    ) {
        let maps = StampMaps::new(&pattern);
        let config = MascConfig {
            chunk_size: chunk,
            threads,
            markov_min_warmup: 4,
            ..MascConfig::default()
        };
        let (bytes, _) = compress_matrix_parallel(&values, &reference, &maps, &config);
        let out = decompress_matrix_parallel(&bytes, &reference, &maps, &config).unwrap();
        for (a, b) in values.iter().zip(&out) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Markov warm-up clamp: a `markov_min_warmup` far beyond any
    /// region's element count must clamp to the region length on both the
    /// serial and chunked paths, down to 1×1 matrices.
    fn oversized_markov_warmup_round_trips(
        (pattern, values, reference, warmup, chunk) in tiny_patterns().flat_map(|p| {
            let nnz = p.nnz();
            (
                gen::just(p),
                values(nnz),
                values(nnz),
                gen::range_usize(50, 100_000),
                gen::range_usize(1, 8),
            )
        })
    ) {
        let maps = StampMaps::new(&pattern);
        let config = MascConfig {
            markov: true,
            markov_min_warmup: warmup,
            chunk_size: chunk,
            threads: 2,
            ..MascConfig::default()
        };
        let (bytes, _) = compress_matrix(&values, &reference, &maps, &config);
        let out = decompress_matrix(&bytes, &reference, &maps).unwrap();
        for (a, b) in values.iter().zip(&out) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        let (bytes, _) = compress_matrix_parallel(&values, &reference, &maps, &config);
        let out = decompress_matrix_parallel(&bytes, &reference, &maps, &config).unwrap();
        for (a, b) in values.iter().zip(&out) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Degenerate chunk/thread shapes: chunk_size 0 (clamped to 1 by the
    /// codec), more threads than chunks, and thread counts that round the
    /// per-worker chunk share up must all round-trip bit-exactly.
    fn degenerate_chunk_shapes_round_trip(
        (pattern, values, reference, chunk, threads) in patterns().flat_map(|p| {
            let nnz = p.nnz();
            (
                gen::just(p),
                values(nnz),
                values(nnz),
                gen::range_usize(0, 3),
                gen::range_usize(1, 17),
            )
        })
    ) {
        let maps = StampMaps::new(&pattern);
        let config = MascConfig {
            chunk_size: chunk,
            threads,
            markov_min_warmup: 2,
            ..MascConfig::default()
        };
        let (bytes, _) = compress_matrix_parallel(&values, &reference, &maps, &config);
        let out = decompress_matrix_parallel(&bytes, &reference, &maps, &config).unwrap();
        for (a, b) in values.iter().zip(&out) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Determinism: the chunked stream must be byte-identical for any
    /// worker count, and the serial decoder must reject it with a
    /// structured error (never a panic).
    fn chunked_stream_is_thread_count_invariant(
        (pattern, values, reference, chunk) in patterns().flat_map(|p| {
            let nnz = p.nnz();
            (gen::just(p), values(nnz), values(nnz), gen::range_usize(1, 40))
        })
    ) {
        let maps = StampMaps::new(&pattern);
        let base = MascConfig {
            chunk_size: chunk,
            threads: 1,
            markov_min_warmup: 4,
            ..MascConfig::default()
        };
        let (serial_bytes, _) = compress_matrix_parallel(&values, &reference, &maps, &base);
        for threads in [2usize, 3, 8] {
            let config = MascConfig { threads, ..base.clone() };
            let (bytes, _) = compress_matrix_parallel(&values, &reference, &maps, &config);
            prop_assert_eq!(
                &bytes, &serial_bytes,
                "threads={} changed the stream", threads
            );
        }
        // The serial decoder sees FLAG_CHUNKED and returns Corrupt.
        match decompress_matrix(&serial_bytes, &reference, &maps) {
            Err(CompressError::Corrupt(_)) => {}
            other => panic!("serial decoder on chunked stream: {other:?}"),
        }
    }

    fn tensor_backward_replay_is_exact(
        (pattern, series) in patterns().flat_map(|p| {
            let nnz = p.nnz();
            let series = gen::vecs(values(nnz), 1..8);
            (gen::just(p), series)
        })
    ) {
        let mut tc = TensorCompressor::new(pattern, MascConfig {
            markov_min_warmup: 4,
            ..MascConfig::default()
        });
        for m in &series {
            tc.push(m);
        }
        let tensor = tc.finish();
        prop_assert_eq!(tensor.len(), series.len());
        let mut back = tensor.into_backward();
        let mut step_expect = series.len();
        while let Some((step, values)) = back.next_matrix().unwrap() {
            step_expect -= 1;
            prop_assert_eq!(step, step_expect);
            for (a, b) in series[step].iter().zip(&values) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        prop_assert_eq!(step_expect, 0);
    }

    fn truncation_never_panics(
        (pattern, values, cut_frac) in patterns().flat_map(|p| {
            let nnz = p.nnz();
            (gen::just(p), values(nnz), gen::range_f64(0.0, 1.0))
        })
    ) {
        let maps = StampMaps::new(&pattern);
        let reference = vec![0.0; values.len()];
        let (bytes, _) = compress_matrix(&values, &reference, &maps, &MascConfig::default());
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        // Either a clean error or (for cuts in the zero-padded tail) a
        // successful decode — never a panic.
        let _ = decompress_matrix(&bytes[..cut.min(bytes.len())], &reference, &maps);
    }
}

/// The mirror-image format check: the chunked decoder must reject a serial
/// stream with a structured error, not a panic.
#[test]
fn chunked_decoder_rejects_serial_stream_with_structured_error() {
    let mut rng = Rng::new(0x434B_4644);
    let g = patterns();
    for _ in 0..16 {
        let pattern = g.generate(&mut rng);
        let maps = StampMaps::new(&pattern);
        let vals: Vec<f64> = (0..pattern.nnz()).map(|i| (i as f64 * 0.3).sin()).collect();
        let reference = vec![0.0; vals.len()];
        let config = MascConfig::default();
        let (serial, _) = compress_matrix(&vals, &reference, &maps, &config);
        match decompress_matrix_parallel(&serial, &reference, &maps, &config) {
            Err(CompressError::Corrupt(_)) => {}
            other => panic!("chunked decoder on serial stream: {other:?}"),
        }
    }
}
