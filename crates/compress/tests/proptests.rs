//! Property tests: the MASC compressor's central claim is *bit-exact
//! losslessness* for arbitrary values over arbitrary patterns.

use masc_compress::{
    compress_matrix, compress_matrix_parallel, decompress_matrix, decompress_matrix_parallel,
    MascConfig, StampMaps, TensorCompressor,
};
use masc_sparse::{Pattern, TripletMatrix};
use proptest::prelude::*;
use std::sync::Arc;

/// Arbitrary sparse square patterns (mix of symmetric and ragged).
fn pattern_strategy() -> impl Strategy<Value = Arc<Pattern>> {
    (2usize..20, proptest::collection::vec((0usize..20, 0usize..20), 1..80)).prop_map(
        |(n, coords)| {
            let mut t = TripletMatrix::new(n, n);
            for i in 0..n {
                t.add(i, i, 0.0); // diagonals usually exist in MNA
            }
            for (r, c) in coords {
                t.add(r % n, c % n, 0.0);
            }
            t.to_csr().pattern().clone()
        },
    )
}

/// Value vectors including special floats.
fn values_strategy(nnz: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(
        prop_oneof![
            4 => any::<f64>(),
            2 => -1e3f64..1e3,
            1 => Just(0.0f64),
            1 => Just(f64::NAN),
            1 => Just(f64::INFINITY),
            1 => Just(-0.0f64),
        ],
        nnz,
    )
}

fn config_strategy() -> impl Strategy<Value = MascConfig> {
    (any::<bool>(), any::<bool>(), any::<bool>(), 1usize..40).prop_map(
        |(markov, sign_invert, checksum, min_warmup)| MascConfig {
            markov,
            markov_min_warmup: min_warmup,
            sign_invert_diag: sign_invert,
            checksum,
            ..MascConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matrix_round_trip_is_bit_exact(
        (pattern, values, reference, config) in pattern_strategy().prop_flat_map(|p| {
            let nnz = p.nnz();
            (Just(p), values_strategy(nnz), values_strategy(nnz), config_strategy())
        })
    ) {
        let maps = StampMaps::new(&pattern);
        let (bytes, stats) = compress_matrix(&values, &reference, &maps, &config);
        prop_assert_eq!(stats.total_values(), values.len() as u64);
        let out = decompress_matrix(&bytes, &reference, &maps).unwrap();
        for (a, b) in values.iter().zip(&out) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn chunked_round_trip_is_bit_exact(
        (pattern, values, reference, chunk, threads) in pattern_strategy().prop_flat_map(|p| {
            let nnz = p.nnz();
            (Just(p), values_strategy(nnz), values_strategy(nnz), 1usize..30, 1usize..4)
        })
    ) {
        let maps = StampMaps::new(&pattern);
        let config = MascConfig {
            chunk_size: chunk,
            threads,
            markov_min_warmup: 4,
            ..MascConfig::default()
        };
        let (bytes, _) = compress_matrix_parallel(&values, &reference, &maps, &config);
        let out = decompress_matrix_parallel(&bytes, &reference, &maps, &config).unwrap();
        for (a, b) in values.iter().zip(&out) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn tensor_backward_replay_is_exact(
        (pattern, series) in pattern_strategy().prop_flat_map(|p| {
            let nnz = p.nnz();
            let series = proptest::collection::vec(values_strategy(nnz), 1..8);
            (Just(p), series)
        })
    ) {
        let mut tc = TensorCompressor::new(pattern, MascConfig {
            markov_min_warmup: 4,
            ..MascConfig::default()
        });
        for m in &series {
            tc.push(m);
        }
        let tensor = tc.finish();
        prop_assert_eq!(tensor.len(), series.len());
        let mut back = tensor.into_backward();
        let mut step_expect = series.len();
        while let Some((step, values)) = back.next_matrix().unwrap() {
            step_expect -= 1;
            prop_assert_eq!(step, step_expect);
            for (a, b) in series[step].iter().zip(&values) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        prop_assert_eq!(step_expect, 0);
    }

    #[test]
    fn truncation_never_panics(
        (pattern, values) in pattern_strategy().prop_flat_map(|p| {
            let nnz = p.nnz();
            (Just(p), values_strategy(nnz))
        }),
        cut_frac in 0.0f64..1.0
    ) {
        let maps = StampMaps::new(&pattern);
        let reference = vec![0.0; values.len()];
        let (bytes, _) = compress_matrix(&values, &reference, &maps, &MascConfig::default());
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        // Either a clean error or (for cuts in the zero-padded tail) a
        // successful decode — never a panic.
        let _ = decompress_matrix(&bytes[..cut.min(bytes.len())], &reference, &maps);
    }
}
