//! Wire-format backward compatibility: golden v1 streams, minted by the
//! pre-chunk-header encoder, must keep decoding bit-exactly forever.
//!
//! The fixture inputs are regenerated in-test from a fixed LCG (no
//! transcendentals, so the values are reproducible to the bit on any
//! platform); the compressed fixtures under `tests/corpus_v1/` are frozen
//! artifacts of the era-1 encoder and must never be regenerated.

#![allow(clippy::disallowed_methods)] // tests may unwrap

use masc_compress::{
    decompress_matrix, decompress_matrix_parallel, CompressedTensor, MascConfig, StampMaps,
};
use masc_sparse::{Pattern, TripletMatrix};
use std::sync::Arc;

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state
}

/// Deterministic Jacobian-like values: sign structure plus a small wobble
/// derived from integer arithmetic only.
fn jac_values(nnz: usize, seed: u64) -> Vec<f64> {
    let mut s = seed;
    (0..nnz)
        .map(|k| {
            let wob = ((lcg(&mut s) >> 11) as f64) / (1u64 << 53) as f64;
            let sign = if k % 5 == 0 { 2.0 } else { -1.0 };
            sign * 1e-3 * (1.0 + 1e-4 * wob)
        })
        .collect()
}

fn banded_pattern(n: usize, band: usize) -> Arc<Pattern> {
    let mut t = TripletMatrix::new(n, n);
    for i in 0..n {
        for j in i.saturating_sub(band)..(i + band + 1).min(n) {
            t.add(i, j, 1.0);
        }
    }
    t.to_csr().pattern().clone()
}

fn empty_pattern() -> Arc<Pattern> {
    TripletMatrix::new(0, 0).to_csr().pattern().clone()
}

/// The fixed input corpus: (pattern, current values, reference values).
fn matrix_inputs() -> (Arc<Pattern>, Vec<f64>, Vec<f64>) {
    let p = banded_pattern(40, 2);
    let cur = jac_values(p.nnz(), 0x4D41_5343_0001);
    let reference = jac_values(p.nnz(), 0x4D41_5343_0002);
    (p, cur, reference)
}

/// The fixed tensor series: 6 steps over a 25-node tridiagonal pattern.
fn tensor_inputs() -> (Arc<Pattern>, Vec<Vec<f64>>) {
    let p = banded_pattern(25, 1);
    let series = (0..6u64)
        .map(|s| jac_values(p.nnz(), 0x7454_0000 + s))
        .collect();
    (p, series)
}

// Minting configs (era-1 encoder, recorded for posterity):
// - serial_default.bin       MascConfig::default()
// - serial_nomarkov.bin      markov off, checksum off
// - chunked_{17,1,huge}.bin  chunked_cfg(17 / 1 / 1<<20)
// - chunked_empty.bin        chunked_cfg(8), empty pattern
// - tensor_serial.bin        MascConfig::default()
// - tensor_chunked.bin       chunk_size 32, threads 2, min_warmup 4
fn chunked_cfg(chunk_size: usize) -> MascConfig {
    MascConfig {
        chunk_size,
        markov_min_warmup: 4,
        ..MascConfig::default()
    }
}

fn corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("corpus_v1")
}

fn fixture(name: &str) -> Vec<u8> {
    let path = corpus_dir().join(name);
    std::fs::read(&path).unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()))
}

fn assert_bits_eq(decoded: &[f64], expected: &[f64]) {
    assert_eq!(decoded.len(), expected.len());
    for (i, (a, b)) in decoded.iter().zip(expected).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "value {i} differs");
    }
}

#[test]
fn v1_serial_fixtures_decode_bit_exact() {
    let (p, cur, reference) = matrix_inputs();
    let maps = StampMaps::new(&p);
    for name in ["serial_default.bin", "serial_nomarkov.bin"] {
        let out = decompress_matrix(&fixture(name), &reference, &maps)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_bits_eq(&out, &cur);
    }
}

#[test]
fn v1_chunked_fixtures_decode_bit_exact() {
    let (p, cur, reference) = matrix_inputs();
    let maps = StampMaps::new(&p);
    for (name, chunk) in [
        ("chunked_17.bin", 17usize),
        ("chunked_1.bin", 1),
        ("chunked_huge.bin", 1 << 20),
    ] {
        // Decode with several thread counts: the stream fixes the chunk
        // grid, so the decoder config's chunk_size must not matter.
        for threads in [1usize, 4] {
            let cfg = MascConfig {
                threads,
                ..chunked_cfg(chunk)
            };
            let out = decompress_matrix_parallel(&fixture(name), &reference, &maps, &cfg)
                .unwrap_or_else(|e| panic!("{name} (threads {threads}): {e}"));
            assert_bits_eq(&out, &cur);
        }
    }
}

#[test]
fn v1_empty_chunked_fixture_decodes() {
    let ep = empty_pattern();
    let emaps = StampMaps::new(&ep);
    let out =
        decompress_matrix_parallel(&fixture("chunked_empty.bin"), &[], &emaps, &chunked_cfg(8))
            .unwrap();
    assert!(out.is_empty());
}

#[test]
fn v1_tensor_fixtures_decode_bit_exact() {
    let (_, series) = tensor_inputs();
    for name in ["tensor_serial.bin", "tensor_chunked.bin"] {
        let tensor =
            CompressedTensor::from_bytes(&fixture(name)).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(tensor.len(), series.len(), "{name}");
        let all = tensor
            .decompress_all()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        for (step, (a, b)) in all.iter().zip(&series).enumerate() {
            assert_bits_eq(a, b);
            let _ = step;
        }
    }
}

#[test]
fn v1_truncated_fixtures_error_not_panic() {
    let (p, _, reference) = matrix_inputs();
    let maps = StampMaps::new(&p);
    let bytes = fixture("chunked_17.bin");
    for cut in [0, 1, 2, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            decompress_matrix_parallel(&bytes[..cut], &reference, &maps, &chunked_cfg(17)).is_err(),
            "cut {cut} should fail"
        );
    }
}
