//! Wire-format backward compatibility: golden v1 streams, minted by the
//! pre-chunk-header encoder, must keep decoding bit-exactly forever.
//!
//! The fixture inputs are regenerated in-test from a fixed LCG (no
//! transcendentals, so the values are reproducible to the bit on any
//! platform); the compressed fixtures under `tests/corpus_v1/` are frozen
//! artifacts of the era-1 encoder and must never be regenerated.

#![allow(clippy::disallowed_methods)] // tests may unwrap

use masc_compress::{
    compress_matrix_parallel, decode_block, decompress_matrix, decompress_matrix_parallel,
    CompressedTensor, MascConfig, StampMaps,
};
use masc_sparse::{Pattern, TripletMatrix};
use std::sync::Arc;

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state
}

/// Deterministic Jacobian-like values: sign structure plus a small wobble
/// derived from integer arithmetic only.
fn jac_values(nnz: usize, seed: u64) -> Vec<f64> {
    let mut s = seed;
    (0..nnz)
        .map(|k| {
            let wob = ((lcg(&mut s) >> 11) as f64) / (1u64 << 53) as f64;
            let sign = if k % 5 == 0 { 2.0 } else { -1.0 };
            sign * 1e-3 * (1.0 + 1e-4 * wob)
        })
        .collect()
}

fn banded_pattern(n: usize, band: usize) -> Arc<Pattern> {
    let mut t = TripletMatrix::new(n, n);
    for i in 0..n {
        for j in i.saturating_sub(band)..(i + band + 1).min(n) {
            t.add(i, j, 1.0);
        }
    }
    t.to_csr().pattern().clone()
}

fn empty_pattern() -> Arc<Pattern> {
    TripletMatrix::new(0, 0).to_csr().pattern().clone()
}

/// The fixed input corpus: (pattern, current values, reference values).
fn matrix_inputs() -> (Arc<Pattern>, Vec<f64>, Vec<f64>) {
    let p = banded_pattern(40, 2);
    let cur = jac_values(p.nnz(), 0x4D41_5343_0001);
    let reference = jac_values(p.nnz(), 0x4D41_5343_0002);
    (p, cur, reference)
}

/// The fixed tensor series: 6 steps over a 25-node tridiagonal pattern.
fn tensor_inputs() -> (Arc<Pattern>, Vec<Vec<f64>>) {
    let p = banded_pattern(25, 1);
    let series = (0..6u64)
        .map(|s| jac_values(p.nnz(), 0x7454_0000 + s))
        .collect();
    (p, series)
}

// Minting configs (era-1 encoder, recorded for posterity):
// - serial_default.bin       MascConfig::default()
// - serial_nomarkov.bin      markov off, checksum off
// - chunked_{17,1,huge}.bin  chunked_cfg(17 / 1 / 1<<20)
// - chunked_empty.bin        chunked_cfg(8), empty pattern
// - tensor_serial.bin        MascConfig::default()
// - tensor_chunked.bin       chunk_size 32, threads 2, min_warmup 4
fn chunked_cfg(chunk_size: usize) -> MascConfig {
    MascConfig {
        chunk_size,
        markov_min_warmup: 4,
        ..MascConfig::default()
    }
}

fn corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("corpus_v1")
}

fn fixture(name: &str) -> Vec<u8> {
    let path = corpus_dir().join(name);
    std::fs::read(&path).unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()))
}

fn assert_bits_eq(decoded: &[f64], expected: &[f64]) {
    assert_eq!(decoded.len(), expected.len());
    for (i, (a, b)) in decoded.iter().zip(expected).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "value {i} differs");
    }
}

#[test]
fn v1_serial_fixtures_decode_bit_exact() {
    let (p, cur, reference) = matrix_inputs();
    let maps = StampMaps::new(&p);
    for name in ["serial_default.bin", "serial_nomarkov.bin"] {
        let out = decompress_matrix(&fixture(name), &reference, &maps)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_bits_eq(&out, &cur);
    }
}

#[test]
fn v1_chunked_fixtures_decode_bit_exact() {
    let (p, cur, reference) = matrix_inputs();
    let maps = StampMaps::new(&p);
    for (name, chunk) in [
        ("chunked_17.bin", 17usize),
        ("chunked_1.bin", 1),
        ("chunked_huge.bin", 1 << 20),
    ] {
        // Decode with several thread counts: the stream fixes the chunk
        // grid, so the decoder config's chunk_size must not matter.
        for threads in [1usize, 4] {
            let cfg = MascConfig {
                threads,
                ..chunked_cfg(chunk)
            };
            let out = decompress_matrix_parallel(&fixture(name), &reference, &maps, &cfg)
                .unwrap_or_else(|e| panic!("{name} (threads {threads}): {e}"));
            assert_bits_eq(&out, &cur);
        }
    }
}

#[test]
fn v1_empty_chunked_fixture_decodes() {
    let ep = empty_pattern();
    let emaps = StampMaps::new(&ep);
    let out =
        decompress_matrix_parallel(&fixture("chunked_empty.bin"), &[], &emaps, &chunked_cfg(8))
            .unwrap();
    assert!(out.is_empty());
}

#[test]
fn v1_tensor_fixtures_decode_bit_exact() {
    let (_, series) = tensor_inputs();
    for name in ["tensor_serial.bin", "tensor_chunked.bin"] {
        let tensor =
            CompressedTensor::from_bytes(&fixture(name)).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(tensor.len(), series.len(), "{name}");
        let all = tensor
            .decompress_all()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        for (step, (a, b)) in all.iter().zip(&series).enumerate() {
            assert_bits_eq(a, b);
            let _ = step;
        }
    }
}

#[test]
fn v1_truncated_fixtures_error_not_panic() {
    let (p, _, reference) = matrix_inputs();
    let maps = StampMaps::new(&p);
    let bytes = fixture("chunked_17.bin");
    for cut in [0, 1, 2, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            decompress_matrix_parallel(&bytes[..cut], &reference, &maps, &chunked_cfg(17)).is_err(),
            "cut {cut} should fail"
        );
    }
}

// ---------------------------------------------------------------------------
// Era sniff on hostile short streams
// ---------------------------------------------------------------------------
//
// `decode_block` sniffs the era off the first header byte (serial vs
// chunked via FLAG_CHUNKED, era-1 vs era-2 chunked via FLAG_CHUNK_HEADERS)
// and dispatches. *Every* strict prefix of a valid stream — any era — must
// come back as a structured error from the sniffing entry point: never a
// panic, and never a misclassified decode that "succeeds" on garbage.

fn corpus_v2_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("corpus_v2")
}

fn fixture_v2(name: &str) -> Vec<u8> {
    let path = corpus_v2_dir().join(name);
    std::fs::read(&path).unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()))
}

/// Mints `corpus_v2/chunked_headers_17.bin` — the era-2 (chunk-header)
/// encoding of the same fixed matrix inputs as the era-1 corpus. Frozen
/// once; rerun only to create the file on a fresh checkout of this test's
/// first revision, never to regenerate it:
///
/// ```sh
/// MASC_MINT_V2=1 cargo test -p masc-compress --test format_compat mint_v2
/// ```
#[test]
fn mint_v2_fixtures() {
    if std::env::var_os("MASC_MINT_V2").is_none() {
        return;
    }
    let (p, cur, reference) = matrix_inputs();
    let maps = StampMaps::new(&p);
    let (bytes, _) = compress_matrix_parallel(&cur, &reference, &maps, &chunked_cfg(17));
    std::fs::create_dir_all(corpus_v2_dir()).unwrap();
    std::fs::write(corpus_v2_dir().join("chunked_headers_17.bin"), bytes).unwrap();
}

#[test]
fn v2_chunk_header_fixture_decodes_bit_exact() {
    let (p, cur, reference) = matrix_inputs();
    let maps = StampMaps::new(&p);
    let bytes = fixture_v2("chunked_headers_17.bin");
    // Era-2 signature: FLAG_CHUNKED (1<<3) and FLAG_CHUNK_HEADERS (1<<5)
    // both set in the first header byte.
    assert_eq!(bytes[0] & (1 << 3), 1 << 3, "era-2 stream must be chunked");
    assert_eq!(
        bytes[0] & (1 << 5),
        1 << 5,
        "era-2 stream carries chunk headers"
    );
    for threads in [1usize, 4] {
        let cfg = MascConfig {
            threads,
            ..chunked_cfg(17)
        };
        let out = decode_block(&bytes, &reference, &maps, &cfg)
            .unwrap_or_else(|e| panic!("threads {threads}: {e}"));
        assert_bits_eq(&out, &cur);
    }
}

/// Every strict prefix of every matrix fixture, era-1 and era-2, fed to
/// the sniffing `decode_block` entry point: structured error, no panic,
/// no bogus success.
#[test]
fn era_sniff_every_prefix_truncation_errors() {
    let (p, _, reference) = matrix_inputs();
    let maps = StampMaps::new(&p);
    let cfg = chunked_cfg(17);
    let fixtures: Vec<(&str, Vec<u8>)> = vec![
        ("serial_default.bin", fixture("serial_default.bin")),
        ("serial_nomarkov.bin", fixture("serial_nomarkov.bin")),
        ("chunked_17.bin", fixture("chunked_17.bin")),
        ("chunked_1.bin", fixture("chunked_1.bin")),
        ("chunked_huge.bin", fixture("chunked_huge.bin")),
        (
            "v2/chunked_headers_17.bin",
            fixture_v2("chunked_headers_17.bin"),
        ),
    ];
    for (name, bytes) in &fixtures {
        for cut in 0..bytes.len() {
            let result = decode_block(&bytes[..cut], &reference, &maps, &cfg);
            assert!(
                result.is_err(),
                "{name} truncated to {cut}/{} bytes must error, got Ok",
                bytes.len()
            );
        }
    }
}

/// Every strict prefix of the tensor fixtures must fail structured —
/// either at `from_bytes` framing or when the surviving blocks decode.
#[test]
fn tensor_every_prefix_truncation_errors() {
    for name in ["tensor_serial.bin", "tensor_chunked.bin"] {
        let bytes = fixture(name);
        for cut in 0..bytes.len() {
            let result =
                CompressedTensor::from_bytes(&bytes[..cut]).and_then(|t| t.decompress_all());
            assert!(
                result.is_err(),
                "{name} truncated to {cut}/{} bytes must error, got Ok",
                bytes.len()
            );
        }
    }
}
