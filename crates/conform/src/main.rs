//! `masc-conform` — differential conformance & fuzz harness CLI.
//!
//! ```text
//! masc-conform [--budget <secs>] [--seed <u64>] [--only <oracle>]
//!              [--corpus-dir <dir>] [--max-cases <n>] [--defect <name>]
//!              [--list] [--replay] [--model-check] [--verbose]
//! ```
//!
//! Default mode fuzzes every oracle round-robin for the budget, then
//! replays the crash corpus as a regression pass. `--replay` skips the
//! fuzzing. `--defect` enables an injected defect (requires the
//! `mutation-hooks` builds this binary links against) to demonstrate the
//! harness catches it. `--model-check` skips fuzzing entirely and runs
//! the deterministic interleaving explorer over the worker-pool
//! coordination models instead (budgeted by `--budget`; failures print a
//! `MASC_SCHED_REPRO` replay line).

use masc_conform::{all_oracles, runner, RunConfig};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

struct Cli {
    config: RunConfig,
    list: bool,
    replay_only: bool,
    model_check: bool,
    fuzz_corpus_dir: PathBuf,
}

fn usage() -> ! {
    eprintln!(
        "usage: masc-conform [--budget <secs>] [--seed <u64>] [--only <oracle>]\n\
         \x20                   [--corpus-dir <dir>] [--max-cases <n>] [--defect <name>]\n\
         \x20                   [--list] [--replay] [--model-check] [--verbose]\n\
         defects: wrong-stamp-candidate | varint-len-off-by-one | stale-spill-block\n\
         \x20        | lost-wakeup-close (model-check only)"
    );
    std::process::exit(2);
}

fn arm_defect(name: &str) {
    match name {
        "wrong-stamp-candidate" => masc_compress::mutation::set_defect(
            masc_compress::mutation::Defect::WrongStampCandidate,
        ),
        "varint-len-off-by-one" => {
            masc_compress::mutation::set_defect(masc_compress::mutation::Defect::VarintLenOffByOne)
        }
        "stale-spill-block" => {
            masc_adjoint::mutation::set_defect(masc_adjoint::mutation::Defect::StaleSpillBlock)
        }
        "lost-wakeup-close" => {
            masc_serve::mutation::set_defect(masc_serve::mutation::Defect::LostWakeupClose)
        }
        other => {
            eprintln!("unknown defect {other:?}");
            usage();
        }
    }
}

fn parse_args() -> Cli {
    let mut cli = Cli {
        config: RunConfig {
            corpus_dir: Some(PathBuf::from("tests/corpus")),
            ..RunConfig::default()
        },
        list: false,
        replay_only: false,
        model_check: false,
        fuzz_corpus_dir: PathBuf::from("tests/corpus"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage();
            })
        };
        match arg.as_str() {
            "--budget" => {
                let secs: f64 = value("--budget").parse().unwrap_or_else(|_| usage());
                cli.config.budget = Duration::from_secs_f64(secs);
            }
            "--seed" => cli.config.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--only" => cli.config.only = Some(value("--only")),
            "--corpus-dir" => {
                let dir = PathBuf::from(value("--corpus-dir"));
                cli.config.corpus_dir = Some(dir.clone());
                cli.fuzz_corpus_dir = dir;
            }
            "--max-cases" => {
                cli.config.max_cases_per_oracle =
                    Some(value("--max-cases").parse().unwrap_or_else(|_| usage()));
            }
            "--defect" => arm_defect(&value("--defect")),
            "--list" => cli.list = true,
            "--replay" => cli.replay_only = true,
            "--model-check" => cli.model_check = true,
            "--verbose" => cli.config.verbose = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
    }
    cli
}

/// `--model-check`: explores the worker-pool coordination models within
/// the wall-clock budget, printing per-model schedule counts and, on
/// failure, the minimized schedule and its replay seed.
fn run_model_check(cli: &Cli) -> ExitCode {
    use masc_conform::model;
    let harnesses = model::models();
    let per_model = cli.config.budget / harnesses.len().max(1) as u32;
    let mut explorer = model::model_explorer(Some(per_model));
    explorer.seed = explorer.seed.wrapping_add(cli.config.seed);
    let started = std::time::Instant::now();
    let outcomes = model::check_all(&explorer);
    let mut failed = false;
    let total: usize = outcomes.iter().map(|o| o.schedules).sum();
    println!(
        "model check: {} schedules across {} models in {:.1?} \
         (budget {:.1?}, {} max preemptions)",
        total,
        outcomes.len(),
        started.elapsed(),
        cli.config.budget,
        explorer.max_preemptions,
    );
    for outcome in &outcomes {
        match &outcome.failure {
            None => println!(
                "  {:<24} {:>5} schedules  ok",
                outcome.name, outcome.schedules
            ),
            Some(failure) => {
                failed = true;
                println!(
                    "  {:<24} {:>5} schedules  FAIL",
                    outcome.name, outcome.schedules
                );
                println!("    {}", failure.kind);
                println!(
                    "    minimized to {} preemption(s) over {} decision(s)",
                    failure.preemptions,
                    failure.trace.len()
                );
                println!(
                    "    replay: MASC_SCHED_REPRO={:x} masc-conform --model-check",
                    failure.seed
                );
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let cli = parse_args();
    let oracles = all_oracles();

    if cli.list {
        for oracle in &oracles {
            println!("{:<20} {}", oracle.name(), oracle.describe());
        }
        return ExitCode::SUCCESS;
    }

    if cli.model_check {
        return run_model_check(&cli);
    }

    let mut failed = false;

    if !cli.replay_only {
        let report = runner::run(&oracles, &cli.config);
        println!(
            "fuzzed {} cases across {} oracles in {:.1?}:",
            report.total_cases(),
            report.oracles.len(),
            report.elapsed
        );
        for oracle in &report.oracles {
            let status = if oracle.failures.is_empty() {
                "ok"
            } else {
                "FAIL"
            };
            println!("  {:<20} {:>7} cases  {status}", oracle.name, oracle.cases);
            for failure in &oracle.failures {
                failed = true;
                println!(
                    "    seed {:#018x}: {}",
                    failure.seed,
                    failure.message.lines().next().unwrap_or("")
                );
                println!(
                    "    minimized to {} bytes{}",
                    failure.entry.payload.len(),
                    failure
                        .corpus_path
                        .as_ref()
                        .map(|p| format!(", saved as {}", p.display()))
                        .unwrap_or_default()
                );
                println!(
                    "    replay: MASC_PROP_REPRO={:#x} masc-conform --only {}",
                    failure.seed, oracle.name
                );
            }
        }
    }

    match runner::replay_corpus(&oracles, &cli.fuzz_corpus_dir) {
        Ok(regressions) if regressions.is_empty() => {
            println!("corpus replay: ok");
        }
        Ok(regressions) => {
            failed = true;
            println!("corpus replay: {} regression(s)", regressions.len());
            for (path, message) in regressions {
                println!(
                    "  {}: {}",
                    path.display(),
                    message.lines().next().unwrap_or("")
                );
            }
        }
        Err(e) => {
            failed = true;
            println!("corpus replay failed: {e}");
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
