//! Differential conformance and structure-aware fuzzing for MASC.
//!
//! This crate cross-checks every layer of the workspace against an
//! independent reference for the same computation:
//!
//! - every codec primitive and baseline compressor round-trips byte-exact
//!   (`codec-roundtrip`, `baseline-roundtrip`) and decodes arbitrary bytes
//!   without panicking (`codec-decode`, `baseline-decode`, `cache-decode`);
//! - the MASC tensor compressor round-trips bit-exact through every
//!   in-memory, serialized, and chained-backward path (`tensor-roundtrip`,
//!   `tensor-decode`);
//! - every [`masc_adjoint::JacobianStore`] backend produces the same
//!   objective values and adjoint gradients as the raw in-memory store
//!   (`store-equiv`), and the adjoint agrees with direct (forward)
//!   sensitivities and finite differences (`adjoint-oracle`);
//! - the netlist parser accepts/rejects without panicking and agrees with
//!   a serialize → re-parse round trip (`parser-roundtrip`).
//!
//! Inputs are generated from per-case seeds derived exactly like
//! `masc_testkit::prop` derives them, so any failure is replayable with
//! `MASC_PROP_REPRO=<hex> masc-conform --only <oracle>`. Failures are
//! minimized by a structure-aware shrinker and persisted under
//! `tests/corpus/`, which doubles as the regression suite.
//!
//! The harness itself is validated by mutation checks (see
//! `tests/mutation.rs`): deliberately injected defects behind the
//! `mutation-hooks` feature of `masc-compress`/`masc-adjoint`/`masc-serve`
//! must be caught by these oracles within a bounded budget.
//!
//! Scheduling bugs are out of reach of value fuzzing, so the worker-pool
//! coordination cores are additionally model-checked ([`model`]) with
//! the deterministic interleaving explorer (`masc-conform --model-check`);
//! the serve `lost-wakeup-close` defect validates that harness the same
//! way the fuzz defects validate the oracles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod geninput;
pub mod minimize;
pub mod model;
pub mod oracle;
pub mod oracles;
pub mod runner;

pub use oracle::{run_input, Oracle};
pub use runner::{run, FailureReport, OracleReport, RunConfig, RunReport};

/// All conformance oracles, in round-robin execution order.
pub fn all_oracles() -> Vec<Box<dyn Oracle>> {
    vec![
        Box::new(oracles::codec::CodecRoundtrip),
        Box::new(oracles::codec::CodecDecode),
        Box::new(oracles::baselines::BaselineRoundtrip),
        Box::new(oracles::baselines::BaselineDecode),
        Box::new(oracles::tensor::TensorRoundtrip),
        Box::new(oracles::tensor::TensorDecode),
        Box::new(oracles::matrix::ChunkedRoundtrip),
        Box::new(oracles::matrix::ChunkedHeaderDecode),
        Box::new(oracles::cache::CacheDecode),
        Box::new(oracles::parser::ParserRoundtrip),
        Box::new(oracles::store::StoreEquivalence),
        Box::new(oracles::store::AdjointOracle),
        Box::new(oracles::sweep::SweepEquivalence),
        Box::new(oracles::serve::ServeCache),
        Box::new(oracles::window::WindowEquivalence),
    ]
}

/// FNV-1a over `bytes` — the same per-name hash `masc_testkit::prop` uses,
/// so `MASC_PROP_REPRO` seeds mean the same thing here.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Per-case seed: base seed mixed with the oracle name and case index,
/// exactly like `masc_testkit::prop::check` derives case seeds.
pub fn case_seed(base: u64, oracle: &str, case: u64) -> u64 {
    (base ^ fnv1a(oracle.as_bytes())) ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}
