//! Budgeted round-robin fuzz driver with shrink-and-persist on failure.

use crate::corpus::{self, CorpusEntry};
use crate::oracle::{run_input, Oracle};
use crate::{case_seed, minimize};
use masc_testkit::Rng;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Configuration for one [`run`].
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Wall-clock fuzz budget, spread round-robin across oracles.
    pub budget: Duration,
    /// Base seed; per-case seeds are derived via [`case_seed`].
    pub seed: u64,
    /// Restrict the run to the oracle with this name.
    pub only: Option<String>,
    /// Where to persist minimized failures (`None` disables persistence).
    pub corpus_dir: Option<PathBuf>,
    /// Optional hard cap on cases per oracle (mainly for tests).
    pub max_cases_per_oracle: Option<u64>,
    /// Budget of candidate executions for the minimizer, per failure.
    pub shrink_iters: u32,
    /// Print per-case progress to stderr.
    pub verbose: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            budget: Duration::from_secs(10),
            seed: 0,
            only: None,
            corpus_dir: None,
            max_cases_per_oracle: None,
            shrink_iters: 2_000,
            verbose: false,
        }
    }
}

/// One persisted-or-reported failure.
#[derive(Debug)]
pub struct FailureReport {
    /// Case seed that produced the original failing input.
    pub seed: u64,
    /// Failure message from the oracle (or captured panic).
    pub message: String,
    /// Corpus path the minimized entry was written to, if persistence was on.
    pub corpus_path: Option<PathBuf>,
    /// The minimized entry itself.
    pub entry: CorpusEntry,
}

/// Per-oracle outcome of a run.
#[derive(Debug)]
pub struct OracleReport {
    /// Oracle name.
    pub name: &'static str,
    /// Cases executed.
    pub cases: u64,
    /// Failures found (fuzzing of an oracle stops at its first failure).
    pub failures: Vec<FailureReport>,
}

/// Whole-run outcome.
#[derive(Debug)]
pub struct RunReport {
    /// Per-oracle outcomes, in execution order.
    pub oracles: Vec<OracleReport>,
    /// Wall-clock time actually spent.
    pub elapsed: Duration,
}

impl RunReport {
    /// Total cases executed across all oracles.
    pub fn total_cases(&self) -> u64 {
        self.oracles.iter().map(|o| o.cases).sum()
    }

    /// Total failures across all oracles.
    pub fn total_failures(&self) -> usize {
        self.oracles.iter().map(|o| o.failures.len()).sum()
    }
}

/// Silences the default panic hook for the duration of a closure, so
/// expected decoder panics (which [`run_input`] converts to failures)
/// don't spray backtraces over the report.
fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

/// Runs one failing input through shrinking and (optionally) persists the
/// minimized entry.
fn handle_failure(
    oracle: &dyn Oracle,
    cfg: &RunConfig,
    seed: u64,
    input: &[u8],
    message: String,
) -> FailureReport {
    let minimized = minimize::minimize(
        input,
        cfg.shrink_iters,
        |cand| oracle.shrink(cand),
        |cand| run_input(oracle, cand).is_err(),
    );
    let entry = CorpusEntry {
        oracle: oracle.name().to_string(),
        seed,
        payload: minimized,
    };
    let corpus_path =
        cfg.corpus_dir
            .as_deref()
            .and_then(|dir| match corpus::write_entry(dir, &entry) {
                Ok(path) => Some(path),
                Err(e) => {
                    eprintln!("warning: could not persist corpus entry: {e}");
                    None
                }
            });
    FailureReport {
        seed,
        message,
        corpus_path,
        entry,
    }
}

/// Fuzzes every selected oracle round-robin until the budget (or per-oracle
/// case cap) is exhausted. An oracle that fails stops fuzzing — its failure
/// is minimized, persisted, and reported — while the others continue.
///
/// If `MASC_PROP_REPRO` is set (decimal or `0x`-hex), each selected oracle
/// runs exactly once with that case seed instead of fuzzing.
pub fn run(oracles: &[Box<dyn Oracle>], cfg: &RunConfig) -> RunReport {
    let started = Instant::now();
    let selected: Vec<&dyn Oracle> = oracles
        .iter()
        .map(AsRef::as_ref)
        .filter(|o| cfg.only.as_deref().is_none_or(|only| only == o.name()))
        .collect();

    let repro = std::env::var("MASC_PROP_REPRO").ok().and_then(|raw| {
        let raw = raw.trim();
        raw.strip_prefix("0x")
            .map_or_else(|| raw.parse().ok(), |hex| u64::from_str_radix(hex, 16).ok())
    });

    let mut reports: Vec<OracleReport> = selected
        .iter()
        .map(|o| OracleReport {
            name: o.name(),
            cases: 0,
            failures: Vec::new(),
        })
        .collect();

    with_quiet_panics(|| {
        if let Some(seed) = repro {
            for (oracle, report) in selected.iter().zip(&mut reports) {
                let mut rng = Rng::new(seed);
                let input = oracle.generate(&mut rng);
                report.cases = 1;
                if let Err(message) = run_input(*oracle, &input) {
                    report
                        .failures
                        .push(handle_failure(*oracle, cfg, seed, &input, message));
                }
            }
            return;
        }

        let mut case: u64 = 0;
        let mut live: Vec<usize> = (0..selected.len()).collect();
        while !live.is_empty() && started.elapsed() < cfg.budget {
            live.retain(|&idx| {
                if started.elapsed() >= cfg.budget {
                    return false;
                }
                let oracle = selected[idx];
                let report = &mut reports[idx];
                let seed = case_seed(cfg.seed, oracle.name(), case);
                let mut rng = Rng::new(seed);
                let input = oracle.generate(&mut rng);
                report.cases += 1;
                if cfg.verbose {
                    eprintln!(
                        "[{}] case {} seed {seed:#018x} ({} bytes)",
                        oracle.name(),
                        report.cases,
                        input.len()
                    );
                }
                if let Err(message) = run_input(oracle, &input) {
                    report
                        .failures
                        .push(handle_failure(oracle, cfg, seed, &input, message));
                    return false;
                }
                cfg.max_cases_per_oracle
                    .is_none_or(|cap| report.cases < cap)
            });
            case += 1;
        }
    });

    RunReport {
        oracles: reports,
        elapsed: started.elapsed(),
    }
}

/// Replays every corpus entry under `dir` through its recorded oracle.
/// Returns the failures (path + message); an empty vector means the whole
/// corpus passes.
pub fn replay_corpus(
    oracles: &[Box<dyn Oracle>],
    dir: &std::path::Path,
) -> std::io::Result<Vec<(PathBuf, String)>> {
    let entries = corpus::load_dir(dir)?;
    let mut failures = Vec::new();
    with_quiet_panics(|| {
        for (path, entry) in entries {
            let Some(oracle) = oracles.iter().find(|o| o.name() == entry.oracle) else {
                failures.push((path, format!("unknown oracle {:?}", entry.oracle)));
                continue;
            };
            if let Err(message) = run_input(oracle.as_ref(), &entry.payload) {
                failures.push((path, message));
            }
        }
    });
    Ok(failures)
}
