//! Shared input construction: structured random bytes and mutations of
//! known-valid encodings.

use masc_testkit::Rng;

/// Random bytes with run structure (fuzzing pure noise wastes most cases
/// on the decoders' first length check).
pub fn structured_bytes(rng: &mut Rng, max_len: usize) -> Vec<u8> {
    let len = rng.range_usize(0, max_len);
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        match rng.below(4) {
            // A run of one repeated byte.
            0 => {
                let b = rng.next_u32() as u8;
                let n = rng.range_usize(1, 16).min(len - out.len());
                out.extend(std::iter::repeat_n(b, n));
            }
            // A little-endian varint-looking chunk.
            1 => {
                let n = rng.range_usize(1, 4).min(len - out.len());
                for _ in 0..n {
                    out.push(rng.next_u32() as u8 | 0x80);
                }
                out.push(rng.next_u32() as u8 & 0x7F);
            }
            // Raw random bytes.
            _ => {
                let n = rng.range_usize(1, 12).min(len - out.len());
                for _ in 0..n {
                    out.push(rng.next_u32() as u8);
                }
            }
        }
    }
    out.truncate(len);
    out
}

/// Applies 1–8 random edits (bit flips, byte sets, inserts, deletes,
/// truncation, chunk duplication) to `data`.
pub fn mutate(rng: &mut Rng, data: &mut Vec<u8>) {
    let edits = rng.range_usize(1, 9);
    for _ in 0..edits {
        if data.is_empty() {
            data.push(rng.next_u32() as u8);
            continue;
        }
        let i = rng.range_usize(0, data.len());
        match rng.below(6) {
            0 => data[i] ^= 1 << rng.below(8),
            1 => data[i] = rng.next_u32() as u8,
            2 => data.insert(i, rng.next_u32() as u8),
            3 => {
                data.remove(i);
            }
            4 => data.truncate(i),
            _ => {
                let n = rng.range_usize(1, 8).min(data.len() - i);
                let chunk: Vec<u8> = data[i..i + n].to_vec();
                data.splice(i..i, chunk);
            }
        }
    }
}

/// A random finite-or-special `f64` stream serialized as little-endian
/// bytes: the wire format of the `baseline-roundtrip` oracle.
pub fn f64_stream_bytes(rng: &mut Rng, max_values: usize) -> Vec<u8> {
    let n = rng.range_usize(0, max_values);
    let mut out = Vec::with_capacity(n * 8);
    let mut smooth = 1.0e-3;
    for _ in 0..n {
        let v = match rng.below(8) {
            // Smooth series — what Jacobian streams actually look like.
            0..=4 => {
                smooth += rng.range_f64(-1.0, 1.0) * 1e-4;
                smooth
            }
            5 => rng.range_f64(-1e6, 1e6),
            6 => f64::from_bits(rng.next_u64()),
            _ => *[
                0.0,
                -0.0,
                f64::INFINITY,
                f64::NEG_INFINITY,
                f64::NAN,
                5e-324,
            ]
            .get(rng.below(6) as usize)
            .expect("index below 6"),
        };
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Deserializes the `f64_stream_bytes` wire format (whole 8-byte words;
/// a trailing partial word is ignored).
pub fn f64_stream(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect()
}
