//! Greedy delta-debugging style input minimization.
//!
//! Failing inputs are shrunk before they are written to the corpus: a
//! minimized entry replays faster, and the shrink loop's "candidate must
//! still fail" rule guarantees every persisted entry actually reproduces
//! the failure.

/// Generic byte-level shrink candidates: chunk removals from coarse to
/// fine, truncations, and byte zeroing.
pub fn byte_candidates(input: &[u8]) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    if input.is_empty() {
        return out;
    }
    // Halves, quarters, eighths removed.
    for denom in [2usize, 4, 8] {
        let chunk = input.len().div_ceil(denom);
        if chunk == 0 || chunk == input.len() {
            continue;
        }
        let mut start = 0;
        while start < input.len() {
            let end = (start + chunk).min(input.len());
            let mut cand = Vec::with_capacity(input.len() - (end - start));
            cand.extend_from_slice(&input[..start]);
            cand.extend_from_slice(&input[end..]);
            out.push(cand);
            start = end;
        }
    }
    // Truncations.
    out.push(input[..input.len() / 2].to_vec());
    out.push(input[..input.len() - 1].to_vec());
    // Zero a few bytes (canonicalizes surviving content).
    for i in [0, input.len() / 2, input.len() - 1] {
        if input[i] != 0 {
            let mut cand = input.to_vec();
            cand[i] = 0;
            out.push(cand);
        }
    }
    out
}

/// Line-oriented shrink candidates for text inputs (netlist decks): drop
/// each line, then fall back to byte candidates.
pub fn line_candidates(input: &[u8]) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    let lines: Vec<&[u8]> = input.split(|&b| b == b'\n').collect();
    if lines.len() > 1 {
        for skip in 0..lines.len() {
            if lines[skip].is_empty() {
                continue;
            }
            // Rejoin with '\n' so dropping one segment changes nothing else.
            let mut cand = Vec::with_capacity(input.len());
            let mut first = true;
            for (i, line) in lines.iter().enumerate() {
                if i == skip {
                    continue;
                }
                if !first {
                    cand.push(b'\n');
                }
                first = false;
                cand.extend_from_slice(line);
            }
            if cand.len() < input.len() {
                out.push(cand);
            }
        }
    }
    out.extend(byte_candidates(input));
    out
}

/// Greedily minimizes `input` with `shrink`-proposed candidates, keeping
/// any candidate for which `still_fails` returns true, within a budget of
/// `max_iters` candidate executions.
pub fn minimize(
    input: &[u8],
    max_iters: u32,
    shrink: impl Fn(&[u8]) -> Vec<Vec<u8>>,
    mut still_fails: impl FnMut(&[u8]) -> bool,
) -> Vec<u8> {
    let mut current = input.to_vec();
    let mut budget = max_iters;
    'outer: while budget > 0 {
        for cand in shrink(&current) {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            let smaller =
                cand.len() < current.len() || (cand.len() == current.len() && cand < current);
            if smaller && still_fails(&cand) {
                current = cand;
                continue 'outer;
            }
        }
        break;
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_to_single_trigger_byte() {
        let input: Vec<u8> = (0..64).map(|i| if i == 40 { 0xFF } else { i }).collect();
        let min = minimize(&input, 500, byte_candidates, |cand| cand.contains(&0xFF));
        assert_eq!(min, vec![0xFF]);
    }

    #[test]
    fn line_candidates_drop_whole_lines() {
        let input = b"keep\ndrop\nkeep2\n";
        let cands = line_candidates(input);
        assert!(cands.iter().any(|c| c == b"keep\nkeep2\n"));
    }
}
