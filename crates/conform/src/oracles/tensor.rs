//! MASC tensor-compressor oracles.
//!
//! `tensor-roundtrip` is the harness's most important differential check:
//! the paper's lossless claim means every configuration (Markov on/off,
//! sign inversion, checksums, serial and chunked-parallel codecs) must
//! reproduce the pushed value stream bit-exact through all three decode
//! paths — in-memory, serialized (`to_bytes`/`from_bytes`), and the
//! chained newest-first backward decoder. This is the oracle that catches
//! the `WrongStampCandidate` and `VarintLenOffByOne` injected defects.

use crate::geninput;
use crate::oracle::Oracle;
use masc_compress::{CompressedTensor, MascConfig, TensorCompressor};
use masc_sparse::{Pattern, TripletMatrix};
use masc_testkit::Rng;
use std::sync::Arc;

/// Wire header: n, band, steps, flags, threads, chunk lo, chunk hi.
const HEADER_LEN: usize = 7;

/// A structured tensor case decoded from fuzz bytes.
struct TensorCase {
    pattern: Arc<Pattern>,
    config: MascConfig,
    steps: Vec<Vec<f64>>,
}

/// Banded `n × n` pattern with half-bandwidth `band` — the MNA-like shape
/// the stamp predictors are built for.
fn banded_pattern(n: usize, band: usize) -> Arc<Pattern> {
    let mut t = TripletMatrix::new(n, n);
    for i in 0..n {
        for j in i.saturating_sub(band)..(i + band + 1).min(n) {
            t.add(i, j, 1.0);
        }
    }
    t.to_csr().pattern().clone()
}

fn decode_case(input: &[u8]) -> Option<TensorCase> {
    let header = input.get(..HEADER_LEN)?;
    let n = 1 + (header[0] as usize) % 10;
    let band = (header[1] as usize) % n.min(3);
    let step_count = (header[2] as usize) % 12;
    let flags = header[3];
    let threads = 1 + (header[4] as usize) % 2;
    let chunk_size = (usize::from(header[5]) | usize::from(header[6]) << 8) % 65;
    let pattern = banded_pattern(n, band);
    let config = MascConfig {
        markov: flags & 1 != 0,
        sign_invert_diag: flags & 2 != 0,
        checksum: flags & 4 != 0,
        chunk_size,
        threads,
        // Seed intervals split the block chain into independently
        // decodable groups — the era-2 parallel-decode seam.
        seed_interval: (usize::from(flags) >> 5) & 3,
        ..MascConfig::default()
    };
    // Values come from the remaining payload, cycled so every input
    // length is a valid case (short payloads shrink cleanly).
    let payload = &input[HEADER_LEN..];
    let nnz = pattern.nnz();
    let steps = (0..step_count)
        .map(|s| {
            (0..nnz)
                .map(|k| {
                    let i = s * nnz + k;
                    let mut bits = [0u8; 8];
                    for (b, slot) in bits.iter_mut().enumerate() {
                        *slot = payload
                            .get((i * 8 + b) % payload.len().max(1))
                            .copied()
                            .unwrap_or((i as u8).wrapping_mul(37).wrapping_add(b as u8));
                    }
                    f64::from_le_bytes(bits)
                })
                .collect()
        })
        .collect();
    Some(TensorCase {
        pattern,
        config,
        steps,
    })
}

fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Every decode path of the tensor compressor reproduces the pushed
/// stream bit-exact, for every configuration.
pub struct TensorRoundtrip;

impl Oracle for TensorRoundtrip {
    fn name(&self) -> &'static str {
        "tensor-roundtrip"
    }

    fn describe(&self) -> &'static str {
        "MASC tensor lossless through in-memory, serialized, and backward paths"
    }

    fn generate(&self, rng: &mut Rng) -> Vec<u8> {
        let mut out = vec![
            rng.next_u32() as u8,
            rng.next_u32() as u8,
            rng.next_u32() as u8,
            rng.next_u32() as u8,
            rng.next_u32() as u8,
            rng.next_u32() as u8,
            rng.next_u32() as u8,
        ];
        // Smooth-series payload with occasional specials: the regime the
        // predictors are tuned for, plus the edge values they must still
        // carry losslessly.
        let values = rng.range_usize(0, 600);
        let mut v = 1.0f64;
        for _ in 0..values {
            v += rng.range_f64(-1.0, 1.0) * 1e-3;
            let out_v = match rng.below(12) {
                0 => f64::from_bits(rng.next_u64()),
                1 => -v,
                _ => v,
            };
            out.extend_from_slice(&out_v.to_le_bytes());
        }
        out
    }

    fn check(&self, input: &[u8]) -> Result<(), String> {
        let Some(case) = decode_case(input) else {
            return Ok(());
        };
        let mut tc = TensorCompressor::new(case.pattern.clone(), case.config);
        for step in &case.steps {
            tc.push(step);
        }
        let tensor = tc.finish();

        // Path 1: in-memory bulk decode.
        let all = tensor
            .decompress_all()
            .map_err(|e| format!("decompress_all failed: {e:?}"))?;
        if all.len() != case.steps.len() {
            return Err(format!(
                "decompress_all returned {} steps, pushed {}",
                all.len(),
                case.steps.len()
            ));
        }
        for (t, (got, want)) in all.iter().zip(&case.steps).enumerate() {
            if !bits_eq(got, want) {
                return Err(format!("decompress_all mismatch at step {t}"));
            }
        }

        // Path 2: serialize → deserialize → bulk decode.
        let restored = CompressedTensor::from_bytes(&tensor.to_bytes())
            .map_err(|e| format!("from_bytes rejected to_bytes output: {e:?}"))?;
        let all2 = restored
            .decompress_all()
            .map_err(|e| format!("decompress_all after serialization failed: {e:?}"))?;
        if all2.len() != case.steps.len() {
            return Err("serialized tensor lost steps".to_string());
        }
        for (t, (got, want)) in all2.iter().zip(&case.steps).enumerate() {
            if !bits_eq(got, want) {
                return Err(format!("serialized round trip mismatch at step {t}"));
            }
        }

        // Path 3: newest-first backward decode (the adjoint's read order).
        let mut backward = tensor.into_backward();
        let mut expect_step = case.steps.len();
        while let Some((step, values)) = backward
            .next_matrix()
            .map_err(|e| format!("backward decode failed: {e:?}"))?
        {
            if expect_step == 0 {
                return Err("backward decode produced extra steps".to_string());
            }
            expect_step -= 1;
            if step != expect_step {
                return Err(format!(
                    "backward step order: got {step}, want {expect_step}"
                ));
            }
            if !bits_eq(&values, &case.steps[step]) {
                return Err(format!("backward decode mismatch at step {step}"));
            }
        }
        if expect_step != 0 {
            return Err(format!("backward decode stopped {expect_step} steps early"));
        }
        Ok(())
    }

    fn shrink(&self, input: &[u8]) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        if input.len() >= HEADER_LEN {
            // Structured shrinks: smaller matrix, fewer steps, plainer
            // config — each keeps the header well-formed.
            for (i, v) in [
                (0usize, 0u8),
                (1, 0),
                (2, 1),
                (2, 2),
                (3, 0),
                (4, 0),
                (5, 1),
                (6, 0),
            ] {
                if input[i] != v {
                    let mut cand = input.to_vec();
                    cand[i] = v;
                    out.push(cand);
                }
            }
            // Halve the value payload while keeping the header.
            let payload = input.len() - HEADER_LEN;
            if payload >= 16 {
                let mut cand = input[..HEADER_LEN + payload / 2].to_vec();
                cand.truncate(HEADER_LEN + (cand.len() - HEADER_LEN) / 8 * 8);
                out.push(cand);
            }
        }
        out.extend(crate::minimize::byte_candidates(input));
        out
    }
}

/// `CompressedTensor::from_bytes` and the decode paths behind it must
/// survive arbitrary bytes without panicking.
pub struct TensorDecode;

impl Oracle for TensorDecode {
    fn name(&self) -> &'static str {
        "tensor-decode"
    }

    fn describe(&self) -> &'static str {
        "tensor deserialization + decode survive arbitrary bytes"
    }

    fn generate(&self, rng: &mut Rng) -> Vec<u8> {
        let mut data = if rng.below(4) == 0 {
            geninput::structured_bytes(rng, 300)
        } else {
            // Mutate a small valid serialized tensor.
            let pattern = banded_pattern(1 + rng.below(4) as usize, 1);
            let mut tc = TensorCompressor::new(pattern.clone(), MascConfig::default());
            let nnz = pattern.nnz();
            for s in 0..rng.range_usize(0, 5) {
                let step: Vec<f64> = (0..nnz)
                    .map(|k| 1.0 + (s * nnz + k) as f64 * 1e-3)
                    .collect();
                tc.push(&step);
            }
            tc.finish().to_bytes()
        };
        geninput::mutate(rng, &mut data);
        data
    }

    fn check(&self, input: &[u8]) -> Result<(), String> {
        if let Ok(tensor) = CompressedTensor::from_bytes(input) {
            // Bound the decode work: a forged pattern can legitimately
            // claim a large matrix, and decode cost is blocks × nnz.
            if tensor.len().saturating_mul(tensor.pattern().nnz()) <= 1 << 20 {
                let _ = tensor.decompress_all();
            }
        }
        Ok(())
    }
}
