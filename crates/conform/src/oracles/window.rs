//! Windowed-adjoint equivalence oracle.
//!
//! `window-equivalence` is the differential check behind `masc-window`'s
//! headline claims: a converged parallel-in-time windowed run must produce
//! the gradients of the monolithic `run_adjoint` pipeline (bit-exact for
//! `W = 1`, ≤ 1e-9 relative otherwise — the cross-window fold reorders
//! the summation), and the result must be *bit-identical* across lane
//! counts and for every window split of the same transient.
//!
//! Cases are pulse-driven current-source RC ladders: no branch unknowns
//! and a diagonally dominant `G`, so the pivot sequence is the structural
//! diagonal and bit-comparability between the shared-symbolic window lanes
//! and a fresh monolithic factorization is the *expected* outcome.

use crate::oracle::Oracle;
use masc_adjoint::{run_adjoint, Objective, StoreConfig};
use masc_circuit::devices::{Capacitor, CurrentSource, Device, Resistor};
use masc_circuit::transient::TranOptions;
use masc_circuit::waveform::Waveform;
use masc_circuit::{Circuit, ParamRef};
use masc_testkit::Rng;
use masc_window::{run_windowed, WindowOptions};

/// A decoded window case: ladder size, step count, and a resistor scale.
struct WindowCase {
    stages: usize,
    steps: usize,
    r_scale: f64,
}

/// Byte layout: `[stages][steps][scale]`. Anything too short is a
/// vacuous pass.
fn decode_case(input: &[u8]) -> Option<WindowCase> {
    let (&stages_b, rest) = input.split_first()?;
    let (&steps_b, rest) = rest.split_first()?;
    let (&scale_b, _) = rest.split_first()?;
    Some(WindowCase {
        stages: 2 + usize::from(stages_b) % 4,
        steps: 8 + usize::from(steps_b) % 16,
        r_scale: 1.0 + 0.02 * f64::from(scale_b % 32),
    })
}

/// Builds the pulse-driven current-source RC ladder for `stages`.
fn ladder(stages: usize, r_scale: f64) -> Result<Circuit, String> {
    let mut ckt = Circuit::new();
    let nodes: Vec<_> = (0..stages)
        .map(|s| ckt.node(&format!("n{s}")).unknown())
        .collect();
    let mut add = |d: Device| ckt.add(d).map(|_| ()).map_err(|e| format!("{e:?}"));
    add(Device::CurrentSource(CurrentSource::new(
        "I1",
        None,
        nodes[0],
        Waveform::Pulse {
            v1: 0.0,
            v2: 1e-3,
            td: 0.0,
            tr: 1e-9,
            tf: 1e-9,
            pw: 1.0,
            per: 2.0,
        },
    )))?;
    for s in 0..stages {
        add(Device::Resistor(Resistor::new(
            format!("R{s}"),
            nodes[s],
            None,
            1000.0 * r_scale,
        )))?;
        add(Device::Capacitor(Capacitor::new(
            format!("C{s}"),
            nodes[s],
            None,
            1e-6,
        )))?;
        if s + 1 < stages {
            add(Device::Resistor(Resistor::new(
                format!("RS{s}"),
                nodes[s],
                nodes[s + 1],
                500.0,
            )))?;
        }
    }
    Ok(ckt)
}

fn setup(
    base: &Circuit,
    steps: usize,
) -> Result<(TranOptions, Vec<Objective>, Vec<ParamRef>), String> {
    let dt = 5e-5;
    let tran = TranOptions::new(dt * steps as f64, dt);
    let probe = base
        .find_node("n0")
        .and_then(|n| n.unknown())
        .ok_or("ladder has no n0 unknown")?;
    let objectives = vec![
        Objective::FinalValue { unknown: probe },
        Objective::Integral { unknown: probe },
    ];
    let params = vec![
        base.find_param("R0.r").ok_or("R0.r missing")?,
        base.find_param("C0.c").ok_or("C0.c missing")?,
    ];
    Ok((tran, objectives, params))
}

/// Converged windowed sensitivities equal the monolithic pipeline's, and
/// the windowed result is bit-invariant to the lane count.
pub struct WindowEquivalence;

impl Oracle for WindowEquivalence {
    fn name(&self) -> &'static str {
        "window-equivalence"
    }

    fn describe(&self) -> &'static str {
        "windowed adjoint matches monolithic (W=1 bit-exact, else 1e-9); lane-invariant"
    }

    fn generate(&self, rng: &mut Rng) -> Vec<u8> {
        vec![
            rng.below(256) as u8,
            rng.below(256) as u8,
            rng.below(256) as u8,
        ]
    }

    fn check(&self, input: &[u8]) -> Result<(), String> {
        let Some(case) = decode_case(input) else {
            return Ok(());
        };
        let base = ladder(case.stages, case.r_scale)?;
        let (tran, objectives, params) = setup(&base, case.steps)?;

        let mut mono_ckt = base.clone();
        let mono = run_adjoint(
            &mut mono_ckt,
            &tran,
            &StoreConfig::RawMemory,
            &objectives,
            &params,
        )
        .map_err(|e| format!("monolithic run failed: {e:?}"))?;

        for w in [1usize, 2, 4] {
            // Reference at serial lanes, then every lane count against it.
            let mut ckt = base.clone();
            let reference = run_windowed(
                &mut ckt,
                &tran,
                &WindowOptions::new(w).with_lanes(1),
                &objectives,
                &params,
            )
            .map_err(|e| format!("W={w} lanes=1 failed: {e}"))?;

            for lanes in [2usize, 4] {
                let mut ckt = base.clone();
                let run = run_windowed(
                    &mut ckt,
                    &tran,
                    &WindowOptions::new(w).with_lanes(lanes),
                    &objectives,
                    &params,
                )
                .map_err(|e| format!("W={w} lanes={lanes} failed: {e}"))?;
                for (i, row) in reference.sensitivities.iter().enumerate() {
                    for (j, (&a, &b)) in row.iter().zip(&run.sensitivities[i]).enumerate() {
                        if a.to_bits() != b.to_bits() {
                            return Err(format!(
                                "W={w}: lanes=1 vs lanes={lanes} differ at obj {i} param {j}: {a:?} vs {b:?}"
                            ));
                        }
                    }
                }
            }

            // Against the monolithic pipeline: W=1 must be bit-exact (it
            // is the same schedule end to end); multi-window folds reorder
            // the dO/dp summation, so compare to 1e-9 relative.
            for (i, mono_row) in mono.sensitivities.values.iter().enumerate() {
                for (j, (&m, &a)) in mono_row.iter().zip(&reference.sensitivities[i]).enumerate() {
                    if w == 1 {
                        if m.to_bits() != a.to_bits() {
                            return Err(format!(
                                "W=1 not bit-identical to monolithic at obj {i} param {j}: {a:?} vs {m:?}"
                            ));
                        }
                    } else {
                        let scale = m.abs().max(a.abs()).max(1e-30);
                        if (m - a).abs() / scale > 1e-9 {
                            return Err(format!(
                                "W={w} obj {i} param {j}: windowed {a:e} vs monolithic {m:e}"
                            ));
                        }
                    }
                }
            }
            for (i, (&m, &a)) in mono
                .objective_values
                .iter()
                .zip(&reference.objective_values)
                .enumerate()
            {
                if m.to_bits() != a.to_bits() {
                    return Err(format!(
                        "W={w} objective {i}: windowed {a:?} vs monolithic {m:?} (trajectory not stitched bitwise)"
                    ));
                }
            }
        }
        Ok(())
    }
}
