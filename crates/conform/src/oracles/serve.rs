//! Serve-layer cache oracle.
//!
//! `serve-cache` is the end-to-end differential check for the
//! content-addressed tensor cache: on any runnable generated deck, a
//! resubmitted job must hit the cache, skip the forward transient
//! entirely (zero forward steps in the hit telemetry), and return
//! sensitivities bit-identical to the cold run — and the hit must survive
//! a server restart over the same cache directory (disk tier).

use crate::oracle::Oracle;
use masc_serve::{JobRequest, ObjectiveSpec, ParamSelector, ServeConfig, Server};
use masc_testkit::Rng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn scratch_dir() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "masc-conform-serve-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Bounds a generated deck for an end-to-end serve run; oversized or
/// tran-less decks are a vacuous pass (fuzz budget control).
fn decode_request(input: &[u8]) -> Option<JobRequest> {
    let text = String::from_utf8_lossy(input);
    let parsed = masc_circuit::parser::parse_netlist(&text).ok()?;
    let tran = parsed.tran.clone()?;
    let circuit = &parsed.circuit;
    if circuit.node_count() == 0
        || circuit.node_count() > 40
        || circuit.devices().len() > 80
        || tran.dt <= 0.0
        || tran.dt.is_nan()
        || tran.t_stop / tran.dt > 220.0
    {
        return None;
    }
    // Objectives reference nodes by name on the wire; pick the first node
    // that maps to an unknown (node 0 may be ground).
    let node = (0..circuit.node_count())
        .map(|i| circuit.node_name(i).to_string())
        .find(|n| {
            circuit
                .find_node(n)
                .and_then(masc_circuit::Node::unknown)
                .is_some()
        })?;
    Some(JobRequest {
        id: "conform".to_string(),
        objectives: vec![
            ObjectiveSpec::FinalValue { node: node.clone() },
            ObjectiveSpec::Integral { node },
        ],
        params: ParamSelector::All,
        deck: text.into_owned(),
    })
}

fn bits(rows: &[Vec<f64>]) -> Vec<Vec<u64>> {
    rows.iter()
        .map(|r| r.iter().map(|v| v.to_bits()).collect())
        .collect()
}

/// A resubmitted job hits the cache, skips the forward pass, and matches
/// the cold run bit for bit — in memory and across a restart.
pub struct ServeCache;

impl Oracle for ServeCache {
    fn name(&self) -> &'static str {
        "serve-cache"
    }

    fn describe(&self) -> &'static str {
        "serve cache hits skip the forward pass and match cold runs bit-exact"
    }

    fn generate(&self, rng: &mut Rng) -> Vec<u8> {
        crate::oracles::store::deck_gen(rng)
    }

    fn check(&self, input: &[u8]) -> Result<(), String> {
        let Some(req) = decode_request(input) else {
            return Ok(());
        };
        let dir = scratch_dir();
        let cfg = ServeConfig {
            workers: 1,
            cache_dir: Some(dir.clone()),
            ..ServeConfig::default()
        };
        let result = (|| {
            let server = Server::new(cfg.clone()).map_err(|e| format!("open server: {e}"))?;
            let cold = match server.submit(&req) {
                Ok(outcome) => outcome,
                // A deck the solver rejects (singular matrix, Newton
                // failure) is a vacuous pass — the cache claim is only
                // defined for decks the pipeline can run.
                Err(_) => return Ok(()),
            };
            if cold.hit {
                return Err("first submission reported a cache hit".to_string());
            }
            let hit = server
                .submit(&req)
                .map_err(|e| format!("resubmission failed where cold run succeeded: {e}"))?;
            if !hit.hit {
                return Err("resubmission missed the cache".to_string());
            }
            if hit.tran_stats.steps != 0 || hit.tran_stats.newton_iterations != 0 {
                return Err(format!(
                    "hit ran the forward pass: steps={} newton={}",
                    hit.tran_stats.steps, hit.tran_stats.newton_iterations
                ));
            }
            if bits(&hit.sensitivities) != bits(&cold.sensitivities)
                || hit.objective_values != cold.objective_values
            {
                return Err("memory hit diverged from cold run".to_string());
            }
            drop(server);

            let reopened = Server::new(cfg).map_err(|e| format!("reopen server: {e}"))?;
            let disk_hit = reopened
                .submit(&req)
                .map_err(|e| format!("post-restart submission failed: {e}"))?;
            if !disk_hit.hit || reopened.cache_metrics().disk_hits != 1 {
                return Err("restart lost the disk tier entry".to_string());
            }
            if bits(&disk_hit.sensitivities) != bits(&cold.sensitivities) {
                return Err("disk hit diverged from cold run".to_string());
            }
            Ok(())
        })();
        let _ = std::fs::remove_dir_all(&dir);
        result
    }

    fn shrink(&self, input: &[u8]) -> Vec<Vec<u8>> {
        crate::minimize::line_candidates(input)
    }
}
