//! Dataset-cache serialization oracle.

use crate::geninput;
use crate::oracle::Oracle;
use masc_datasets::cache::{dataset_from_bytes, dataset_to_bytes};
use masc_datasets::Dataset;
use masc_sparse::TripletMatrix;
use masc_testkit::Rng;
use std::sync::Arc;

/// A small synthetic dataset (no transient run needed).
fn tiny_dataset(steps: usize) -> Dataset {
    let mut t = TripletMatrix::new(3, 3);
    for i in 0..3 {
        t.add(i, i, 1.0);
        if i > 0 {
            t.add(i, i - 1, -1.0);
        }
    }
    let pattern = t.to_csr().pattern().clone();
    let nnz = pattern.nnz();
    let series = |scale: f64| -> Vec<Vec<f64>> {
        (0..steps)
            .map(|s| {
                (0..nnz)
                    .map(|k| scale + (s * nnz + k) as f64 * 1e-3)
                    .collect()
            })
            .collect()
    };
    Dataset {
        name: "conform-tiny".to_string(),
        elements: 3,
        g_pattern: Arc::clone(&pattern),
        c_pattern: pattern,
        g_series: series(1.0),
        c_series: series(2.0),
        hs: vec![1e-9; steps],
    }
}

/// `dataset_from_bytes` survives arbitrary bytes, and whatever it accepts
/// re-serializes to an identical byte stream (the format is canonical).
pub struct CacheDecode;

impl Oracle for CacheDecode {
    fn name(&self) -> &'static str {
        "cache-decode"
    }

    fn describe(&self) -> &'static str {
        "dataset cache decode panic-free; accepted inputs are canonical"
    }

    fn generate(&self, rng: &mut Rng) -> Vec<u8> {
        let mut data = if rng.below(4) == 0 {
            geninput::structured_bytes(rng, 300)
        } else {
            dataset_to_bytes(&tiny_dataset(rng.range_usize(0, 6)))
        };
        geninput::mutate(rng, &mut data);
        data
    }

    fn check(&self, input: &[u8]) -> Result<(), String> {
        if let Ok(ds) = dataset_from_bytes(input) {
            let round = dataset_to_bytes(&ds);
            let ds2 = dataset_from_bytes(&round)
                .map_err(|e| format!("re-serialized dataset rejected: {e:?}"))?;
            if ds2.name != ds.name
                || ds2.elements != ds.elements
                || ds2.hs.len() != ds.hs.len()
                || ds2.g_series.len() != ds.g_series.len()
            {
                return Err("dataset round trip changed contents".to_string());
            }
        }
        Ok(())
    }
}
