//! Chunked-matrix (era-2 wire format) oracles.
//!
//! The per-chunk-header format exists so chunks decode independently; its
//! safety story is that every header field is validated before any
//! payload is touched. `chunked-roundtrip` checks losslessness and
//! schedule invariance (thread count must never leak into the bytes);
//! `chunked-headers` feeds mutated and arbitrary streams to the decoder,
//! which must reject them with a structured error — never a panic, never
//! an out-of-bounds scatter.

use crate::geninput;
use crate::oracle::Oracle;
use masc_compress::{
    compress_matrix_parallel, compress_matrix_seeded, decompress_matrix_parallel, MascConfig,
    StampMaps,
};
use masc_sparse::{Pattern, TripletMatrix};
use masc_testkit::Rng;
use std::sync::Arc;

/// Wire header: n, band, flags, chunk lo, chunk hi.
const HEADER_LEN: usize = 5;

/// Banded `n × n` pattern with half-bandwidth `band`.
fn banded_pattern(n: usize, band: usize) -> Arc<Pattern> {
    let mut t = TripletMatrix::new(n, n);
    for i in 0..n {
        for j in i.saturating_sub(band)..(i + band + 1).min(n) {
            t.add(i, j, 1.0);
        }
    }
    t.to_csr().pattern().clone()
}

struct MatrixCase {
    maps: StampMaps,
    config: MascConfig,
    seeded: bool,
    values: Vec<f64>,
    reference: Vec<f64>,
}

fn read_values(payload: &[u8], offset: usize, nnz: usize) -> Vec<f64> {
    (0..nnz)
        .map(|k| {
            let i = offset + k;
            let mut bits = [0u8; 8];
            for (b, slot) in bits.iter_mut().enumerate() {
                *slot = payload
                    .get((i * 8 + b) % payload.len().max(1))
                    .copied()
                    .unwrap_or((i as u8).wrapping_mul(41).wrapping_add(b as u8));
            }
            f64::from_le_bytes(bits)
        })
        .collect()
}

fn decode_case(input: &[u8]) -> Option<MatrixCase> {
    let header = input.get(..HEADER_LEN)?;
    let n = 1 + (header[0] as usize) % 12;
    let band = (header[1] as usize) % n.min(3);
    let flags = header[2];
    let chunk_size = (usize::from(header[3]) | usize::from(header[4]) << 8) % 65;
    let pattern = banded_pattern(n, band);
    let nnz = pattern.nnz();
    let config = MascConfig {
        markov: flags & 1 != 0,
        sign_invert_diag: flags & 2 != 0,
        checksum: flags & 4 != 0,
        threads: 1 + ((usize::from(flags) >> 3) & 3),
        chunk_size,
        ..MascConfig::default()
    };
    let payload = &input[HEADER_LEN..];
    Some(MatrixCase {
        maps: StampMaps::new(&pattern),
        config,
        seeded: flags & 0x80 != 0,
        values: read_values(payload, 0, nnz),
        reference: read_values(payload, nnz, nnz),
    })
}

fn generate_case(rng: &mut Rng) -> Vec<u8> {
    let mut out = vec![
        rng.next_u32() as u8,
        rng.next_u32() as u8,
        rng.next_u32() as u8,
        rng.next_u32() as u8,
        rng.next_u32() as u8,
    ];
    // Smooth-series payload with occasional raw-bit specials.
    let values = rng.range_usize(0, 500);
    let mut v = 1.0f64;
    for _ in 0..values {
        v += rng.range_f64(-1.0, 1.0) * 1e-3;
        let out_v = match rng.below(12) {
            0 => f64::from_bits(rng.next_u64()),
            1 => -v,
            _ => v,
        };
        out.extend_from_slice(&out_v.to_le_bytes());
    }
    out
}

/// The era-2 chunked codec is lossless and schedule-invariant: the bytes
/// and decoded values must not depend on the worker count, and a seeded
/// stream must decode identically under any caller-supplied reference.
pub struct ChunkedRoundtrip;

impl Oracle for ChunkedRoundtrip {
    fn name(&self) -> &'static str {
        "chunked-roundtrip"
    }

    fn describe(&self) -> &'static str {
        "era-2 chunked matrix lossless + thread-count invariant"
    }

    fn generate(&self, rng: &mut Rng) -> Vec<u8> {
        generate_case(rng)
    }

    fn check(&self, input: &[u8]) -> Result<(), String> {
        let Some(case) = decode_case(input) else {
            return Ok(());
        };
        let encode = |config: &MascConfig| {
            if case.seeded {
                compress_matrix_seeded(&case.values, &case.maps, config).0
            } else {
                compress_matrix_parallel(&case.values, &case.reference, &case.maps, config).0
            }
        };
        let bytes = encode(&case.config);
        let serial = encode(&MascConfig {
            threads: 1,
            ..case.config.clone()
        });
        if bytes != serial {
            return Err(format!(
                "threads={} changed the stream vs threads=1",
                case.config.threads
            ));
        }
        // A seeded stream must ignore the reference; an unseeded one
        // needs the true reference back.
        let reference = if case.seeded {
            &case.values // deliberately not the all-zero vector it was encoded against
        } else {
            &case.reference
        };
        let out = decompress_matrix_parallel(&bytes, reference, &case.maps, &case.config)
            .map_err(|e| format!("decode of our own stream failed: {e:?}"))?;
        if out.len() != case.values.len() {
            return Err("decoded length mismatch".to_string());
        }
        for (k, (a, b)) in case.values.iter().zip(&out).enumerate() {
            if a.to_bits() != b.to_bits() {
                return Err(format!("value mismatch at nnz index {k}"));
            }
        }
        Ok(())
    }
}

/// Hostile per-chunk headers: the era-2 decoder must reject corrupted and
/// arbitrary streams with a structured error, never a panic.
pub struct ChunkedHeaderDecode;

impl Oracle for ChunkedHeaderDecode {
    fn name(&self) -> &'static str {
        "chunked-headers"
    }

    fn describe(&self) -> &'static str {
        "era-2 per-chunk headers survive mutation panic-free"
    }

    fn generate(&self, rng: &mut Rng) -> Vec<u8> {
        let mut case = generate_case(rng);
        if rng.below(4) == 0 {
            // Pure noise exercises the outer header validation.
            return geninput::structured_bytes(rng, 300);
        }
        // Otherwise: a valid case whose *encoded stream* gets mutated in
        // check() — mutate the case bytes here too so header fields
        // (chunk size, flags) roam.
        geninput::mutate(rng, &mut case);
        case
    }

    fn check(&self, input: &[u8]) -> Result<(), String> {
        let Some(case) = decode_case(input) else {
            // Too short for a case: treat the raw input as a stream.
            return Ok(());
        };
        let (bytes, _) =
            compress_matrix_parallel(&case.values, &case.reference, &case.maps, &case.config);
        // Deterministic single-byte corruptions of a valid stream: every
        // header field and payload byte gets hit as the corpus roams.
        let mut hostile = bytes.clone();
        for i in 0..hostile.len() {
            let flip = input
                .get(i % input.len().max(1))
                .copied()
                .unwrap_or(0xFF)
                .wrapping_add(1);
            let orig = hostile[i];
            hostile[i] ^= flip;
            let _ = decompress_matrix_parallel(&hostile, &case.reference, &case.maps, &case.config);
            hostile[i] = orig;
        }
        // Truncations at every prefix length.
        for len in 0..bytes.len() {
            let _ = decompress_matrix_parallel(
                &bytes[..len],
                &case.reference,
                &case.maps,
                &case.config,
            );
        }
        // And the fuzz input itself as a stream.
        let _ = decompress_matrix_parallel(input, &case.reference, &case.maps, &case.config);
        Ok(())
    }
}
