//! Baseline-compressor oracles: round trips and panic-free decode for the
//! five comparison compressors.

use crate::geninput;
use crate::oracle::Oracle;
use masc_baselines::{ChimpLike, Compressor, FpzipLike, GzipLike, NdzipLike, SpiceMate};
use masc_testkit::Rng;

/// Error bound the lossy SpiceMate baseline is held to.
const SPICEMATE_EB: f64 = 1e-6;

fn lossless() -> Vec<Box<dyn Compressor>> {
    vec![
        Box::new(ChimpLike::new()),
        Box::new(FpzipLike::new()),
        Box::new(NdzipLike::new()),
        Box::new(GzipLike::new()),
    ]
}

/// Lossless baselines reproduce values bit-exact; SpiceMate stays within
/// its error bound on finite values and is exact on non-finite ones.
pub struct BaselineRoundtrip;

impl Oracle for BaselineRoundtrip {
    fn name(&self) -> &'static str {
        "baseline-roundtrip"
    }

    fn describe(&self) -> &'static str {
        "chimp/fpzip/ndzip/gzip bit-exact, spicemate within error bound"
    }

    fn generate(&self, rng: &mut Rng) -> Vec<u8> {
        geninput::f64_stream_bytes(rng, 160)
    }

    fn check(&self, input: &[u8]) -> Result<(), String> {
        let values = geninput::f64_stream(input);
        for c in lossless() {
            let packed = c.compress(&values);
            let restored = c
                .decompress(&packed)
                .map_err(|e| format!("{} decompress error: {e:?}", c.name()))?;
            if restored.len() != values.len()
                || restored
                    .iter()
                    .zip(&values)
                    .any(|(a, b)| a.to_bits() != b.to_bits())
            {
                return Err(format!("{} round trip is not bit-exact", c.name()));
            }
        }
        let sm = SpiceMate::new(SPICEMATE_EB);
        let packed = sm.compress(&values);
        let restored = sm
            .decompress(&packed)
            .map_err(|e| format!("spicemate decompress error: {e:?}"))?;
        if restored.len() != values.len() {
            return Err("spicemate length mismatch".to_string());
        }
        for (i, (&a, &b)) in restored.iter().zip(&values).enumerate() {
            let ok = if b.is_finite() {
                (a - b).abs() <= SPICEMATE_EB * (1.0 + 1e-9)
            } else {
                a.to_bits() == b.to_bits()
            };
            if !ok {
                return Err(format!(
                    "spicemate exceeded its error bound at value {i}: {a:?} vs {b:?}"
                ));
            }
        }
        Ok(())
    }
}

/// Every baseline decoder must reject arbitrary bytes with a structured
/// error, never a panic.
pub struct BaselineDecode;

impl Oracle for BaselineDecode {
    fn name(&self) -> &'static str {
        "baseline-decode"
    }

    fn describe(&self) -> &'static str {
        "all five baseline decoders survive arbitrary bytes"
    }

    fn generate(&self, rng: &mut Rng) -> Vec<u8> {
        let payload_bytes = geninput::f64_stream_bytes(rng, 40);
        let values = geninput::f64_stream(&payload_bytes);
        let mut all: Vec<Box<dyn Compressor>> = lossless();
        all.push(Box::new(SpiceMate::new(SPICEMATE_EB)));
        let pick = rng.below(all.len() as u64 + 1) as usize;
        let mut data = match all.get(pick) {
            Some(c) => c.compress(&values),
            None => geninput::structured_bytes(rng, 300),
        };
        geninput::mutate(rng, &mut data);
        data
    }

    fn check(&self, input: &[u8]) -> Result<(), String> {
        let mut all: Vec<Box<dyn Compressor>> = lossless();
        all.push(Box::new(SpiceMate::new(SPICEMATE_EB)));
        for c in all {
            let _ = c.decompress(input);
        }
        Ok(())
    }
}
