//! Codec-primitive oracles: byte-exact round trips and panic-free decode.

use crate::geninput;
use crate::oracle::Oracle;
use masc_bitio::varint;
use masc_codec::range::{BitModel, RangeDecoder, RangeEncoder};
use masc_codec::{huffman, lzss, rans, rle, transform};
use masc_testkit::Rng;

/// Every codec primitive must reproduce its input exactly.
pub struct CodecRoundtrip;

impl Oracle for CodecRoundtrip {
    fn name(&self) -> &'static str {
        "codec-roundtrip"
    }

    fn describe(&self) -> &'static str {
        "huffman/rans/lzss/rle/range/transform round-trip byte-exact"
    }

    fn generate(&self, rng: &mut Rng) -> Vec<u8> {
        geninput::structured_bytes(rng, 600)
    }

    fn check(&self, input: &[u8]) -> Result<(), String> {
        let h = huffman::decode(&huffman::encode(input))
            .map_err(|e| format!("huffman decode error: {e:?}"))?;
        if h != input {
            return Err("huffman round trip mismatch".to_string());
        }
        let r =
            rans::decode(&rans::encode(input)).map_err(|e| format!("rans decode error: {e:?}"))?;
        if r != input {
            return Err("rans round trip mismatch".to_string());
        }
        let l = lzss::decompress(&lzss::compress(input))
            .map_err(|e| format!("lzss decompress error: {e:?}"))?;
        if l != input {
            return Err("lzss round trip mismatch".to_string());
        }

        // Word-level codecs and transforms, over the whole-word prefix.
        let words: Vec<u64> = input
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect();
        let w = rle::decode_words(&rle::encode_words(&words))
            .map_err(|e| format!("rle decode error: {e:?}"))?;
        if w != words {
            return Err("rle round trip mismatch".to_string());
        }
        let mut t = words.clone();
        transform::xor_previous(&mut t);
        transform::undo_xor_previous(&mut t);
        if t != words {
            return Err("xor transform round trip mismatch".to_string());
        }
        transform::delta_previous(&mut t);
        transform::undo_delta_previous(&mut t);
        if t != words {
            return Err("delta transform round trip mismatch".to_string());
        }
        if t.len() >= transform::BLOCK {
            let block = &mut t[..transform::BLOCK];
            transform::transpose_bits(block);
            transform::transpose_bits(block);
            if t != words {
                return Err("bit transpose is not an involution".to_string());
            }
        }

        // Adaptive binary range coder over the input's bits.
        let mut enc = RangeEncoder::new();
        let mut model = BitModel::new();
        for &b in input {
            for bit in 0..8 {
                enc.encode_bit(&mut model, b & (1 << bit) != 0);
            }
        }
        let packed = enc.finish();
        let mut dec =
            RangeDecoder::new(&packed).map_err(|e| format!("range decoder init error: {e:?}"))?;
        let mut model = BitModel::new();
        for (i, &b) in input.iter().enumerate() {
            let mut got = 0u8;
            for bit in 0..8 {
                if dec
                    .decode_bit(&mut model)
                    .map_err(|e| format!("range decode error: {e:?}"))?
                {
                    got |= 1 << bit;
                }
            }
            if got != b {
                return Err(format!("range coder mismatch at byte {i}: {got} != {b}"));
            }
        }
        Ok(())
    }
}

/// Every codec decoder must reject arbitrary bytes with a structured
/// error, never a panic.
pub struct CodecDecode;

impl Oracle for CodecDecode {
    fn name(&self) -> &'static str {
        "codec-decode"
    }

    fn describe(&self) -> &'static str {
        "huffman/rans/rle/range/varint decode arbitrary bytes panic-free"
    }

    fn generate(&self, rng: &mut Rng) -> Vec<u8> {
        // Mostly mutated valid encodings — they get past the header checks
        // that pure noise trips over.
        let payload = geninput::structured_bytes(rng, 200);
        let mut data = match rng.below(4) {
            0 => huffman::encode(&payload),
            1 => rans::encode(&payload),
            2 => {
                let words: Vec<u64> = payload.iter().map(|&b| u64::from(b)).collect();
                rle::encode_words(&words)
            }
            _ => payload,
        };
        geninput::mutate(rng, &mut data);
        data
    }

    fn check(&self, input: &[u8]) -> Result<(), String> {
        let _ = huffman::decode(input);
        let _ = rans::decode(input);
        let _ = rle::decode_words(input);
        let _ = varint::read_u64(input);
        if let Ok(mut dec) = RangeDecoder::new(input) {
            // The range decoder zero-pads past the tail by design; just
            // prove a bounded read cannot panic.
            let mut model = BitModel::new();
            for _ in 0..1024 {
                let _ = dec.decode_bit(&mut model);
            }
        }
        Ok(())
    }
}
