//! Batched-sweep equivalence oracle.
//!
//! `sweep-equivalence` is the differential check behind `masc-sweep`'s two
//! headline claims: an N-instance sweep over one shared-structure
//! super-tensor must produce exactly the gradients of N independent
//! single runs, and the super-tensor byte stream must not depend on how
//! many worker threads produced it.
//!
//! Cases are current-source-driven RC ladders: linear, diagonally
//! dominant decks where the pivot sequence is the structural diagonal for
//! every parameter variant, so bit-for-bit equality between the
//! shared-symbolic sweep and fresh per-variant factorizations is the
//! *expected* outcome, not a lucky one.

use crate::oracle::Oracle;
use masc_adjoint::{run_adjoint, Objective, StoreConfig};
use masc_circuit::devices::{Capacitor, CurrentSource, Device, Resistor};
use masc_circuit::transient::TranOptions;
use masc_circuit::waveform::Waveform;
use masc_circuit::Circuit;
use masc_sweep::{run_sweep, SweepPlan};
use masc_testkit::Rng;

/// A decoded sweep case: ladder size, step count, and per-variant
/// resistor scale factors.
struct SweepCase {
    stages: usize,
    steps: usize,
    scales: Vec<f64>,
}

/// Byte layout: `[stages][n_variants][steps][scale byte per variant]`.
/// Anything too short is a vacuous pass.
fn decode_case(input: &[u8]) -> Option<SweepCase> {
    let (&stages_b, rest) = input.split_first()?;
    let (&nvar_b, rest) = rest.split_first()?;
    let (&steps_b, rest) = rest.split_first()?;
    let stages = 2 + usize::from(stages_b) % 4;
    let n_variants = 2 + usize::from(nvar_b) % 3;
    let steps = 5 + usize::from(steps_b) % 16;
    if rest.len() < n_variants {
        return None;
    }
    let scales = rest[..n_variants]
        .iter()
        .map(|&b| 1.0 + 0.02 * f64::from(b % 32))
        .collect();
    Some(SweepCase {
        stages,
        steps,
        scales,
    })
}

/// Builds the current-source RC ladder for `stages`.
fn ladder(stages: usize) -> Result<Circuit, String> {
    let mut ckt = Circuit::new();
    let nodes: Vec<_> = (0..stages)
        .map(|s| ckt.node(&format!("n{s}")).unknown())
        .collect();
    let mut add = |d: Device| ckt.add(d).map(|_| ()).map_err(|e| format!("{e:?}"));
    add(Device::CurrentSource(CurrentSource::new(
        "I1",
        None,
        nodes[0],
        Waveform::Dc(1e-3),
    )))?;
    for s in 0..stages {
        add(Device::Resistor(Resistor::new(
            format!("R{s}"),
            nodes[s],
            None,
            1000.0,
        )))?;
        add(Device::Capacitor(Capacitor::new(
            format!("C{s}"),
            nodes[s],
            None,
            1e-6,
        )))?;
        if s + 1 < stages {
            add(Device::Resistor(Resistor::new(
                format!("RS{s}"),
                nodes[s],
                nodes[s + 1],
                500.0,
            )))?;
        }
    }
    Ok(ckt)
}

fn plan_for(base: &Circuit, case: &SweepCase, workers: usize) -> Result<SweepPlan, String> {
    let dt = 5e-5;
    let tran = TranOptions::new(dt * case.steps as f64, dt);
    let probe = base
        .find_node("n0")
        .and_then(|n| n.unknown())
        .ok_or("ladder has no n0 unknown")?;
    let objectives = vec![
        Objective::FinalValue { unknown: probe },
        Objective::Integral { unknown: probe },
    ];
    let r0 = base.find_param("R0.r").ok_or("R0.r missing")?;
    let c0 = base.find_param("C0.c").ok_or("C0.c missing")?;
    let params = vec![r0.clone(), c0];
    let mut plan = SweepPlan::new(tran, objectives, params).with_workers(workers);
    for &scale in &case.scales {
        plan.push_variant(vec![(r0.clone(), 1000.0 * scale)]);
    }
    Ok(plan)
}

/// N-instance sweep equals N independent single runs, and the
/// super-tensor is invariant to the worker count.
pub struct SweepEquivalence;

impl Oracle for SweepEquivalence {
    fn name(&self) -> &'static str {
        "sweep-equivalence"
    }

    fn describe(&self) -> &'static str {
        "batched sweep matches independent runs bit-exact; super-tensor worker-invariant"
    }

    fn generate(&self, rng: &mut Rng) -> Vec<u8> {
        let n_variants = 2 + rng.below(3) as usize;
        let mut case = vec![
            rng.below(256) as u8,
            (n_variants - 2) as u8,
            rng.below(256) as u8,
        ];
        for _ in 0..n_variants {
            case.push(rng.below(256) as u8);
        }
        case
    }

    fn check(&self, input: &[u8]) -> Result<(), String> {
        let Some(case) = decode_case(input) else {
            return Ok(());
        };
        let base = ladder(case.stages)?;
        let plan = plan_for(&base, &case, 1)?;
        let serial = run_sweep(&base, &plan).map_err(|e| format!("serial sweep failed: {e}"))?;

        // Claim 1: the byte stream and the gradients must not depend on
        // the worker count.
        let threaded_plan = plan_for(&base, &case, 3)?;
        let threaded =
            run_sweep(&base, &threaded_plan).map_err(|e| format!("threaded sweep failed: {e}"))?;
        if serial.super_tensor != threaded.super_tensor {
            return Err(format!(
                "super-tensor bytes depend on worker count: {} vs {} bytes",
                serial.super_tensor.len(),
                threaded.super_tensor.len()
            ));
        }

        // Claim 2: each instance equals an independent single run.
        for (k, variant) in plan.variants.iter().enumerate() {
            let mut ckt = base.clone();
            for (p, v) in variant {
                ckt.set_param_value(p, *v);
            }
            let single = run_adjoint(
                &mut ckt,
                &plan.tran,
                &StoreConfig::RawMemory,
                &plan.objectives,
                &plan.params,
            )
            .map_err(|e| format!("single run {k} failed where sweep succeeded: {e:?}"))?;
            for run in [&serial, &threaded] {
                for (oi, single_row) in single.sensitivities.values.iter().enumerate() {
                    let sweep_row = &run.sensitivities[k].values[oi];
                    for (pi, (&a, &b)) in sweep_row.iter().zip(single_row).enumerate() {
                        if a.to_bits() != b.to_bits() {
                            return Err(format!(
                                "instance {k} d(obj {oi})/d(param {pi}): sweep {a:?} vs single {b:?}"
                            ));
                        }
                    }
                }
            }
            for (oi, (&a, &b)) in serial.objective_values[k]
                .iter()
                .zip(&single.objective_values)
                .enumerate()
            {
                if a.to_bits() != b.to_bits() {
                    return Err(format!(
                        "instance {k} objective {oi}: sweep {a:?} vs single {b:?}"
                    ));
                }
            }
        }
        Ok(())
    }
}
