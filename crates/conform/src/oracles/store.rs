//! End-to-end store and adjoint oracles.
//!
//! `store-equiv` is the differential check behind the paper's lossless
//! claim at system level: every `JacobianStore` backend must produce the
//! same objective values and adjoint gradients as the raw in-memory
//! store, bit for bit, on the same deck — the MASC compression, hybrid
//! spill tier, and asynchronous pipeline may change *where* bytes live
//! but never *what* the reverse pass reads. This is the oracle that
//! catches the `StaleSpillBlock` injected defect.
//!
//! `adjoint-oracle` cross-checks the adjoint gradients against two
//! independent computations of the same quantity: direct (forward)
//! sensitivities on the recorded trajectory, and central finite
//! differences.

use crate::oracle::Oracle;
use masc_adjoint::store::TensorLayout;
use masc_adjoint::{
    direct_sensitivities, finite_difference, run_adjoint, ForwardRecord, Objective, SensitivityRun,
    StoreConfig,
};
use masc_circuit::parser::{parse_netlist, ParsedNetlist};
use masc_circuit::transient::{transient, TranOptions};
use masc_circuit::{Circuit, ParamRef};
use masc_compress::MascConfig;
use masc_testkit::gen::{self, Gen};
use masc_testkit::Rng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A deck parsed and size-bounded for end-to-end runs.
struct DeckCase {
    circuit: Circuit,
    tran: TranOptions,
    objectives: Vec<Objective>,
    params: Vec<ParamRef>,
}

/// Parses `input` as a deck and rejects cases too large for an
/// end-to-end differential run (vacuous pass — fuzz budget control, not
/// correctness).
fn decode_deck(input: &[u8], max_params: usize) -> Option<DeckCase> {
    let text = String::from_utf8_lossy(input);
    let parsed: ParsedNetlist = parse_netlist(&text).ok()?;
    let tran = parsed.tran.clone()?;
    let circuit = parsed.circuit;
    if circuit.node_count() == 0
        || circuit.node_count() > 40
        || circuit.devices().len() > 80
        || tran.dt <= 0.0
        || tran.dt.is_nan()
        || tran.t_stop / tran.dt > 220.0
    {
        return None;
    }
    let objectives = vec![
        Objective::Integral { unknown: 0 },
        Objective::FinalValue { unknown: 0 },
    ];
    let mut params = circuit.params();
    params.truncate(max_params);
    if params.is_empty() {
        return None;
    }
    Some(DeckCase {
        circuit,
        tran,
        objectives,
        params,
    })
}

pub(crate) fn deck_gen(rng: &mut Rng) -> Vec<u8> {
    let mut deck = gen::netlists(3).generate(rng).into_bytes();
    if rng.below(5) == 0 {
        crate::geninput::mutate(rng, &mut deck);
    }
    deck
}

/// Unique scratch directory for spill files.
fn scratch_dir() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "masc-conform-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn run_with(case: &DeckCase, store: &StoreConfig) -> Result<SensitivityRun, String> {
    let mut circuit = case.circuit.clone();
    run_adjoint(
        &mut circuit,
        &case.tran,
        store,
        &case.objectives,
        &case.params,
    )
    .map_err(|e| format!("{e:?}"))
}

fn compare_runs(
    name: &str,
    reference: &SensitivityRun,
    got: &SensitivityRun,
) -> Result<(), String> {
    for (i, (a, b)) in reference
        .objective_values
        .iter()
        .zip(&got.objective_values)
        .enumerate()
    {
        if a.to_bits() != b.to_bits() {
            return Err(format!(
                "{name}: objective {i} diverged from raw store: {a:?} vs {b:?}"
            ));
        }
    }
    for (oi, (ra, rb)) in reference
        .sensitivities
        .values
        .iter()
        .zip(&got.sensitivities.values)
        .enumerate()
    {
        if ra.len() != rb.len() {
            return Err(format!("{name}: sensitivity row {oi} length mismatch"));
        }
        for (pi, (a, b)) in ra.iter().zip(rb).enumerate() {
            if a.to_bits() != b.to_bits() {
                return Err(format!(
                    "{name}: d(obj {oi})/d(param {pi}) diverged from raw store: {a:?} vs {b:?}"
                ));
            }
        }
    }
    Ok(())
}

/// Every store backend yields the same objectives and gradients as the
/// raw in-memory store.
pub struct StoreEquivalence;

impl Oracle for StoreEquivalence {
    fn name(&self) -> &'static str {
        "store-equiv"
    }

    fn describe(&self) -> &'static str {
        "disk/compressed/hybrid/pipelined stores match the raw store bit-exact"
    }

    fn generate(&self, rng: &mut Rng) -> Vec<u8> {
        deck_gen(rng)
    }

    fn check(&self, input: &[u8]) -> Result<(), String> {
        let Some(case) = decode_deck(input, 4) else {
            return Ok(());
        };
        let reference = match run_with(&case, &StoreConfig::RawMemory) {
            Ok(run) => run,
            // A deck the solver rejects (singular matrix, Newton failure)
            // is a vacuous pass — backend equivalence is only defined for
            // decks the reference backend can run.
            Err(_) => return Ok(()),
        };
        let dir = scratch_dir();
        // A 2-block residency forces most steps through the spill tier.
        let hybrid = StoreConfig::Hybrid {
            dir: dir.clone(),
            bandwidth: None,
            resident_blocks: 2,
            masc: MascConfig::default(),
        };
        let configs: Vec<(&str, StoreConfig)> = vec![
            (
                "disk",
                StoreConfig::Disk {
                    dir: dir.clone(),
                    bandwidth: None,
                },
            ),
            ("compressed", StoreConfig::Compressed(MascConfig::default())),
            ("hybrid", hybrid.clone()),
            (
                "pipelined-compressed",
                StoreConfig::pipelined(StoreConfig::Compressed(MascConfig::default())),
            ),
            ("pipelined-hybrid", StoreConfig::pipelined(hybrid)),
        ];
        let result = (|| {
            for (name, config) in &configs {
                let got = run_with(&case, config)
                    .map_err(|e| format!("{name} store run failed where raw succeeded: {e}"))?;
                compare_runs(name, &reference, &got)?;
            }
            Ok(())
        })();
        let _ = std::fs::remove_dir_all(&dir);
        result
    }

    fn shrink(&self, input: &[u8]) -> Vec<Vec<u8>> {
        crate::minimize::line_candidates(input)
    }
}

/// Adjoint gradients agree with direct (forward) sensitivities tightly
/// and with central finite differences loosely.
pub struct AdjointOracle;

impl Oracle for AdjointOracle {
    fn name(&self) -> &'static str {
        "adjoint-oracle"
    }

    fn describe(&self) -> &'static str {
        "adjoint ≈ direct sensitivities ≈ finite differences"
    }

    fn generate(&self, rng: &mut Rng) -> Vec<u8> {
        deck_gen(rng)
    }

    fn check(&self, input: &[u8]) -> Result<(), String> {
        let Some(case) = decode_deck(input, 2) else {
            return Ok(());
        };
        let adjoint = match run_with(&case, &StoreConfig::Compressed(MascConfig::default())) {
            Ok(run) => run,
            // A deck the solver rejects (singular matrix, Newton failure)
            // is a vacuous pass — convergence is not this oracle's claim.
            Err(_) => return Ok(()),
        };

        // Independent reference 1: direct sensitivities on a fresh
        // forward trajectory.
        let mut circuit = case.circuit.clone();
        let mut system = circuit.elaborate().map_err(|e| format!("{e:?}"))?;
        let mut record = ForwardRecord::new(TensorLayout::of(&system), &StoreConfig::RawMemory)
            .map_err(|e| format!("{e:?}"))?;
        if transient(&circuit, &mut system, &case.tran, &mut record).is_err() {
            return Ok(());
        }
        let (meta, _) = record.into_parts().map_err(|e| format!("{e:?}"))?;
        let direct =
            direct_sensitivities(&circuit, &mut system, &meta, &case.objectives, &case.params)
                .map_err(|e| format!("direct sensitivities failed: {e:?}"))?;

        for (oi, (arow, drow)) in adjoint.sensitivities.values.iter().zip(&direct).enumerate() {
            for (pi, (&a, &d)) in arow.iter().zip(drow).enumerate() {
                let scale = a.abs().max(d.abs()).max(1e-9);
                if !a.is_finite() || !d.is_finite() || (a - d).abs() > 1e-5 * scale {
                    return Err(format!(
                        "adjoint vs direct mismatch at obj {oi} param {pi}: {a:?} vs {d:?}"
                    ));
                }
            }
        }

        // Independent reference 2: central finite differences (loose —
        // FD carries truncation and cancellation error).
        for (pi, param) in case.params.iter().enumerate() {
            let fd = match finite_difference(
                &case.circuit,
                &case.tran,
                &case.objectives[0],
                param,
                1e-5,
            ) {
                Ok(v) => v,
                Err(_) => continue,
            };
            let a = adjoint.sensitivities.values[0][pi];
            let scale = a.abs().max(fd.abs()).max(1e-6);
            if !fd.is_finite() || (a - fd).abs() > 5e-2 * scale {
                return Err(format!(
                    "adjoint vs finite difference mismatch at param {pi}: {a:?} vs {fd:?}"
                ));
            }
        }
        Ok(())
    }

    fn shrink(&self, input: &[u8]) -> Vec<Vec<u8>> {
        crate::minimize::line_candidates(input)
    }
}
