//! Netlist parser oracle: panic-free accept/reject, and accepted decks
//! agree with a serialize → re-parse round trip.

use crate::geninput;
use crate::oracle::Oracle;
use masc_circuit::netlist::write_netlist;
use masc_circuit::parser::{parse_netlist, ParsedNetlist};
use masc_testkit::gen::{self, Gen};
use masc_testkit::Rng;

fn compare(p1: &ParsedNetlist, p2: &ParsedNetlist) -> Result<(), String> {
    let (c1, c2) = (&p1.circuit, &p2.circuit);
    if c1.devices().len() != c2.devices().len() {
        return Err(format!(
            "device count changed: {} -> {}",
            c1.devices().len(),
            c2.devices().len()
        ));
    }
    for (a, b) in c1.devices().iter().zip(c2.devices()) {
        if a.name() != b.name() {
            return Err(format!("device name changed: {} -> {}", a.name(), b.name()));
        }
    }
    let mut nodes1: Vec<&str> = (0..c1.node_count()).map(|i| c1.node_name(i)).collect();
    let mut nodes2: Vec<&str> = (0..c2.node_count()).map(|i| c2.node_name(i)).collect();
    nodes1.sort_unstable();
    nodes2.sort_unstable();
    if nodes1 != nodes2 {
        return Err(format!("node set changed: {nodes1:?} -> {nodes2:?}"));
    }
    let (params1, params2) = (c1.params(), c2.params());
    if params1.len() != params2.len() {
        return Err("parameter count changed".to_string());
    }
    for (a, b) in params1.iter().zip(&params2) {
        let (va, vb) = (c1.param_value(a), c2.param_value(b));
        if va.to_bits() != vb.to_bits() && !(va.is_nan() && vb.is_nan()) {
            return Err(format!("parameter value changed: {va:?} -> {vb:?}"));
        }
    }
    match (&p1.tran, &p2.tran) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            if a.dt.to_bits() != b.dt.to_bits() || a.t_stop.to_bits() != b.t_stop.to_bits() {
                return Err(".tran changed across round trip".to_string());
            }
        }
        _ => return Err(".tran presence changed across round trip".to_string()),
    }
    Ok(())
}

/// Parser accept/reject is panic-free; accepted decks survive
/// `write_netlist` → `parse_netlist` with the same devices, nodes,
/// parameter values, and `.tran`.
pub struct ParserRoundtrip;

impl Oracle for ParserRoundtrip {
    fn name(&self) -> &'static str {
        "parser-roundtrip"
    }

    fn describe(&self) -> &'static str {
        "netlist parse panic-free + serialize/re-parse agreement"
    }

    fn generate(&self, rng: &mut Rng) -> Vec<u8> {
        let mut deck = gen::netlists(4).generate(rng).into_bytes();
        match rng.below(5) {
            // Mostly valid decks: the round-trip leg only fires on accept.
            0 | 1 => {}
            2 | 3 => geninput::mutate(rng, &mut deck),
            _ => {
                // ASCII-ish line soup for the reject path.
                deck = geninput::structured_bytes(rng, 300)
                    .into_iter()
                    .map(|b| if b == 0 { b'\n' } else { b })
                    .collect();
            }
        }
        deck
    }

    fn check(&self, input: &[u8]) -> Result<(), String> {
        let text = String::from_utf8_lossy(input);
        let Ok(p1) = parse_netlist(&text) else {
            return Ok(());
        };
        let regenerated = write_netlist(&p1);
        let p2 = parse_netlist(&regenerated)
            .map_err(|e| format!("regenerated deck rejected: {e} — deck:\n{regenerated}"))?;
        compare(&p1, &p2).map_err(|msg| format!("{msg}\nregenerated deck:\n{regenerated}"))
    }

    fn shrink(&self, input: &[u8]) -> Vec<Vec<u8>> {
        crate::minimize::line_candidates(input)
    }
}
