//! The conformance oracles, grouped by the subsystem they cross-check.

pub mod baselines;
pub mod cache;
pub mod codec;
pub mod matrix;
pub mod parser;
pub mod serve;
pub mod store;
pub mod sweep;
pub mod tensor;
pub mod window;
