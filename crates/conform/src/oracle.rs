//! The conformance-oracle abstraction.

use masc_testkit::Rng;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One differential conformance check over serialized byte inputs.
///
/// Every oracle lowers its case space to a byte string so corpus entries,
/// replay, and minimization are uniform across oracles. Inputs that do not
/// deserialize into a meaningful case must be *accepted* (vacuous `Ok`) —
/// that convention keeps shrinking honest, because a shrink candidate that
/// destroys the case's structure stops failing and is rejected.
pub trait Oracle: Sync {
    /// Stable oracle name (used in corpus headers and `--only`).
    fn name(&self) -> &'static str;

    /// One-line description for `--list`.
    fn describe(&self) -> &'static str;

    /// Builds one serialized case input from `rng`.
    fn generate(&self, rng: &mut Rng) -> Vec<u8>;

    /// Checks one serialized input. `Err` is a conformance failure;
    /// panics are converted into failures by [`run_input`].
    fn check(&self, input: &[u8]) -> Result<(), String>;

    /// Structure-aware shrink candidates for a failing input, in
    /// decreasing order of aggressiveness.
    fn shrink(&self, input: &[u8]) -> Vec<Vec<u8>> {
        crate::minimize::byte_candidates(input)
    }
}

/// Runs `oracle` on `input`, converting panics into `Err` so decoder
/// crashes count as conformance failures instead of aborting the harness.
// masc-lint: allow(error-payload, reason = "the oracle protocol reports freeform failure diagnostics; they are printed, never matched on")
pub fn run_input(oracle: &dyn Oracle, input: &[u8]) -> Result<(), String> {
    match catch_unwind(AssertUnwindSafe(|| oracle.check(input))) {
        Ok(result) => result,
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "<non-string panic payload>".to_string()
            };
            Err(format!("panic: {msg}"))
        }
    }
}
