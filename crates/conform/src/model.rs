//! Model-check harnesses for the worker-pool coordination cores.
//!
//! The fuzz oracles in this crate validate *values*; scheduling bugs —
//! lost wakeups, commit reordering, double-processed work — are
//! timing-dependent and slip past value fuzzing, so the coordination
//! cores are checked separately with the deterministic interleaving
//! explorer ([`masc_testkit::sched`]). Each harness here is a faithful
//! extraction of one production core onto the instrumented shims:
//!
//! - [`job_queue_model`] — `masc-serve`'s worker queue and close
//!   protocol (`crates/serve/src/server.rs::run_lines`). Honors the
//!   `lost-wakeup-close` injected defect: armed, the close flag moves
//!   outside the queue mutex (modeled as a foreign shim mutex, since raw
//!   atomics are invisible to the virtual scheduler) and the explorer
//!   must find the resulting lost wakeup as a deadlock.
//! - [`single_flight_model`] — `masc-serve`'s in-flight key dedup
//!   (`Server::submit`): one leader computes, waiters park on a condvar
//!   until the key is released, everyone observes the cached value.
//! - [`pipelined_commit_model`] — the pipelined store's encode pool
//!   (`crates/adjoint/src/store/pipelined.rs::spawn_pool`): a bounded
//!   job channel fans out to workers sharing a mutex-wrapped receiver,
//!   and a committer reorders their out-of-order output back into strict
//!   step order.
//! - [`window_sweep_model`] — the window engine's dirty-lane sweep
//!   (`crates/window/src/engine.rs`): each sweep processes exactly the
//!   lanes dirty at its start, re-dirties propagation targets between
//!   sweeps, and surfaces the lowest-index failure deterministically.
//!
//! Every assertion must hold on *every explored schedule*; a violation
//! is reported with its schedule seed, minimized preemption trace, and a
//! `MASC_SCHED_REPRO` replay line, via `masc-conform --model-check`.

use masc_testkit::sched::{Explorer, Sched, ScheduleFailure};
use std::collections::{BTreeMap, VecDeque};
use std::time::Duration;

/// Outcome of model-checking one coordination core.
#[derive(Debug)]
pub struct ModelOutcome {
    /// Harness name (stable; used by CLI output and tests).
    pub name: &'static str,
    /// Schedules actually explored.
    pub schedules: usize,
    /// First failing schedule, minimized, if any.
    pub failure: Option<ScheduleFailure>,
}

/// The worker-queue state mirrored from `serve::server::JobQueue`.
struct Queue {
    items: VecDeque<u32>,
    closed: bool,
}

/// Whether the serve lost-wakeup defect is armed.
fn lost_wakeup_armed() -> bool {
    masc_serve::mutation::active(masc_serve::mutation::Defect::LostWakeupClose)
}

/// `run_lines` close protocol: 2 worker lanes drain a queue of 3 jobs;
/// the reader then closes the queue and waits for the lanes. Asserts
/// every job is processed exactly once and shutdown always completes.
pub fn job_queue_model(s: &Sched) {
    const JOBS: u32 = 2;
    let armed = lost_wakeup_armed();
    let queue = s.mutex(Queue {
        items: VecDeque::new(),
        closed: false,
    });
    let ready = s.condvar();
    // Armed variant: the close flag lives outside the queue mutex (the
    // injected defect models `closed` as an atomic; a shim mutex is the
    // scheduler-visible equivalent).
    let closed_outside = s.mutex(false);
    let processed = s.mutex(Vec::<u32>::new());

    for _ in 0..2 {
        let (queue, ready, closed_outside, processed) = (
            queue.clone(),
            ready.clone(),
            closed_outside.clone(),
            processed.clone(),
        );
        s.spawn(move || loop {
            let item = {
                let mut q = queue.lock();
                loop {
                    if let Some(item) = q.items.pop_front() {
                        break Some(item);
                    }
                    if armed {
                        // BUG (injected): predicate reads a flag the
                        // closer does not publish under this mutex.
                        if *closed_outside.lock() {
                            break None;
                        }
                    } else if q.closed {
                        break None;
                    }
                    q = ready.wait(q);
                }
            };
            match item {
                Some(job) => processed.lock().push(job),
                None => break,
            }
        });
    }

    for job in 0..JOBS {
        queue.lock().items.push_back(job);
        ready.notify_one();
    }
    if armed {
        *closed_outside.lock() = true;
    } else {
        queue.lock().closed = true;
    }
    ready.notify_all();
    s.join_all();

    let mut done = processed.lock().clone();
    done.sort_unstable();
    assert_eq!(
        done,
        (0..JOBS).collect::<Vec<_>>(),
        "jobs lost or duplicated"
    );
    assert!(
        queue.lock().items.is_empty(),
        "queue not drained at shutdown"
    );
}

/// `Server::submit` single-flight: 3 clients race on one cache key; the
/// first to insert the key leads and computes, the rest wait on the
/// in-flight condvar and re-probe the cache. A client that probed the
/// cache before publication may legitimately recompute *after* the
/// leader released the key (a benign, bit-identical recompute) — the
/// protocol's guarantee, and this model's assertion, is that two
/// computations for one key are never in flight concurrently and that
/// every client observes the published value.
pub fn single_flight_model(s: &Sched) {
    let inflight = s.mutex(false); // "key present in the in-flight set"
    let inflight_done = s.condvar();
    let cache = s.mutex(None::<u32>);
    let gauge = s.mutex((0u32, 0u32)); // (in-flight computations, max)
    let observed = s.mutex(Vec::<u32>::new());

    for _ in 0..3 {
        let (inflight, inflight_done, cache, gauge, observed) = (
            inflight.clone(),
            inflight_done.clone(),
            cache.clone(),
            gauge.clone(),
            observed.clone(),
        );
        s.spawn(move || {
            if let Some(v) = *cache.lock() {
                observed.lock().push(v);
                return;
            }
            let leader = {
                let mut set = inflight.lock();
                let leader = !*set;
                *set = true;
                leader
            };
            if leader {
                {
                    let mut g = gauge.lock();
                    g.0 += 1;
                    g.1 = g.1.max(g.0);
                }
                *cache.lock() = Some(42);
                gauge.lock().0 -= 1;
                // Release the key and wake waiters (InflightGuard drop).
                *inflight.lock() = false;
                inflight_done.notify_all();
            } else {
                let mut set = inflight.lock();
                while *set {
                    set = inflight_done.wait(set);
                }
                drop(set);
            }
            let v = cache.lock().expect("leader published before release");
            observed.lock().push(v);
        });
    }
    s.join_all();

    let max_concurrent = gauge.lock().1;
    assert_eq!(max_concurrent, 1, "concurrent computations for one key");
    let seen = observed.lock().clone();
    assert_eq!(
        seen,
        vec![42, 42, 42],
        "a client missed the published value"
    );
}

/// `PipelinedStore::spawn_pool` commit order: a bounded job channel fans
/// 4 sequenced steps out to 2 encode workers sharing a mutex-wrapped
/// receiver; a committer parks out-of-order steps and commits them in
/// strict sequence. Asserts the commit log is exactly `0..4` in order.
pub fn pipelined_commit_model(s: &Sched) {
    const STEPS: usize = 4;
    let (job_tx, job_rx) = s.channel::<usize>(2);
    let (enc_tx, enc_rx) = s.channel::<usize>(2 + 2);
    let shared_rx = s.mutex(job_rx);
    let log = s.mutex(Vec::<usize>::new());

    for _ in 0..2 {
        let shared_rx = shared_rx.clone();
        let enc_tx = enc_tx.clone();
        s.spawn(move || loop {
            // The production pattern: the receiver guard is confined to
            // the recv expression, then the worker encodes unlocked.
            let job = {
                let rx = shared_rx.lock();
                rx.recv()
            };
            match job {
                Ok(seq) => {
                    if enc_tx.send(seq).is_err() {
                        break;
                    }
                }
                Err(_) => break,
            }
        });
    }
    // The committer's channel must close when the last worker exits.
    drop(enc_tx);

    {
        let log = log.clone();
        s.spawn(move || {
            let mut parked: BTreeMap<usize, ()> = BTreeMap::new();
            let mut next = 0usize;
            while let Ok(seq) = enc_rx.recv() {
                parked.insert(seq, ());
                while parked.remove(&next).is_some() {
                    log.lock().push(next);
                    next += 1;
                }
            }
            assert!(parked.is_empty(), "committer exited with parked steps");
        });
    }

    for seq in 0..STEPS {
        job_tx.send(seq).expect("workers alive while producing");
    }
    drop(job_tx);
    s.join_all();

    let committed = log.lock().clone();
    assert_eq!(
        committed,
        (0..STEPS).collect::<Vec<_>>(),
        "steps committed out of order"
    );
}

/// Window-engine sweep bookkeeping: each wave processes exactly the
/// lanes dirty at its start on parallel workers (each clearing its own
/// flag), propagation re-dirties a successor between waves, and worker
/// failures surface as the lowest window index regardless of schedule.
pub fn window_sweep_model(s: &Sched) {
    const LANES: usize = 3;
    let dirty = s.mutex(vec![true; LANES]);
    let sweeps = s.mutex(Vec::<Vec<usize>>::new());
    let failures = s.mutex(Vec::<usize>::new());

    let mut round = 0usize;
    loop {
        let targets: Vec<usize> = {
            let d = dirty.lock();
            (0..LANES).filter(|&k| d[k]).collect()
        };
        if targets.is_empty() {
            break;
        }
        sweeps.lock().push(targets.clone());
        for k in targets {
            let (dirty, failures) = (dirty.clone(), failures.clone());
            s.spawn(move || {
                dirty.lock()[k] = false;
                // Lanes 0 and 2 "fail" in the first wave; `wave()`
                // surfaces the lowest index deterministically.
                if k != 1 {
                    failures.lock().push(k);
                }
            });
        }
        s.join_all(); // the scoped join at the end of `wave()`
        let surfaced = failures.lock().iter().copied().min();
        if round == 0 {
            assert_eq!(
                surfaced,
                Some(0),
                "failure selection must be index-deterministic"
            );
            failures.lock().clear();
            // Propagation: the first wave's mismatch re-dirties the last
            // lane only, so the second wave is exactly `[2]`.
            dirty.lock()[LANES - 1] = true;
        }
        round += 1;
        assert!(round <= 2, "sweep failed to terminate");
    }

    let waves = sweeps.lock().clone();
    assert_eq!(
        waves,
        vec![vec![0, 1, 2], vec![2]],
        "waves did not process exactly the dirty sets"
    );
}

/// A registered model-check harness: stable name plus entry point.
pub type NamedModel = (&'static str, fn(&Sched));

/// The model registry: name → harness, in CLI display order.
pub fn models() -> Vec<NamedModel> {
    vec![
        ("serve-queue-shutdown", job_queue_model as fn(&Sched)),
        ("serve-single-flight", single_flight_model),
        ("pipelined-commit-order", pipelined_commit_model),
        ("window-dirty-sweep", window_sweep_model),
    ]
}

/// Explorer configured for one harness within a shared wall-clock
/// budget; `None` keeps the schedule count as the only bound.
///
/// The schedule budget is sized with margin: the armed
/// `lost-wakeup-close` deadlock surfaces deterministically well inside
/// the first ~700 schedules of the default seed sequence, so 2000 keeps
/// a >3x cushion while a full four-model sweep stays under two seconds.
pub fn model_explorer(budget: Option<Duration>) -> Explorer {
    Explorer {
        schedules: 2000,
        time_budget: budget,
        ..Explorer::default()
    }
}

/// Runs every registered model under `explorer`, stopping early only
/// within a harness (at its first failing schedule).
pub fn check_all(explorer: &Explorer) -> Vec<ModelOutcome> {
    models()
        .into_iter()
        .map(|(name, model)| {
            let report = explorer.explore(model);
            ModelOutcome {
                name,
                schedules: report.schedules,
                failure: report.failure,
            }
        })
        .collect()
}
