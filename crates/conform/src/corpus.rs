//! Crash-corpus persistence.
//!
//! Each entry is one file under `tests/corpus/`:
//!
//! ```text
//! masc-conform/1 <oracle> seed=0x<case seed>\n
//! <raw minimized input bytes>
//! ```
//!
//! The header records which oracle to replay the payload through and the
//! case seed that originally produced it (`MASC_PROP_REPRO`-compatible).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Corpus format magic for version 1.
pub const MAGIC: &str = "masc-conform/1";

/// One persisted failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusEntry {
    /// Oracle name the payload replays through.
    pub oracle: String,
    /// Case seed that originally produced the failure.
    pub seed: u64,
    /// Minimized failing input.
    pub payload: Vec<u8>,
}

impl CorpusEntry {
    /// Serializes the entry to its on-disk form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = format!("{MAGIC} {} seed={:#x}\n", self.oracle, self.seed).into_bytes();
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses an on-disk entry.
    // masc-lint: allow(error-payload, reason = "fuzz-harness diagnostics are freeform strings shown to the operator, not matched on")
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let nl = bytes
            .iter()
            .position(|&b| b == b'\n')
            .ok_or("corpus entry has no header line")?;
        let header = std::str::from_utf8(&bytes[..nl]).map_err(|_| "corpus header is not UTF-8")?;
        let mut fields = header.split_whitespace();
        if fields.next() != Some(MAGIC) {
            return Err(format!("bad corpus magic in {header:?}"));
        }
        let oracle = fields.next().ok_or("corpus header missing oracle")?;
        let seed_field = fields.next().ok_or("corpus header missing seed")?;
        let seed_hex = seed_field
            .strip_prefix("seed=0x")
            .ok_or("corpus seed field must be seed=0x<hex>")?;
        let seed = u64::from_str_radix(seed_hex, 16).map_err(|e| format!("bad seed: {e}"))?;
        Ok(Self {
            oracle: oracle.to_string(),
            seed,
            payload: bytes[nl + 1..].to_vec(),
        })
    }
}

/// Writes `entry` into `dir` (creating it), named after its oracle and
/// seed. Returns the path written.
pub fn write_entry(dir: &Path, entry: &CorpusEntry) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}-{:016x}.case", entry.oracle, entry.seed));
    fs::write(&path, entry.to_bytes())?;
    Ok(path)
}

/// Loads every `*.case` entry under `dir`, sorted by file name.
/// A missing directory is an empty corpus.
pub fn load_dir(dir: &Path) -> io::Result<Vec<(PathBuf, CorpusEntry)>> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let path = entry?.path();
        if path.extension().and_then(|e| e.to_str()) != Some("case") {
            continue;
        }
        let bytes = fs::read(&path)?;
        match CorpusEntry::from_bytes(&bytes) {
            Ok(parsed) => out.push((path, parsed)),
            Err(msg) => {
                return Err(io::Error::other(format!("{}: {msg}", path.display())));
            }
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_round_trips_including_binary_payload() {
        let entry = CorpusEntry {
            oracle: "codec-decode".to_string(),
            seed: 0xDEAD_BEEF,
            payload: vec![0, 1, 2, 0xFF, b'\n', 7],
        };
        assert_eq!(
            CorpusEntry::from_bytes(&entry.to_bytes()).expect("parses"),
            entry
        );
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert!(CorpusEntry::from_bytes(b"nonsense header\npayload").is_err());
    }
}
