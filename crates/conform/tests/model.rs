//! Model-check harness validation: the interleaving explorer must pass
//! every schedule on the unarmed coordination cores, and must find,
//! minimize, and deterministically replay the armed `lost-wakeup-close`
//! defect. This is the explorer testing itself, exactly as
//! `tests/mutation.rs` is the fuzzer testing itself.

use masc_conform::model;
use masc_testkit::sched::FailureKind;
use std::sync::Mutex;

/// Serializes defect arming: the switch is process-global, and these
/// tests run in the same process as any other conform integration test
/// arming serve defects.
static DEFECT_LOCK: Mutex<()> = Mutex::new(());

/// Disarms the serve defect on drop, so a failing assertion cannot leak
/// an armed defect into another test.
struct Disarm;

impl Drop for Disarm {
    fn drop(&mut self) {
        masc_serve::mutation::set_defect(masc_serve::mutation::Defect::None);
    }
}

#[test]
fn unarmed_cores_pass_every_explored_schedule() {
    let _guard = DEFECT_LOCK.lock().expect("defect lock");
    let _disarm = Disarm; // defensive: another test could have leaked
    masc_serve::mutation::set_defect(masc_serve::mutation::Defect::None);

    let explorer = model::model_explorer(None);
    for outcome in model::check_all(&explorer) {
        assert!(
            outcome.failure.is_none(),
            "unarmed model {} failed: {}",
            outcome.name,
            outcome.failure.expect("checked above")
        );
        assert!(outcome.schedules > 0, "{} explored nothing", outcome.name);
    }
}

#[test]
fn armed_lost_wakeup_is_found_minimized_and_replayed() {
    let _guard = DEFECT_LOCK.lock().expect("defect lock");
    let _disarm = Disarm;
    masc_serve::mutation::set_defect(masc_serve::mutation::Defect::LostWakeupClose);

    let explorer = model::model_explorer(None);
    let report = explorer.explore(model::job_queue_model);
    let failure = report
        .failure
        .expect("armed lost-wakeup-close must be exposed within the CI schedule budget");

    // The lost wakeup manifests as a deadlock: parked worker lane(s)
    // plus the reader stuck joining them.
    assert!(
        matches!(failure.kind, FailureKind::Deadlock { .. }),
        "expected deadlock, got {}",
        failure.kind
    );

    // The shrinker keeps the failure while canonicalizing the decision
    // trace toward the no-preemption schedule; the surviving schedule
    // must stay within the explorer's preemption bound.
    assert!(
        failure.preemptions <= explorer.max_preemptions,
        "minimized schedule uses {} preemptions, bound is {}",
        failure.preemptions,
        explorer.max_preemptions
    );

    // Seed replay (the MASC_SCHED_REPRO path) reproduces the same
    // failure class deterministically, twice over.
    let replay_a = explorer
        .replay(failure.seed, model::job_queue_model)
        .expect("seed replay must reproduce the deadlock");
    let replay_b = explorer
        .replay(failure.seed, model::job_queue_model)
        .expect("seed replay must reproduce the deadlock again");
    assert!(matches!(replay_a.kind, FailureKind::Deadlock { .. }));
    assert_eq!(replay_a.kind, replay_b.kind);
    assert_eq!(replay_a.trace, replay_b.trace);

    // Disarmed, the very same schedule seed is clean: the failure is the
    // defect's, not the model's.
    masc_serve::mutation::set_defect(masc_serve::mutation::Defect::None);
    assert!(
        explorer
            .replay(failure.seed, model::job_queue_model)
            .is_none(),
        "failing schedule must pass once the defect is disarmed"
    );
}
