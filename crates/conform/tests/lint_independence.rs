//! Cross-check between the dynamic and static halves of MASC's assurance
//! story: the conformance harness's runtime defect hooks must be invisible
//! to `masc-lint`.
//!
//! Two properties are pinned:
//!
//! 1. **Arming independence** — the analyzer's verdict (findings *and*
//!    pragma inventory) is byte-identical whether or not a
//!    `mutation-hooks` defect is armed. Static analysis reads source, so
//!    any divergence would mean the lint run somehow observes process
//!    state — a harness bug.
//! 2. **No laundering through hook regions** — no lint pragma, no
//!    baseline entry, and no finding may sit inside a
//!    `#[cfg(feature = "mutation-hooks")]` region. Injected-defect code is
//!    exactly where a stray `allow` or grandfathered baseline entry could
//!    hide a real violation behind "it's only test scaffolding".

use masc_lint::{baseline, find_root, run, Manifest, Report};
use std::path::{Path, PathBuf};

const HOOK_ATTR: &str = "#[cfg(feature = \"mutation-hooks\")]";

fn workspace_root() -> PathBuf {
    find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root")
}

fn lint_workspace(root: &Path) -> Report {
    let manifest_text =
        std::fs::read_to_string(root.join("lint-manifest.txt")).expect("lint-manifest.txt");
    let manifest = Manifest::parse(&manifest_text).expect("manifest parses");
    run(root, &manifest).expect("lint run succeeds")
}

/// A `mutation-hooks`-gated source region: file plus inclusive line span.
struct HookRegion {
    file: String,
    start: u32,
    end: u32,
}

/// Finds every `#[cfg(feature = "mutation-hooks")]` attribute in the
/// workspace sources and brace-matches the item it gates. A gated `use` or
/// module declaration ends at its `;`; a gated item/block ends at the
/// close of its first brace group.
fn hook_regions(root: &Path) -> Vec<HookRegion> {
    let mut regions = Vec::new();
    let crates_dir = root.join("crates");
    let mut stack = vec![root.join("src"), crates_dir];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
                let rel = path
                    .strip_prefix(root)
                    .expect("under root")
                    .to_string_lossy()
                    .replace('\\', "/");
                let src = std::fs::read_to_string(&path).expect("read source");
                collect_regions(&rel, &src, &mut regions);
            }
        }
    }
    regions
}

fn collect_regions(rel: &str, src: &str, out: &mut Vec<HookRegion>) {
    let lines: Vec<&str> = src.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        if !line.contains(HOOK_ATTR) {
            continue;
        }
        let start = i as u32 + 1;
        let mut depth = 0i64;
        let mut opened = false;
        let mut end = start;
        'scan: for (j, body) in lines.iter().enumerate().skip(i + 1) {
            for c in body.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth -= 1;
                        if opened && depth <= 0 {
                            end = j as u32 + 1;
                            break 'scan;
                        }
                    }
                    ';' if !opened => {
                        end = j as u32 + 1;
                        break 'scan;
                    }
                    _ => {}
                }
            }
        }
        out.push(HookRegion {
            file: rel.to_string(),
            start,
            end: end.max(start),
        });
    }
}

#[test]
fn lint_verdict_is_independent_of_armed_defects() {
    let root = workspace_root();
    masc_compress::mutation::set_defect(masc_compress::mutation::Defect::None);
    masc_adjoint::mutation::set_defect(masc_adjoint::mutation::Defect::None);
    let disarmed = lint_workspace(&root);
    assert!(disarmed.files > 0, "lint run scanned no files");

    let compress_defects = [
        masc_compress::mutation::Defect::WrongStampCandidate,
        masc_compress::mutation::Defect::VarintLenOffByOne,
    ];
    for defect in compress_defects {
        masc_compress::mutation::set_defect(defect);
        let armed = lint_workspace(&root);
        assert_eq!(
            disarmed.findings, armed.findings,
            "findings changed with {defect:?} armed"
        );
        assert_eq!(
            disarmed.pragmas, armed.pragmas,
            "pragma inventory changed with {defect:?} armed"
        );
        masc_compress::mutation::set_defect(masc_compress::mutation::Defect::None);
    }

    masc_adjoint::mutation::set_defect(masc_adjoint::mutation::Defect::StaleSpillBlock);
    let armed = lint_workspace(&root);
    assert_eq!(disarmed.findings, armed.findings);
    assert_eq!(disarmed.pragmas, armed.pragmas);
    masc_adjoint::mutation::set_defect(masc_adjoint::mutation::Defect::None);

    // The serve scheduling defect switches *concurrency-classed* code, so
    // it additionally pins the new R6–R8 rules: arming it must not change
    // a single concurrency finding or pragma.
    masc_serve::mutation::set_defect(masc_serve::mutation::Defect::LostWakeupClose);
    let armed = lint_workspace(&root);
    assert_eq!(
        disarmed.findings, armed.findings,
        "findings changed with LostWakeupClose armed"
    );
    assert_eq!(
        disarmed.pragmas, armed.pragmas,
        "pragma inventory changed with LostWakeupClose armed"
    );
    masc_serve::mutation::set_defect(masc_serve::mutation::Defect::None);
}

#[test]
fn no_suppression_hides_inside_mutation_hook_regions() {
    let root = workspace_root();
    let regions = hook_regions(&root);
    assert!(
        !regions.is_empty(),
        "expected mutation-hooks regions; did the feature move?"
    );
    // The serve lost-wakeup defect lives inside concurrency-classed code
    // (crates/serve/src/server.rs), where a stray pragma could launder a
    // real R6–R8 violation — make sure those regions are actually seen.
    assert!(
        regions.iter().any(|r| r.file.starts_with("crates/serve/")),
        "expected mutation-hooks regions in crates/serve; did the serve defect move?"
    );

    let report = lint_workspace(&root);
    let baseline_entries = match std::fs::read_to_string(root.join("lint-baseline.json")) {
        Ok(text) => baseline::parse(&text).expect("baseline parses"),
        Err(_) => Vec::new(),
    };

    for region in &regions {
        let findings = masc_lint::workspace::findings_in_region(
            &report.findings,
            &region.file,
            region.start,
            region.end,
        );
        assert!(
            findings.is_empty(),
            "lint findings inside mutation-hooks region {}:{}-{}: {findings:?}",
            region.file,
            region.start,
            region.end
        );
        let grandfathered = masc_lint::workspace::baseline_in_region(
            &baseline_entries,
            &region.file,
            region.start,
            region.end,
        );
        assert!(
            grandfathered.is_empty(),
            "baseline entries inside mutation-hooks region {}:{}-{}: {grandfathered:?}",
            region.file,
            region.start,
            region.end
        );
        for (file, pragma) in &report.pragmas {
            let inside = file == &region.file
                && pragma.comment_line >= region.start
                && pragma.comment_line <= region.end;
            assert!(
                !inside,
                "pragma at {file}:{} hides inside mutation-hooks region {}-{}",
                pragma.comment_line, region.start, region.end
            );
        }
    }
}
