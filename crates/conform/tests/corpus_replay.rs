//! Crash-corpus regression tests.
//!
//! `tests/corpus/` (workspace root) pins inputs that used to panic or
//! over-allocate in the decoders before they were hardened. Every entry
//! must replay cleanly through its recorded oracle; a regression in the
//! hardening shows up here as a panic-turned-failure.
//!
//! The pinned payloads are also constructed in code below
//! ([`pinned_entries`]) so the test protects against corpus-file loss,
//! and so `regenerate_pinned_entries` (`--ignored`) can rewrite the
//! checked-in files deterministically.

use masc_compress::{MascConfig, TensorCompressor};
use masc_conform::corpus::CorpusEntry;
use masc_conform::{all_oracles, run_input, runner};
use masc_sparse::TripletMatrix;
use std::path::PathBuf;
use std::sync::Arc;

fn corpus_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/corpus"))
}

/// LEB128 of `u64::MAX`: the classic hostile length claim.
fn varint_max() -> Vec<u8> {
    let mut out = Vec::new();
    masc_bitio::varint::write_u64(&mut out, u64::MAX);
    out
}

/// Serialized empty MASC tensor with its trailing block-count varint
/// replaced by `u64::MAX` — used to demand an absurd block allocation.
fn tensor_with_hostile_count() -> Vec<u8> {
    let mut t = TripletMatrix::new(2, 2);
    t.add(0, 0, 1.0);
    t.add(1, 1, 1.0);
    let pattern = t.to_csr().pattern().clone();
    let mut bytes = TensorCompressor::new(pattern, MascConfig::default())
        .finish()
        .to_bytes();
    // With zero steps the block count is the final varint (a single 0x00).
    assert_eq!(bytes.pop(), Some(0));
    bytes.extend_from_slice(&varint_max());
    bytes
}

/// Serialized tensor whose embedded pattern's row-pointer delta block
/// claims `u64::MAX` elements — found by fuzzing: `decode_deltas` used to
/// pass the claim straight to `Vec::with_capacity`, aborting the process
/// (alloc failure, not even an unwindable panic).
fn tensor_with_hostile_pattern_deltas() -> Vec<u8> {
    // Pattern wire format: varint rows, cols, row-ptr block length, then
    // the row-ptr delta block (whose first varint is the element count).
    let mut pattern = vec![2u8, 2];
    let deltas = varint_max();
    pattern.push(deltas.len() as u8);
    pattern.extend_from_slice(&deltas);
    // Tensor wire format: varint pattern length, then the pattern.
    let mut bytes = vec![pattern.len() as u8];
    bytes.extend_from_slice(&pattern);
    bytes
}

/// Serialized zero-step dataset with its trailing step-count varint
/// replaced by `u64::MAX`.
fn dataset_with_hostile_steps() -> Vec<u8> {
    let mut t = TripletMatrix::new(2, 2);
    t.add(0, 0, 1.0);
    t.add(1, 1, 1.0);
    let pattern = t.to_csr().pattern().clone();
    let dataset = masc_datasets::Dataset {
        name: "pin".to_string(),
        elements: 2,
        g_pattern: Arc::clone(&pattern),
        c_pattern: pattern,
        g_series: Vec::new(),
        c_series: Vec::new(),
        hs: Vec::new(),
    };
    let mut bytes = masc_datasets::cache::dataset_to_bytes(&dataset);
    // With zero steps the step count is the final varint (a single 0x00).
    assert_eq!(bytes.pop(), Some(0));
    bytes.extend_from_slice(&varint_max());
    bytes
}

/// The pinned regressions: each payload used to panic (capacity overflow
/// or unchecked arithmetic) in the named oracle's decoders.
fn pinned_entries() -> Vec<CorpusEntry> {
    let mut rle_run = vec![8u8]; // word count 8 ...
    rle_run.extend_from_slice(&varint_max()); // ... then a u64::MAX zero run
    vec![
        // rle: `u64::MAX` claimed word count (capacity overflow); the same
        // bytes also exercise huffman's and rans's hostile length paths.
        CorpusEntry {
            oracle: "codec-decode".to_string(),
            seed: 1,
            payload: varint_max(),
        },
        // rle: plausible word count but a zero run exceeding it.
        CorpusEntry {
            oracle: "codec-decode".to_string(),
            seed: 2,
            payload: rle_run,
        },
        // chimp/fpzip/gzip/spicemate: `u64::MAX` claimed value count.
        CorpusEntry {
            oracle: "baseline-decode".to_string(),
            seed: 1,
            payload: varint_max(),
        },
        // tensor header claiming `u64::MAX` compressed blocks.
        CorpusEntry {
            oracle: "tensor-decode".to_string(),
            seed: 1,
            payload: tensor_with_hostile_count(),
        },
        // pattern delta block claiming `u64::MAX` indices (fuzzer find).
        CorpusEntry {
            oracle: "tensor-decode".to_string(),
            seed: 2,
            payload: tensor_with_hostile_pattern_deltas(),
        },
        // dataset cache claiming `u64::MAX` series steps.
        CorpusEntry {
            oracle: "cache-decode".to_string(),
            seed: 1,
            payload: dataset_with_hostile_steps(),
        },
    ]
}

/// The hardened decoders survive every pinned payload (independent of the
/// checked-in corpus files).
#[test]
fn pinned_payloads_replay_clean() {
    let oracles = all_oracles();
    for entry in pinned_entries() {
        let oracle = oracles
            .iter()
            .find(|o| o.name() == entry.oracle)
            .unwrap_or_else(|| panic!("unknown oracle {:?}", entry.oracle));
        if let Err(msg) = run_input(oracle.as_ref(), &entry.payload) {
            panic!(
                "pinned {} payload (seed {}) regressed: {msg}",
                entry.oracle, entry.seed
            );
        }
    }
}

/// Every checked-in corpus entry replays cleanly through its oracle.
#[test]
fn checked_in_corpus_replays_clean() {
    let dir = corpus_dir();
    let entries = masc_conform::corpus::load_dir(&dir).expect("corpus dir readable");
    assert!(
        !entries.is_empty(),
        "expected pinned entries under {}",
        dir.display()
    );
    let failures = runner::replay_corpus(&all_oracles(), &dir).expect("corpus dir readable");
    assert!(
        failures.is_empty(),
        "corpus regressions: {:#?}",
        failures
            .iter()
            .map(|(p, m)| format!("{}: {m}", p.display()))
            .collect::<Vec<_>>()
    );
}

/// Rewrites the checked-in pinned entries. Run manually after changing
/// [`pinned_entries`]: `cargo test -p masc-conform --test corpus_replay -- --ignored`.
#[test]
#[ignore = "writes into tests/corpus/; run manually to regenerate"]
fn regenerate_pinned_entries() {
    let dir = corpus_dir();
    for entry in pinned_entries() {
        let path = masc_conform::corpus::write_entry(&dir, &entry).expect("write corpus entry");
        eprintln!("wrote {}", path.display());
    }
}
