//! Mutation checks: the harness must catch deliberately injected defects.
//!
//! Each test arms one defect behind the `mutation-hooks` feature of
//! `masc-compress`/`masc-adjoint`, fuzzes the oracle that owns that
//! layer under a bounded budget, and requires:
//!
//! 1. the defect is detected (at least one failure),
//! 2. the failure is minimized and persisted as a corpus entry,
//! 3. the persisted entry still reproduces the failure (replay with the
//!    defect armed fails) and is clean on the fixed code (replay with
//!    the defect disarmed passes).
//!
//! This is the harness testing itself: a fuzzer that cannot catch a
//! known-bad encoder within its CI budget is not pulling its weight.

use masc_conform::{all_oracles, corpus, run_input, runner, RunConfig};
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Duration;

/// Serializes mutation tests: the defect switches are process-global.
static DEFECT_LOCK: Mutex<()> = Mutex::new(());

/// Disarms every defect on drop, so a failing assertion cannot leak an
/// armed defect into the next test.
struct Disarm;

impl Drop for Disarm {
    fn drop(&mut self) {
        masc_compress::mutation::set_defect(masc_compress::mutation::Defect::None);
        masc_adjoint::mutation::set_defect(masc_adjoint::mutation::Defect::None);
    }
}

fn scratch_corpus(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("masc-mutation-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Arms `arm`, fuzzes `oracle_name`, and checks detection + a minimized,
/// replayable corpus entry.
fn assert_defect_caught(tag: &str, oracle_name: &str, shrink_iters: u32, arm: impl Fn()) {
    let _guard = DEFECT_LOCK.lock().expect("defect lock");
    let _disarm = Disarm;
    arm();

    let dir = scratch_corpus(tag);
    let oracles = all_oracles();
    let report = runner::run(
        &oracles,
        &RunConfig {
            budget: Duration::from_secs(60),
            seed: 4,
            only: Some(oracle_name.to_string()),
            corpus_dir: Some(dir.clone()),
            shrink_iters,
            ..RunConfig::default()
        },
    );
    assert_eq!(
        report.total_failures(),
        1,
        "injected defect {tag} was not caught by {oracle_name} \
         ({} cases in {:?})",
        report.total_cases(),
        report.elapsed
    );

    let entries = corpus::load_dir(&dir).expect("corpus dir readable");
    assert_eq!(entries.len(), 1, "expected one persisted corpus entry");
    let (path, entry) = &entries[0];
    assert_eq!(entry.oracle, oracle_name);
    let oracle = oracles
        .iter()
        .find(|o| o.name() == oracle_name)
        .expect("oracle exists");

    // The minimized entry still reproduces the failure while armed...
    assert!(
        run_input(oracle.as_ref(), &entry.payload).is_err(),
        "minimized entry {} does not reproduce the armed defect",
        path.display()
    );
    // ...and is clean once the defect is gone (i.e. once "fixed").
    drop(_disarm);
    assert!(
        run_input(oracle.as_ref(), &entry.payload).is_ok(),
        "minimized entry {} fails even without the defect",
        path.display()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The stamp-predictor selection written to the wire disagrees with the
/// one used for the residual — caught as a bit-exactness failure.
#[test]
fn catches_wrong_stamp_candidate() {
    assert_defect_caught("wrong-stamp-candidate", "tensor-roundtrip", 2_000, || {
        masc_compress::mutation::set_defect(masc_compress::mutation::Defect::WrongStampCandidate);
    });
}

/// Serialized block lengths are off by one — caught when deserialization
/// desynchronizes from the block framing.
#[test]
fn catches_varint_len_off_by_one() {
    assert_defect_caught("varint-len-off-by-one", "tensor-roundtrip", 2_000, || {
        masc_compress::mutation::set_defect(masc_compress::mutation::Defect::VarintLenOffByOne);
    });
}

/// The hybrid store returns the previous spilled block instead of the one
/// it fetched — caught as a gradient divergence (or decode failure)
/// against the raw in-memory store.
#[test]
fn catches_stale_spill_block() {
    // End-to-end shrink candidates are expensive; a small budget still
    // produces a compact deck.
    assert_defect_caught("stale-spill-block", "store-equiv", 40, || {
        masc_adjoint::mutation::set_defect(masc_adjoint::mutation::Defect::StaleSpillBlock);
    });
}
