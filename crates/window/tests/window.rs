//! End-to-end windowed-adjoint validation: monolithic equivalence, lane
//! and window invariance, convergence telemetry, and periodic mode.

use masc_adjoint::{run_adjoint, ForwardRecord, Objective, RunMeta, StoreConfig, TensorLayout};
use masc_circuit::devices::{Capacitor, CurrentSource, Device, Resistor};
use masc_circuit::transient::transient;
use masc_circuit::transient::TranOptions;
use masc_circuit::waveform::Waveform;
use masc_circuit::{Circuit, ParamRef};
use masc_window::{run_windowed, WindowError, WindowOptions, WindowResult};

/// A current-source-driven RC ladder: no branch unknowns, diagonally
/// dominant `G`, so the pivot sequence is the structural diagonal and
/// windowed runs are bit-comparable to the monolithic pipeline.
fn ladder(stages: usize) -> Circuit {
    let mut ckt = Circuit::new();
    let nodes: Vec<_> = (0..stages)
        .map(|s| ckt.node(&format!("n{s}")).unknown())
        .collect();
    // Pulse drive: the deck starts off steady state, so the transient has
    // real dynamics and the Parareal iteration genuinely has to work.
    ckt.add(Device::CurrentSource(CurrentSource::new(
        "I1",
        None,
        nodes[0],
        Waveform::Pulse {
            v1: 0.0,
            v2: 1e-3,
            td: 0.0,
            tr: 1e-9,
            tf: 1e-9,
            pw: 1.0,
            per: 2.0,
        },
    )))
    .unwrap();
    for s in 0..stages {
        ckt.add(Device::Resistor(Resistor::new(
            format!("R{s}"),
            nodes[s],
            None,
            1000.0,
        )))
        .unwrap();
        ckt.add(Device::Capacitor(Capacitor::new(
            format!("C{s}"),
            nodes[s],
            None,
            1e-6,
        )))
        .unwrap();
        if s + 1 < stages {
            ckt.add(Device::Resistor(Resistor::new(
                format!("RS{s}"),
                nodes[s],
                nodes[s + 1],
                500.0,
            )))
            .unwrap();
        }
    }
    ckt
}

fn setup(base: &Circuit) -> (TranOptions, Vec<Objective>, Vec<ParamRef>) {
    let tran = TranOptions::new(1e-3, 5e-5); // 20 steps
    let out = base.find_node("n0").unwrap().unknown().unwrap();
    let last = base.find_node("n3").unwrap().unknown().unwrap();
    let objectives = vec![
        Objective::FinalValue { unknown: last },
        Objective::Integral { unknown: out },
    ];
    let params = vec![
        base.find_param("R0.r").unwrap(),
        base.find_param("C1.c").unwrap(),
    ];
    (tran, objectives, params)
}

fn windowed(base: &Circuit, opts: &WindowOptions) -> WindowResult {
    let (tran, objectives, params) = setup(base);
    let mut ckt = base.clone();
    run_windowed(&mut ckt, &tran, opts, &objectives, &params).unwrap()
}

fn monolithic(base: &Circuit) -> masc_adjoint::SensitivityRun {
    let (tran, objectives, params) = setup(base);
    let mut ckt = base.clone();
    run_adjoint(
        &mut ckt,
        &tran,
        &StoreConfig::RawMemory,
        &objectives,
        &params,
    )
    .unwrap()
}

/// The monolithic forward trajectory, for bitwise state comparison.
fn monolithic_meta(base: &Circuit) -> RunMeta {
    let (tran, _, _) = setup(base);
    let mut ckt = base.clone();
    let mut system = ckt.elaborate().unwrap();
    let mut record =
        ForwardRecord::new(TensorLayout::of(&system), &StoreConfig::RawMemory).unwrap();
    transient(&ckt, &mut system, &tran, &mut record).unwrap();
    record.into_parts().unwrap().0
}

#[test]
fn single_window_is_bit_identical_to_monolithic() {
    let base = ladder(4);
    let single = monolithic(&base);
    let win = windowed(&base, &WindowOptions::new(1));
    assert_eq!(win.stats.windows, 1);
    assert_eq!(win.stats.adjoint_iterations, 0);
    for (i, row) in single.sensitivities.values.iter().enumerate() {
        for (j, v) in row.iter().enumerate() {
            assert_eq!(
                win.sensitivities[i][j].to_bits(),
                v.to_bits(),
                "obj {i} param {j}: W=1 windowed {:e} vs monolithic {v:e}",
                win.sensitivities[i][j]
            );
        }
    }
    for (i, v) in single.objective_values.iter().enumerate() {
        assert_eq!(win.objective_values[i].to_bits(), v.to_bits());
    }
    // The stitched trajectory is the monolithic one, state for state.
    let mono = monolithic_meta(&base);
    assert_eq!(win.meta.states.len(), mono.states.len());
    for (s, (a, b)) in win.meta.states.iter().zip(&mono.states).enumerate() {
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits(), "state mismatch at step {s}");
        }
    }
}

#[test]
fn converged_windowed_sensitivities_match_monolithic() {
    let base = ladder(4);
    let single = monolithic(&base);
    let mono = monolithic_meta(&base);
    for w in [2usize, 3, 4] {
        let win = windowed(&base, &WindowOptions::new(w));
        assert_eq!(win.stats.windows, w);
        // At tol = 0 the trajectory is bitwise monolithic, so only the
        // cross-window sensitivity fold can differ (summation order).
        for (s, (a, b)) in win.meta.states.iter().zip(&mono.states).enumerate() {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits(), "W={w} state mismatch at step {s}");
            }
        }
        for (i, row) in single.sensitivities.values.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                let a = win.sensitivities[i][j];
                let scale = a.abs().max(v.abs()).max(1e-30);
                assert!(
                    (a - v).abs() / scale <= 1e-9,
                    "W={w} obj {i} param {j}: windowed {a:e} vs monolithic {v:e}"
                );
            }
        }
        for (i, &v) in single.objective_values.iter().enumerate() {
            assert_eq!(win.objective_values[i].to_bits(), v.to_bits());
        }
    }
}

#[test]
fn results_are_bit_identical_across_lane_counts() {
    let base = ladder(4);
    for w in [2usize, 4] {
        let reference = windowed(&base, &WindowOptions::new(w).with_lanes(1));
        for lanes in [2usize, 4] {
            let run = windowed(&base, &WindowOptions::new(w).with_lanes(lanes));
            for (i, row) in reference.sensitivities.iter().enumerate() {
                for (j, v) in row.iter().enumerate() {
                    assert_eq!(
                        run.sensitivities[i][j].to_bits(),
                        v.to_bits(),
                        "W={w} lanes={lanes} obj {i} param {j} differs from serial lanes"
                    );
                }
            }
            assert_eq!(
                run.stats.forward_iterations,
                reference.stats.forward_iterations
            );
            assert_eq!(
                run.stats.adjoint_iterations,
                reference.stats.adjoint_iterations
            );
        }
    }
}

/// Convergence telemetry: interface jumps decrease monotonically and hit
/// exactly 0.0 at `tol = 0` (the bitwise-stability cascade), lane-time
/// tables have one row per iteration, and every window seals a non-empty
/// compressed tensor pair.
#[test]
fn window_stats_record_a_monotone_convergence_trace() {
    let base = ladder(4);
    let win = windowed(&base, &WindowOptions::new(4));
    let s = &win.stats;
    assert_eq!(s.windows, 4);
    assert_eq!(s.steps, 20);
    assert!(s.forward_iterations >= 2, "W=4 needs at least 2 sweeps");
    assert!(s.forward_iterations <= 5, "exact cascade is ≤ W+1 sweeps");
    assert_eq!(s.forward_jumps.len(), s.forward_iterations);
    for pair in s.forward_jumps.windows(2) {
        assert!(
            pair[1] <= pair[0],
            "forward jumps must be non-increasing: {:?}",
            s.forward_jumps
        );
    }
    assert_eq!(*s.forward_jumps.last().unwrap(), 0.0, "tol=0 ends exact");
    assert_eq!(s.adjoint_jumps.len(), s.adjoint_iterations);
    assert_eq!(*s.adjoint_jumps.last().unwrap(), 0.0);
    assert_eq!(s.forward_lane_times.len(), s.forward_iterations);
    // Every adjoint pass is a full pass: one lane-time row per iteration,
    // no separate accumulation row.
    assert_eq!(s.adjoint_lane_times.len(), s.adjoint_iterations);
    for row in s.forward_lane_times.iter().chain(&s.adjoint_lane_times) {
        assert_eq!(row.len(), 4);
    }
    assert_eq!(s.window_bytes.len(), 4);
    assert!(s.window_bytes.iter().all(|&b| b > 0));
    assert!(s.fine_runs >= 4, "every window integrates at least once");
    assert!(s.adjoint_runs >= 3);
    assert!(s.total_time >= s.serial_time);
    assert!(s.periodic_residual.is_none());
}

/// The dirty-flag optimization: converged windows are not re-integrated.
/// The exact cascade settles window k after k correction sweeps, so the
/// total fine-run count is far below `iterations × W`.
#[test]
fn clean_windows_are_not_reintegrated() {
    let base = ladder(4);
    let win = windowed(&base, &WindowOptions::new(4));
    let s = &win.stats;
    assert!(
        s.fine_runs < s.forward_iterations * s.windows,
        "{} fine runs over {} iterations × {} windows means no skipping",
        s.fine_runs,
        s.forward_iterations,
        s.windows
    );
}

#[test]
fn periodic_mode_finds_the_steady_cycle() {
    // DC drive: the periodic steady state equals the long-run transient
    // limit, so windowed-periodic sensitivities should approximate the
    // monolithic ones on the same horizon once the wrap residual is small.
    let base = ladder(4);
    let (tran, objectives, params) = setup(&base);
    let mut ckt = base.clone();
    let opts = WindowOptions {
        periodic: true,
        tol: 1e-12,
        ..WindowOptions::new(4)
    };
    let run = run_windowed(&mut ckt, &tran, &opts, &objectives, &params).unwrap();
    let residual = run
        .stats
        .periodic_residual
        .expect("periodic run records residual");
    assert!(residual <= 1e-12, "wrap residual {residual:e}");
    // x(0) = x(T) on the stitched trajectory, within tol.
    let first = run.meta.states.first().unwrap();
    let last = run.meta.states.last().unwrap();
    for (a, b) in first.iter().zip(last) {
        assert!((a - b).abs() <= 1e-9, "cycle not closed: {a:e} vs {b:e}");
    }
}

#[test]
fn periodic_without_tol_is_rejected() {
    let base = ladder(4);
    let (tran, objectives, params) = setup(&base);
    let mut ckt = base.clone();
    let opts = WindowOptions {
        periodic: true,
        ..WindowOptions::new(4)
    };
    assert!(matches!(
        run_windowed(&mut ckt, &tran, &opts, &objectives, &params),
        Err(WindowError::PeriodicNeedsTol)
    ));
}

#[test]
fn adaptive_grids_are_rejected() {
    let base = ladder(4);
    let (mut tran, objectives, params) = setup(&base);
    tran = tran.with_adaptive(8.0, 16.0);
    let mut ckt = base.clone();
    assert!(matches!(
        run_windowed(
            &mut ckt,
            &tran,
            &WindowOptions::new(4),
            &objectives,
            &params
        ),
        Err(WindowError::AdaptiveUnsupported)
    ));
}

/// `adjoint_tol` decouples reverse-pass convergence from `tol`: the two
/// jump metrics live in different units (state coupling vs adjoint
/// coupling), so benchmarks tune them independently. An infinite adjoint
/// tolerance accepts the first reverse sweep outright while the forward
/// iteration still runs its exact cascade.
#[test]
fn adjoint_tol_decouples_reverse_convergence() {
    let base = ladder(4);
    // One coarse substep makes the adjoint seeds genuinely approximate
    // (with more substeps they become bitwise exact on this linear deck,
    // and both runs would converge in one sweep).
    let exact = windowed(
        &base,
        &WindowOptions {
            coarse_substeps: 1,
            ..WindowOptions::new(4)
        },
    );
    let loose = windowed(
        &base,
        &WindowOptions {
            coarse_substeps: 1,
            adjoint_tol: Some(f64::INFINITY),
            ..WindowOptions::new(4)
        },
    );
    assert_eq!(
        loose.stats.forward_iterations,
        exact.stats.forward_iterations
    );
    assert_eq!(loose.stats.adjoint_iterations, 1);
    assert!(exact.stats.adjoint_iterations > 1);
    // The forward trajectory is still the exact cascade, so objective
    // values agree bitwise; only the adjoint seeds' accuracy limits the
    // sensitivities.
    for (a, b) in loose.objective_values.iter().zip(&exact.objective_values) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

#[test]
fn warm_start_matches_to_newton_tolerance() {
    let base = ladder(4);
    let exact = windowed(&base, &WindowOptions::new(4));
    let warm = windowed(
        &base,
        &WindowOptions {
            warm_start: true,
            tol: 1e-12,
            ..WindowOptions::new(4)
        },
    );
    for (i, row) in exact.sensitivities.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            let a = warm.sensitivities[i][j];
            let scale = a.abs().max(v.abs()).max(1e-30);
            assert!(
                (a - v).abs() / scale <= 1e-6,
                "obj {i} param {j}: warm {a:e} vs exact {v:e}"
            );
        }
    }
}
