//! Fault injection: a panicking window lane must surface as the
//! structured [`WindowError::WorkerPanicked`] — never a process abort or
//! a poisoned hang — and must strand no Jacobian spill files on disk.

#![allow(clippy::disallowed_methods)] // tests may unwrap/expect

use masc_adjoint::Objective;
use masc_circuit::devices::{Capacitor, CurrentSource, Device, Resistor};
use masc_circuit::transient::TranOptions;
use masc_circuit::waveform::Waveform;
use masc_circuit::Circuit;
use masc_window::{run_windowed, WindowError, WindowOptions};
use std::collections::BTreeSet;
use std::path::PathBuf;

fn ladder(stages: usize) -> Circuit {
    let mut ckt = Circuit::new();
    let nodes: Vec<_> = (0..stages)
        .map(|s| ckt.node(&format!("n{s}")).unknown())
        .collect();
    ckt.add(Device::CurrentSource(CurrentSource::new(
        "I1",
        None,
        nodes[0],
        Waveform::Pulse {
            v1: 0.0,
            v2: 1e-3,
            td: 0.0,
            tr: 1e-9,
            tf: 1e-9,
            pw: 1.0,
            per: 2.0,
        },
    )))
    .unwrap();
    for s in 0..stages {
        ckt.add(Device::Resistor(Resistor::new(
            format!("R{s}"),
            nodes[s],
            None,
            1000.0,
        )))
        .unwrap();
        ckt.add(Device::Capacitor(Capacitor::new(
            format!("C{s}"),
            nodes[s],
            None,
            1e-6,
        )))
        .unwrap();
        if s + 1 < stages {
            ckt.add(Device::Resistor(Resistor::new(
                format!("RS{s}"),
                nodes[s],
                nodes[s + 1],
                500.0,
            )))
            .unwrap();
        }
    }
    ckt
}

/// Jacobian spill files (`masc-jacobians-{pid}-{seq}.bin`) currently in
/// the system temp dir. Windowed runs keep every per-window tensor in
/// memory through `CaptureStore`, so this set must not grow — even when a
/// lane dies mid-integration.
fn spill_files() -> BTreeSet<PathBuf> {
    let Ok(entries) = std::fs::read_dir(std::env::temp_dir()) else {
        return BTreeSet::new();
    };
    entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("masc-jacobians-"))
        })
        .collect()
}

/// A lane that panics mid-wave is caught by the scoped join: the caller
/// gets `WorkerPanicked`, the sibling lanes finish or unwind cleanly, and
/// no spill files are stranded. A rerun of the same circuit without the
/// fault succeeds, proving nothing global was poisoned.
#[test]
fn panicking_lane_surfaces_as_structured_error_without_stranded_files() {
    let base = ladder(4);
    let tran = TranOptions::new(1e-3, 5e-5);
    let out = base.find_node("n3").unwrap().unknown().unwrap();
    let objectives = vec![Objective::FinalValue { unknown: out }];
    let params = vec![base.find_param("R0.r").unwrap()];

    let spills_before = spill_files();

    let opts = WindowOptions {
        fault_panic_window: Some(1),
        ..WindowOptions::new(4).with_lanes(2)
    };
    let mut ckt = base.clone();

    // The injected panic unwinds inside a scoped worker; silence the
    // default hook so the test log stays clean.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let err = run_windowed(&mut ckt, &tran, &opts, &objectives, &params);
    std::panic::set_hook(prev_hook);

    match err {
        Err(WindowError::WorkerPanicked) => {}
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    // The error is first-class: Display works, source chain terminates.
    let msg = WindowError::WorkerPanicked.to_string();
    assert!(msg.contains("panicked"), "{msg}");

    let spills_after = spill_files();
    let stranded: Vec<_> = spills_after.difference(&spills_before).collect();
    assert!(
        stranded.is_empty(),
        "a dead lane must strand no spill files: {stranded:?}"
    );

    // Nothing global was poisoned: the same deck runs clean afterwards.
    let mut retry_ckt = base.clone();
    let clean_opts = WindowOptions::new(4).with_lanes(2);
    let run = run_windowed(&mut retry_ckt, &tran, &clean_opts, &objectives, &params)
        .expect("clean rerun after a faulted one");
    assert_eq!(run.stats.windows, 4);
}

/// The fault hook fires regardless of lane count: with serial lanes the
/// panic happens on the caller's thread, so `run_windowed` itself panics —
/// which is why the engine only promises the structured error for
/// concurrent waves. Pin the concurrent contract at lanes = 4 too.
#[test]
fn structured_error_holds_at_higher_lane_counts() {
    let base = ladder(4);
    let tran = TranOptions::new(1e-3, 5e-5);
    let out = base.find_node("n3").unwrap().unknown().unwrap();
    let objectives = vec![Objective::FinalValue { unknown: out }];
    let params = vec![base.find_param("R0.r").unwrap()];
    let opts = WindowOptions {
        fault_panic_window: Some(3),
        ..WindowOptions::new(4).with_lanes(4)
    };
    let mut ckt = base.clone();
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let err = run_windowed(&mut ckt, &tran, &opts, &objectives, &params);
    std::panic::set_hook(prev_hook);
    assert!(matches!(err, Err(WindowError::WorkerPanicked)));
}
