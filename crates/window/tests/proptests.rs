//! Property pins for degenerate window splits (ISSUE 9 satellite): across
//! randomized step counts and window requests, `split_steps` must cover
//! every transient step exactly once with balanced, boundary-sharing
//! spans; `W = 0` fails structurally; `W > steps` clamps; and the full
//! windowed engine accepts any such split, matching the monolithic
//! pipeline bit for bit at `tol = 0`.
//!
//! Failures replay with `MASC_PROP_REPRO` (masc-testkit seed replay).

#![allow(clippy::disallowed_methods)] // tests may unwrap

use masc_adjoint::{run_adjoint, Objective, StoreConfig};
use masc_circuit::devices::{Capacitor, CurrentSource, Device, Resistor};
use masc_circuit::transient::TranOptions;
use masc_circuit::waveform::Waveform;
use masc_circuit::Circuit;
use masc_testkit::gen;
use masc_testkit::{prop, prop_assert, prop_assert_eq};
use masc_window::{run_windowed, split_steps, WindowError, WindowOptions};

/// A 3-stage pulse-driven RC ladder (no branch unknowns, so windowed runs
/// are bit-comparable to the monolithic pipeline).
fn ladder() -> Circuit {
    let mut ckt = Circuit::new();
    let nodes: Vec<_> = (0..3)
        .map(|s| ckt.node(&format!("n{s}")).unknown())
        .collect();
    ckt.add(Device::CurrentSource(CurrentSource::new(
        "I1",
        None,
        nodes[0],
        Waveform::Pulse {
            v1: 0.0,
            v2: 1e-3,
            td: 0.0,
            tr: 1e-9,
            tf: 1e-9,
            pw: 1.0,
            per: 2.0,
        },
    )))
    .unwrap();
    for s in 0..3 {
        ckt.add(Device::Resistor(Resistor::new(
            format!("R{s}"),
            nodes[s],
            None,
            1000.0,
        )))
        .unwrap();
        ckt.add(Device::Capacitor(Capacitor::new(
            format!("C{s}"),
            nodes[s],
            None,
            1e-6,
        )))
        .unwrap();
        if s + 1 < 3 {
            ckt.add(Device::Resistor(Resistor::new(
                format!("RS{s}"),
                nodes[s],
                nodes[s + 1],
                500.0,
            )))
            .unwrap();
        }
    }
    ckt
}

prop! {
    #![cases = 40]

    /// Every transient step `1..=n_steps` lands in exactly one span, spans
    /// share boundary steps, and loads stay within one step of each other.
    fn splits_cover_every_step_exactly_once(
        (n_steps, windows) in (gen::range_usize(1, 200), gen::range_usize(1, 32))
    ) {
        let spans = split_steps(n_steps, windows).unwrap();
        prop_assert_eq!(spans.len(), windows.min(n_steps));
        prop_assert_eq!(spans[0].start, 0);
        prop_assert_eq!(spans.last().unwrap().end, n_steps);
        let mut covered = 0usize;
        for pair in spans.windows(2) {
            prop_assert_eq!(pair[0].end, pair[1].start);
        }
        for span in &spans {
            prop_assert!(!span.is_empty());
            covered += span.len();
        }
        prop_assert_eq!(covered, n_steps);
        let lens: Vec<usize> = spans.iter().map(|s| s.len()).collect();
        let min = *lens.iter().min().unwrap();
        let max = *lens.iter().max().unwrap();
        prop_assert!(max - min <= 1, "unbalanced spans: {:?}", lens);
    }

    /// `W = 0` is a structured error (with Display), never a panic.
    fn zero_windows_is_a_structured_error(n_steps in gen::range_usize(0, 100)) {
        let err = split_steps(n_steps, 0);
        prop_assert!(matches!(err, Err(WindowError::InvalidWindows { .. })));
        let msg = err.unwrap_err().to_string();
        prop_assert!(!msg.is_empty());
    }

    /// Requests for more windows than steps clamp to one step per window.
    fn oversized_requests_clamp(
        (n_steps, excess) in (gen::range_usize(1, 20), gen::range_usize(1, 40))
    ) {
        let spans = split_steps(n_steps, n_steps + excess).unwrap();
        prop_assert_eq!(spans.len(), n_steps);
        prop_assert!(spans.iter().all(|s| s.len() == 1));
    }

    /// The full engine accepts any (steps, windows) split — including
    /// non-divisible and clamped ones — and at `tol = 0` reproduces the
    /// monolithic gradients bit for bit through the per-window compressed
    /// tensors and the deterministic fold... for `W = 1`; multi-window
    /// folds match to 1e-9 (summation order).
    fn any_split_matches_monolithic(
        (steps, windows, lanes) in (
            gen::range_usize(4, 24),
            gen::range_usize(1, 8),
            gen::range_usize(1, 4),
        )
    ) {
        let base = ladder();
        let dt = 5e-5;
        let tran = TranOptions::new(dt * steps as f64, dt);
        let out = base.find_node("n2").unwrap().unknown().unwrap();
        let objectives = vec![
            Objective::FinalValue { unknown: out },
            Objective::Integral { unknown: out },
        ];
        let params = vec![
            base.find_param("R0.r").unwrap(),
            base.find_param("C1.c").unwrap(),
        ];

        let mut ckt = base.clone();
        let opts = WindowOptions::new(windows).with_lanes(lanes);
        let win = run_windowed(&mut ckt, &tran, &opts, &objectives, &params).unwrap();
        prop_assert_eq!(win.stats.windows, windows.min(steps));

        let mut mono_ckt = base.clone();
        let single = run_adjoint(
            &mut mono_ckt,
            &tran,
            &StoreConfig::RawMemory,
            &objectives,
            &params,
        )
        .unwrap();
        for (i, row) in single.sensitivities.values.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                let a = win.sensitivities[i][j];
                if win.stats.windows == 1 {
                    prop_assert_eq!(a.to_bits(), v.to_bits());
                } else {
                    let scale = a.abs().max(v.abs()).max(1e-30);
                    prop_assert!(
                        (a - v).abs() / scale <= 1e-9,
                        "W={} obj {} param {}: {:e} vs {:e}",
                        win.stats.windows, i, j, a, v
                    );
                }
            }
        }
        for (i, &v) in single.objective_values.iter().enumerate() {
            prop_assert_eq!(win.objective_values[i].to_bits(), v.to_bits());
        }
    }
}
