//! Parallel-in-time windowed adjoint sensitivity (DESIGN.md §3.14).
//!
//! [`run_windowed`] splits a fixed-grid transient into `W` contiguous time
//! windows, seeds each window's initial state with a cheap coarse
//! propagator (a large-step backward-Euler transient sharing the run's one
//! [`masc_sparse::SymbolicLu`]), and then iterates Parareal corrections:
//! every iteration integrates the stale windows *concurrently* on
//! `std::thread::scope` lanes, each lane writing its own sealed compressed
//! tensor through the adjoint crate's [`masc_adjoint::CaptureStore`] seam,
//! until the interface jumps between consecutive windows fall below
//! `tol`. The reverse pass mirrors the scheme: per-window adjoint chains
//! run concurrently, adjoint terminal conditions are stitched backward
//! across window boundaries via [`masc_adjoint::WindowTerminal`], and the
//! per-parameter sensitivities are accumulated with a deterministic serial
//! fold — bitwise reproducible for any lane count.
//!
//! With `tol = 0` the Parareal corrections carry a bitwise-stability
//! guard (an unchanged seed forwards the fine end state verbatim, no
//! correction arithmetic), so the iteration converges *exactly* in at most
//! `W` sweeps and the windowed trajectory equals the monolithic one
//! bit for bit. `W = 1` skips the coarse machinery entirely and is
//! bit-identical to [`masc_adjoint::run_adjoint`].
//!
//! # Examples
//!
//! ```
//! use masc_adjoint::Objective;
//! use masc_circuit::parser::parse_netlist;
//! use masc_window::{run_windowed, WindowOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut parsed = parse_netlist(
//!     "I1 0 out DC 1m\n\
//!      R1 out 0 1k\n\
//!      C1 out 0 1u\n\
//!      .tran 50u 2m\n\
//!      .end",
//! )?;
//! let tran = parsed.tran.clone().expect(".tran present");
//! let out = parsed.circuit.find_node("out").expect("node").unknown().expect("not ground");
//! let r1 = parsed.circuit.find_param("R1.r").expect("param");
//! let opts = WindowOptions::new(4);
//! let run = run_windowed(
//!     &mut parsed.circuit,
//!     &tran,
//!     &opts,
//!     &[Objective::FinalValue { unknown: out }],
//!     &[r1],
//! )?;
//! // V = I·R at steady state: dV/dR ≈ I = 1 mA.
//! assert!((run.sensitivities[0][0] - 1e-3).abs() < 1e-5);
//! # Ok(())
//! # }
//! ```

// Unit tests may assert with unwrap/expect; shipping code may not (see
// clippy.toml and masc-lint rule R1).
#![cfg_attr(test, allow(clippy::disallowed_methods))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coarse;
mod engine;
pub mod split;

pub use engine::run_windowed;
pub use split::{split_steps, WindowSpan};

use masc_adjoint::{AdjointError, RunMeta, StoreError};
use masc_circuit::transient::SinkError;
use masc_circuit::{CircuitError, NewtonError};
use masc_compress::{CompressError, MascConfig};
use std::time::Duration;

/// Options for a windowed run.
#[derive(Debug, Clone)]
pub struct WindowOptions {
    /// Number of time windows `W` (clamped to the step count; `0` is an
    /// error).
    pub windows: usize,
    /// Worker lanes for the concurrent fine-integration and adjoint waves
    /// (`0` and `1` both mean serial). Results are bitwise identical for
    /// every lane count.
    pub lanes: usize,
    /// Interface-jump tolerance in *coupling-residual* units: the L∞ of
    /// `Δq/h` across each window boundary, i.e. exactly the perturbation a
    /// seed update injects into the successor's first backward-Euler
    /// residual (the seed enters the fine recursion only through
    /// `q(x_seed)/h`). A jump below the Newton residual tolerance is
    /// therefore indistinguishable from solver noise. With `0.0` the
    /// Parareal iteration runs to *bitwise* convergence — exact in at most
    /// `W` sweeps — and the results match a monolithic run.
    pub tol: f64,
    /// Adjoint interface-jump tolerance; `None` reuses `tol`. The adjoint
    /// jump is likewise a coupling residual — `‖CᵀΔw‖∞/h`, the
    /// perturbation a terminal update injects into its consumer's adjoint
    /// recursion (`v += Cᵀw/h`) — but `w` carries objective units, so the
    /// two metrics are not commensurate and benchmarks may tune this knob
    /// independently. `Some(0.0)` means bitwise convergence.
    pub adjoint_tol: Option<f64>,
    /// Iteration cap; `0` means automatic (`windows + 1`, enough for the
    /// guaranteed exact cascade; periodic runs get a larger cap).
    pub max_iterations: usize,
    /// Close the time loop: the coarse problem solves `x(0) = x(T)` and
    /// the correction sweep wraps window `W−1` around to window `0`.
    /// Requires `tol > 0.0`.
    pub periodic: bool,
    /// Backward-Euler substeps of the coarse propagator per window.
    pub coarse_substeps: usize,
    /// Start each re-integration's Newton iterations from the previous
    /// Parareal iterate's stored states. Cuts re-run cost sharply but
    /// breaks bitwise exactness (results agree only to Newton tolerance),
    /// so it is off by default and benchmark-only.
    pub warm_start: bool,
    /// Compressor configuration for the per-window tensors.
    pub masc: MascConfig,
    /// Test-only fault hook: panic inside the fine integration of this
    /// window index to exercise the lane-failure path.
    #[doc(hidden)]
    pub fault_panic_window: Option<usize>,
}

impl WindowOptions {
    /// Options for `windows` windows with serial lanes, exact (`tol = 0`)
    /// convergence, and default coarse/compressor settings.
    pub fn new(windows: usize) -> Self {
        Self {
            windows,
            lanes: 1,
            tol: 0.0,
            adjoint_tol: None,
            max_iterations: 0,
            periodic: false,
            coarse_substeps: 8,
            warm_start: false,
            masc: MascConfig::default(),
            fault_panic_window: None,
        }
    }

    /// Sets the lane count.
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes;
        self
    }

    /// Sets the interface-jump tolerance.
    pub fn with_tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }
}

/// Errors from a windowed run.
#[derive(Debug)]
pub enum WindowError {
    /// `windows == 0` or the transient has no steps.
    InvalidWindows {
        /// The requested window count.
        windows: usize,
        /// The transient step count.
        n_steps: usize,
    },
    /// Adaptive stepping is set; windows need one shared fixed time grid.
    AdaptiveUnsupported,
    /// Periodic mode with `tol == 0.0` (the wrap-around fixed point only
    /// terminates against a positive tolerance).
    PeriodicNeedsTol,
    /// Circuit elaboration failed.
    Circuit(CircuitError),
    /// The seed DC operating point failed.
    Dc(NewtonError),
    /// The coarse propagator failed to converge.
    Coarse {
        /// The window whose coarse sweep failed.
        window: usize,
        /// Underlying Newton failure.
        source: NewtonError,
    },
    /// A fine transient step failed to converge.
    Step {
        /// The window that failed.
        window: usize,
        /// The failing *global* step index.
        step: usize,
        /// Underlying Newton failure.
        source: NewtonError,
    },
    /// A window's Jacobian sink rejected a step.
    Sink {
        /// The window that failed.
        window: usize,
        /// The failing *global* step index.
        step: usize,
        /// Underlying sink failure.
        source: SinkError,
    },
    /// A window's compressed tensor could not be sealed or reopened.
    Store(StoreError),
    /// A per-window tensor block failed to decode.
    Compress(CompressError),
    /// A window's adjoint pass failed.
    Adjoint {
        /// The window that failed.
        window: usize,
        /// Underlying adjoint failure.
        source: AdjointError,
    },
    /// The Parareal iteration hit the iteration cap above `tol`.
    Unconverged {
        /// Iterations performed.
        iterations: usize,
        /// The last interface jump (L∞).
        jump: f64,
    },
    /// A worker lane panicked.
    WorkerPanicked,
    /// An internal invariant was violated.
    Internal(&'static str),
}

impl std::fmt::Display for WindowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WindowError::InvalidWindows { windows, n_steps } => {
                write!(f, "cannot split {n_steps} steps into {windows} windows")
            }
            WindowError::AdaptiveUnsupported => {
                write!(
                    f,
                    "windowed runs require a fixed time grid (adaptive stepping set)"
                )
            }
            WindowError::PeriodicNeedsTol => {
                write!(f, "periodic mode requires tol > 0")
            }
            WindowError::Circuit(e) => write!(f, "elaboration failed: {e}"),
            WindowError::Dc(e) => write!(f, "seed dc operating point failed: {e}"),
            WindowError::Coarse { window, source } => {
                write!(
                    f,
                    "coarse propagation into window {window} failed: {source}"
                )
            }
            WindowError::Step {
                window,
                step,
                source,
            } => write!(f, "window {window} step {step} failed: {source}"),
            WindowError::Sink {
                window,
                step,
                source,
            } => write!(f, "window {window} step {step}: {source}"),
            WindowError::Store(e) => write!(f, "per-window tensor store failed: {e}"),
            WindowError::Compress(e) => write!(f, "per-window tensor failed to decode: {e}"),
            WindowError::Adjoint { window, source } => {
                write!(f, "window {window} adjoint pass failed: {source}")
            }
            WindowError::Unconverged { iterations, jump } => {
                write!(
                    f,
                    "interface jumps still {jump:.3e} after {iterations} iterations"
                )
            }
            WindowError::WorkerPanicked => write!(f, "a window worker lane panicked"),
            WindowError::Internal(what) => write!(f, "window internal error: {what}"),
        }
    }
}

impl std::error::Error for WindowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WindowError::Circuit(e) => Some(e),
            WindowError::Dc(e) => Some(e),
            WindowError::Coarse { source, .. } | WindowError::Step { source, .. } => Some(source),
            WindowError::Sink { source, .. } => Some(source),
            WindowError::Store(e) => Some(e),
            WindowError::Compress(e) => Some(e),
            WindowError::Adjoint { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<StoreError> for WindowError {
    fn from(e: StoreError) -> Self {
        WindowError::Store(e)
    }
}

impl From<CompressError> for WindowError {
    fn from(e: CompressError) -> Self {
        WindowError::Compress(e)
    }
}

/// Convergence telemetry and timing of one windowed run.
///
/// The lane-time tables record, per Parareal iteration, the wall time each
/// window's lane spent (zero for windows the dirty-flag optimization
/// skipped). Summing `max` over each row models the critical path of a
/// fully parallel run independent of the machine's core count — the model
/// `masc-bench`'s `window` gate checks.
#[derive(Debug, Clone, Default)]
pub struct WindowStats {
    /// Windows actually used (after clamping to the step count).
    pub windows: usize,
    /// Transient steps (excluding DC).
    pub steps: usize,
    /// Forward Parareal iterations performed.
    pub forward_iterations: usize,
    /// Adjoint Parareal iterations performed (0 when `W == 1`).
    pub adjoint_iterations: usize,
    /// Max interface coupling-residual jump (`‖Δq‖∞/h` over the window
    /// boundaries) after each forward iteration. Periodic runs fold the
    /// state-space wrap residual into the same maximum.
    pub forward_jumps: Vec<f64>,
    /// Max terminal coupling-residual jump (`‖CᵀΔw‖∞/h` over the window
    /// boundaries) after each adjoint iteration.
    pub adjoint_jumps: Vec<f64>,
    /// Compressed bytes of each window's final sealed tensor pair.
    pub window_bytes: Vec<usize>,
    /// Fine forward integrations run (dirty windows only, all iterations).
    pub fine_runs: usize,
    /// Full adjoint passes run (dirty windows only, all iterations).
    pub adjoint_runs: usize,
    /// `forward_lane_times[iteration][window]`: fine-integration wall time
    /// (zero when the window was clean and skipped).
    pub forward_lane_times: Vec<Vec<Duration>>,
    /// `adjoint_lane_times[iteration][window]`: full-pass wall time (every
    /// pass accumulates `dO/dp`; the converged iteration's partials are
    /// final, so there is no separate accumulation row).
    pub adjoint_lane_times: Vec<Vec<Duration>>,
    /// Wall time in the serial coarse propagator (seeding + corrections).
    pub coarse_time: Duration,
    /// Wall time of the remaining serial sections (DC, correction sweeps,
    /// terminal stitching, the deterministic fold).
    pub serial_time: Duration,
    /// End-to-end wall time.
    pub total_time: Duration,
    /// Final wrap-around residual in periodic mode.
    pub periodic_residual: Option<f64>,
}

/// The result of a windowed sensitivity run.
#[derive(Debug, Clone)]
pub struct WindowResult {
    /// Objective values on the stitched trajectory.
    pub objective_values: Vec<f64>,
    /// `sensitivities[i][j] = dO_i/dp_j`, folded deterministically over
    /// the windows.
    pub sensitivities: Vec<Vec<f64>>,
    /// The stitched global forward metadata (times, step sizes, states).
    pub meta: RunMeta,
    /// Convergence telemetry and timing.
    pub stats: WindowStats,
}
