//! The coarse propagator: a large-step backward-Euler transient that jumps
//! a state across one window span in a handful of Newton solves.
//!
//! Parareal only needs the coarse map to be *cheap* and *consistent* —
//! the same inputs must give the same outputs on every call, because the
//! correction `Gc(U_k^{j+1}) − Gc(U_k^j)` cancels its error as the seeds
//! converge. Accuracy just buys fewer iterations. One propagator instance
//! serves the whole run serially, so its scratch state never races.

use masc_circuit::newton::{newton_solve, NewtonError, NewtonOptions};
use masc_circuit::{Circuit, Evaluation, System};
use masc_sparse::{CsrMatrix, LuWorkspace};

pub(crate) struct Coarse {
    system: System,
    lu: LuWorkspace,
    ev: Evaluation,
    j: CsrMatrix,
    r: Vec<f64>,
    q_prev: Vec<f64>,
    newton: NewtonOptions,
    substeps: usize,
}

impl Coarse {
    /// Builds a propagator around its own elaborated system and an LU
    /// workspace seeded with the run's shared symbolic analysis.
    pub(crate) fn new(
        system: System,
        lu: LuWorkspace,
        newton: NewtonOptions,
        substeps: usize,
    ) -> Self {
        let n = system.n;
        Self {
            ev: system.new_evaluation(),
            j: CsrMatrix::zeros(system.pattern.clone()),
            r: vec![0.0; n],
            q_prev: vec![0.0; n],
            lu,
            newton,
            substeps: substeps.max(1),
            system,
        }
    }

    /// Advances `x` from `t_a` to `t_b` with `substeps` backward-Euler
    /// steps, in place.
    pub(crate) fn propagate(
        &mut self,
        circuit: &Circuit,
        x: &mut [f64],
        t_a: f64,
        t_b: f64,
    ) -> Result<(), NewtonError> {
        let n = self.system.n;
        let h = (t_b - t_a) / self.substeps as f64;
        self.system.eval_into(circuit, x, t_a, &mut self.ev);
        self.q_prev.copy_from_slice(&self.ev.q);
        for s in 1..=self.substeps {
            let t = t_a + s as f64 * h;
            let system = &mut self.system;
            let ev = &mut self.ev;
            let q_prev = &self.q_prev;
            newton_solve(
                x,
                &self.newton,
                &mut self.lu,
                &mut self.j,
                &mut self.r,
                |x, r, j| {
                    system.eval_into(circuit, x, t, ev);
                    for i in 0..n {
                        r[i] = (ev.q[i] - q_prev[i]) / h + ev.f[i] + ev.b[i];
                    }
                    // J = G + C/h over the shared pattern.
                    let jv = j.values_mut();
                    jv.copy_from_slice(ev.g.values());
                    for (jv, cv) in jv.iter_mut().zip(ev.c.values()) {
                        *jv += cv / h;
                    }
                },
            )?;
            self.system.eval_into(circuit, x, t, &mut self.ev);
            self.q_prev.copy_from_slice(&self.ev.q);
        }
        Ok(())
    }

    /// The interface coupling residual `‖q(a) − q(b)‖∞ / h` between two
    /// candidate boundary states at time `t`.
    ///
    /// A window seed enters the successor's fine recursion *only* through
    /// the charge term `q(x_seed)/h` of the first backward-Euler residual,
    /// so this is exactly the perturbation a seed update injects — the
    /// honest convergence metric for stiff networks, where the raw state
    /// gap can sit far above any useful tolerance while its dynamical
    /// influence is below Newton noise.
    pub(crate) fn coupling_gap(
        &mut self,
        circuit: &Circuit,
        a: &[f64],
        b: &[f64],
        t: f64,
        h: f64,
    ) -> f64 {
        self.system.eval_into(circuit, a, t, &mut self.ev);
        self.q_prev.copy_from_slice(&self.ev.q);
        self.system.eval_into(circuit, b, t, &mut self.ev);
        self.ev
            .q
            .iter()
            .zip(&self.q_prev)
            .map(|(x, y)| ((x - y) / h).abs())
            .fold(0.0f64, f64::max)
    }
}
