//! The parallel-in-time windowed adjoint engine (DESIGN.md §3.14).
//!
//! Forward: seed window-initial states with the serial coarse propagator,
//! then Parareal-iterate — stale windows re-integrate concurrently, each
//! sealing its own compressed tensor pair through [`CaptureStore`], and a
//! serial ascending sweep corrects the seeds. A bitwise-stability guard
//! (an unchanged seed forwards the fine end state verbatim) makes the
//! iteration *exactly* convergent in at most `W` sweeps at `tol = 0`.
//!
//! Reverse: the mirror image. Per-window adjoint passes run concurrently
//! against the sealed tensors; [`WindowTerminal`]s stitch the deferred
//! `Cᵀw/h` update backward across boundaries in a serial descending sweep
//! with the same guard. Every pass is a *full* pass — the `w` recursion
//! is parameter-independent and `φ` accumulation is cheap next to
//! decode + factor + solve — so the converged iteration's per-window
//! `dO/dp` partials are final and no dedicated accumulation row lands on
//! the critical path. A deterministic serial fold over descending window
//! index sums the partials, so results are bitwise reproducible for any
//! lane count.

use crate::coarse::Coarse;
use crate::split::{split_steps, WindowSpan};
use crate::{WindowError, WindowOptions, WindowResult, WindowStats};
use masc_adjoint::store::{StepMatrices, TensorLayout};
use masc_adjoint::{
    AdjointCursor, AdjointError, CaptureStore, ForwardRecord, Objective, RunMeta, WindowTerminal,
};
use masc_circuit::dc::dc_operating_point_ws;
use masc_circuit::newton::newton_solve;
use masc_circuit::transient::{JacobianSink, TranOptions};
use masc_circuit::{Circuit, ParamRef, System};
use masc_compress::CompressedTensor;
use masc_sparse::{CsrMatrix, LuWorkspace};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

fn lock_ignoring_poison<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runs `f(window_index, item)` over `items` on up to `lanes` scoped
/// threads (round-robin distribution; one lane or one item runs inline).
/// On failure the error of the *lowest* window index is surfaced, so
/// diagnostics are deterministic regardless of thread timing; a panicking
/// lane surfaces as [`WindowError::WorkerPanicked`].
fn wave<T, F>(items: &mut [T], lanes: usize, f: &F) -> Result<(), WindowError>
where
    T: Send,
    F: Fn(usize, &mut T) -> Result<(), WindowError> + Sync,
{
    let lanes = lanes.max(1).min(items.len());
    if lanes <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item)?;
        }
        return Ok(());
    }
    let mut buckets: Vec<Vec<(usize, &mut T)>> = (0..lanes).map(|_| Vec::new()).collect();
    for (i, item) in items.iter_mut().enumerate() {
        buckets[i % lanes].push((i, item));
    }
    let failures: Vec<(usize, WindowError)> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(lanes);
        for bucket in buckets {
            handles.push(scope.spawn(move || {
                for (idx, item) in bucket {
                    if let Err(e) = f(idx, item) {
                        return Some((idx, e));
                    }
                }
                None
            }));
        }
        handles
            .into_iter()
            .filter_map(|h| {
                h.join()
                    .unwrap_or(Some((usize::MAX, WindowError::WorkerPanicked)))
            })
            .collect()
    });
    match failures.into_iter().min_by_key(|(idx, _)| *idx) {
        Some((_, e)) => Err(e),
        None => Ok(()),
    }
}

/// L∞ distance between two equally sized vectors.
fn linf(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f64, f64::max)
}

/// Whether two vectors differ in any bit (the stability guard's test —
/// value equality would let `±0.0` slip through).
fn bits_differ(a: &[f64], b: &[f64]) -> bool {
    a.len() != b.len() || a.iter().zip(b).any(|(x, y)| x.to_bits() != y.to_bits())
}

/// One window's forward-integration state.
struct Lane {
    span: WindowSpan,
    system: System,
    lu: LuWorkspace,
    seed: Vec<f64>,
    /// Local states of the last fine run (`span.len() + 1`, index 0 = the
    /// seed the run started from).
    states: Vec<Vec<f64>>,
    tensors: Option<(CompressedTensor, CompressedTensor)>,
    /// Seed changed since the last fine run (re-integration required).
    dirty: bool,
    /// Seed changed since `gc_end` was computed (coarse correction
    /// arithmetic required; otherwise the fine end state is forwarded
    /// verbatim — the bitwise-stability guard).
    changed: bool,
    gc_end: Option<Vec<f64>>,
    fine_time: Duration,
}

/// Fine backward-Euler integration of one window on the global grid,
/// replicating [`masc_circuit::transient::transient_ws`]'s fixed-grid
/// schedule exactly so a converged windowed trajectory is bitwise the
/// monolithic one. Seals the window's compressed tensor pair through the
/// [`CaptureStore`] seam (local block 0 holds the matrices at the seed
/// state and anchors the compression chain).
fn fine_run(
    k: usize,
    lane: &mut Lane,
    circuit: &Circuit,
    tran: &TranOptions,
    opts: &WindowOptions,
) -> Result<(), WindowError> {
    if opts.fault_panic_window == Some(k) {
        panic!("injected fault in window {k}");
    }
    let start = Instant::now();
    let span = lane.span;
    let dt = tran.dt;
    let layout = TensorLayout::of(&lane.system);
    let store = CaptureStore::new(&layout, opts.masc.clone());
    let slot = store.slot();
    let mut record = ForwardRecord::with_store(layout, Box::new(store));
    let n = lane.system.n;
    let mut ev = lane.system.new_evaluation();
    let t_a = span.start as f64 * dt;
    let mut x = lane.seed.clone();
    lane.system.eval_into(circuit, &x, t_a, &mut ev);
    record
        .on_step(0, t_a, dt, &x, &ev.g, &ev.c)
        .map_err(|source| WindowError::Sink {
            window: k,
            step: span.start,
            source,
        })?;
    let mut q_prev = ev.q.clone();
    let mut j = CsrMatrix::zeros(lane.system.pattern.clone());
    let mut r = vec![0.0; n];
    // Warm start: seed each step's Newton from the previous Parareal
    // iterate's converged state at the same step (benchmark-only — breaks
    // bitwise exactness, results then agree to Newton tolerance).
    let warm = if opts.warm_start && lane.states.len() == span.len() + 1 {
        Some(std::mem::take(&mut lane.states))
    } else {
        None
    };
    let mut states = Vec::with_capacity(span.len() + 1);
    states.push(x.clone());
    for ls in 1..=span.len() {
        let gstep = span.start + ls;
        let t = gstep as f64 * dt;
        if let Some(wstates) = &warm {
            x.copy_from_slice(&wstates[ls]);
        }
        let system = &mut lane.system;
        newton_solve(
            &mut x,
            &tran.newton,
            &mut lane.lu,
            &mut j,
            &mut r,
            |x, r, j| {
                system.eval_into(circuit, x, t, &mut ev);
                for i in 0..n {
                    r[i] = (ev.q[i] - q_prev[i]) / dt + ev.f[i] + ev.b[i];
                }
                // J = G + C/h over the shared pattern.
                let jv = j.values_mut();
                jv.copy_from_slice(ev.g.values());
                for (jv, cv) in jv.iter_mut().zip(ev.c.values()) {
                    *jv += cv / dt;
                }
            },
        )
        .map_err(|source| WindowError::Step {
            window: k,
            step: gstep,
            source,
        })?;
        // Refresh matrices at the converged point for the store, exactly
        // as the monolithic transient does.
        lane.system.eval_into(circuit, &x, t, &mut ev);
        record
            .on_step(ls, t, dt, &x, &ev.g, &ev.c)
            .map_err(|source| WindowError::Sink {
                window: k,
                step: gstep,
                source,
            })?;
        q_prev.copy_from_slice(&ev.q);
        states.push(x.clone());
    }
    record.on_finish().map_err(|source| WindowError::Sink {
        window: k,
        step: span.end,
        source,
    })?;
    // Sealing fills the capture slot; the reader itself is not needed.
    drop(record.into_reader()?);
    let pair = lock_ignoring_poison(&slot)
        .take()
        .ok_or(WindowError::Internal("sealed tensor slot empty"))?;
    lane.tensors = Some(pair);
    lane.states = states;
    lane.dirty = false;
    lane.fine_time = start.elapsed();
    Ok(())
}

/// One window's reverse-pass state.
struct RevLane {
    span: WindowSpan,
    system: System,
    tensors: (CompressedTensor, CompressedTensor),
    /// Incoming terminal condition (`Λ_k`) — `None` for the last window.
    term_in: Option<WindowTerminal>,
    /// Outgoing terminal of the last pass.
    term_out: Option<WindowTerminal>,
    /// Per-window `dO/dp` partial of the last pass (final once the
    /// terminal iteration converges).
    partial: Option<Vec<Vec<f64>>>,
    dirty: bool,
    changed: bool,
    gc_end: Option<WindowTerminal>,
    pass_time: Duration,
}

/// One full reverse pass over a window's sealed tensors: decode
/// newest-first, feed an [`AdjointCursor`], accumulate the `dO/dp`
/// partial, export the outgoing terminal. The `w` recursion is
/// parameter-independent and `φ` accumulation is cheap next to
/// decode + factor + solve, so every Parareal iteration runs full passes:
/// at convergence the incoming terminals are the accepted ones, which
/// makes the last pass's partial exactly what a dedicated final pass
/// would recompute — no extra reverse row on the critical path.
fn adjoint_pass(
    k: usize,
    lane: &mut RevLane,
    circuit: &Circuit,
    meta: &RunMeta,
    objectives: &[Objective],
    params: &[ParamRef],
) -> Result<(), WindowError> {
    let start = Instant::now();
    let mut bg = lane.tensors.0.clone().into_backward();
    let mut bc = lane.tensors.1.clone().into_backward();
    let mut cursor = AdjointCursor::new(circuit, &lane.system, meta, objectives, params);
    if let Some(t) = &lane.term_in {
        cursor.inject_terminal(t.ws.clone(), t.h);
    }
    loop {
        let Some((ls, g)) = bg.next_matrix().map_err(WindowError::Compress)? else {
            break;
        };
        let (lsc, c) = bc
            .next_matrix()
            .map_err(WindowError::Compress)?
            .ok_or(WindowError::Internal("G/C tensor length mismatch"))?;
        if ls != lsc {
            return Err(WindowError::Internal("G/C tensor step mismatch"));
        }
        if ls == 0 && lane.span.start > 0 {
            // Local block 0 anchors the compression chain but duplicates
            // the predecessor window's boundary step — skip it.
            continue;
        }
        cursor
            .offer(
                &mut lane.system,
                lane.span.start + ls,
                StepMatrices::Stored { g, c },
            )
            .map_err(|source| WindowError::Adjoint { window: k, source })?;
    }
    let (result, term) = cursor.finish_window();
    lane.term_out = term;
    lane.partial = Some(result.values);
    lane.dirty = false;
    lane.pass_time = start.elapsed();
    Ok(())
}

/// The coarse adjoint propagator of one window — the reverse-pass analog
/// of [`Coarse`]: `substeps` large-step backward-Euler transpose solves
/// against *frozen* matrices, walking the adjoint recursion
/// `v ← g + Cᵀw/h_c`, `Jᵀw = v` from the right edge to the left with
/// coarse-node gradient sources. The matrices are taken from the window's
/// *left-boundary* block — the predecessor window's newest stored step,
/// one `next_matrix` decode — because that is the operating point where
/// the exported terminal acts; on networks whose Jacobian swings with the
/// drive, a right-edge freeze would bias the terminal by the full
/// within-window drift. Freezing keeps it a fixed linear map, which is
/// all Parareal needs for consistency; the substeps capture the
/// within-window adjoint decay, which is what makes the seeds accurate on
/// strongly dissipative networks.
struct AdjCoarse {
    span: WindowSpan,
    substeps: usize,
    /// Coarse substep width `span_h / substeps`.
    h_c: f64,
    j: CsrMatrix,
    c: CsrMatrix,
    lu: LuWorkspace,
    grad: Vec<f64>,
    v: Vec<f64>,
    work: Vec<f64>,
}

impl AdjCoarse {
    /// Builds the propagator from the window's left-boundary block —
    /// `tensors` must be the *predecessor* window's sealed pair, whose
    /// newest stored step is this window's boundary.
    fn new(
        k: usize,
        span: WindowSpan,
        system: &System,
        tensors: &(CompressedTensor, CompressedTensor),
        dt: f64,
        substeps: usize,
    ) -> Result<Self, WindowError> {
        let substeps = substeps.max(1).min(span.len());
        let h_c = span.len() as f64 * dt / substeps as f64;
        let mut bg = tensors.0.clone().into_backward();
        let mut bc = tensors.1.clone().into_backward();
        let (_, g_b) = bg
            .next_matrix()
            .map_err(WindowError::Compress)?
            .ok_or(WindowError::Internal("window tensor is empty"))?;
        let (_, c_b) = bc
            .next_matrix()
            .map_err(WindowError::Compress)?
            .ok_or(WindowError::Internal("window tensor is empty"))?;
        let mut g_mat = CsrMatrix::zeros(system.pattern.clone());
        let mut c_mat = CsrMatrix::zeros(system.pattern.clone());
        system.scatter_g(&g_b, g_mat.values_mut());
        system.scatter_c(&c_b, c_mat.values_mut());
        let mut j = g_mat;
        for (jv, cv) in j.values_mut().iter_mut().zip(c_mat.values()) {
            *jv += cv / h_c;
        }
        let n = system.n;
        let mut this = Self {
            span,
            substeps,
            h_c,
            j,
            c: c_mat,
            lu: LuWorkspace::new(),
            grad: vec![0.0; n],
            v: vec![0.0; n],
            work: Vec::new(),
        };
        // Mint the symbolic analysis now so later applies only refactor.
        this.lu
            .factor(&this.j)
            .map_err(|source| WindowError::Adjoint {
                window: k,
                source: AdjointError::Lu {
                    step: span.start,
                    source,
                },
            })?;
        Ok(this)
    }

    /// Maps an incoming terminal to an approximate outgoing one.
    fn apply(
        &mut self,
        k: usize,
        meta: &RunMeta,
        objectives: &[Objective],
        term_in: Option<&WindowTerminal>,
    ) -> Result<WindowTerminal, WindowError> {
        let n_steps = meta.times.len().saturating_sub(1);
        let span_len = self.span.len();
        let factors = self
            .lu
            .factor(&self.j)
            .map_err(|source| WindowError::Adjoint {
                window: k,
                source: AdjointError::Lu {
                    step: self.span.start,
                    source,
                },
            })?;
        let mut ws = Vec::with_capacity(objectives.len());
        for (i, objective) in objectives.iter().enumerate() {
            let mut w: Vec<f64> = Vec::new();
            for s in 0..self.substeps {
                // The fine step this coarse node stands in for, walking
                // right edge → left; gradient sources carry the coarse
                // quadrature weight `h_c` so the window's total source
                // mass is consistent with the fine recursion's.
                let step =
                    self.span.start + ((self.substeps - s) * span_len).div_ceil(self.substeps);
                objective.gradient_into(
                    step,
                    n_steps,
                    self.h_c,
                    &meta.states[step],
                    &mut self.grad,
                );
                self.v.copy_from_slice(&self.grad);
                if s == 0 {
                    if let Some(t) = term_in {
                        let ct_w = self.c.mul_vec_transpose(&t.ws[i]);
                        for (vi, ci) in self.v.iter_mut().zip(&ct_w) {
                            *vi += ci / t.h;
                        }
                    }
                } else {
                    let ct_w = self.c.mul_vec_transpose(&w);
                    for (vi, ci) in self.v.iter_mut().zip(&ct_w) {
                        *vi += ci / self.h_c;
                    }
                }
                factors.solve_transpose_into(&self.v, &mut self.work, &mut w);
            }
            // Normalize to the fine grid's divisor: a terminal `(w, h)`
            // acts as `Cᵀw/h`, so the coarse-grid adjoint (whose natural
            // pending update is `Cᵀw/h_c`) is rescaled to an equivalent
            // terminal over `h = hs[span.end]` before it meets candidates
            // exported by fine passes.
            let h_out = meta.hs[self.span.end];
            if h_out.to_bits() != self.h_c.to_bits() {
                let scale = h_out / self.h_c;
                for v in &mut w {
                    *v *= scale;
                }
            }
            ws.push(w);
        }
        Ok(WindowTerminal {
            ws,
            h: meta.hs[self.span.end],
        })
    }
}

/// Coupling-residual distance between a candidate terminal and the
/// current one (`INFINITY` when no current terminal exists).
///
/// A terminal `(w, h)` acts on its consumer only through the pending
/// update `Cᵀw/h`, so the honest jump metric is `‖CᵀΔw‖∞/h` with `C`
/// taken at the window boundary — the exact perturbation the update would
/// inject into the predecessor's adjoint recursion. On stiff networks the
/// raw `Δw` can sit orders of magnitude above its dynamical influence.
fn terminal_jump(cand: &WindowTerminal, current: Option<&WindowTerminal>, c: &CsrMatrix) -> f64 {
    let Some(cur) = current else {
        return f64::INFINITY;
    };
    let mut jump = (cand.h - cur.h).abs();
    for (a, b) in cand.ws.iter().zip(&cur.ws) {
        let diff: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
        let ct = c.mul_vec_transpose(&diff);
        jump = ct.iter().map(|v| (v / cand.h).abs()).fold(jump, f64::max);
    }
    jump
}

/// Whether a candidate terminal differs bitwise from the current one.
fn terminal_differs(cand: &WindowTerminal, current: Option<&WindowTerminal>) -> bool {
    let Some(cur) = current else {
        return true;
    };
    cand.h.to_bits() != cur.h.to_bits()
        || cand.ws.len() != cur.ws.len()
        || cand.ws.iter().zip(&cur.ws).any(|(a, b)| bits_differ(a, b))
}

/// Runs the parallel-in-time windowed adjoint: `W` windows integrated and
/// differentiated with Parareal iteration, per-window compressed tensors,
/// and deterministic cross-window stitching (see the crate docs and
/// DESIGN.md §3.14).
///
/// At `tol = 0.0` the result is bitwise independent of `opts.lanes` and
/// `opts.windows == 1` reproduces [`masc_adjoint::run_adjoint`] bit for
/// bit; converged multi-window sensitivities match the monolithic run to
/// floating-point summation order (≲ 1e-9 relative on the conformance
/// decks).
///
/// # Errors
///
/// Returns [`WindowError`] on invalid options, a failed solve, a tensor
/// fault, or a non-converging iteration.
pub fn run_windowed(
    circuit: &mut Circuit,
    tran: &TranOptions,
    opts: &WindowOptions,
    objectives: &[Objective],
    params: &[ParamRef],
) -> Result<WindowResult, WindowError> {
    let run_start = Instant::now();
    if tran.adaptive.is_some() {
        return Err(WindowError::AdaptiveUnsupported);
    }
    if opts.periodic && opts.tol <= 0.0 {
        return Err(WindowError::PeriodicNeedsTol);
    }
    let n_steps = tran.step_count();
    let spans = split_steps(n_steps, opts.windows)?;
    let w = spans.len();
    let dt = tran.dt;

    // One elaborated system per window lane plus one for the coarse
    // propagator (elaboration is idempotent on the circuit).
    let mut systems = Vec::with_capacity(w);
    for _ in 0..w {
        systems.push(circuit.elaborate().map_err(WindowError::Circuit)?);
    }
    let need_coarse = w > 1 || opts.periodic;
    let coarse_system = if need_coarse {
        Some(circuit.elaborate().map_err(WindowError::Circuit)?)
    } else {
        None
    };
    let circuit: &Circuit = circuit;

    let mut stats = WindowStats {
        windows: w,
        steps: n_steps,
        ..WindowStats::default()
    };

    // Seed phase: one DC solve with a fresh workspace mints the symbolic
    // LU analysis every lane and the coarse propagator share.
    let serial_start = Instant::now();
    let mut seed_lu = LuWorkspace::new();
    let sys0 = systems
        .first_mut()
        .ok_or(WindowError::Internal("no window systems"))?;
    let dc = dc_operating_point_ws(circuit, sys0, &tran.newton, &mut seed_lu)
        .map_err(WindowError::Dc)?;
    let sym = seed_lu.symbolic().cloned();
    let mk_lu = || {
        sym.as_ref()
            .map_or_else(LuWorkspace::new, |s| LuWorkspace::with_symbolic(s.clone()))
    };
    let mut coarse =
        coarse_system.map(|cs| Coarse::new(cs, mk_lu(), tran.newton, opts.coarse_substeps));
    let mut lanes: Vec<Lane> = Vec::with_capacity(w);
    for (system, span) in systems.into_iter().zip(spans.iter()) {
        lanes.push(Lane {
            span: *span,
            system,
            lu: mk_lu(),
            seed: Vec::new(),
            states: Vec::new(),
            tensors: None,
            dirty: true,
            changed: false,
            gc_end: None,
            fine_time: Duration::ZERO,
        });
    }
    stats.serial_time += serial_start.elapsed();

    // Window-initial seeds. Non-periodic runs start window 0 from the DC
    // point; periodic runs first close the time loop on the coarse
    // problem (x(0) = x(T) by fixed-point iteration over full coarse
    // sweeps).
    let coarse_start = Instant::now();
    let mut u0 = dc.x;
    if opts.periodic {
        let c = coarse
            .as_mut()
            .ok_or(WindowError::Internal("periodic run without coarse"))?;
        for _ in 0..50 {
            let mut y = u0.clone();
            for (kk, span) in spans.iter().enumerate() {
                c.propagate(
                    circuit,
                    &mut y,
                    span.start as f64 * dt,
                    span.end as f64 * dt,
                )
                .map_err(|source| WindowError::Coarse { window: kk, source })?;
            }
            let jump = linf(&y, &u0);
            u0 = y;
            if jump <= opts.tol {
                break;
            }
        }
    }
    lanes[0].seed = u0;
    for k in 0..w - 1 {
        let c = coarse
            .as_mut()
            .ok_or(WindowError::Internal("multi-window run without coarse"))?;
        let span = spans[k];
        let mut x = lanes[k].seed.clone();
        c.propagate(
            circuit,
            &mut x,
            span.start as f64 * dt,
            span.end as f64 * dt,
        )
        .map_err(|source| WindowError::Coarse { window: k, source })?;
        lanes[k].gc_end = Some(x.clone());
        lanes[k + 1].seed = x;
    }
    stats.coarse_time += coarse_start.elapsed();

    // Forward Parareal iteration.
    let cap = if opts.max_iterations > 0 {
        opts.max_iterations
    } else if opts.periodic {
        8 * (w + 1)
    } else {
        w + 1
    };
    let mut converged = false;
    while stats.forward_iterations < cap {
        stats.fine_runs += lanes.iter().filter(|l| l.dirty).count();
        wave(&mut lanes, opts.lanes, &|k, lane| {
            if !lane.dirty {
                lane.fine_time = Duration::ZERO;
                return Ok(());
            }
            fine_run(k, lane, circuit, tran, opts)
        })?;
        stats
            .forward_lane_times
            .push(lanes.iter().map(|l| l.fine_time).collect());
        stats.forward_iterations += 1;

        // Serial ascending correction sweep. An unchanged seed forwards
        // the fine end state verbatim (no coarse arithmetic), which is
        // what makes the cascade exact and ≤ W iterations at tol = 0.
        let sweep_start = Instant::now();
        let coarse_before = stats.coarse_time;
        let mut max_jump = 0.0f64;
        for k in 0..w.saturating_sub(1) {
            let f_end = lanes[k]
                .states
                .last()
                .ok_or(WindowError::Internal("window has no states"))?
                .clone();
            let cand: Vec<f64> = if lanes[k].changed {
                let c = coarse
                    .as_mut()
                    .ok_or(WindowError::Internal("multi-window run without coarse"))?;
                let span = spans[k];
                let mut gc = lanes[k].seed.clone();
                let t0 = Instant::now();
                c.propagate(
                    circuit,
                    &mut gc,
                    span.start as f64 * dt,
                    span.end as f64 * dt,
                )
                .map_err(|source| WindowError::Coarse { window: k, source })?;
                stats.coarse_time += t0.elapsed();
                let old_gc = lanes[k]
                    .gc_end
                    .as_ref()
                    .ok_or(WindowError::Internal("stale coarse end missing"))?;
                let cand = f_end
                    .iter()
                    .zip(&gc)
                    .zip(old_gc)
                    .map(|((f, g), o)| f + g - o)
                    .collect();
                lanes[k].gc_end = Some(gc);
                lanes[k].changed = false;
                cand
            } else {
                f_end
            };
            // Convergence is judged on the coupling residual `‖Δq‖∞/h`:
            // the seed enters window k+1's recursion only through
            // `q(x_seed)/h`, so this is the exact perturbation the update
            // would inject (see `Coarse::coupling_gap`).
            let jump = coarse
                .as_mut()
                .ok_or(WindowError::Internal("multi-window run without coarse"))?
                .coupling_gap(
                    circuit,
                    &cand,
                    &lanes[k + 1].seed,
                    spans[k].end as f64 * dt,
                    dt,
                );
            max_jump = max_jump.max(jump);
            if bits_differ(&cand, &lanes[k + 1].seed) {
                lanes[k + 1].seed = cand;
                lanes[k + 1].dirty = true;
                lanes[k + 1].changed = true;
            }
        }
        if opts.periodic {
            let f_end = lanes[w - 1]
                .states
                .last()
                .ok_or(WindowError::Internal("window has no states"))?
                .clone();
            let jump = linf(&f_end, &lanes[0].seed);
            stats.periodic_residual = Some(jump);
            max_jump = max_jump.max(jump);
            if jump > opts.tol && bits_differ(&f_end, &lanes[0].seed) {
                lanes[0].seed = f_end;
                lanes[0].dirty = true;
                lanes[0].changed = true;
            }
        }
        stats.forward_jumps.push(max_jump);
        stats.serial_time += sweep_start
            .elapsed()
            .saturating_sub(stats.coarse_time.saturating_sub(coarse_before));
        if max_jump <= opts.tol {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(WindowError::Unconverged {
            iterations: stats.forward_iterations,
            jump: stats.forward_jumps.last().copied().unwrap_or(f64::INFINITY),
        });
    }

    // Stitch the global forward metadata. Fixed grid: `times[s] = s·dt`
    // exactly as the monolithic transient computes them.
    let assemble_start = Instant::now();
    let mut meta = RunMeta::default();
    meta.times.reserve(n_steps + 1);
    meta.hs.reserve(n_steps + 1);
    meta.states.reserve(n_steps + 1);
    for s in 0..=n_steps {
        meta.times.push(s as f64 * dt);
        meta.hs.push(dt);
    }
    meta.states.push(
        lanes[0]
            .states
            .first()
            .ok_or(WindowError::Internal("window has no states"))?
            .clone(),
    );
    for lane in &lanes {
        for ls in 1..=lane.span.len() {
            meta.states.push(lane.states[ls].clone());
        }
    }
    if meta.states.len() != n_steps + 1 {
        return Err(WindowError::Internal("stitched state count mismatch"));
    }
    let objective_values: Vec<f64> = objectives
        .iter()
        .map(|o| o.value(&meta.states, &meta.hs))
        .collect();

    // Reverse pass. Move each window's system and sealed tensors into a
    // reverse lane; adjoint cursors use fresh workspaces, mirroring the
    // monolithic `run_adjoint`.
    let mut rev: Vec<RevLane> = Vec::with_capacity(w);
    for lane in lanes {
        let tensors = lane
            .tensors
            .ok_or(WindowError::Internal("window tensors missing"))?;
        rev.push(RevLane {
            span: lane.span,
            system: lane.system,
            tensors,
            term_in: None,
            term_out: None,
            partial: None,
            dirty: true,
            changed: false,
            gc_end: None,
            pass_time: Duration::ZERO,
        });
    }
    // Each window's coarse adjoint freezes the matrices of its *left*
    // boundary (where the exported terminal acts), which are the newest
    // stored block of the predecessor window's tensors — one decode.
    let mut adj_coarse: Vec<Option<AdjCoarse>> = Vec::with_capacity(w);
    adj_coarse.push(None);
    for k in 1..w {
        adj_coarse.push(Some(AdjCoarse::new(
            k,
            rev[k].span,
            &rev[k].system,
            &rev[k - 1].tensors,
            dt,
            opts.coarse_substeps,
        )?));
    }
    stats.window_bytes = rev
        .iter()
        .map(|l| l.tensors.0.compressed_bytes() + l.tensors.1.compressed_bytes())
        .collect();
    stats.serial_time += assemble_start.elapsed();

    if w > 1 {
        // Seed terminal conditions with the coarse adjoint, newest window
        // first (the true terminal of window W−1 is "no pending update").
        let seed_start = Instant::now();
        for k in (1..w).rev() {
            let ac = adj_coarse[k]
                .as_mut()
                .ok_or(WindowError::Internal("adjoint coarse missing"))?;
            let out = ac.apply(k, &meta, objectives, rev[k].term_in.as_ref())?;
            rev[k].gc_end = Some(out.clone());
            rev[k - 1].term_in = Some(out);
        }
        stats.serial_time += seed_start.elapsed();

        // Adjoint Parareal iteration. Every pass is a full pass (the `w`
        // recursion is parameter-independent and `φ` is cheap), so the
        // converged iteration's partials are final: no dedicated
        // accumulation row ever lands on the critical path.
        let a_cap = if opts.max_iterations > 0 {
            opts.max_iterations
        } else {
            w + 1
        };
        let mut a_converged = false;
        while stats.adjoint_iterations < a_cap {
            stats.adjoint_runs += rev.iter().filter(|l| l.dirty).count();
            wave(&mut rev, opts.lanes, &|k, lane| {
                if !lane.dirty {
                    lane.pass_time = Duration::ZERO;
                    return Ok(());
                }
                adjoint_pass(k, lane, circuit, &meta, objectives, params)
            })?;
            stats
                .adjoint_lane_times
                .push(rev.iter().map(|l| l.pass_time).collect());
            stats.adjoint_iterations += 1;

            // Serial descending correction sweep, mirror of the forward
            // one: an unchanged incoming terminal forwards the chain's
            // outgoing terminal verbatim.
            let sweep_start = Instant::now();
            let mut max_jump = 0.0f64;
            for k in (1..w).rev() {
                let t_out = rev[k]
                    .term_out
                    .clone()
                    .ok_or(WindowError::Internal("adjoint pass exported no terminal"))?;
                let cand: WindowTerminal = if rev[k].changed {
                    let ac = adj_coarse[k]
                        .as_mut()
                        .ok_or(WindowError::Internal("adjoint coarse missing"))?;
                    let out = ac.apply(k, &meta, objectives, rev[k].term_in.as_ref())?;
                    let old = rev[k]
                        .gc_end
                        .as_ref()
                        .ok_or(WindowError::Internal("stale adjoint coarse end missing"))?;
                    let ws = t_out
                        .ws
                        .iter()
                        .zip(&out.ws)
                        .zip(&old.ws)
                        .map(|((f, g), o)| {
                            f.iter()
                                .zip(g)
                                .zip(o)
                                .map(|((fv, gv), ov)| fv + gv - ov)
                                .collect()
                        })
                        .collect();
                    let cand = WindowTerminal { ws, h: t_out.h };
                    rev[k].gc_end = Some(out);
                    rev[k].changed = false;
                    cand
                } else {
                    t_out
                };
                let boundary_c = &adj_coarse[k]
                    .as_ref()
                    .ok_or(WindowError::Internal("adjoint coarse missing"))?
                    .c;
                let jump = terminal_jump(&cand, rev[k - 1].term_in.as_ref(), boundary_c);
                max_jump = max_jump.max(jump);
                if terminal_differs(&cand, rev[k - 1].term_in.as_ref()) {
                    rev[k - 1].term_in = Some(cand);
                    rev[k - 1].dirty = true;
                    rev[k - 1].changed = true;
                }
            }
            stats.adjoint_jumps.push(max_jump);
            stats.serial_time += sweep_start.elapsed();
            if max_jump <= opts.adjoint_tol.unwrap_or(opts.tol) {
                a_converged = true;
                break;
            }
        }
        if !a_converged {
            return Err(WindowError::Unconverged {
                iterations: stats.adjoint_iterations,
                jump: stats.adjoint_jumps.last().copied().unwrap_or(f64::INFINITY),
            });
        }
    } else {
        // Single window: one full pass is the whole reverse schedule.
        stats.adjoint_runs += 1;
        wave(&mut rev, opts.lanes, &|k, lane| {
            adjoint_pass(k, lane, circuit, &meta, objectives, params)
        })?;
        stats
            .adjoint_lane_times
            .push(rev.iter().map(|l| l.pass_time).collect());
    }

    // Deterministic serial fold, descending window index (the order the
    // monolithic reverse pass visits these steps). A single window's
    // partial is returned verbatim, keeping W = 1 bitwise monolithic.
    let fold_start = Instant::now();
    let mut parts = Vec::with_capacity(w);
    for lane in rev.iter_mut() {
        parts.push(
            lane.partial
                .take()
                .ok_or(WindowError::Internal("full pass produced no partial"))?,
        );
    }
    let sensitivities = if w == 1 {
        parts
            .pop()
            .ok_or(WindowError::Internal("full pass produced no partial"))?
    } else {
        let mut dodp = vec![vec![0.0f64; params.len()]; objectives.len()];
        for part in parts.iter().rev() {
            for (acc_row, part_row) in dodp.iter_mut().zip(part) {
                for (acc, v) in acc_row.iter_mut().zip(part_row) {
                    *acc += v;
                }
            }
        }
        dodp
    };
    stats.serial_time += fold_start.elapsed();
    stats.total_time = run_start.elapsed();

    Ok(WindowResult {
        objective_values,
        sensitivities,
        meta,
        stats,
    })
}
