//! Partitioning the transient time grid into contiguous windows.

use crate::WindowError;

/// One window's slice of the global step grid: transient steps
/// `start + 1 ..= end` belong to the window, and `start` is the step whose
/// state seeds it (step 0 = the DC point). `start == end` never occurs —
/// every window owns at least one transient step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpan {
    /// Global step index of the seed state (owned by the predecessor).
    pub start: usize,
    /// Global step index of the window's last owned step (inclusive).
    pub end: usize,
}

impl WindowSpan {
    /// Number of transient steps the window owns.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the span owns no steps (never true for spans produced by
    /// [`split_steps`]).
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }
}

/// Splits `n_steps` transient steps into at most `windows` contiguous
/// spans. Requests for more windows than steps clamp to one step per
/// window; remainders go to the *earliest* windows so lane loads stay
/// within one step of each other. Every transient step `1..=n_steps` is
/// covered exactly once, and consecutive spans share their boundary step
/// (`spans[k].end == spans[k + 1].start`).
///
/// # Errors
///
/// Returns [`WindowError::InvalidWindows`] when `windows == 0` or
/// `n_steps == 0`.
pub fn split_steps(n_steps: usize, windows: usize) -> Result<Vec<WindowSpan>, WindowError> {
    if windows == 0 || n_steps == 0 {
        return Err(WindowError::InvalidWindows { windows, n_steps });
    }
    let w = windows.min(n_steps);
    let base = n_steps / w;
    let extra = n_steps % w;
    let mut spans = Vec::with_capacity(w);
    let mut start = 0usize;
    for k in 0..w {
        let len = base + usize::from(k < extra);
        spans.push(WindowSpan {
            start,
            end: start + len,
        });
        start += len;
    }
    debug_assert_eq!(start, n_steps, "spans must cover every step");
    Ok(spans)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split_covers_everything() {
        let spans = split_steps(100, 4).unwrap();
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[0], WindowSpan { start: 0, end: 25 });
        assert_eq!(
            spans[3],
            WindowSpan {
                start: 75,
                end: 100
            }
        );
        for pair in spans.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
    }

    #[test]
    fn remainder_goes_to_early_windows() {
        let spans = split_steps(10, 4).unwrap();
        let lens: Vec<usize> = spans.iter().map(WindowSpan::len).collect();
        assert_eq!(lens, vec![3, 3, 2, 2]);
        assert_eq!(spans.last().unwrap().end, 10);
    }

    #[test]
    fn zero_windows_is_an_error() {
        assert!(matches!(
            split_steps(10, 0),
            Err(WindowError::InvalidWindows { .. })
        ));
    }

    #[test]
    fn more_windows_than_steps_clamps() {
        let spans = split_steps(3, 8).unwrap();
        assert_eq!(spans.len(), 3);
        assert!(spans.iter().all(|s| s.len() == 1));
    }
}
