//! End-to-end sweep validation: per-instance sensitivities vs finite
//! differences and vs independent single runs (bit-exact on
//! current-source decks), super-tensor worker-count invariance, and plan
//! validation errors.

use masc_adjoint::{fd, run_adjoint, ForwardRecord, Objective, StoreConfig, TensorLayout};
use masc_circuit::devices::{Capacitor, CurrentSource, Device, Resistor};
use masc_circuit::transient::TranOptions;
use masc_circuit::waveform::Waveform;
use masc_circuit::{Circuit, ParamRef};
use masc_sweep::{run_sweep, SuperTensorIndex, SweepError, SweepPlan};

/// A current-source-driven RC ladder. I-source MNA systems have no branch
/// unknowns and a diagonally dominant `G`, so threshold partial pivoting
/// keeps the structural diagonal for every parameter variant — which is
/// what makes sweep results bit-comparable to independent runs even when
/// instances share one symbolic analysis.
fn ladder(stages: usize) -> Circuit {
    let mut ckt = Circuit::new();
    let nodes: Vec<_> = (0..stages)
        .map(|s| ckt.node(&format!("n{s}")).unknown())
        .collect();
    ckt.add(Device::CurrentSource(CurrentSource::new(
        "I1",
        None,
        nodes[0],
        Waveform::Pulse {
            v1: 0.0,
            v2: 1e-3,
            td: 0.0,
            tr: 1e-9,
            tf: 1e-9,
            pw: 1.0,
            per: 2.0,
        },
    )))
    .unwrap();
    for s in 0..stages {
        ckt.add(Device::Resistor(Resistor::new(
            format!("R{s}"),
            nodes[s],
            None,
            1000.0,
        )))
        .unwrap();
        ckt.add(Device::Capacitor(Capacitor::new(
            format!("C{s}"),
            nodes[s],
            None,
            1e-6,
        )))
        .unwrap();
        if s + 1 < stages {
            ckt.add(Device::Resistor(Resistor::new(
                format!("RS{s}"),
                nodes[s],
                nodes[s + 1],
                500.0,
            )))
            .unwrap();
        }
    }
    ckt
}

fn plan_for(base: &Circuit, n_variants: usize, workers: usize) -> SweepPlan {
    let tran = TranOptions::new(1e-3, 5e-5);
    let last = base.find_node("n3").unwrap().unknown().unwrap();
    let first = base.find_node("n0").unwrap().unknown().unwrap();
    let objectives = vec![
        Objective::FinalValue { unknown: last },
        Objective::Integral { unknown: first },
    ];
    let params = vec![
        base.find_param("R0.r").unwrap(),
        base.find_param("C1.c").unwrap(),
    ];
    let r0 = base.find_param("R0.r").unwrap();
    let c2 = base.find_param("C2.c").unwrap();
    let mut plan = SweepPlan::new(tran, objectives, params).with_workers(workers);
    for k in 0..n_variants {
        plan.push_variant(vec![
            (r0.clone(), 1000.0 * (1.0 + 0.05 * k as f64)),
            (c2.clone(), 1e-6 * (1.0 + 0.02 * k as f64)),
        ]);
    }
    plan
}

fn apply_variant(base: &Circuit, overrides: &[(ParamRef, f64)]) -> Circuit {
    let mut ckt = base.clone();
    for (p, v) in overrides {
        ckt.set_param_value(p, *v);
    }
    ckt
}

#[test]
fn sweep_matches_finite_difference_per_instance() {
    let base = ladder(4);
    let plan = plan_for(&base, 8, 2);
    let result = run_sweep(&base, &plan).unwrap();
    assert_eq!(result.sensitivities.len(), 8);
    assert_eq!(result.stats.steps, 20);
    for (k, variant) in plan.variants.iter().enumerate() {
        let ckt = apply_variant(&base, variant);
        for (i, objective) in plan.objectives.iter().enumerate() {
            for (j, param) in plan.params.iter().enumerate() {
                let a = result.sensitivities[k].values[i][j];
                let f = fd::finite_difference(&ckt, &plan.tran, objective, param, 1e-5).unwrap();
                let scale = a.abs().max(f.abs());
                assert!(scale > 1e-15, "instance {k} obj {i} param {j}: both ~0");
                assert!(
                    (a - f).abs() / scale <= 1e-6,
                    "instance {k} obj {i} param {}: adjoint {a:e} vs fd {f:e}",
                    param.path,
                );
            }
        }
    }
}

#[test]
fn sweep_is_bit_identical_to_independent_single_runs() {
    let base = ladder(4);
    let plan = plan_for(&base, 5, 3);
    let result = run_sweep(&base, &plan).unwrap();
    for (k, variant) in plan.variants.iter().enumerate() {
        let mut ckt = apply_variant(&base, variant);
        let single = run_adjoint(
            &mut ckt,
            &plan.tran,
            &StoreConfig::RawMemory,
            &plan.objectives,
            &plan.params,
        )
        .unwrap();
        for (i, row) in single.sensitivities.values.iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                let s = result.sensitivities[k].values[i][j];
                assert_eq!(
                    s.to_bits(),
                    v.to_bits(),
                    "instance {k} obj {i} param {j}: sweep {s:e} vs single {v:e}"
                );
            }
        }
        for (i, v) in single.objective_values.iter().enumerate() {
            assert_eq!(result.objective_values[k][i].to_bits(), v.to_bits());
        }
    }
}

#[test]
fn super_tensor_is_invariant_to_worker_count() {
    let base = ladder(4);
    let serial = run_sweep(&base, &plan_for(&base, 8, 1)).unwrap();
    let threaded = run_sweep(&base, &plan_for(&base, 8, 4)).unwrap();
    assert_eq!(
        serial.super_tensor, threaded.super_tensor,
        "super-tensor bytes must not depend on the worker count"
    );
    for (a, b) in serial.sensitivities.iter().zip(&threaded.sensitivities) {
        for (ra, rb) in a.values.iter().zip(&b.values) {
            for (va, vb) in ra.iter().zip(rb) {
                assert_eq!(va.to_bits(), vb.to_bits());
            }
        }
    }
}

#[test]
fn super_tensor_parses_and_compresses() {
    let base = ladder(4);
    let plan = plan_for(&base, 8, 2);
    let result = run_sweep(&base, &plan).unwrap();
    let index = SuperTensorIndex::parse(&result.super_tensor).unwrap();
    assert_eq!(index.header().n_instances, 8);
    assert_eq!(index.header().n_blocks, 21); // DC + 20 steps
    assert_eq!(result.stats.super_tensor_bytes, result.super_tensor.len());
    assert!(
        result.stats.super_tensor_bytes < result.stats.raw_bytes,
        "super-tensor ({}) should beat raw storage ({})",
        result.stats.super_tensor_bytes,
        result.stats.raw_bytes
    );
    // Every block is non-empty and addressable.
    for t in 0..index.header().n_blocks {
        for k in 0..index.header().n_instances {
            assert!(!index
                .g_block(&result.super_tensor, t, k)
                .unwrap()
                .is_empty());
            assert!(!index
                .c_block(&result.super_tensor, t, k)
                .unwrap()
                .is_empty());
        }
    }
}

/// The degenerate N=1 sweep is a plain single run in every observable:
/// no cross-instance blocks are emitted, the super-tensor's per-step
/// blocks are byte-identical to the ordinary temporal chain, and the
/// sensitivities/objective values are bit-identical to `run_adjoint`
/// over the same compressed store.
#[test]
fn single_variant_sweep_is_bit_identical_and_cross_free() {
    let base = ladder(4);
    let plan = plan_for(&base, 1, 1);
    let result = run_sweep(&base, &plan).unwrap();
    assert_eq!(result.sensitivities.len(), 1);

    // Structure: one instance, and not a single block flagged
    // cross-instance (FLAG_CROSS_INSTANCE = 1 << 6 in the header byte).
    let index = SuperTensorIndex::parse(&result.super_tensor).unwrap();
    assert_eq!(index.header().n_instances, 1);
    for t in 0..index.header().n_blocks {
        for bytes in [
            index.g_block(&result.super_tensor, t, 0).unwrap(),
            index.c_block(&result.super_tensor, t, 0).unwrap(),
        ] {
            assert!(!bytes.is_empty());
            assert_eq!(
                bytes[0] & (1 << 6),
                0,
                "step {t}: an N=1 sweep must not emit cross-instance blocks"
            );
        }
    }

    // Bit-identity against the plain pipeline with the same compressor.
    let mut ckt = apply_variant(&base, &plan.variants[0]);
    let single = run_adjoint(
        &mut ckt,
        &plan.tran,
        &StoreConfig::Compressed(plan.masc.clone()),
        &plan.objectives,
        &plan.params,
    )
    .unwrap();
    for (i, row) in single.sensitivities.values.iter().enumerate() {
        for (j, v) in row.iter().enumerate() {
            assert_eq!(
                result.sensitivities[0].values[i][j].to_bits(),
                v.to_bits(),
                "obj {i} param {j}: sweep vs single run"
            );
        }
    }
    for (i, v) in single.objective_values.iter().enumerate() {
        assert_eq!(result.objective_values[0][i].to_bits(), v.to_bits());
    }

    // The super-tensor's instance-0 blocks ARE the plain temporal chain:
    // an independently built TensorCompressor over the same forward
    // series emits byte-identical blocks.
    let mut system = ckt.elaborate().unwrap();
    let layout = TensorLayout::of(&system);
    let mut record = ForwardRecord::new(layout.clone(), &StoreConfig::RawMemory).unwrap();
    masc_circuit::transient::transient(&ckt, &mut system, &plan.tran, &mut record).unwrap();
    let (g_series, c_series) = {
        let (g, c) = record.raw_matrices().unwrap();
        (g.to_vec(), c.to_vec())
    };
    assert_eq!(index.header().n_blocks, g_series.len());
    let mut tc_g =
        masc_compress::TensorCompressor::new(layout.g_pattern.clone(), plan.masc.clone());
    let mut tc_c =
        masc_compress::TensorCompressor::new(layout.c_pattern.clone(), plan.masc.clone());
    for g in &g_series {
        tc_g.push(g);
    }
    for c in &c_series {
        tc_c.push(c);
    }
    tc_g.seal();
    tc_c.seal();
    for t in 0..index.header().n_blocks {
        assert_eq!(
            index.g_block(&result.super_tensor, t, 0).unwrap(),
            tc_g.compressed_block(t).unwrap(),
            "G block {t} differs from the plain temporal chain"
        );
        assert_eq!(
            index.c_block(&result.super_tensor, t, 0).unwrap(),
            tc_c.compressed_block(t).unwrap(),
            "C block {t} differs from the plain temporal chain"
        );
    }
}

#[test]
fn plan_validation_errors() {
    let base = ladder(4);
    let empty = plan_for(&base, 0, 1);
    assert!(matches!(
        run_sweep(&base, &empty),
        Err(SweepError::EmptyPlan)
    ));

    let mut adaptive = plan_for(&base, 2, 1);
    adaptive.tran = TranOptions::new(1e-3, 5e-5).with_adaptive(8.0, 16.0);
    assert!(matches!(
        run_sweep(&base, &adaptive),
        Err(SweepError::AdaptiveUnsupported)
    ));

    let mut bogus = plan_for(&base, 2, 1);
    let mut p = bogus.params[0].clone();
    p.device = 999;
    p.path = "R999.r".into();
    bogus.params.push(p);
    assert!(matches!(
        run_sweep(&base, &bogus),
        Err(SweepError::InvalidParam { .. })
    ));
}

/// `SweepStats::serial_time` telemetry is coherent and monotone in N
/// (ISSUE 9 satellite): the serial sections (super-tensor compression,
/// framing, the decode chain) grow with the instance count, never exceed
/// the end-to-end wall time, and are strictly positive whenever work was
/// done. Wall-clock noise is damped by taking the minimum over repeats —
/// the standard floor estimator for "how fast can this section go".
#[test]
fn serial_time_is_monotone_in_instance_count() {
    let base = ladder(4);
    let min_serial = |n_variants: usize| -> std::time::Duration {
        (0..5)
            .map(|_| {
                let result = run_sweep(&base, &plan_for(&base, n_variants, 1)).unwrap();
                let s = result.stats;
                assert_eq!(s.instances, n_variants);
                assert!(
                    s.serial_time <= s.total_time,
                    "N={n_variants}: serial {:?} exceeds total {:?}",
                    s.serial_time,
                    s.total_time
                );
                assert!(
                    s.serial_time > std::time::Duration::ZERO,
                    "N={n_variants}: compression/decode took measurably no time"
                );
                s.serial_time
            })
            .min()
            .unwrap()
    };
    let small = min_serial(1);
    let large = min_serial(8);
    // 8× the instances means 8× the per-step compression and decode work;
    // demand a 2× floor so the pin is insensitive to scheduling noise.
    assert!(
        large >= small * 2,
        "serial_time should grow with N: N=1 min {small:?} vs N=8 min {large:?}"
    );
}
