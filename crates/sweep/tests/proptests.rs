//! Property pin for degenerate sweep plans (ISSUE 8 satellite): across
//! randomized parameter values and step counts, a 1-variant sweep must be
//! bit-identical to a plain `run_adjoint` over the same compressed store,
//! and a 0-variant plan must fail with the structured `EmptyPlan` error.
//!
//! Failures replay with `MASC_PROP_REPRO` (masc-testkit seed replay).

#![allow(clippy::disallowed_methods)] // tests may unwrap

use masc_adjoint::{run_adjoint, Objective, StoreConfig};
use masc_circuit::devices::{Capacitor, CurrentSource, Device, Resistor};
use masc_circuit::transient::TranOptions;
use masc_circuit::waveform::Waveform;
use masc_circuit::Circuit;
use masc_sweep::{run_sweep, SweepError, SweepPlan};
use masc_testkit::gen;
use masc_testkit::{prop, prop_assert, prop_assert_eq};

/// A 3-stage current-source-driven RC ladder (no branch unknowns, so the
/// structural diagonal survives pivoting for every parameter variant —
/// the bit-comparability regime the sweep oracle also relies on).
fn ladder() -> Circuit {
    let mut ckt = Circuit::new();
    let nodes: Vec<_> = (0..3)
        .map(|s| ckt.node(&format!("n{s}")).unknown())
        .collect();
    ckt.add(Device::CurrentSource(CurrentSource::new(
        "I1",
        None,
        nodes[0],
        Waveform::Dc(1e-3),
    )))
    .unwrap();
    for s in 0..3 {
        ckt.add(Device::Resistor(Resistor::new(
            format!("R{s}"),
            nodes[s],
            None,
            1000.0,
        )))
        .unwrap();
        ckt.add(Device::Capacitor(Capacitor::new(
            format!("C{s}"),
            nodes[s],
            None,
            1e-6,
        )))
        .unwrap();
        if s + 1 < 3 {
            ckt.add(Device::Resistor(Resistor::new(
                format!("RS{s}"),
                nodes[s],
                nodes[s + 1],
                500.0,
            )))
            .unwrap();
        }
    }
    ckt
}

fn plan_for(base: &Circuit, r_scale: f64, c_scale: f64, steps: usize) -> SweepPlan {
    let dt = 5e-5;
    let tran = TranOptions::new(dt * steps as f64, dt);
    let out = base.find_node("n2").unwrap().unknown().unwrap();
    let objectives = vec![
        Objective::FinalValue { unknown: out },
        Objective::Integral { unknown: out },
    ];
    let r0 = base.find_param("R0.r").unwrap();
    let c1 = base.find_param("C1.c").unwrap();
    let mut plan = SweepPlan::new(tran, objectives, vec![r0.clone(), c1.clone()]);
    plan.push_variant(vec![(r0, 1000.0 * r_scale), (c1, 1e-6 * c_scale)]);
    plan
}

prop! {
    #![cases = 10]

    /// N=1 sweeps are plain single runs, to the bit, for arbitrary
    /// swept values and step counts.
    fn single_variant_sweep_matches_run_adjoint(
        (r_scale, c_scale, steps) in (
            gen::range_f64(0.25, 4.0),
            gen::range_f64(0.25, 4.0),
            gen::range_usize(6, 40),
        )
    ) {
        let base = ladder();
        let plan = plan_for(&base, r_scale, c_scale, steps);
        let sweep = run_sweep(&base, &plan).unwrap();
        prop_assert_eq!(sweep.sensitivities.len(), 1);

        let mut ckt = base.clone();
        for (p, v) in &plan.variants[0] {
            ckt.set_param_value(p, *v);
        }
        let single = run_adjoint(
            &mut ckt,
            &plan.tran,
            &StoreConfig::Compressed(plan.masc.clone()),
            &plan.objectives,
            &plan.params,
        )
        .unwrap();
        for (i, row) in single.sensitivities.values.iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                prop_assert_eq!(
                    sweep.sensitivities[0].values[i][j].to_bits(),
                    v.to_bits()
                );
            }
        }
        for (i, v) in single.objective_values.iter().enumerate() {
            prop_assert_eq!(sweep.objective_values[0][i].to_bits(), v.to_bits());
        }
    }

    /// N=0 plans are rejected with the structured error, for arbitrary
    /// (unused) generator draws.
    fn zero_variant_plan_is_structured_error(steps in gen::range_usize(6, 40)) {
        let base = ladder();
        let mut plan = plan_for(&base, 1.0, 1.0, steps);
        plan.variants.clear();
        let err = run_sweep(&base, &plan);
        prop_assert!(matches!(err, Err(SweepError::EmptyPlan)));
        // The rejection is a first-class error, not a panic: Display and
        // Error are implemented.
        let msg = SweepError::EmptyPlan.to_string();
        prop_assert!(!msg.is_empty());
    }
}
