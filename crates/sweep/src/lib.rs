//! Batched parameter-sweep sensitivity over one shared-structure
//! super-tensor.
//!
//! A [`SweepPlan`] elaborates N parameter variants of one netlist — same
//! topology, same MNA pattern, different device values — and runs their
//! forward transients in lockstep on `std::thread::scope` workers. Every
//! instance shares one [`masc_sparse::SymbolicLu`] (minted by instance 0's
//! DC factorization) and one set of stamp maps, and each timestep's N
//! Jacobian pairs are written into a single compressed *super-tensor*:
//! instance 0 flows through the ordinary temporal chain, instances
//! `1..N` are era-3 *cross-instance* blocks encoded against their
//! neighbor's same-step matrix (adjacent variants differ only in the swept
//! stamps, so those residuals are far sparser than the temporal axis —
//! the paper's spatiotemporal prediction gaining a third, batch axis).
//!
//! The reverse pass parses the super-tensor back ([`wire`]), decodes each
//! step's blocks (temporal chain for instance 0, neighbor reference for
//! the rest), and feeds N [`masc_adjoint::AdjointCursor`]s concurrently.
//! Per-instance sensitivities are bit-comparable to N independent single
//! runs, and the super-tensor bytes are identical for any worker count:
//! each instance's Newton arithmetic is independent and deterministic, and
//! all encoding happens serially between waves.
//!
//! # Examples
//!
//! ```
//! use masc_circuit::parser::parse_netlist;
//! use masc_sweep::{run_sweep, SweepPlan};
//! use masc_adjoint::Objective;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut parsed = parse_netlist(
//!     "I1 0 out DC 1m\n\
//!      R1 out 0 1k\n\
//!      C1 out 0 1u\n\
//!      .tran 100u 1m\n\
//!      .end",
//! )?;
//! let tran = parsed.tran.clone().expect(".tran present");
//! let out = parsed.circuit.find_node("out").expect("node").unknown().expect("not ground");
//! let r1 = parsed.circuit.find_param("R1.r").expect("param");
//! let mut plan = SweepPlan::new(
//!     tran,
//!     vec![Objective::FinalValue { unknown: out }],
//!     vec![r1.clone()],
//! );
//! for i in 0..4 {
//!     plan.push_variant(vec![(r1.clone(), 1000.0 * (1.0 + 0.05 * i as f64))]);
//! }
//! let result = run_sweep(&parsed.circuit, &plan)?;
//! assert_eq!(result.sensitivities.len(), 4);
//! // V = I·R at DC steady state: dV/dR ≈ I = 1 mA for every variant.
//! for s in &result.sensitivities {
//!     assert!((s.values[0][0] - 1e-3).abs() < 1e-5);
//! }
//! # Ok(())
//! # }
//! ```

// Unit tests may assert with unwrap/expect; shipping code may not (see
// clippy.toml and masc-lint rule R1).
#![cfg_attr(test, allow(clippy::disallowed_methods))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod wire;

pub use wire::{SuperTensorHeader, SuperTensorIndex, WireError, WIRE_VERSION};

use masc_adjoint::{
    AdjointCursor, AdjointError, Objective, RunMeta, SensitivityResult, StepMatrices,
};
use masc_circuit::dc::dc_operating_point_ws;
use masc_circuit::newton::newton_solve;
use masc_circuit::transient::TranOptions;
use masc_circuit::{Circuit, CircuitError, Evaluation, NewtonError, ParamRef, System};
use masc_compress::{
    decode_block, encode_cross_block, BackwardDecompressor, CompressError, MascConfig, StampMaps,
    TensorCompressor,
};
use masc_sparse::{CsrMatrix, LuWorkspace};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A batched sweep: N parameter variants of one netlist, integrated in
/// lockstep and differentiated together.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    /// Per instance: the parameter overrides applied to the base netlist
    /// before elaboration. An empty override list is the base itself.
    pub variants: Vec<Vec<(ParamRef, f64)>>,
    /// Transient options shared by every instance. Adaptive stepping is
    /// rejected — lockstep integration and the per-step super-blocks need
    /// one shared fixed time grid.
    pub tran: TranOptions,
    /// Objectives differentiated for every instance.
    pub objectives: Vec<Objective>,
    /// Parameters differentiated against for every instance.
    pub params: Vec<ParamRef>,
    /// Compressor configuration for the super-tensor.
    pub masc: MascConfig,
    /// Worker threads for the forward Newton and reverse adjoint waves
    /// (`0` and `1` both mean serial). The super-tensor bytes and the
    /// sensitivities are identical for every worker count.
    pub workers: usize,
}

impl SweepPlan {
    /// Creates a plan with no variants yet (add them with
    /// [`push_variant`](Self::push_variant)).
    pub fn new(tran: TranOptions, objectives: Vec<Objective>, params: Vec<ParamRef>) -> Self {
        Self {
            variants: Vec::new(),
            tran,
            objectives,
            params,
            masc: MascConfig::default(),
            workers: 1,
        }
    }

    /// Appends one instance with the given parameter overrides.
    pub fn push_variant(&mut self, overrides: Vec<(ParamRef, f64)>) -> &mut Self {
        self.variants.push(overrides);
        self
    }

    /// Sets the worker-thread count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the compressor configuration.
    pub fn with_masc(mut self, masc: MascConfig) -> Self {
        self.masc = masc;
        self
    }
}

/// Errors from a sweep run.
#[derive(Debug)]
pub enum SweepError {
    /// The plan has no variants.
    EmptyPlan,
    /// The plan requests adaptive stepping, which the lockstep sweep does
    /// not support (instances must share one fixed time grid).
    AdaptiveUnsupported,
    /// A parameter reference does not exist in the base circuit.
    InvalidParam {
        /// The offending reference's path.
        path: String,
    },
    /// A variant failed to elaborate.
    Circuit(CircuitError),
    /// A variant elaborated to a different MNA pattern than instance 0
    /// (the sweep requires shared structure).
    PatternMismatch {
        /// The offending instance.
        instance: usize,
    },
    /// An instance's DC operating point failed.
    Dc {
        /// The failing instance.
        instance: usize,
        /// Underlying Newton failure.
        source: NewtonError,
    },
    /// An instance's transient step failed to converge.
    Step {
        /// The failing instance.
        instance: usize,
        /// The failing step.
        step: usize,
        /// Underlying Newton failure.
        source: NewtonError,
    },
    /// An instance's adjoint pass failed.
    Adjoint {
        /// The failing instance.
        instance: usize,
        /// Underlying adjoint failure.
        source: AdjointError,
    },
    /// The super-tensor failed to frame or parse.
    Wire(WireError),
    /// A super-tensor block failed to decode.
    Compress(CompressError),
    /// A worker thread panicked.
    WorkerPanicked,
    /// An internal invariant was violated.
    Internal(&'static str),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::EmptyPlan => write!(f, "sweep plan has no variants"),
            SweepError::AdaptiveUnsupported => {
                write!(
                    f,
                    "sweep requires a fixed time grid (adaptive stepping set)"
                )
            }
            SweepError::InvalidParam { path } => {
                write!(f, "parameter {path:?} does not exist in the base circuit")
            }
            SweepError::Circuit(e) => write!(f, "variant elaboration failed: {e}"),
            SweepError::PatternMismatch { instance } => {
                write!(
                    f,
                    "instance {instance} elaborated to a different MNA pattern"
                )
            }
            SweepError::Dc { instance, source } => {
                write!(f, "instance {instance} dc operating point failed: {source}")
            }
            SweepError::Step {
                instance,
                step,
                source,
            } => write!(f, "instance {instance} step {step} failed: {source}"),
            SweepError::Adjoint { instance, source } => {
                write!(f, "instance {instance} adjoint pass failed: {source}")
            }
            SweepError::Wire(e) => write!(f, "super-tensor framing failed: {e}"),
            SweepError::Compress(e) => write!(f, "super-tensor block failed to decode: {e}"),
            SweepError::WorkerPanicked => write!(f, "a sweep worker thread panicked"),
            SweepError::Internal(what) => write!(f, "sweep internal error: {what}"),
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Circuit(e) => Some(e),
            SweepError::Dc { source, .. } | SweepError::Step { source, .. } => Some(source),
            SweepError::Adjoint { source, .. } => Some(source),
            SweepError::Wire(e) => Some(e),
            SweepError::Compress(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for SweepError {
    fn from(e: WireError) -> Self {
        SweepError::Wire(e)
    }
}

impl From<CompressError> for SweepError {
    fn from(e: CompressError) -> Self {
        SweepError::Compress(e)
    }
}

/// Aggregate statistics of one sweep run.
#[derive(Debug, Clone, Default)]
pub struct SweepStats {
    /// Number of instances integrated.
    pub instances: usize,
    /// Transient steps per instance (excluding DC).
    pub steps: usize,
    /// Wall time of the lockstep forward pass (all instances).
    pub forward_time: Duration,
    /// Wall time of the reverse pass (decode + N adjoint cursors).
    pub adjoint_time: Duration,
    /// Wall time of the serial sections: super-tensor compression during
    /// the forward pass, framing, and the per-step decode chain of the
    /// reverse pass. Everything outside this is per-instance work that
    /// worker lanes run concurrently, so `serial_time` plus
    /// `(total_time - serial_time) / N` models the N-worker critical
    /// path.
    pub serial_time: Duration,
    /// End-to-end wall time.
    pub total_time: Duration,
    /// Size of the framed super-tensor.
    pub super_tensor_bytes: usize,
    /// Raw size of every instance's stored non-zeros (`N · (T+1) ·
    /// (nnz_G + nnz_C) · 8`).
    pub raw_bytes: usize,
}

/// The result of a sweep: per-instance sensitivities plus the shared
/// super-tensor.
#[derive(Debug)]
pub struct SweepResult {
    /// `sensitivities[k].values[i][j] = dO_i/dp_j` for instance `k`.
    pub sensitivities: Vec<SensitivityResult>,
    /// `objective_values[k][i]` = objective `i` evaluated on instance `k`.
    pub objective_values: Vec<Vec<f64>>,
    /// Per-instance forward metadata (times, step sizes, states).
    pub metas: Vec<RunMeta>,
    /// The framed compressed super-tensor (parse with
    /// [`wire::SuperTensorIndex`]).
    pub super_tensor: Vec<u8>,
    /// Run statistics.
    pub stats: SweepStats,
}

/// Per-instance forward-integration state.
struct ForwardInst {
    system: System,
    lu: LuWorkspace,
    x: Vec<f64>,
    x_prev: Vec<f64>,
    q_prev: Vec<f64>,
    ev: Evaluation,
    j: CsrMatrix,
    r: Vec<f64>,
    meta: RunMeta,
    g_compact: Vec<f64>,
    c_compact: Vec<f64>,
}

impl ForwardInst {
    /// Records the converged state at `(step, t, h)`: re-evaluates at the
    /// accepted point, gathers the compact `G`/`C` arrays, and advances the
    /// history — the exact post-convergence schedule of
    /// [`masc_circuit::transient::transient_ws`].
    fn accept(&mut self, circuit: &Circuit, t: f64, h: f64) {
        self.system.eval_into(circuit, &self.x, t, &mut self.ev);
        let gv = self.ev.g.values();
        for (dst, &slot) in self.g_compact.iter_mut().zip(self.system.g_slots.iter()) {
            *dst = gv[slot];
        }
        let cv = self.ev.c.values();
        for (dst, &slot) in self.c_compact.iter_mut().zip(self.system.c_slots.iter()) {
            *dst = cv[slot];
        }
        self.meta.times.push(t);
        self.meta.hs.push(h);
        self.meta.states.push(self.x.clone());
        self.q_prev.copy_from_slice(&self.ev.q);
        self.x_prev.copy_from_slice(&self.x);
    }
}

/// Per-instance reverse-pass state: the cursor does not borrow the system,
/// so the pair can travel to a worker thread together.
struct ReverseInst<'a> {
    cursor: AdjointCursor<'a>,
    system: System,
}

/// Runs `f(instance_index, item)` over `items` on up to `workers` scoped
/// threads (instance `i` maps to slice position `i - base`). Instances are
/// distributed round-robin; with one worker (or one item) the loop runs
/// inline. On failure the error of the *lowest* instance index is
/// surfaced, so diagnostics are deterministic regardless of thread timing.
fn wave<T, F>(items: &mut [T], base: usize, workers: usize, f: &F) -> Result<(), SweepError>
where
    T: Send,
    F: Fn(usize, &mut T) -> Result<(), SweepError> + Sync,
{
    let lanes = workers.max(1).min(items.len());
    if lanes <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(base + i, item)?;
        }
        return Ok(());
    }
    let mut buckets: Vec<Vec<(usize, &mut T)>> = (0..lanes).map(|_| Vec::new()).collect();
    for (i, item) in items.iter_mut().enumerate() {
        buckets[i % lanes].push((base + i, item));
    }
    let failures: Vec<(usize, SweepError)> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(lanes);
        for bucket in buckets {
            handles.push(scope.spawn(move || {
                for (idx, item) in bucket {
                    if let Err(e) = f(idx, item) {
                        return Some((idx, e));
                    }
                }
                None
            }));
        }
        handles
            .into_iter()
            .filter_map(|h| {
                h.join()
                    .unwrap_or(Some((usize::MAX, SweepError::WorkerPanicked)))
            })
            .collect()
    });
    match failures.into_iter().min_by_key(|(idx, _)| *idx) {
        Some((_, e)) => Err(e),
        None => Ok(()),
    }
}

fn validate_param(base: &Circuit, p: &ParamRef) -> Result<(), SweepError> {
    let valid = base
        .devices()
        .get(p.device)
        .is_some_and(|d| p.local < d.param_count());
    if valid {
        Ok(())
    } else {
        Err(SweepError::InvalidParam {
            path: p.path.clone(),
        })
    }
}

/// Runs the batched sweep: N lockstep forward transients sharing one
/// symbolic LU analysis, one compressed super-tensor, and N concurrent
/// adjoint reverse passes over it.
///
/// Per-instance sensitivities match N independent single runs; the
/// super-tensor bytes are invariant to `plan.workers`.
///
/// # Errors
///
/// Returns [`SweepError`] on an invalid plan, a failed solve, or a
/// super-tensor fault.
pub fn run_sweep(base: &Circuit, plan: &SweepPlan) -> Result<SweepResult, SweepError> {
    let run_start = Instant::now();
    if plan.variants.is_empty() {
        return Err(SweepError::EmptyPlan);
    }
    if plan.tran.adaptive.is_some() {
        return Err(SweepError::AdaptiveUnsupported);
    }
    for p in plan
        .params
        .iter()
        .chain(plan.variants.iter().flat_map(|v| v.iter().map(|(p, _)| p)))
    {
        validate_param(base, p)?;
    }
    let n_inst = plan.variants.len();
    let workers = plan.workers.max(1);
    let dt = plan.tran.dt;

    // Elaborate every variant; all must share instance 0's MNA structure.
    let mut circuits = Vec::with_capacity(n_inst);
    let mut insts: Vec<ForwardInst> = Vec::with_capacity(n_inst);
    for variant in &plan.variants {
        let mut ckt = base.clone();
        for (p, value) in variant {
            ckt.set_param_value(p, *value);
        }
        let system = ckt.elaborate().map_err(SweepError::Circuit)?;
        let n = system.n;
        insts.push(ForwardInst {
            x: vec![0.0; n],
            x_prev: vec![0.0; n],
            q_prev: vec![0.0; n],
            ev: system.new_evaluation(),
            j: CsrMatrix::zeros(system.pattern.clone()),
            r: vec![0.0; n],
            meta: RunMeta {
                times: Vec::new(),
                hs: Vec::new(),
                states: Vec::new(),
            },
            g_compact: vec![0.0; system.g_slots.len()],
            c_compact: vec![0.0; system.c_slots.len()],
            lu: LuWorkspace::new(),
            system,
        });
        circuits.push(ckt);
    }
    for (k, inst) in insts.iter().enumerate().skip(1) {
        if inst.system.pattern != insts[0].system.pattern
            || inst.system.g_pattern != insts[0].system.g_pattern
            || inst.system.c_pattern != insts[0].system.c_pattern
        {
            return Err(SweepError::PatternMismatch { instance: k });
        }
    }
    let g_pattern = insts[0].system.g_pattern.clone();
    let c_pattern = insts[0].system.c_pattern.clone();
    let g_maps = Arc::new(StampMaps::new(&g_pattern));
    let c_maps = Arc::new(StampMaps::new(&c_pattern));
    let circuits = circuits; // frozen: workers share &circuits

    let forward_start = Instant::now();

    // DC phase. Instance 0 goes first and mints the one symbolic analysis
    // everyone else reuses; the rest solve concurrently from it.
    let dc = |k: usize, inst: &mut ForwardInst| -> Result<(), SweepError> {
        let circuit = &circuits[k];
        let sol = dc_operating_point_ws(circuit, &mut inst.system, &plan.tran.newton, &mut inst.lu)
            .map_err(|source| SweepError::Dc {
                instance: k,
                source,
            })?;
        inst.x.copy_from_slice(&sol.x);
        inst.accept(circuit, 0.0, dt);
        Ok(())
    };
    dc(0, &mut insts[0])?;
    let shared_symbolic = insts[0].lu.symbolic().cloned();
    if let Some(sym) = &shared_symbolic {
        for inst in insts.iter_mut().skip(1) {
            inst.lu = LuWorkspace::with_symbolic(sym.clone());
        }
    }
    {
        let (_, rest) = insts.split_at_mut(1);
        wave(rest, 1, workers, &dc)?;
    }

    // Super-tensor accumulators. Instance 0 flows through the temporal
    // chain of two TensorCompressors (G and C share nothing but the MASC
    // config — they have distinct patterns and maps); instances 1..N are
    // encoded serially after each wave as cross blocks against their
    // neighbor's same-step values.
    let mut tc_g =
        TensorCompressor::with_maps(g_pattern.clone(), g_maps.clone(), plan.masc.clone());
    let mut tc_c =
        TensorCompressor::with_maps(c_pattern.clone(), c_maps.clone(), plan.masc.clone());
    let mut g_rows: Vec<Vec<Vec<u8>>> = Vec::new();
    let mut c_rows: Vec<Vec<Vec<u8>>> = Vec::new();
    let mut serial_time = Duration::ZERO;
    let mut collect_step = |insts: &[ForwardInst]| {
        let serial_start = Instant::now();
        tc_g.push(&insts[0].g_compact);
        tc_c.push(&insts[0].c_compact);
        let mut g_row = Vec::with_capacity(n_inst);
        let mut c_row = Vec::with_capacity(n_inst);
        // Placeholder for instance 0, filled from the sealed chain below.
        g_row.push(Vec::new());
        c_row.push(Vec::new());
        for k in 1..n_inst {
            let (bytes, _) = encode_cross_block(
                &insts[k].g_compact,
                &insts[k - 1].g_compact,
                &g_maps,
                &plan.masc,
            );
            g_row.push(bytes);
            let (bytes, _) = encode_cross_block(
                &insts[k].c_compact,
                &insts[k - 1].c_compact,
                &c_maps,
                &plan.masc,
            );
            c_row.push(bytes);
        }
        g_rows.push(g_row);
        c_rows.push(c_row);
        serial_time += serial_start.elapsed();
    };
    collect_step(&insts);

    // Lockstep transient: the time loop replicates the fixed-grid schedule
    // of `transient_ws` exactly, so every instance's states and matrices
    // are bitwise those of an independent single run.
    let mut t_now = 0.0f64;
    let mut step = 0usize;
    let t_end = plan.tran.t_stop * (1.0 - 1e-12);
    while t_now < t_end {
        step += 1;
        let t = step as f64 * dt;
        let advance = |k: usize, inst: &mut ForwardInst| -> Result<(), SweepError> {
            let circuit = &circuits[k];
            let ForwardInst {
                system,
                lu,
                x,
                q_prev,
                ev,
                j,
                r,
                ..
            } = inst;
            let n = system.n;
            newton_solve(x, &plan.tran.newton, lu, j, r, |x, r, j| {
                system.eval_into(circuit, x, t, ev);
                for i in 0..n {
                    r[i] = (ev.q[i] - q_prev[i]) / dt + ev.f[i] + ev.b[i];
                }
                // J = G + C/h over the shared pattern.
                let jv = j.values_mut();
                jv.copy_from_slice(ev.g.values());
                for (jv, cv) in jv.iter_mut().zip(ev.c.values()) {
                    *jv += cv / dt;
                }
            })
            .map_err(|source| SweepError::Step {
                instance: k,
                step,
                source,
            })?;
            inst.accept(circuit, t, dt);
            Ok(())
        };
        wave(&mut insts, 0, workers, &advance)?;
        collect_step(&insts);
        t_now = t;
    }

    // Seal the temporal chains and frame the super-tensor.
    let frame_start = Instant::now();
    tc_g.seal();
    tc_c.seal();
    let n_blocks = g_rows.len();
    if tc_g.sealed_len() != n_blocks || tc_c.sealed_len() != n_blocks {
        return Err(SweepError::Internal("temporal chain length != step count"));
    }
    for t in 0..n_blocks {
        g_rows[t][0] = tc_g
            .take_block(t)
            .ok_or(SweepError::Internal("temporal G block missing"))?;
        c_rows[t][0] = tc_c
            .take_block(t)
            .ok_or(SweepError::Internal("temporal C block missing"))?;
    }
    let header = SuperTensorHeader {
        n_instances: n_inst,
        n_blocks,
        g_nnz: g_pattern.nnz(),
        c_nnz: c_pattern.nnz(),
    };
    let super_tensor = wire::encode_super_tensor(&header, &g_rows, &c_rows)?;
    drop(g_rows);
    drop(c_rows);
    serial_time += frame_start.elapsed();
    let forward_time = forward_start.elapsed();

    // Reverse pass: decode each step's super-block group newest-first and
    // feed N adjoint cursors concurrently. Going end-to-end through the
    // serialized stream keeps the wire path honest.
    let adjoint_start = Instant::now();
    let index = SuperTensorIndex::parse(&super_tensor)?;
    let mut metas = Vec::with_capacity(n_inst);
    let mut systems = Vec::with_capacity(n_inst);
    for inst in insts {
        metas.push(inst.meta);
        systems.push(inst.system);
    }
    let mut rev: Vec<ReverseInst> = Vec::with_capacity(n_inst);
    for (k, system) in systems.into_iter().enumerate() {
        // Instance 0 gets a fresh workspace — exactly what a single run's
        // adjoint does, keeping it bit-comparable; the rest reuse the
        // forward pass's shared symbolic.
        let lu = match (&shared_symbolic, k) {
            (Some(sym), k) if k > 0 => LuWorkspace::with_symbolic(sym.clone()),
            _ => LuWorkspace::new(),
        };
        let cursor = AdjointCursor::with_workspace(
            &circuits[k],
            &system,
            &metas[k],
            &plan.objectives,
            &plan.params,
            lu,
        );
        rev.push(ReverseInst { cursor, system });
    }
    let mut g_chain = BackwardDecompressor::chained(&g_pattern, g_maps.clone(), plan.masc.clone());
    let mut c_chain = BackwardDecompressor::chained(&c_pattern, c_maps.clone(), plan.masc.clone());
    for t in (0..n_blocks).rev() {
        let decode_start = Instant::now();
        let mut gs = Vec::with_capacity(n_inst);
        let mut cs = Vec::with_capacity(n_inst);
        gs.push(g_chain.decode_block(index.g_block(&super_tensor, t, 0)?)?);
        cs.push(c_chain.decode_block(index.c_block(&super_tensor, t, 0)?)?);
        for k in 1..n_inst {
            let g = decode_block(
                index.g_block(&super_tensor, t, k)?,
                &gs[k - 1],
                &g_maps,
                &plan.masc,
            )?;
            gs.push(g);
            let c = decode_block(
                index.c_block(&super_tensor, t, k)?,
                &cs[k - 1],
                &c_maps,
                &plan.masc,
            )?;
            cs.push(c);
        }
        let mats = gs
            .into_iter()
            .zip(cs)
            .map(|(g, c)| Some(StepMatrices::Stored { g, c }));
        let mut items: Vec<(&mut ReverseInst, Option<StepMatrices>)> =
            rev.iter_mut().zip(mats).collect();
        serial_time += decode_start.elapsed();
        wave(&mut items, 0, workers, &|k, (inst, mat)| {
            let matrices = mat
                .take()
                .ok_or(SweepError::Internal("step matrices consumed twice"))?;
            inst.cursor
                .offer(&mut inst.system, t, matrices)
                .map_err(|source| SweepError::Adjoint {
                    instance: k,
                    source,
                })
        })?;
    }
    let mut sensitivities = Vec::with_capacity(n_inst);
    let mut objective_values = Vec::with_capacity(n_inst);
    for (inst, meta) in rev.into_iter().zip(&metas) {
        objective_values.push(
            plan.objectives
                .iter()
                .map(|o| o.value(&meta.states, &meta.hs))
                .collect(),
        );
        sensitivities.push(inst.cursor.finish());
    }
    let adjoint_time = adjoint_start.elapsed();

    let stats = SweepStats {
        instances: n_inst,
        steps: step,
        forward_time,
        adjoint_time,
        serial_time,
        total_time: run_start.elapsed(),
        super_tensor_bytes: super_tensor.len(),
        raw_bytes: n_inst * n_blocks * (g_pattern.nnz() + c_pattern.nnz()) * 8,
    };
    Ok(SweepResult {
        sensitivities,
        objective_values,
        metas,
        super_tensor,
        stats,
    })
}
