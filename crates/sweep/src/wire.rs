//! Super-tensor wire format: one framed stream holding every instance's
//! compressed `G`/`C` blocks for a whole sweep.
//!
//! A sweep of `N` parameter variants over `T + 1` timesteps (DC included)
//! produces, per timestep, one *super-block group*: instance 0's block from
//! the ordinary temporal chain (seeded at the newest step, exactly as a
//! single-run tensor) and instances `1..N` as era-3 cross-instance blocks,
//! each encoded against instance `k − 1`'s raw values at the same step.
//! This module only frames those blocks; the block payloads themselves are
//! `masc-compress` streams.
//!
//! ```text
//! [u8 version = 1]
//! [varint n_instances] [varint n_blocks] [varint g_nnz] [varint c_nnz]
//! for t in 0..n_blocks:
//!     for k in 0..n_instances: [varint len] [G block bytes]
//!     for k in 0..n_instances: [varint len] [C block bytes]
//! ```
//!
//! The decode path is panic-free and every allocation sized by decoded
//! data is bounded (`masc-lint` rules R1/R2 gate this file): the block
//! table claim is validated against the physical stream length — every
//! block costs at least its one-byte length prefix, so a table larger than
//! the stream is structurally impossible and rejected before allocation.

use core::fmt;
use masc_bitio::bounded::{self, AllocBoundError};
use masc_bitio::varint;

/// Current wire version; bumped on any layout change.
pub const WIRE_VERSION: u8 = 1;

/// The fixed-shape parameters of a super-tensor stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuperTensorHeader {
    /// Sweep instances (parameter variants), `>= 1`.
    pub n_instances: usize,
    /// Timesteps stored, DC point included.
    pub n_blocks: usize,
    /// Non-zeros of the `G` sub-pattern (block payload sanity check).
    pub g_nnz: usize,
    /// Non-zeros of the `C` sub-pattern.
    pub c_nnz: usize,
}

/// Errors from super-tensor framing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The stream ended before the framing said it would.
    Truncated,
    /// The stream is internally inconsistent.
    Corrupt(&'static str),
    /// A decoded size claim exceeded its hard limit.
    Alloc(AllocBoundError),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "super-tensor stream truncated"),
            WireError::Corrupt(what) => write!(f, "super-tensor stream corrupt: {what}"),
            WireError::Alloc(e) => write!(f, "super-tensor stream corrupt: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<AllocBoundError> for WireError {
    fn from(e: AllocBoundError) -> Self {
        WireError::Alloc(e)
    }
}

impl From<masc_bitio::varint::VarintError> for WireError {
    fn from(e: masc_bitio::varint::VarintError) -> Self {
        match e {
            masc_bitio::varint::VarintError::Truncated => WireError::Truncated,
            masc_bitio::varint::VarintError::Overflow => WireError::Corrupt("varint overflow"),
        }
    }
}

/// Serializes a super-tensor. `g_blocks[t][k]` / `c_blocks[t][k]` hold the
/// compressed block of instance `k` at step `t`; the tables must be
/// rectangular and match the header's shape.
///
/// # Errors
///
/// Returns [`WireError::Corrupt`] if a table's shape disagrees with the
/// header.
pub fn encode_super_tensor(
    header: &SuperTensorHeader,
    g_blocks: &[Vec<Vec<u8>>],
    c_blocks: &[Vec<Vec<u8>>],
) -> Result<Vec<u8>, WireError> {
    if g_blocks.len() != header.n_blocks || c_blocks.len() != header.n_blocks {
        return Err(WireError::Corrupt("block table height != n_blocks"));
    }
    let payload: usize = g_blocks
        .iter()
        .chain(c_blocks)
        .flat_map(|row| row.iter().map(Vec::len))
        .sum();
    let mut out = Vec::with_capacity(payload + 16 * header.n_blocks + 16);
    out.push(WIRE_VERSION);
    varint::write_u64(&mut out, header.n_instances as u64);
    varint::write_u64(&mut out, header.n_blocks as u64);
    varint::write_u64(&mut out, header.g_nnz as u64);
    varint::write_u64(&mut out, header.c_nnz as u64);
    for (g_row, c_row) in g_blocks.iter().zip(c_blocks) {
        if g_row.len() != header.n_instances || c_row.len() != header.n_instances {
            return Err(WireError::Corrupt("block table width != n_instances"));
        }
        for block in g_row.iter().chain(c_row) {
            varint::write_u64(&mut out, block.len() as u64);
            out.extend_from_slice(block);
        }
    }
    Ok(out)
}

/// Parsed block offsets of a super-tensor stream. The index borrows
/// nothing: block payloads are looked up against the original byte slice
/// via [`g_block`](Self::g_block)/[`c_block`](Self::c_block), so a reverse
/// pass can hold one index while streaming through the bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuperTensorIndex {
    header: SuperTensorHeader,
    /// `(offset, len)` of block `[t * n_instances + k]`.
    g: Vec<(usize, usize)>,
    c: Vec<(usize, usize)>,
}

impl SuperTensorIndex {
    /// Parses the framing of `bytes`, validating every offset against the
    /// physical stream length.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncation, unknown version, impossible
    /// shape claims, or trailing garbage.
    pub fn parse(bytes: &[u8]) -> Result<Self, WireError> {
        let version = *bytes.first().ok_or(WireError::Truncated)?;
        if version != WIRE_VERSION {
            return Err(WireError::Corrupt("unknown super-tensor version"));
        }
        let mut pos = 1usize;
        let read = |pos: &mut usize| -> Result<u64, WireError> {
            let (v, used) = varint::read_u64(bytes.get(*pos..).ok_or(WireError::Truncated)?)?;
            *pos += used;
            Ok(v)
        };
        let n_instances = read(&mut pos)? as usize;
        let n_blocks = read(&mut pos)? as usize;
        let g_nnz = read(&mut pos)? as usize;
        let c_nnz = read(&mut pos)? as usize;
        if n_instances == 0 {
            return Err(WireError::Corrupt("zero-instance super-tensor"));
        }
        // Every block costs at least its one-byte length prefix, so a
        // table wider than the remaining stream is a hostile claim.
        let per_tensor = n_blocks
            .checked_mul(n_instances)
            .ok_or(WireError::Corrupt("block table size overflow"))?;
        let entries = per_tensor
            .checked_mul(2)
            .ok_or(WireError::Corrupt("block table size overflow"))?;
        bounded::check_claim("super-tensor block table", entries, bytes.len())?;
        let mut g: Vec<(usize, usize)> =
            bounded::bounded_capacity("super-tensor G table", per_tensor, bytes.len())?;
        let mut c: Vec<(usize, usize)> =
            bounded::bounded_capacity("super-tensor C table", per_tensor, bytes.len())?;
        for _ in 0..n_blocks {
            for table in [&mut g, &mut c] {
                for _ in 0..n_instances {
                    let len = read(&mut pos)? as usize;
                    let end = pos.checked_add(len).ok_or(WireError::Truncated)?;
                    if end > bytes.len() {
                        return Err(WireError::Truncated);
                    }
                    table.push((pos, len));
                    pos = end;
                }
            }
        }
        if pos != bytes.len() {
            return Err(WireError::Corrupt("trailing bytes after super-tensor"));
        }
        Ok(Self {
            header: SuperTensorHeader {
                n_instances,
                n_blocks,
                g_nnz,
                c_nnz,
            },
            g,
            c,
        })
    }

    /// The stream's shape.
    pub fn header(&self) -> &SuperTensorHeader {
        &self.header
    }

    fn slot(
        &self,
        table: &[(usize, usize)],
        t: usize,
        k: usize,
    ) -> Result<(usize, usize), WireError> {
        if k >= self.header.n_instances {
            return Err(WireError::Corrupt("instance index out of range"));
        }
        let idx = t
            .checked_mul(self.header.n_instances)
            .and_then(|base| base.checked_add(k))
            .ok_or(WireError::Corrupt("block index overflow"))?;
        table
            .get(idx)
            .copied()
            .ok_or(WireError::Corrupt("step index out of range"))
    }

    fn block<'a>(
        &self,
        bytes: &'a [u8],
        table: &[(usize, usize)],
        t: usize,
        k: usize,
    ) -> Result<&'a [u8], WireError> {
        let (offset, len) = self.slot(table, t, k)?;
        let end = offset.checked_add(len).ok_or(WireError::Truncated)?;
        bytes.get(offset..end).ok_or(WireError::Truncated)
    }

    /// Instance `k`'s `G` block at step `t` within `bytes` (the same slice
    /// [`parse`](Self::parse) indexed).
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] if `t`/`k` are out of range or the slice is
    /// shorter than the one that was parsed.
    pub fn g_block<'a>(&self, bytes: &'a [u8], t: usize, k: usize) -> Result<&'a [u8], WireError> {
        self.block(bytes, &self.g, t, k)
    }

    /// Instance `k`'s `C` block at step `t` within `bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] if `t`/`k` are out of range or the slice is
    /// shorter than the one that was parsed.
    pub fn c_block<'a>(&self, bytes: &'a [u8], t: usize, k: usize) -> Result<&'a [u8], WireError> {
        self.block(bytes, &self.c, t, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `table[t][k]` = one instance's block bytes.
    type BlockTable = Vec<Vec<Vec<u8>>>;

    fn sample() -> (SuperTensorHeader, BlockTable, BlockTable) {
        let header = SuperTensorHeader {
            n_instances: 3,
            n_blocks: 2,
            g_nnz: 5,
            c_nnz: 2,
        };
        let g = vec![
            vec![vec![1, 2, 3], vec![4], vec![]],
            vec![vec![5, 6], vec![7], vec![8, 9, 10, 11]],
        ];
        let c = vec![
            vec![vec![12], vec![], vec![13, 14]],
            vec![vec![], vec![15], vec![16]],
        ];
        (header, g, c)
    }

    #[test]
    fn round_trip_every_block() {
        let (header, g, c) = sample();
        let bytes = encode_super_tensor(&header, &g, &c).unwrap();
        let index = SuperTensorIndex::parse(&bytes).unwrap();
        assert_eq!(*index.header(), header);
        for t in 0..header.n_blocks {
            for k in 0..header.n_instances {
                assert_eq!(index.g_block(&bytes, t, k).unwrap(), g[t][k].as_slice());
                assert_eq!(index.c_block(&bytes, t, k).unwrap(), c[t][k].as_slice());
            }
        }
    }

    #[test]
    fn out_of_range_lookups_error() {
        let (header, g, c) = sample();
        let bytes = encode_super_tensor(&header, &g, &c).unwrap();
        let index = SuperTensorIndex::parse(&bytes).unwrap();
        assert!(index.g_block(&bytes, 2, 0).is_err());
        assert!(index.c_block(&bytes, 0, 3).is_err());
    }

    #[test]
    fn ragged_tables_rejected() {
        let (header, mut g, c) = sample();
        g[1].pop();
        assert_eq!(
            encode_super_tensor(&header, &g, &c),
            Err(WireError::Corrupt("block table width != n_instances"))
        );
        let (header, g, mut c) = sample();
        c.pop();
        assert_eq!(
            encode_super_tensor(&header, &g, &c),
            Err(WireError::Corrupt("block table height != n_blocks"))
        );
    }

    #[test]
    fn unknown_version_rejected() {
        let (header, g, c) = sample();
        let mut bytes = encode_super_tensor(&header, &g, &c).unwrap();
        bytes[0] = 99;
        assert_eq!(
            SuperTensorIndex::parse(&bytes),
            Err(WireError::Corrupt("unknown super-tensor version"))
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let (header, g, c) = sample();
        let mut bytes = encode_super_tensor(&header, &g, &c).unwrap();
        bytes.push(0);
        assert_eq!(
            SuperTensorIndex::parse(&bytes),
            Err(WireError::Corrupt("trailing bytes after super-tensor"))
        );
    }

    #[test]
    fn hostile_shape_claims_bounded() {
        // A tiny stream claiming a gigantic block table must fail the
        // claim check, not abort inside the allocator.
        let mut bytes = vec![WIRE_VERSION];
        varint::write_u64(&mut bytes, u64::from(u32::MAX)); // n_instances
        varint::write_u64(&mut bytes, u64::from(u32::MAX)); // n_blocks
        varint::write_u64(&mut bytes, 5);
        varint::write_u64(&mut bytes, 2);
        assert!(matches!(
            SuperTensorIndex::parse(&bytes),
            Err(WireError::Alloc(_) | WireError::Corrupt(_))
        ));
    }

    #[test]
    fn every_truncation_is_an_error_not_a_panic() {
        let (header, g, c) = sample();
        let bytes = encode_super_tensor(&header, &g, &c).unwrap();
        for cut in 0..bytes.len() {
            assert!(SuperTensorIndex::parse(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn every_single_byte_flip_errors_or_parses() {
        let (header, g, c) = sample();
        let bytes = encode_super_tensor(&header, &g, &c).unwrap();
        for i in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0xFF;
            // Either a structured error or a consistent (re-framed) parse;
            // never a panic or unbounded allocation.
            let _ = SuperTensorIndex::parse(&mutated);
        }
    }

    #[test]
    fn zero_instance_stream_rejected() {
        let mut bytes = vec![WIRE_VERSION];
        varint::write_u64(&mut bytes, 0);
        varint::write_u64(&mut bytes, 1);
        varint::write_u64(&mut bytes, 5);
        varint::write_u64(&mut bytes, 2);
        assert_eq!(
            SuperTensorIndex::parse(&bytes),
            Err(WireError::Corrupt("zero-instance super-tensor"))
        );
    }
}
