//! Paper Fig. 6: selection rates of the three prediction models
//! (temporal, matrix-stamp spatial, last-value) per dataset.

use crate::render_table;
use masc_compress::{CompressStats, MascConfig, ModelClass, TensorCompressor};
use masc_datasets::registry::table2_datasets;
use masc_datasets::Dataset;

/// Selection rates for one dataset.
#[derive(Debug, Clone)]
pub struct Rates {
    /// Dataset name.
    pub name: String,
    /// Temporal-model selection rate.
    pub temporal: f64,
    /// Stamp-based spatial model selection rate.
    pub stamp: f64,
    /// Last-value model selection rate.
    pub last_value: f64,
}

/// Computes best-fit selection rates for one dataset.
pub fn rates_for(dataset: &Dataset) -> Rates {
    let config = MascConfig::default().with_markov(false);
    let mut stats = CompressStats::new();
    for (pattern, series) in [
        (&dataset.g_pattern, &dataset.g_series),
        (&dataset.c_pattern, &dataset.c_series),
    ] {
        let mut tc = TensorCompressor::new(pattern.clone(), config.clone());
        for m in series.iter() {
            tc.push(m);
        }
        stats.merge(tc.finish().stats());
    }
    Rates {
        name: dataset.name.clone(),
        temporal: stats.selection_rate(ModelClass::Temporal),
        stamp: stats.selection_rate(ModelClass::Stamp),
        last_value: stats.selection_rate(ModelClass::LastValue),
    }
}

/// Shared on-disk dataset cache for the experiment binaries.
fn dataset_cache_dir() -> std::path::PathBuf {
    std::env::temp_dir().join("masc-dataset-cache")
}

/// Runs Fig. 6 at the given scale.
pub fn run(scale: f64) -> Vec<Rates> {
    table2_datasets()
        .iter()
        .map(|spec| rates_for(&spec.generate_cached(scale, &dataset_cache_dir())))
        .collect()
}

/// Renders the rates.
pub fn render(rates: &[Rates]) -> String {
    let data: Vec<Vec<String>> = rates
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:.1}%", r.temporal * 100.0),
                format!("{:.1}%", r.stamp * 100.0),
                format!("{:.1}%", r.last_value * 100.0),
            ]
        })
        .collect();
    render_table(&["Dataset", "Temporal", "MatrixStamp", "LastValue"], &data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_sum_to_one_and_temporal_dominates_smooth_data() {
        let spec = &table2_datasets()[0];
        let dataset = spec.generate(0.12).unwrap();
        let r = rates_for(&dataset);
        let total = r.temporal + r.stamp + r.last_value;
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
        // Temporally smooth Jacobians: the temporal model leads
        // (paper: ">60% in certain datasets").
        assert!(
            r.temporal > r.last_value,
            "temporal {} vs last_value {}",
            r.temporal,
            r.last_value
        );
    }

    #[test]
    fn render_all() {
        let spec = &table2_datasets()[1];
        let r = rates_for(&spec.generate(0.08).unwrap());
        let text = render(&[r]);
        assert!(text.contains("smult20"));
        assert!(text.contains("MatrixStamp"));
    }
}
