//! Paper Table 2: dataset inventory — element counts, step counts, raw
//! CSR/non-zero sizes, and the general-purpose (GZIP-style) compressor's
//! ratio and time on each dataset.

use crate::render_table;
use masc_baselines::{Compressor, GzipLike};
use masc_datasets::registry::table2_datasets;
use masc_datasets::Dataset;
use std::time::Instant;

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct Row {
    /// Dataset name.
    pub name: String,
    /// Circuit element count (`#CirElem`).
    pub elements: usize,
    /// Time points (`#Steps`).
    pub steps: usize,
    /// Full CSR bytes (`S_CSR`).
    pub s_csr: usize,
    /// Non-zero value bytes (`S_NZ`).
    pub s_nz: usize,
    /// GZIP-style compression ratio on the value stream.
    pub gzip_cr: f64,
    /// GZIP-style compression time (s).
    pub gzip_time_s: f64,
}

/// Builds a row from an already-generated dataset.
pub fn row_for(dataset: &Dataset) -> Row {
    let stream = dataset.value_stream();
    let gzip = GzipLike::new();
    let start = Instant::now();
    let packed = gzip.compress(&stream);
    let gzip_time_s = start.elapsed().as_secs_f64();
    Row {
        name: dataset.name.clone(),
        elements: dataset.elements,
        steps: dataset.steps(),
        s_csr: dataset.s_csr_bytes(),
        s_nz: dataset.s_nz_bytes(),
        gzip_cr: dataset.s_nz_bytes() as f64 / packed.len() as f64,
        gzip_time_s,
    }
}

/// Shared on-disk dataset cache for the experiment binaries.
fn dataset_cache_dir() -> std::path::PathBuf {
    std::env::temp_dir().join("masc-dataset-cache")
}

/// Runs the Table 2 experiment at the given scale.
pub fn run(scale: f64) -> Vec<Row> {
    table2_datasets()
        .iter()
        .map(|spec| {
            let dataset = spec.generate_cached(scale, &dataset_cache_dir());
            row_for(&dataset)
        })
        .collect()
}

/// Renders the rows in the paper's column layout.
pub fn render(rows: &[Row]) -> String {
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.elements.to_string(),
                r.steps.to_string(),
                format!("{:.2}", r.s_csr as f64 / 1e6),
                format!("{:.2}", r.s_nz as f64 / 1e6),
                format!("{:.2}", r.gzip_cr),
                format!("{:.2}s", r.gzip_time_s),
            ]
        })
        .collect();
    render_table(
        &[
            "Dataset",
            "#CirElem",
            "#Steps",
            "S_CSR(MB)",
            "S_NZ(MB)",
            "CR(gzip)",
            "T_comp(gzip)",
        ],
        &data,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_seven_rows_at_tiny_scale() {
        let rows = run(0.08);
        assert_eq!(rows.len(), 7);
        for r in &rows {
            assert!(r.s_csr > r.s_nz, "{}", r.name);
            assert!(r.gzip_cr > 1.0, "{}: gzip CR {}", r.name, r.gzip_cr);
        }
        let text = render(&rows);
        assert!(text.contains("mem_plus"));
    }
}
