//! Paper Table 3: compression ratio and (de)compression time for every
//! compressor on every dataset — the headline comparison.
//!
//! MASC runs the pattern-aware tensor path (two [`TensorCompressor`]s over
//! the shared pattern); the baselines compress the flat non-zero stream,
//! exactly the asymmetry of the paper's setup.

use crate::render_table;
use masc_baselines::{ChimpLike, Compressor, FpzipLike, GzipLike, NdzipLike, SpiceMate};
use masc_compress::{CompressedTensor, MascConfig, TensorCompressor};
use masc_datasets::registry::table2_datasets;
use masc_datasets::Dataset;
use std::time::Instant;

/// A (compressor × dataset) measurement.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Compression ratio vs `S_NZ`.
    pub ratio: f64,
    /// Compression time (s).
    pub comp_s: f64,
    /// Decompression time (s).
    pub decomp_s: f64,
}

/// One dataset's full comparison row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Dataset name.
    pub name: String,
    /// Per-compressor cells, keyed by compressor name.
    pub cells: Vec<(String, Cell)>,
}

/// Shared on-disk dataset cache for the experiment binaries.
fn dataset_cache_dir() -> std::path::PathBuf {
    std::env::temp_dir().join("masc-dataset-cache")
}

/// Runs MASC's tensor path over a dataset and returns the measurement.
pub fn masc_cell(dataset: &Dataset, config: &MascConfig) -> Cell {
    let start = Instant::now();
    let compress_series =
        |pattern: &std::sync::Arc<masc_sparse::Pattern>, series: &[Vec<f64>]| -> CompressedTensor {
            let mut tc = TensorCompressor::new(pattern.clone(), config.clone());
            for m in series {
                tc.push(m);
            }
            tc.finish()
        };
    let g = compress_series(&dataset.g_pattern, &dataset.g_series);
    let c = compress_series(&dataset.c_pattern, &dataset.c_series);
    let comp_s = start.elapsed().as_secs_f64();
    let compressed = g.compressed_bytes() + c.compressed_bytes();
    let ratio = dataset.s_nz_bytes() as f64 / compressed as f64;
    let start = Instant::now();
    let decode = |tensor: CompressedTensor, series: &[Vec<f64>]| {
        let mut back = tensor.into_backward();
        let mut step = series.len();
        while let Some((s, values)) = back.next_matrix().expect("lossless round trip") {
            step -= 1;
            debug_assert_eq!(s, step);
            debug_assert_eq!(values, series[s], "MASC must be lossless");
        }
    };
    decode(g, &dataset.g_series);
    decode(c, &dataset.c_series);
    let decomp_s = start.elapsed().as_secs_f64();
    Cell {
        ratio,
        comp_s,
        decomp_s,
    }
}

/// Runs one baseline over a dataset's value stream.
pub fn baseline_cell(dataset: &Dataset, compressor: &dyn Compressor) -> Cell {
    let stream = dataset.value_stream();
    let start = Instant::now();
    let packed = compressor.compress(&stream);
    let comp_s = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let out = compressor.decompress(&packed).expect("valid stream");
    let decomp_s = start.elapsed().as_secs_f64();
    assert_eq!(out.len(), stream.len());
    Cell {
        ratio: dataset.s_nz_bytes() as f64 / packed.len() as f64,
        comp_s,
        decomp_s,
    }
}

/// The baselines exactly as the paper runs them: FPZIP is told the tensor
/// shape (rows = timesteps); the rest see the flat stream.
pub fn dataset_baselines(dataset: &Dataset) -> Vec<Box<dyn Compressor>> {
    vec![
        Box::new(GzipLike::new()),
        Box::new(FpzipLike::with_row_len(dataset.nnz_per_step())),
        Box::new(NdzipLike::new()),
        Box::new(SpiceMate::new(1e-6)),
        Box::new(ChimpLike::new()),
    ]
}

/// Runs the full Table 3 comparison for one dataset.
pub fn row_for(dataset: &Dataset) -> Row {
    let mut cells = Vec::new();
    for baseline in dataset_baselines(dataset) {
        cells.push((
            baseline.name().to_string(),
            baseline_cell(dataset, baseline.as_ref()),
        ));
    }
    cells.push((
        "MASC w/o Markov".to_string(),
        masc_cell(dataset, &MascConfig::default().with_markov(false)),
    ));
    cells.push((
        "MASC w/ Markov".to_string(),
        masc_cell(dataset, &MascConfig::default()),
    ));
    Row {
        name: dataset.name.clone(),
        cells,
    }
}

/// Runs Table 3 at the given scale.
pub fn run(scale: f64) -> Vec<Row> {
    table2_datasets()
        .iter()
        .map(|spec| {
            let t0 = std::time::Instant::now();
            let dataset = spec.generate_cached(scale, &dataset_cache_dir());
            eprintln!(
                "  {}: generated in {:.1}s ({} steps × {} nnz, {:.1} MB)",
                spec.name,
                t0.elapsed().as_secs_f64(),
                dataset.steps(),
                dataset.nnz_per_step(),
                dataset.s_nz_bytes() as f64 / 1e6
            );
            let t0 = std::time::Instant::now();
            let row = row_for(&dataset);
            eprintln!(
                "  {}: compressors done in {:.1}s",
                spec.name,
                t0.elapsed().as_secs_f64()
            );
            row
        })
        .collect()
}

/// Average ratio per compressor across rows (the paper's "Average" line).
pub fn averages(rows: &[Row]) -> Vec<(String, f64)> {
    if rows.is_empty() {
        return Vec::new();
    }
    let names: Vec<String> = rows[0].cells.iter().map(|(n, _)| n.clone()).collect();
    names
        .into_iter()
        .enumerate()
        .map(|(i, name)| {
            let avg = rows.iter().map(|r| r.cells[i].1.ratio).sum::<f64>() / rows.len() as f64;
            (name, avg)
        })
        .collect()
}

/// Renders rows + averages in the paper's layout.
pub fn render(rows: &[Row]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let mut headers: Vec<String> = vec!["Dataset".to_string()];
    for (name, _) in &rows[0].cells {
        headers.push(format!("{name} CR"));
        headers.push("Tc(s)".to_string());
        headers.push("Td(s)".to_string());
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut data = Vec::new();
    for row in rows {
        let mut cells = vec![row.name.clone()];
        for (_, cell) in &row.cells {
            cells.push(format!("{:.2}", cell.ratio));
            cells.push(format!("{:.3}", cell.comp_s));
            cells.push(format!("{:.3}", cell.decomp_s));
        }
        data.push(cells);
    }
    let mut avg_row = vec!["Average".to_string()];
    for (_, avg) in averages(rows) {
        avg_row.push(format!("{avg:.2}"));
        avg_row.push(String::new());
        avg_row.push(String::new());
    }
    data.push(avg_row);
    render_table(&header_refs, &data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_dataset_full_comparison() {
        let spec = &table2_datasets()[0];
        let dataset = spec.generate(0.1).unwrap();
        let row = row_for(&dataset);
        assert_eq!(row.cells.len(), 7);
        for (name, cell) in &row.cells {
            assert!(cell.ratio > 0.5, "{name}: ratio {}", cell.ratio);
        }
        // MASC (pattern-aware) must beat the pattern-blind NDZIP-style
        // baseline, which the paper measures near 1×.
        let masc = row
            .cells
            .iter()
            .find(|(n, _)| n == "MASC w/o Markov")
            .unwrap();
        let ndzip = row.cells.iter().find(|(n, _)| n == "NdzipLike").unwrap();
        assert!(
            masc.1.ratio > ndzip.1.ratio,
            "MASC {} vs NdzipLike {}",
            masc.1.ratio,
            ndzip.1.ratio
        );
    }

    #[test]
    fn averages_cover_all_compressors() {
        let spec = &table2_datasets()[4]; // a MOS chain
        let dataset = spec.generate(0.08).unwrap();
        let rows = vec![row_for(&dataset)];
        let avgs = averages(&rows);
        assert_eq!(avgs.len(), 7);
        let text = render(&rows);
        assert!(text.contains("Average"));
        assert!(text.contains("MASC w/ Markov"));
    }
}
