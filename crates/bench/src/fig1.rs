//! Paper Fig. 1: memory cost of storing Jacobians as circuit size grows.
//!
//! Sweeps a circuit family over sizes and reports, per size, the raw CSR
//! cost, the shared-indices cost (values + one index set), and the
//! MASC-compressed cost — the three storage regimes the paper's motivation
//! section contrasts.

use crate::render_table;
use masc_adjoint::{CompressedStore, JacobianStore};
use masc_compress::MascConfig;
use masc_datasets::registry::{DatasetSpec, Family};

/// One point of the Fig. 1 sweep.
#[derive(Debug, Clone)]
pub struct Point {
    /// Element count of this size step.
    pub elements: usize,
    /// Unknown count.
    pub unknowns: usize,
    /// Steps stored.
    pub steps: usize,
    /// Raw CSR bytes (per-step indices + values, both tensors).
    pub raw_csr: usize,
    /// Shared-indices bytes (one index set + raw values).
    pub shared_indices: usize,
    /// MASC-compressed bytes (plus the one shared index set).
    pub compressed: usize,
}

/// Runs the sweep over `sizes` (in family size units).
pub fn run(sizes: &[usize], steps: usize) -> Vec<Point> {
    let mut out = Vec::new();
    for &size in sizes {
        let spec = DatasetSpec {
            name: "fig1",
            family: Family::MosChain,
            size,
            steps,
        };
        let dataset = spec.generate(1.0).expect("sweep sizes generate");
        // Drive the adjoint crate's compressed store through the
        // JacobianStore trait; its unified StoreMetrics reports the
        // committed compressed payload.
        let mut store: Box<dyn JacobianStore> = Box::new(CompressedStore::new(
            dataset.g_pattern.clone(),
            dataset.c_pattern.clone(),
            MascConfig::default(),
        ));
        for (step, (g, c)) in dataset.g_series.iter().zip(&dataset.c_series).enumerate() {
            store
                .put(step, g, c)
                .expect("in-memory compression is infallible");
        }
        let reader = store
            .finish()
            .expect("sealing an in-memory store is infallible");
        let compressed_values = reader.metrics().bytes_written as usize;
        let index_bytes = dataset.g_pattern.index_bytes() + dataset.c_pattern.index_bytes();
        out.push(Point {
            elements: dataset.elements,
            unknowns: dataset.g_pattern.rows(),
            steps: dataset.steps(),
            raw_csr: dataset.s_csr_bytes(),
            shared_indices: dataset.s_nz_bytes() + index_bytes,
            compressed: compressed_values + index_bytes,
        });
    }
    out
}

/// Renders the sweep as a table (one row per size).
pub fn render(points: &[Point]) -> String {
    let data: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.elements.to_string(),
                p.unknowns.to_string(),
                p.steps.to_string(),
                format!("{:.2}", p.raw_csr as f64 / 1e6),
                format!("{:.2}", p.shared_indices as f64 / 1e6),
                format!("{:.3}", p.compressed as f64 / 1e6),
                format!("{:.1}x", p.raw_csr as f64 / p.compressed as f64),
            ]
        })
        .collect();
    render_table(
        &[
            "#Elem",
            "#Unk",
            "#Steps",
            "CSR(MB)",
            "Shared(MB)",
            "MASC(MB)",
            "Reduction",
        ],
        &data,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_grows_with_size_and_compression_wins() {
        let points = run(&[10, 30], 40);
        assert_eq!(points.len(), 2);
        assert!(points[1].raw_csr > points[0].raw_csr);
        for p in &points {
            assert!(p.shared_indices < p.raw_csr);
            assert!(p.compressed < p.shared_indices);
        }
        let text = render(&points);
        assert!(text.contains("Reduction"));
    }
}
