//! Paper Table 1: transient vs adjoint-sensitivity time and the fraction
//! spent computing Jacobians.
//!
//! Runs each circuit's transient (plain) and its recompute-mode adjoint
//! sensitivity (the Xyce-like baseline that re-evaluates devices during
//! the reverse pass), reporting `T_Sens/T_Tran` and `T_Jac/T_Sens` —
//! plus, as the counterpoint the rest of the repo builds, the same
//! sensitivities through the asynchronous pipelined MASC store
//! (compression overlapped with the forward solve, prefetched reverse
//! pass) and its speedup over the baseline.

use crate::render_table;
use masc_adjoint::{run_adjoint, run_xyce_like, Objective, StoreConfig};
use masc_circuit::transient::{transient, NullSink};
use masc_compress::MascConfig;
use masc_datasets::registry::table1_circuits;

/// Model-evaluation effort surrogate: our textbook device models are far
/// cheaper than production model cards (BSIM, Gummel-Poon); this constant
/// is calibrated so `T_Jac/T_Sens` lands in the paper's 46–65 % band.
/// See `System::set_model_effort` and `DESIGN.md` §5.
pub const MODEL_EFFORT: u32 = 12;

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Row {
    /// Circuit name.
    pub name: String,
    /// Element type shorthand (BJT/MOS/RC).
    pub kind: &'static str,
    /// Element count.
    pub elements: usize,
    /// Sensitivity parameters used.
    pub params: usize,
    /// Objective functions used.
    pub objectives: usize,
    /// Transient steps.
    pub steps: usize,
    /// Transient wall time (s).
    pub tran_s: f64,
    /// Sensitivity (recompute-mode adjoint) wall time (s).
    pub sens_s: f64,
    /// `T_Sens / T_Tran`.
    pub ratio: f64,
    /// Fraction of sensitivity time spent on Jacobian recomputation.
    pub jac_fraction: f64,
    /// Sensitivity wall time through the pipelined MASC store (s).
    pub masc_s: f64,
    /// Baseline sensitivity time over the pipelined-MASC time.
    pub masc_speedup: f64,
}

/// Runs the Table 1 experiment at the given dataset scale.
pub fn run(scale: f64) -> Vec<Row> {
    let mut rows = Vec::new();
    for spec in table1_circuits() {
        let (mut circuit, tran) = spec.build_circuit(scale);
        circuit.set_model_effort(MODEL_EFFORT);
        let kind = match spec.family {
            masc_datasets::Family::BjtChain => "BJT",
            masc_datasets::Family::RcLadder | masc_datasets::Family::RcMesh => "RC",
            _ => "MOS",
        };
        // Parameters: every named device parameter — the paper sweeps
        // hundreds of per-element parameters (126–728 per circuit).
        let params = circuit.params();
        let n_unknowns = {
            let sys = circuit.elaborate().expect("elaborates");
            sys.n
        };
        // Objectives: the paper uses 8–52 per circuit; scale with size the
        // same way (one transpose solve each per reverse step).
        let n_obj = (params.len() / 12).clamp(4, 48).min(n_unknowns);
        let objectives: Vec<Objective> = (0..n_obj)
            .map(|i| Objective::Integral {
                unknown: i * n_unknowns / n_obj,
            })
            .collect();

        // Plain transient timing.
        let mut sys = circuit.elaborate().expect("elaborates");
        let tran_result =
            transient(&circuit, &mut sys, &tran, &mut NullSink).expect("transient runs");
        let tran_s = tran_result.stats.total_time.as_secs_f64();

        // Xyce-like sensitivity: one reverse sweep per objective, with
        // Jacobian recomputation on every sweep.
        let run = run_xyce_like(&mut circuit, &tran, &objectives, &params).expect("adjoint runs");
        let sens_s = run.sensitivities.stats.total_time.as_secs_f64();
        let jac_fraction = run.sensitivities.stats.recompute_time.as_secs_f64() / sens_s.max(1e-12);

        // The repo's answer to the table's motivating cost: one batched
        // reverse sweep over stored Jacobians, compressed off-thread.
        let masc = run_adjoint(
            &mut circuit,
            &tran,
            &StoreConfig::pipelined(StoreConfig::Compressed(MascConfig::default())),
            &objectives,
            &params,
        )
        .expect("pipelined adjoint runs");
        let masc_s = masc.sensitivities.stats.total_time.as_secs_f64();

        rows.push(Row {
            name: spec.name.to_string(),
            kind,
            elements: circuit.devices().len(),
            params: params.len(),
            objectives: objectives.len(),
            steps: tran_result.stats.steps,
            tran_s,
            sens_s,
            ratio: sens_s / tran_s.max(1e-12),
            jac_fraction,
            masc_s,
            masc_speedup: sens_s / masc_s.max(1e-12),
        });
    }
    rows
}

/// Renders the rows in the paper's column layout.
pub fn render(rows: &[Row]) -> String {
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.kind.to_string(),
                r.elements.to_string(),
                r.params.to_string(),
                r.objectives.to_string(),
                r.steps.to_string(),
                format!("{:.3}", r.tran_s),
                format!("{:.3}", r.sens_s),
                format!("{:.1}", r.ratio),
                format!("{:.1}%", r.jac_fraction * 100.0),
                format!("{:.3}", r.masc_s),
                format!("{:.1}x", r.masc_speedup),
            ]
        })
        .collect();
    render_table(
        &[
            "Circuit",
            "Type",
            "#Elem",
            "#Param",
            "#Obj",
            "#Steps",
            "Tran(s)",
            "Sens(s)",
            "Sens/Tran",
            "Jac/Sens",
            "MASC(s)",
            "vs Xyce",
        ],
        &data,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_scale_produces_all_rows() {
        let rows = run(0.06);
        assert_eq!(rows.len(), 13);
        for row in &rows {
            assert!(row.tran_s > 0.0, "{}", row.name);
            assert!(row.sens_s > 0.0, "{}", row.name);
            assert!(row.masc_s > 0.0, "{}", row.name);
            assert!(
                row.jac_fraction > 0.0 && row.jac_fraction < 1.0,
                "{}: {}",
                row.name,
                row.jac_fraction
            );
        }
        let text = render(&rows);
        assert!(text.contains("CHIP_01"));
        assert!(text.contains("RC_02"));
    }

    #[test]
    fn ratios_are_meaningful() {
        // Timing *shape* (Sens ≫ Tran at paper scales) is measured by the
        // release-mode `table1` binary; debug-mode unit tests only assert
        // the quantities are sane and the Jacobian fraction is substantial.
        let rows = run(0.08);
        for r in &rows {
            assert!(r.ratio > 0.1, "{}: ratio {}", r.name, r.ratio);
            assert!(r.params > 0 && r.objectives >= 4, "{}", r.name);
        }
        let substantial = rows.iter().filter(|r| r.jac_fraction > 0.03).count();
        assert!(
            substantial >= rows.len() / 2,
            "jacobian recomputation should be a visible cost: {:?}",
            rows.iter().map(|r| r.jac_fraction).collect::<Vec<_>>()
        );
    }
}
