//! Thread-scaling of the parallel compressor (paper §6.4: throughput
//! "peaking at around 16 threads", ~8× serial).
//!
//! On a single-core CI box the measured speedups are flat; the harness
//! still verifies correctness and reports per-thread throughput so the
//! numbers become meaningful on real multicore hardware.

use crate::render_table;
use masc_compress::{compress_matrix_parallel, decompress_matrix_parallel, MascConfig, StampMaps};
use masc_datasets::registry::{DatasetSpec, Family};
use std::time::Instant;

/// One thread-count measurement.
#[derive(Debug, Clone)]
pub struct Point {
    /// Worker threads.
    pub threads: usize,
    /// Compression throughput (MB/s of input).
    pub comp_mbps: f64,
    /// Decompression throughput (MB/s of output).
    pub decomp_mbps: f64,
}

/// Runs the sweep over the given thread counts.
pub fn run(thread_counts: &[usize]) -> Vec<Point> {
    let spec = DatasetSpec {
        name: "scaling",
        family: Family::MosChain,
        size: 120,
        steps: 12,
    };
    let dataset = spec.generate(1.0).expect("spec generates");
    let maps = StampMaps::new(&dataset.g_pattern);
    let mb = (dataset.g_series.len() * dataset.g_pattern.nnz() * 8) as f64 / 1e6;
    let mut out = Vec::new();
    for &threads in thread_counts {
        let config = MascConfig {
            threads,
            chunk_size: 1 << 12,
            ..MascConfig::default()
        };
        let start = Instant::now();
        let mut blocks = Vec::new();
        for pair in dataset.g_series.windows(2) {
            let (bytes, _) = compress_matrix_parallel(&pair[0], &pair[1], &maps, &config);
            blocks.push(bytes);
        }
        let comp_s = start.elapsed().as_secs_f64();
        let start = Instant::now();
        for (i, bytes) in blocks.iter().enumerate() {
            let values =
                decompress_matrix_parallel(bytes, &dataset.g_series[i + 1], &maps, &config)
                    .expect("round trip");
            debug_assert_eq!(&values, &dataset.g_series[i]);
        }
        let decomp_s = start.elapsed().as_secs_f64();
        out.push(Point {
            threads,
            comp_mbps: mb / comp_s.max(1e-9),
            decomp_mbps: mb / decomp_s.max(1e-9),
        });
    }
    out
}

/// Renders the sweep.
pub fn render(points: &[Point]) -> String {
    let base = points.first().map(|p| p.comp_mbps).unwrap_or(1.0);
    let data: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.threads.to_string(),
                format!("{:.1}", p.comp_mbps),
                format!("{:.1}", p.decomp_mbps),
                format!("{:.2}x", p.comp_mbps / base.max(1e-9)),
            ]
        })
        .collect();
    render_table(&["Threads", "Comp MB/s", "Decomp MB/s", "Speedup"], &data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_and_round_trips() {
        let points = run(&[1, 2]);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.comp_mbps > 0.0);
            assert!(p.decomp_mbps > 0.0);
        }
        let text = render(&points);
        assert!(text.contains("Threads"));
    }
}
