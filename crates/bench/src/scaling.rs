//! Thread-scaling of the parallel compressor (paper §6.4: throughput
//! "peaking at around 16 threads", ~8× serial).
//!
//! The era-2 codec's unit of work is the chunk: every chunk carries its
//! own header and substreams and encodes/decodes with no cross-chunk
//! state, so a sweep's wall clock is the *critical path* of the worker
//! schedule. This harness measures each chunk's real encode/decode cost
//! with [`profile_matrix`] and evaluates the exact schedule the codec
//! uses (strided: worker `t` takes chunks `t, t+T, t+2T, …`) — so the
//! reported speedups are machine-checked properties of the measured
//! per-chunk times, meaningful even on a single-core CI box where
//! wall-clock scaling is impossible by construction. A full wall-clock
//! round trip still runs at each thread count to pin correctness.

use crate::render_table;
use masc_compress::{
    compress_matrix_parallel, decompress_matrix_parallel, profile_matrix, MascConfig, StampMaps,
};
use masc_datasets::registry::{DatasetSpec, Family};
use std::time::Duration;

/// One thread-count measurement.
#[derive(Debug, Clone)]
pub struct Point {
    /// Worker threads.
    pub threads: usize,
    /// Modeled compression throughput (MB/s of input) on the measured
    /// per-chunk schedule.
    pub comp_mbps: f64,
    /// Modeled decompression throughput (MB/s of output).
    pub decomp_mbps: f64,
    /// Modeled compression speedup over the single-thread schedule.
    pub comp_speedup: f64,
    /// Modeled decompression speedup over the single-thread schedule.
    pub decomp_speedup: f64,
}

/// One full sweep: the per-thread points plus the workload's shape.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Per-thread-count results, in the order requested.
    pub points: Vec<Point>,
    /// Non-zeros per matrix.
    pub nnz: usize,
    /// Chunks per matrix under the sweep's chunk size.
    pub chunks: usize,
    /// Matrix pairs profiled.
    pub pairs: usize,
    /// Raw input megabytes across the sweep.
    pub input_mb: f64,
    /// Compressed output megabytes across the sweep.
    pub compressed_mb: f64,
}

/// The schedule the codec actually runs: strided assignment, worker `t`
/// takes chunks `t, t+T, t+2T, …`. The sweep's cost is the most loaded
/// worker plus the serial prologue/epilogue.
fn makespan(chunks: &[Duration], serial: Duration, threads: usize) -> Duration {
    if chunks.is_empty() {
        return serial;
    }
    let threads = threads.max(1).min(chunks.len());
    let critical = (0..threads)
        .map(|tid| chunks.iter().skip(tid).step_by(threads).sum::<Duration>())
        .max()
        .unwrap_or(Duration::ZERO);
    serial + critical
}

/// Runs the full sweep over the given thread counts.
pub fn run(thread_counts: &[usize]) -> Sweep {
    run_opts(thread_counts, usize::MAX, 3)
}

/// Runs the sweep profiling at most `max_pairs` matrix pairs with
/// `repeats` profiling passes per pair. Per-chunk times are the
/// element-wise minimum across passes: timer noise on a loaded box is
/// strictly additive, so the minimum is the stable estimate of the
/// chunk's real cost and keeps the schedule model reproducible.
pub fn run_opts(thread_counts: &[usize], max_pairs: usize, repeats: usize) -> Sweep {
    let spec = DatasetSpec {
        name: "scaling",
        family: Family::MosChain,
        size: 1200,
        steps: 12,
    };
    let dataset = spec.generate(1.0).expect("spec generates");
    let maps = StampMaps::new(&dataset.g_pattern);
    let nnz = dataset.g_pattern.nnz();
    // ~32 similar-cost chunks: enough parallel slack for every thread
    // count the sweep visits, large enough that per-chunk headers are
    // noise.
    let chunk_size = nnz.div_ceil(32).max(1);
    let pairs = dataset.g_series.len().saturating_sub(1).min(max_pairs);
    let mb = (pairs * nnz * 8) as f64 / 1e6;

    // Profile every matrix pair once: per-chunk encode/decode cost plus
    // the serial (header/assembly/scatter) overhead.
    let base = MascConfig {
        chunk_size,
        ..MascConfig::default()
    };
    let mut encode_chunks: Vec<Duration> = Vec::new();
    let mut decode_chunks: Vec<Duration> = Vec::new();
    let mut encode_serial = Duration::ZERO;
    let mut decode_serial = Duration::ZERO;
    let mut compressed = 0usize;
    let mut chunks = 0usize;
    for pair in dataset.g_series.windows(2).take(pairs) {
        let mut best: Option<masc_compress::MatrixProfile> = None;
        for _ in 0..repeats.max(1) {
            let profile =
                profile_matrix(&pair[0], &pair[1], &maps, &base).expect("fresh stream decodes");
            best = Some(match best {
                None => profile,
                Some(mut acc) => {
                    for (a, b) in acc.encode_chunk.iter_mut().zip(&profile.encode_chunk) {
                        *a = (*a).min(*b);
                    }
                    for (a, b) in acc.decode_chunk.iter_mut().zip(&profile.decode_chunk) {
                        *a = (*a).min(*b);
                    }
                    acc.encode_serial = acc.encode_serial.min(profile.encode_serial);
                    acc.decode_serial = acc.decode_serial.min(profile.decode_serial);
                    acc
                }
            });
        }
        let profile = best.expect("at least one profiling pass");
        chunks = profile.encode_chunk.len();
        encode_chunks.extend(profile.encode_chunk);
        decode_chunks.extend(profile.decode_chunk);
        encode_serial += profile.encode_serial;
        decode_serial += profile.decode_serial;
        compressed += profile.compressed_bytes;
    }

    // Schedule model is per matrix, so evaluate pair-by-pair and sum.
    let sweep_cost = |per_chunk: &[Duration], serial: Duration, threads: usize| -> f64 {
        let serial_each = serial / (pairs.max(1) as u32);
        per_chunk
            .chunks(chunks.max(1))
            .map(|matrix| makespan(matrix, serial_each, threads).as_secs_f64())
            .sum()
    };

    let comp_base = sweep_cost(&encode_chunks, encode_serial, 1);
    let decomp_base = sweep_cost(&decode_chunks, decode_serial, 1);
    let mut points = Vec::new();
    for &threads in thread_counts {
        // Wall-clock correctness pin: the real codec round-trips at this
        // thread count (the bytes are thread-invariant, so any schedule
        // bug shows up as a mismatch here).
        let config = MascConfig {
            threads,
            chunk_size,
            ..MascConfig::default()
        };
        for (i, pair) in dataset.g_series.windows(2).take(pairs).enumerate() {
            let (bytes, _) = compress_matrix_parallel(&pair[0], &pair[1], &maps, &config);
            let values =
                decompress_matrix_parallel(&bytes, &pair[1], &maps, &config).expect("round trip");
            assert!(
                values
                    .iter()
                    .zip(&dataset.g_series[i])
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "round trip mismatch at pair {i} with {threads} threads"
            );
        }
        let comp_s = sweep_cost(&encode_chunks, encode_serial, threads);
        let decomp_s = sweep_cost(&decode_chunks, decode_serial, threads);
        points.push(Point {
            threads,
            comp_mbps: mb / comp_s.max(1e-9),
            decomp_mbps: mb / decomp_s.max(1e-9),
            comp_speedup: comp_base / comp_s.max(1e-9),
            decomp_speedup: decomp_base / decomp_s.max(1e-9),
        });
    }
    Sweep {
        points,
        nnz,
        chunks,
        pairs,
        input_mb: mb,
        compressed_mb: compressed as f64 / 1e6,
    }
}

/// Renders the sweep as the human-readable results table.
pub fn render(sweep: &Sweep) -> String {
    let data: Vec<Vec<String>> = sweep
        .points
        .iter()
        .map(|p| {
            vec![
                p.threads.to_string(),
                format!("{:.1}", p.comp_mbps),
                format!("{:.1}", p.decomp_mbps),
                format!("{:.2}x", p.comp_speedup),
                format!("{:.2}x", p.decomp_speedup),
            ]
        })
        .collect();
    let mut out = render_table(
        &[
            "Threads",
            "Comp MB/s",
            "Decomp MB/s",
            "Comp speedup",
            "Decomp speedup",
        ],
        &data,
    );
    out.push_str(&format!(
        "({} pairs, nnz {}, {} chunks/matrix, {:.1} MB raw -> {:.2} MB compressed; \
         critical-path model over measured per-chunk times)\n",
        sweep.pairs, sweep.nnz, sweep.chunks, sweep.input_mb, sweep.compressed_mb
    ));
    out
}

/// Renders the sweep as the machine-readable `BENCH_scaling.json` payload.
pub fn render_json(sweep: &Sweep) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"dataset\": {{\"family\": \"mos-chain\", \"nnz\": {}, \"pairs\": {}, \
         \"chunks_per_matrix\": {}}},\n",
        sweep.nnz, sweep.pairs, sweep.chunks
    ));
    out.push_str(&format!(
        "  \"input_mb\": {:.3},\n  \"compressed_mb\": {:.3},\n  \"model\": \"critical-path\",\n",
        sweep.input_mb, sweep.compressed_mb
    ));
    out.push_str("  \"points\": [\n");
    for (i, p) in sweep.points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"threads\": {}, \"comp_mbps\": {:.3}, \"decomp_mbps\": {:.3}, \
             \"comp_speedup\": {:.3}, \"decomp_speedup\": {:.3}}}{}\n",
            p.threads,
            p.comp_mbps,
            p.decomp_mbps,
            p.comp_speedup,
            p.decomp_speedup,
            if i + 1 == sweep.points.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_and_round_trips() {
        let sweep = run(&[1, 2]);
        assert_eq!(sweep.points.len(), 2);
        for p in &sweep.points {
            assert!(p.comp_mbps > 0.0);
            assert!(p.decomp_mbps > 0.0);
        }
        assert!((sweep.points[0].comp_speedup - 1.0).abs() < 1e-9);
        // Two threads over ~32 similar chunks must model close to 2x.
        assert!(sweep.points[1].comp_speedup > 1.5);
        let text = render(&sweep);
        assert!(text.contains("Threads"));
        let json = render_json(&sweep);
        assert!(json.contains("\"comp_speedup\""));
    }

    #[test]
    fn makespan_model_is_the_codec_schedule() {
        let ms = |v: &[u64], t: usize| {
            makespan(
                &v.iter()
                    .copied()
                    .map(Duration::from_millis)
                    .collect::<Vec<_>>(),
                Duration::from_millis(1),
                t,
            )
        };
        // 4 chunks on 2 workers: strided split [10, 30] | [20, 40].
        assert_eq!(ms(&[10, 20, 30, 40], 2), Duration::from_millis(61));
        // One worker: everything plus serial.
        assert_eq!(ms(&[10, 20, 30, 40], 1), Duration::from_millis(101));
        // More workers than chunks: the longest chunk dominates.
        assert_eq!(ms(&[10, 20, 30, 40], 8), Duration::from_millis(41));
        // No chunks: just the serial part.
        assert_eq!(
            makespan(&[], Duration::from_millis(7), 4),
            Duration::from_millis(7)
        );
    }
}
