//! Experiment harness: one module per paper table/figure.
//!
//! Each module computes a structured result and renders the same rows or
//! series the paper reports. Binaries under `src/bin/` wrap these with a
//! `--scale` flag; Criterion micro-benchmarks live under `benches/`.
//!
//! Absolute numbers differ from the paper (its testbed is a 128-core EPYC
//! with proprietary 10⁵–10⁶-element netlists; see `DESIGN.md` §5) — the
//! reproduced quantities are the *ratios and orderings* each table/figure
//! exists to demonstrate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod fig1;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod scaling;
pub mod serve;
pub mod sweep;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod window;

/// Parses a `--scale <f64>` / `--scale=<f64>` argument (default `default`).
pub fn parse_scale(args: &[String], default: f64) -> f64 {
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if let Some(v) = arg.strip_prefix("--scale=") {
            return v.parse().unwrap_or(default);
        }
        if arg == "--scale" {
            if let Some(v) = iter.next() {
                return v.parse().unwrap_or(default);
            }
        }
    }
    default
}

/// Renders a table: header row + aligned data rows.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |cells: &[String], widths: &[usize], out: &mut String| {
        for (cell, w) in cells.iter().zip(widths) {
            out.push_str(&format!("{cell:>w$}  ", w = w));
        }
        out.push('\n');
    };
    line(
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &widths,
        &mut out,
    );
    let total: usize = widths.iter().sum::<usize>() + widths.len() * 2;
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        line(row, &widths, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        let args = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        assert_eq!(parse_scale(&args(&["--scale", "0.5"]), 1.0), 0.5);
        assert_eq!(parse_scale(&args(&["--scale=2.5"]), 1.0), 2.5);
        assert_eq!(parse_scale(&args(&[]), 0.7), 0.7);
        assert_eq!(parse_scale(&args(&["--scale", "zzz"]), 0.3), 0.3);
    }

    #[test]
    fn table_rendering_aligns() {
        let table = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "2.34".into()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].contains("2.34"));
    }
}
