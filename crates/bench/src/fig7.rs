//! Paper Fig. 7: end-to-end sensitivity-analysis time — MASC vs the
//! Xyce-like recompute baseline vs raw disk storage, plus this repo's
//! hybrid compressed+spill tier.
//!
//! Runs the same circuit + objectives + parameters through six Jacobian
//! stores and reports the reverse-pass times from the unified
//! [`StoreMetrics`](masc_adjoint::StoreMetrics) telemetry. Expected shape
//! (paper §6.4): MASC ≈ half the recompute baseline's sensitivity time and
//! several times faster than bandwidth-limited raw disk I/O; the hybrid
//! store tracks MASC because its spilled bytes are compressed, so the
//! compression ratio multiplies the effective disk bandwidth; the
//! pipelined hybrid additionally overlaps compression + spill I/O with
//! the forward solve and prefetch-decodes ahead of the reverse sweep, and
//! reports its queue/backpressure/prefetch telemetry.

use crate::render_table;
use masc_adjoint::{run_adjoint, run_xyce_like, Objective, StoreConfig};
use masc_compress::MascConfig;
use masc_datasets::registry::{DatasetSpec, Family};

/// One store's end-to-end measurement.
#[derive(Debug, Clone)]
pub struct Bar {
    /// Store label.
    pub label: String,
    /// Forward transient + store time (s).
    pub forward_s: f64,
    /// Reverse (sensitivity) time (s).
    pub reverse_s: f64,
    /// End-to-end total (s).
    pub total_s: f64,
    /// Forward-pass store/compress time within `forward_s` (s).
    pub store_s: f64,
    /// Reverse-pass matrix-fetch time within `reverse_s` (s).
    pub fetch_s: f64,
    /// Peak Jacobian storage across tiers (bytes).
    pub peak_bytes: usize,
    /// Forward-pass stall waiting on a full pipeline queue (s); zero for
    /// synchronous stores.
    pub backpressure_s: f64,
    /// Deepest pipeline queue observed, in steps.
    pub max_queue_depth: usize,
    /// Reverse-pass fetches served instantly from the prefetch buffer.
    pub prefetch_hits: u64,
    /// Reverse-pass fetches that waited on the prefetch worker.
    pub prefetch_misses: u64,
}

/// Fig. 7 configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Circuit size (BJT amplifier stages).
    pub size: usize,
    /// Transient steps.
    pub steps: usize,
    /// Simulated disk bandwidth (bytes/s) for the disk store.
    pub disk_bandwidth: f64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            size: 60,
            steps: 300,
            disk_bandwidth: 0.5e9 / 256.0, // paper's 0.5 GB/s scaled to our
                                           // ~256× smaller tensors
        }
    }
}

/// Runs the three-store comparison.
pub fn run(config: &Config) -> Vec<Bar> {
    // BJT chain: the heaviest device models (two limited exponentials,
    // diffusion charges), matching the paper's BJT-dominated Fig. 7 setup
    // where Jacobian recomputation is the majority of sensitivity time.
    let spec = DatasetSpec {
        name: "fig7",
        family: Family::BjtChain,
        size: config.size,
        steps: config.steps,
    };
    let spill_dir = std::env::temp_dir().join("masc-fig7");
    let stores = [
        ("Xyce-like (per-obj recompute)", StoreConfig::Recompute),
        (
            "Disk (raw, throttled)",
            StoreConfig::Disk {
                dir: spill_dir.clone(),
                bandwidth: Some(config.disk_bandwidth),
            },
        ),
        (
            "MASC (compressed)",
            StoreConfig::Compressed(MascConfig::default()),
        ),
        (
            "Hybrid (compressed + spill)",
            StoreConfig::Hybrid {
                dir: spill_dir.clone(),
                bandwidth: Some(config.disk_bandwidth),
                resident_blocks: 8,
                masc: MascConfig::default(),
            },
        ),
        (
            "Pipelined (async hybrid)",
            StoreConfig::pipelined(StoreConfig::Hybrid {
                dir: spill_dir,
                bandwidth: Some(config.disk_bandwidth),
                resident_blocks: 8,
                masc: MascConfig::default(),
            }),
        ),
        ("Raw memory (upper bound)", StoreConfig::RawMemory),
    ];
    let mut bars = Vec::new();
    for (label, store) in stores {
        let (mut circuit, tran) = spec.build_circuit(1.0);
        circuit.set_model_effort(crate::table1::MODEL_EFFORT);
        let n = {
            let sys = circuit.elaborate().expect("elaborates");
            sys.n
        };
        let n_obj = n.clamp(1, 8);
        let objectives: Vec<Objective> = (0..n_obj)
            .map(|i| Objective::Integral {
                unknown: i * n / n_obj,
            })
            .collect();
        let params = circuit.params();
        // The recompute baseline uses the Xyce-like per-objective
        // schedule; the storage-backed stores batch all objectives into
        // one sweep (what Jacobian reuse buys).
        let run = if matches!(store, StoreConfig::Recompute) {
            run_xyce_like(&mut circuit, &tran, &objectives, &params)
        } else {
            run_adjoint(&mut circuit, &tran, &store, &objectives, &params)
        }
        .expect("all stores succeed");
        let forward_s = run.tran_stats.total_time.as_secs_f64();
        let reverse_s = run.sensitivities.stats.total_time.as_secs_f64();
        let metrics = &run.store_metrics;
        bars.push(Bar {
            label: label.to_string(),
            forward_s,
            reverse_s,
            total_s: forward_s + reverse_s,
            store_s: metrics.store_time.as_secs_f64(),
            fetch_s: metrics.fetch_time.as_secs_f64(),
            peak_bytes: metrics.peak_resident_bytes,
            backpressure_s: metrics.backpressure_wait.as_secs_f64(),
            max_queue_depth: metrics.max_queue_depth,
            prefetch_hits: metrics.prefetch_hits,
            prefetch_misses: metrics.prefetch_misses,
        });
    }
    bars
}

/// Renders the bars, normalized to the recompute baseline.
pub fn render(bars: &[Bar]) -> String {
    let baseline = bars.first().map(|b| b.total_s).unwrap_or(1.0).max(1e-12);
    let data: Vec<Vec<String>> = bars
        .iter()
        .map(|b| {
            vec![
                b.label.clone(),
                format!("{:.3}", b.forward_s),
                format!("{:.3}", b.reverse_s),
                format!("{:.3}", b.total_s),
                format!("{:.2}x", baseline / b.total_s),
                format!("{:.3}", b.store_s),
                format!("{:.3}", b.fetch_s),
                format!("{:.2}", b.peak_bytes as f64 / 1e6),
                format!("{:.3}", b.backpressure_s),
                format!("{}", b.max_queue_depth),
                format!("{}/{}", b.prefetch_hits, b.prefetch_misses),
            ]
        })
        .collect();
    render_table(
        &[
            "Store",
            "Fwd(s)",
            "Rev(s)",
            "Total(s)",
            "Speedup",
            "Store(s)",
            "Fetch(s)",
            "Peak(MB)",
            "BkPr(s)",
            "Queue",
            "Pf hit/miss",
        ],
        &data,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_the_paper() {
        let config = Config {
            size: 20,
            steps: 80,
            disk_bandwidth: 2e6,
        };
        let bars = run(&config);
        assert_eq!(bars.len(), 6);
        let disk = bars[1].reverse_s;
        let masc = bars[2].reverse_s;
        let hybrid = bars[3].reverse_s;
        // Throttled disk pays an I/O wall MASC does not. (The MASC-vs-
        // recompute speedup is a release-mode measurement — see the fig7
        // binary and EXPERIMENTS.md; debug-mode timings are misleading.)
        assert!(masc < disk, "masc {masc} vs disk {disk}");
        // The hybrid store spills *compressed* bytes, so over the same
        // throttled bandwidth its reverse pass beats raw disk.
        assert!(hybrid < disk, "hybrid {hybrid} vs disk {disk}");
        // Compressed storage is far below raw.
        assert!(bars[2].peak_bytes * 2 < bars[5].peak_bytes);
        // The pipelined hybrid reports its async telemetry: every reverse
        // step is either a prefetch hit or a miss, and the queue was used.
        let piped = &bars[4];
        assert!(
            piped.prefetch_hits + piped.prefetch_misses > 0,
            "every reverse fetch is classified hit or miss"
        );
        assert!(piped.max_queue_depth >= 1, "queue depth was tracked");
        // Synchronous stores report no pipeline activity.
        assert_eq!(bars[3].prefetch_hits + bars[3].prefetch_misses, 0);
        assert_eq!(bars[3].max_queue_depth, 0);
        let text = render(&bars);
        assert!(text.contains("MASC"));
        assert!(text.contains("Hybrid"));
        assert!(text.contains("Pipelined"));
    }
}
