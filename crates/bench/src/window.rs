//! Parallel-in-time scaling: windowed-adjoint critical path vs window
//! count W.
//!
//! The claim this bench pins is `masc-window`'s headline: splitting the
//! transient into W windows turns most of the forward *and* reverse work
//! into concurrent per-window lanes, so the critical path of a fully
//! parallel run beats the monolithic pipeline even after paying for the
//! coarse propagator and the Parareal re-integrations.
//!
//! Every run is measured *serially* (`lanes = 1`, min over repeats) and
//! the W-lane critical path is modeled from the engine's own lane-time
//! tables:
//!
//! ```text
//! crit = serial + coarse + Σ_iterations max(forward lane times)
//!                        + Σ_iterations max(adjoint lane times)
//! ```
//!
//! — the same modeling approach as the sweep bench, meaningful on a
//! single-core CI box where wall-clock parallel speedup is impossible by
//! construction. The workload sits in the stiff quasi-static regime
//! (parasitic-scale capacitances, `τ ≪ dt ≪` drive period) where the
//! coarse propagator genuinely nails window-interface states — the
//! power-electronics workload class the parallel-in-time literature
//! targets — so the Parareal iteration verifies convergence on its first
//! sweep and the critical path stays near one fine window per phase.
//! Every windowed gradient is checked against the monolithic
//! `run_adjoint`.

use crate::render_table;
use masc_adjoint::{run_adjoint, Objective, StoreConfig};
use masc_circuit::devices::{Capacitor, CurrentSource, Device, Diode, Resistor};
use masc_circuit::transient::TranOptions;
use masc_circuit::waveform::Waveform;
use masc_circuit::{Circuit, ParamRef};
use masc_window::{run_windowed, WindowOptions, WindowResult};
use std::time::Instant;

/// One window-count measurement.
#[derive(Debug, Clone)]
pub struct Point {
    /// Window count W.
    pub w: usize,
    /// Measured serial wall time of the whole windowed run (min over
    /// repeats, `lanes = 1`).
    pub total_seconds: f64,
    /// Modeled W-lane critical path (serial + coarse + per-iteration lane
    /// maxima).
    pub modeled_seconds: f64,
    /// `mono_seconds / modeled_seconds` — the parallel-in-time speedup.
    pub speedup: f64,
    /// Forward Parareal iterations to convergence.
    pub forward_iterations: usize,
    /// Adjoint Parareal iterations to convergence.
    pub adjoint_iterations: usize,
    /// Fine window integrations across all iterations.
    pub fine_runs: usize,
    /// Compressed bytes across all per-window tensor pairs.
    pub window_bytes: usize,
    /// Worst relative gradient error vs the monolithic pipeline.
    pub max_rel_err: f64,
}

/// One full scaling sweep over window counts.
#[derive(Debug, Clone)]
pub struct Scaling {
    /// Per-W results, in the order requested.
    pub points: Vec<Point>,
    /// Measured monolithic `run_adjoint` wall time (min over repeats).
    pub mono_seconds: f64,
    /// Diode-RC-ladder stages.
    pub stages: usize,
    /// Transient steps.
    pub steps: usize,
    /// Timing repeats (minimum taken).
    pub repeats: usize,
}

/// The workload: a sine-driven diode RC ladder with parasitic-scale
/// capacitances (`τ = R·C` a fraction of the step, far below the drive
/// period). The diodes make every Newton solve cost real iterations and
/// keep `G`/`C` changing every step (so the per-window tensors carry
/// real entropy); the stiff time constants make the network quasi-static,
/// so both the fine and the coarse propagator track the same algebraic
/// manifold and window-interface jumps land below tolerance on the first
/// correction sweep — the regime where parallel-in-time genuinely pays.
fn ladder(stages: usize) -> Circuit {
    let mut ckt = Circuit::new();
    let nodes: Vec<_> = (0..stages)
        .map(|s| ckt.node(&format!("d{s}")).unknown())
        .collect();
    ckt.add(Device::CurrentSource(CurrentSource::new(
        "IL",
        None,
        nodes[0],
        Waveform::Sin {
            vo: 1e-3,
            va: 8e-4,
            freq: 200.0,
            td: 0.0,
            theta: 0.0,
        },
    )))
    .expect("ladder source");
    for s in 0..stages {
        ckt.add(Device::Resistor(Resistor::new(
            format!("RL{s}"),
            nodes[s],
            None,
            1000.0,
        )))
        .expect("ladder resistor");
        ckt.add(Device::Capacitor(Capacitor::new(
            format!("CL{s}"),
            nodes[s],
            None,
            1e-9,
        )))
        .expect("ladder capacitor");
        ckt.add(Device::Diode(
            Diode::new(format!("DL{s}"), nodes[s], None).with_junction_cap(1e-12),
        ))
        .expect("ladder diode");
        if s + 1 < stages {
            ckt.add(Device::Resistor(Resistor::new(
                format!("RS{s}"),
                nodes[s],
                nodes[s + 1],
                500.0,
            )))
            .expect("ladder series resistor");
        }
    }
    ckt
}

fn setup(base: &Circuit, steps: usize) -> (TranOptions, Vec<Objective>, Vec<ParamRef>) {
    let dt = 5e-5;
    let tran = TranOptions::new(dt * steps as f64, dt);
    let n_nodes = {
        let mut s = 0;
        while base.find_node(&format!("d{s}")).is_some() {
            s += 1;
        }
        s
    };
    let first = base
        .find_node("d0")
        .and_then(|n| n.unknown())
        .expect("ladder d0");
    let last = base
        .find_node(&format!("d{}", n_nodes - 1))
        .and_then(|n| n.unknown())
        .expect("ladder last node");
    let objectives = vec![
        Objective::FinalValue { unknown: last },
        Objective::Integral { unknown: first },
    ];
    // Every parameter of every ladder device: a wide parameter vector
    // makes the reverse pass carry real φ work — spread across window
    // lanes, since every adjoint pass is a full accumulation pass.
    let mut params = Vec::new();
    for s in 0..n_nodes {
        for path in [
            format!("RL{s}.r"),
            format!("CL{s}.c"),
            format!("DL{s}.is"),
            format!("DL{s}.n"),
            format!("DL{s}.cj0"),
        ] {
            params.push(base.find_param(&path).expect("ladder param"));
        }
        if s + 1 < n_nodes {
            params.push(base.find_param(&format!("RS{s}.r")).expect("RS param"));
        }
    }
    (tran, objectives, params)
}

/// The modeled W-lane critical path of one windowed run.
fn modeled_seconds(run: &WindowResult) -> f64 {
    let s = &run.stats;
    let mut crit = s.serial_time.as_secs_f64() + s.coarse_time.as_secs_f64();
    for row in s.forward_lane_times.iter().chain(&s.adjoint_lane_times) {
        crit += row
            .iter()
            .map(std::time::Duration::as_secs_f64)
            .fold(0.0, f64::max);
    }
    crit
}

/// Runs the full scaling sweep over the given window counts.
pub fn run(window_counts: &[usize]) -> Scaling {
    run_opts(window_counts, 12, 400, 3)
}

/// Runs the sweep on a `stages`-node ladder for `steps` transient steps,
/// timing each configuration `repeats` times and keeping the minimum.
pub fn run_opts(window_counts: &[usize], stages: usize, steps: usize, repeats: usize) -> Scaling {
    let base = ladder(stages);
    let (tran, objectives, params) = setup(&base, steps);

    // Monolithic baseline: the same compressed store the window lanes
    // use, so the comparison is storage-for-storage.
    let masc = WindowOptions::new(1).masc;
    let mut mono_seconds = f64::INFINITY;
    let mut mono = None;
    for _ in 0..repeats.max(1) {
        let mut ckt = base.clone();
        let t0 = Instant::now();
        let run = run_adjoint(
            &mut ckt,
            &tran,
            &StoreConfig::Compressed(masc.clone()),
            &objectives,
            &params,
        )
        .expect("monolithic bench run");
        mono_seconds = mono_seconds.min(t0.elapsed().as_secs_f64());
        mono = Some(run);
    }
    let mono = mono.expect("at least one monolithic pass");

    let mut points = Vec::new();
    for &w in window_counts {
        // Tolerances in coupling-residual units (see `WindowOptions`):
        // on this workload the coarse seeds land the forward boundary
        // residual near 3e-9 and the adjoint one near 1e-9, so both
        // phases converge on the first correction sweep — row-1 jumps
        // sit at ~1e-21, i.e. accepting row 0 costs nothing measurable
        // (the gate separately pins max_rel_err ≤ 1e-6).
        let opts = WindowOptions {
            tol: 1e-8,
            adjoint_tol: Some(1e-7),
            coarse_substeps: 4,
            ..WindowOptions::new(w)
        };
        let mut best: Option<WindowResult> = None;
        for _ in 0..repeats.max(1) {
            let mut ckt = base.clone();
            let run =
                run_windowed(&mut ckt, &tran, &opts, &objectives, &params).expect("windowed run");
            best = Some(match best {
                None => run,
                Some(acc) if run.stats.total_time < acc.stats.total_time => run,
                Some(acc) => acc,
            });
        }
        let run = best.expect("at least one windowed pass");

        // Worst error relative to each objective's gradient scale (the
        // row's largest monolithic entry): parasitic-cap sensitivities
        // are legitimately ~0, and element-relative error on a ~0 entry
        // would measure cancellation noise, not pipeline disagreement.
        let mut max_rel_err = 0.0f64;
        for (i, row) in mono.sensitivities.values.iter().enumerate() {
            let scale = row.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-30);
            for (j, &m) in row.iter().enumerate() {
                let a = run.sensitivities[i][j];
                max_rel_err = max_rel_err.max((m - a).abs() / scale);
            }
        }

        let modeled = modeled_seconds(&run);
        points.push(Point {
            w,
            total_seconds: run.stats.total_time.as_secs_f64(),
            modeled_seconds: modeled,
            speedup: mono_seconds / modeled.max(1e-12),
            forward_iterations: run.stats.forward_iterations,
            adjoint_iterations: run.stats.adjoint_iterations,
            fine_runs: run.stats.fine_runs,
            window_bytes: run.stats.window_bytes.iter().sum(),
            max_rel_err,
        });
    }
    Scaling {
        points,
        mono_seconds,
        stages,
        steps,
        repeats,
    }
}

/// Renders the scaling sweep as the human-readable results table.
pub fn render(scaling: &Scaling) -> String {
    let data: Vec<Vec<String>> = scaling
        .points
        .iter()
        .map(|p| {
            vec![
                p.w.to_string(),
                format!("{:.1}", p.total_seconds * 1e3),
                format!("{:.1}", p.modeled_seconds * 1e3),
                format!("{:.2}x", p.speedup),
                format!("{}+{}", p.forward_iterations, p.adjoint_iterations),
                p.fine_runs.to_string(),
                p.window_bytes.to_string(),
                format!("{:.1e}", p.max_rel_err),
            ]
        })
        .collect();
    let mut out = render_table(
        &[
            "W",
            "Serial ms",
            "Crit ms",
            "Speedup",
            "Iters f+a",
            "Fine runs",
            "Bytes",
            "Max rel err",
        ],
        &data,
    );
    out.push_str(&format!(
        "(monolithic baseline {:.1} ms; {} diode-ladder stages, {} steps, min of {} \
         repeats; speedup = monolithic over the modeled W-lane critical path)\n",
        scaling.mono_seconds * 1e3,
        scaling.stages,
        scaling.steps,
        scaling.repeats
    ));
    out
}

/// Renders the scaling sweep as the machine-readable `BENCH_window.json`
/// payload.
pub fn render_json(scaling: &Scaling) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"workload\": {{\"family\": \"diode-rc-ladder\", \"stages\": {}, \"steps\": {}, \
         \"repeats\": {}}},\n",
        scaling.stages, scaling.steps, scaling.repeats
    ));
    out.push_str(&format!(
        "  \"model\": \"critical-path\",\n  \"mono_seconds\": {:.6},\n  \"points\": [\n",
        scaling.mono_seconds
    ));
    for (i, p) in scaling.points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"w\": {}, \"total_seconds\": {:.6}, \"modeled_seconds\": {:.6}, \
             \"speedup\": {:.3}, \"forward_iterations\": {}, \"adjoint_iterations\": {}, \
             \"fine_runs\": {}, \"window_bytes\": {}, \"max_rel_err\": {:.3e}}}{}\n",
            p.w,
            p.total_seconds,
            p.modeled_seconds,
            p.speedup,
            p.forward_iterations,
            p.adjoint_iterations,
            p.fine_runs,
            p.window_bytes,
            p.max_rel_err,
            if i + 1 == scaling.points.len() {
                ""
            } else {
                ","
            }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windowed_critical_path_beats_monolithic() {
        let scaling = run_opts(&[1, 4], 6, 120, 1);
        assert_eq!(scaling.points.len(), 2);
        for p in &scaling.points {
            // Correctness before speed: every windowed gradient agrees
            // with the monolithic pipeline.
            assert!(
                p.max_rel_err <= 1e-6,
                "W={}: gradient error {:.3e}",
                p.w,
                p.max_rel_err
            );
            assert!(p.window_bytes > 0);
            assert!(p.modeled_seconds <= p.total_seconds * 1.05 + 1e-3);
        }
        // The scaling claim at bench-test scale: both sides of the ratio
        // come from the modeled critical path / a serial measurement,
        // never wall clock of a threaded run, so this holds on a starved
        // single-core box.
        let w4 = &scaling.points[1];
        assert!(
            w4.speedup > scaling.points[0].speedup,
            "W=4 ({:.2}x) must beat W=1 ({:.2}x)",
            w4.speedup,
            scaling.points[0].speedup
        );
        let text = render(&scaling);
        assert!(text.contains("Speedup"));
        let json = render_json(&scaling);
        assert!(json.contains("\"speedup\""));
    }
}
