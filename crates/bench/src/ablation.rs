//! Ablation study of MASC's design choices (extends the paper's
//! w/-vs-w/o-Markov comparison in Table 3).
//!
//! Variants:
//!
//! - **full (best-fit)** — the reference "MASC w/o Markov";
//! - **w/ Markov** — selection bits replaced by the Markov predictor;
//! - **no sign inversion** — eq. 6's diagonal negation disabled;
//! - **temporal only** — the ChimpLike coder (same residual-code family,
//!   temporal predictor only, no stamp information), isolating how much
//!   the spatial models buy;
//! - **no shared windows** — measured indirectly: the shared-window count
//!   is reported so its contribution is visible.

use crate::render_table;
use masc_baselines::{ChimpLike, Compressor};
use masc_compress::{MascConfig, TensorCompressor};
use masc_datasets::registry::table2_datasets;
use masc_datasets::Dataset;

/// One ablation variant's measurement on one dataset.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Variant label.
    pub label: String,
    /// Compression ratio vs `S_NZ`.
    pub ratio: f64,
    /// Shared-window usage rate among residuals (diagnostic).
    pub shared_window_rate: f64,
}

fn masc_variant(dataset: &Dataset, label: &str, config: MascConfig) -> Variant {
    let mut compressed = 0usize;
    let mut shared = 0u64;
    let mut total = 0u64;
    for (pattern, series) in [
        (&dataset.g_pattern, &dataset.g_series),
        (&dataset.c_pattern, &dataset.c_series),
    ] {
        let mut tc = TensorCompressor::new(pattern.clone(), config.clone());
        for m in series.iter() {
            tc.push(m);
        }
        let tensor = tc.finish();
        shared += tensor.stats().shared_windows;
        total += tensor.stats().total_values();
        compressed += tensor.compressed_bytes();
    }
    Variant {
        label: label.to_string(),
        ratio: dataset.s_nz_bytes() as f64 / compressed as f64,
        shared_window_rate: shared as f64 / total.max(1) as f64,
    }
}

/// Shared on-disk dataset cache for the experiment binaries.
fn dataset_cache_dir() -> std::path::PathBuf {
    std::env::temp_dir().join("masc-dataset-cache")
}

/// Runs all variants on one dataset.
pub fn variants_for(dataset: &Dataset) -> Vec<Variant> {
    let mut out = vec![
        masc_variant(
            dataset,
            "full (best-fit)",
            MascConfig::default().with_markov(false),
        ),
        masc_variant(dataset, "w/ Markov", MascConfig::default()),
        masc_variant(
            dataset,
            "no sign inversion",
            MascConfig::default()
                .with_markov(false)
                .with_sign_invert(false),
        ),
    ];
    let chimp = ChimpLike::new();
    let packed = chimp.compress(&dataset.value_stream());
    out.push(Variant {
        label: "temporal only (Chimp)".to_string(),
        ratio: dataset.s_nz_bytes() as f64 / packed.len() as f64,
        shared_window_rate: 0.0,
    });
    out
}

/// Runs the ablation on a representative dataset at the given scale.
pub fn run(scale: f64) -> (String, Vec<Variant>) {
    let spec = &table2_datasets()[0]; // add20 analogue: mixed linear/nonlinear
    let dataset = spec.generate_cached(scale, &dataset_cache_dir());
    (dataset.name.clone(), variants_for(&dataset))
}

/// Renders the variants.
pub fn render(dataset: &str, variants: &[Variant]) -> String {
    let data: Vec<Vec<String>> = variants
        .iter()
        .map(|v| {
            vec![
                v.label.clone(),
                format!("{:.2}", v.ratio),
                format!("{:.1}%", v.shared_window_rate * 100.0),
            ]
        })
        .collect();
    format!(
        "dataset: {dataset}\n{}",
        render_table(&["Variant", "CR", "SharedWin"], &data)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_beats_temporal_only() {
        let (name, variants) = run(0.12);
        assert_eq!(variants.len(), 4);
        let full = variants[0].ratio;
        let chimp = variants[3].ratio;
        assert!(
            full > chimp,
            "{name}: full {full:.2} should beat temporal-only {chimp:.2}"
        );
        let text = render(&name, &variants);
        assert!(text.contains("Markov"));
    }
}
