//! Paper Fig. 5(b): distribution of leading zeros in the XOR residuals.
//!
//! Compresses every Table 2 dataset with best-fit MASC and reports the
//! fraction of all-zero residuals (the paper's ~60 % headline bucket) and
//! the 8-bit leading-zero class histogram.

use crate::render_table;
use masc_compress::{CompressStats, MascConfig, TensorCompressor};
use masc_datasets::registry::table2_datasets;
use masc_datasets::Dataset;

/// Residual statistics for one dataset.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Dataset name.
    pub name: String,
    /// Fraction of residuals that are exactly zero.
    pub zero_rate: f64,
    /// Fraction per leading-zero class (0‥7) among non-zero residuals.
    pub class_rates: [f64; 8],
}

/// Computes the residual statistics of one dataset.
pub fn histogram_for(dataset: &Dataset) -> Histogram {
    let config = MascConfig::default().with_markov(false);
    let mut stats = CompressStats::new();
    for (pattern, series) in [
        (&dataset.g_pattern, &dataset.g_series),
        (&dataset.c_pattern, &dataset.c_series),
    ] {
        let mut tc = TensorCompressor::new(pattern.clone(), config.clone());
        for m in series.iter() {
            tc.push(m);
        }
        stats.merge(tc.finish().stats());
    }
    let nonzero: u64 = stats.lz_class_histogram.iter().sum();
    let mut class_rates = [0.0f64; 8];
    if nonzero > 0 {
        for (rate, &count) in class_rates.iter_mut().zip(&stats.lz_class_histogram) {
            *rate = count as f64 / nonzero as f64;
        }
    }
    Histogram {
        name: dataset.name.clone(),
        zero_rate: stats.zero_residual_rate(),
        class_rates,
    }
}

/// Shared on-disk dataset cache for the experiment binaries.
fn dataset_cache_dir() -> std::path::PathBuf {
    std::env::temp_dir().join("masc-dataset-cache")
}

/// Runs Fig. 5(b) at the given scale.
pub fn run(scale: f64) -> Vec<Histogram> {
    table2_datasets()
        .iter()
        .map(|spec| histogram_for(&spec.generate_cached(scale, &dataset_cache_dir())))
        .collect()
}

/// Renders the histograms.
pub fn render(histograms: &[Histogram]) -> String {
    let data: Vec<Vec<String>> = histograms
        .iter()
        .map(|h| {
            let mut row = vec![h.name.clone(), format!("{:.1}%", h.zero_rate * 100.0)];
            for rate in h.class_rates {
                row.push(format!("{:.1}%", rate * 100.0));
            }
            row
        })
        .collect();
    render_table(
        &[
            "Dataset", "zero(64)", "lz 0-7", "8-15", "16-23", "24-31", "32-39", "40-47", "48-55",
            "56-63",
        ],
        &data,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_heavy_dataset_has_many_zero_residuals() {
        // The diode-chain dataset is mostly linear elements: their stamp
        // values never change, so zero residuals dominate — the paper's
        // ~60 % observation.
        let spec = &table2_datasets()[0];
        let dataset = spec.generate(0.15).unwrap();
        let h = histogram_for(&dataset);
        assert!(
            h.zero_rate > 0.5,
            "{}: zero-residual rate {:.3}",
            h.name,
            h.zero_rate
        );
        let class_sum: f64 = h.class_rates.iter().sum();
        assert!((class_sum - 1.0).abs() < 1e-9 || class_sum == 0.0);
    }

    #[test]
    fn render_includes_every_dataset() {
        let spec = &table2_datasets()[3];
        let h = histogram_for(&spec.generate(0.08).unwrap());
        let text = render(&[h]);
        assert!(text.contains("MOS_T5"));
    }
}
