//! Batched-sweep scaling: per-instance marginal cost vs batch size N.
//!
//! The claim this bench pins is `masc-sweep`'s economy of scale: running N
//! parameter variants as one batch costs *per instance* a fraction of
//! what one variant costs alone, on two axes at once —
//!
//! - **bytes**: instance 0 pays the full temporal chain, but every
//!   further instance is encoded against its neighbor at the same step
//!   (cross-instance prediction), so its blocks carry only the parameter
//!   delta's footprint;
//! - **seconds**: per-instance solver work rides worker lanes while only
//!   the compression/framing/decode sections are serial, so the N-worker
//!   critical path is `serial + parallel/N`.
//!
//! Wall-clock runs are measured serially (min over repeats, the stable
//! estimate under additive timer noise) and the N-worker critical path is
//! evaluated from the measured serial/parallel split — the same modeling
//! approach as the thread-scaling bench, meaningful even on a single-core
//! CI box where wall-clock parallel speedup is impossible by
//! construction. A 2-worker run at each N additionally pins that the
//! super-tensor bytes are worker-invariant.

use crate::render_table;
use masc_adjoint::Objective;
use masc_circuit::devices::{Capacitor, CurrentSource, Device, Diode, Resistor};
use masc_circuit::transient::TranOptions;
use masc_circuit::waveform::Waveform;
use masc_circuit::Circuit;
use masc_sweep::{run_sweep, SweepPlan, SweepStats};

/// One batch-size measurement.
#[derive(Debug, Clone)]
pub struct Point {
    /// Batch size (instances in the sweep).
    pub n: usize,
    /// Measured serial wall time of the whole batch (min over repeats).
    pub total_seconds: f64,
    /// Modeled N-worker critical path: `serial + (total - serial) / n`.
    pub modeled_seconds: f64,
    /// `modeled_seconds / n` — what one instance costs inside the batch.
    pub marginal_seconds: f64,
    /// Framed super-tensor size for the whole batch.
    pub super_tensor_bytes: usize,
    /// `super_tensor_bytes / n` — what one instance's matrices cost.
    pub marginal_bytes: f64,
    /// `n ×` the N=1 super-tensor size: N independent temporal chains.
    pub independent_bytes: usize,
    /// Raw (uncompressed) size of the batch's stored non-zeros.
    pub raw_bytes: usize,
}

/// One full sweep over batch sizes.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Per-batch-size results, in the order requested.
    pub points: Vec<Point>,
    /// RC-ladder stages (one unknown each).
    pub stages: usize,
    /// Transient steps per instance.
    pub steps: usize,
    /// Timing repeats (minimum taken).
    pub repeats: usize,
}

/// The workload: a sine-driven diode RC ladder (the *shared* section —
/// identical in every batch instance) next to one linear RC stage that
/// carries the swept resistor (the *varied* section).
///
/// The diodes' state-dependent stamps make `G` and `C` change every
/// step, so instance 0's temporal chain pays real entropy. The varied
/// section is electrically isolated from the diode ladder, mirroring the
/// common sweep scenario where the swept parameter's influence on the
/// Jacobian is local: instance `k` and instance `k−1` then agree exactly
/// on the whole shared section at every step, and the cross-instance
/// residual is confined to the swept resistor's stamps — the regime
/// where cross-instance prediction collapses the marginal bytes while
/// the temporal chain cannot.
fn ladder(stages: usize) -> Circuit {
    let mut ckt = Circuit::new();
    let nodes: Vec<_> = (0..stages)
        .map(|s| ckt.node(&format!("d{s}")).unknown())
        .collect();
    ckt.add(Device::CurrentSource(CurrentSource::new(
        "IL",
        None,
        nodes[0],
        Waveform::Sin {
            vo: 1e-3,
            va: 8e-4,
            freq: 200.0,
            td: 0.0,
            theta: 0.0,
        },
    )))
    .expect("ladder source");
    for s in 0..stages {
        ckt.add(Device::Resistor(Resistor::new(
            format!("RL{s}"),
            nodes[s],
            None,
            1000.0,
        )))
        .expect("ladder resistor");
        ckt.add(Device::Capacitor(Capacitor::new(
            format!("CL{s}"),
            nodes[s],
            None,
            1e-6,
        )))
        .expect("ladder capacitor");
        ckt.add(Device::Diode(
            Diode::new(format!("DL{s}"), nodes[s], None).with_junction_cap(1e-9),
        ))
        .expect("ladder diode");
        if s + 1 < stages {
            ckt.add(Device::Resistor(Resistor::new(
                format!("RS{s}"),
                nodes[s],
                nodes[s + 1],
                500.0,
            )))
            .expect("ladder series resistor");
        }
    }
    // The varied section: one DC-driven RC stage carrying the swept
    // parameter.
    let probe = ckt.node("p0").unknown();
    ckt.add(Device::CurrentSource(CurrentSource::new(
        "IP",
        None,
        probe,
        Waveform::Dc(1e-3),
    )))
    .expect("probe source");
    ckt.add(Device::Resistor(Resistor::new("R0", probe, None, 1000.0)))
        .expect("probe resistor");
    ckt.add(Device::Capacitor(Capacitor::new("C0", probe, None, 1e-6)))
        .expect("probe capacitor");
    ckt
}

fn plan_for(base: &Circuit, steps: usize, n: usize, workers: usize) -> SweepPlan {
    let dt = 5e-5;
    let tran = TranOptions::new(dt * steps as f64, dt);
    let probe = base
        .find_node("p0")
        .and_then(|nd| nd.unknown())
        .expect("ladder probe node");
    let objectives = vec![
        Objective::FinalValue { unknown: probe },
        Objective::Integral { unknown: probe },
    ];
    let r0 = base.find_param("R0.r").expect("R0.r");
    let c0 = base.find_param("C0.c").expect("C0.c");
    let mut plan = SweepPlan::new(tran, objectives, vec![r0.clone(), c0]).with_workers(workers);
    for k in 0..n {
        plan.push_variant(vec![(r0.clone(), 1000.0 * (1.0 + 0.05 * k as f64))]);
    }
    plan
}

/// Runs the full sweep over the given batch sizes.
pub fn run(batch_sizes: &[usize]) -> Sweep {
    run_opts(batch_sizes, 24, 200, 3)
}

/// Runs the sweep on a `stages`-node ladder for `steps` transient steps,
/// timing each batch size `repeats` times and keeping the minimum.
pub fn run_opts(batch_sizes: &[usize], stages: usize, steps: usize, repeats: usize) -> Sweep {
    let base = ladder(stages);
    let mut points = Vec::new();
    let mut bytes_at_one: Option<usize> = None;
    for &n in batch_sizes {
        let plan = plan_for(&base, steps, n, 1);
        let mut best: Option<SweepStats> = None;
        let mut bytes = 0usize;
        let mut raw = 0usize;
        for _ in 0..repeats.max(1) {
            let result = run_sweep(&base, &plan).expect("bench sweep runs");
            bytes = result.stats.super_tensor_bytes;
            raw = result.stats.raw_bytes;
            best = Some(match best {
                None => result.stats,
                Some(acc) if result.stats.total_time < acc.total_time => result.stats,
                Some(acc) => acc,
            });
        }
        let stats = best.expect("at least one timing pass");

        // Worker-invariance pin: the same batch on 2 workers must emit
        // byte-identical super-tensor framing.
        let threaded = run_sweep(&base, &plan_for(&base, steps, n, 2)).expect("threaded sweep");
        assert_eq!(
            threaded.stats.super_tensor_bytes, bytes,
            "super-tensor bytes changed with worker count at N={n}"
        );

        let total = stats.total_time.as_secs_f64();
        let serial = stats.serial_time.as_secs_f64().min(total);
        let modeled = serial + (total - serial) / n as f64;
        if n == 1 {
            bytes_at_one = Some(bytes);
        }
        points.push(Point {
            n,
            total_seconds: total,
            modeled_seconds: modeled,
            marginal_seconds: modeled / n as f64,
            super_tensor_bytes: bytes,
            marginal_bytes: bytes as f64 / n as f64,
            independent_bytes: bytes_at_one.map_or(0, |b| b * n),
            raw_bytes: raw,
        });
    }
    Sweep {
        points,
        stages,
        steps,
        repeats,
    }
}

/// Renders the sweep as the human-readable results table.
pub fn render(sweep: &Sweep) -> String {
    let data: Vec<Vec<String>> = sweep
        .points
        .iter()
        .map(|p| {
            vec![
                p.n.to_string(),
                format!("{:.1}", p.total_seconds * 1e3),
                format!("{:.2}", p.marginal_seconds * 1e3),
                format!("{}", p.super_tensor_bytes),
                format!("{:.0}", p.marginal_bytes),
                format!("{}", p.independent_bytes),
                format!(
                    "{:.1}x",
                    p.raw_bytes as f64 / p.super_tensor_bytes.max(1) as f64
                ),
            ]
        })
        .collect();
    let mut out = render_table(
        &[
            "N",
            "Total ms",
            "Marg ms/inst",
            "Bytes",
            "Marg B/inst",
            "Indep bytes",
            "vs raw",
        ],
        &data,
    );
    out.push_str(&format!(
        "({} ladder stages, {} steps, min of {} repeats; marginal seconds from the \
         measured serial/parallel split on an N-worker critical path)\n",
        sweep.stages, sweep.steps, sweep.repeats
    ));
    out
}

/// Renders the sweep as the machine-readable `BENCH_sweep.json` payload.
pub fn render_json(sweep: &Sweep) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"workload\": {{\"family\": \"rc-ladder\", \"stages\": {}, \"steps\": {}, \
         \"repeats\": {}}},\n",
        sweep.stages, sweep.steps, sweep.repeats
    ));
    out.push_str("  \"model\": \"critical-path\",\n  \"points\": [\n");
    for (i, p) in sweep.points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"n\": {}, \"total_seconds\": {:.6}, \"modeled_seconds\": {:.6}, \
             \"marginal_seconds\": {:.6}, \"super_tensor_bytes\": {}, \
             \"marginal_bytes\": {:.1}, \"independent_bytes\": {}, \"raw_bytes\": {}}}{}\n",
            p.n,
            p.total_seconds,
            p.modeled_seconds,
            p.marginal_seconds,
            p.super_tensor_bytes,
            p.marginal_bytes,
            p.independent_bytes,
            p.raw_bytes,
            if i + 1 == sweep.points.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marginal_cost_collapses_with_batch_size() {
        let sweep = run_opts(&[1, 2, 4, 8], 8, 30, 1);
        assert_eq!(sweep.points.len(), 4);
        for pair in sweep.points.windows(2) {
            // Bytes are deterministic, so strict monotonicity is safe to
            // pin. Seconds at this tiny scale (1 repeat, ~ms runs, the
            // whole workspace test suite loading the box) are too noisy
            // for a pairwise assertion — the endpoint ratio below pins
            // the timing claim instead.
            assert!(
                pair[1].marginal_bytes < pair[0].marginal_bytes,
                "marginal bytes must decrease monotonically: {:?}",
                sweep.points
            );
        }
        let first = &sweep.points[0];
        let last = &sweep.points[3];
        // The CI gate's claim, at bench-test scale. Seconds compare
        // modeled-critical-path to modeled-critical-path (never wall
        // clock), so the assertion holds on a starved single-core box.
        assert!(last.marginal_bytes < 0.6 * first.super_tensor_bytes as f64);
        assert!(last.marginal_seconds < 0.6 * first.modeled_seconds);
        // Cross-instance prediction beats N independent temporal chains.
        assert!(last.super_tensor_bytes < last.independent_bytes);
        let text = render(&sweep);
        assert!(text.contains("Marg B/inst"));
        let json = render_json(&sweep);
        assert!(json.contains("\"marginal_bytes\""));
    }
}
