//! Ablation of MASC design choices (sign inversion, Markov, spatial
//! models). `--scale <f>` sizes the dataset (default 0.5).

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = masc_bench::parse_scale(&args, 0.5);
    eprintln!("running ablation at scale {scale} ...");
    let (dataset, variants) = masc_bench::ablation::run(scale);
    println!("{}", masc_bench::ablation::render(&dataset, &variants));
}
