//! Regenerates paper Fig. 7 (end-to-end sensitivity time per Jacobian
//! store). `--scale <f>` multiplies circuit size and step count.

use masc_bench::fig7::{render, run, Config};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = masc_bench::parse_scale(&args, 1.0);
    let default = Config::default();
    let config = Config {
        size: ((default.size as f64 * scale).round() as usize).max(4),
        steps: ((default.steps as f64 * scale).round() as usize).max(20),
        ..default
    };
    eprintln!(
        "running fig7: {} stages, {} steps, disk throttled to {:.1} MB/s ...",
        config.size,
        config.steps,
        config.disk_bandwidth / 1e6
    );
    let bars = run(&config);
    println!("{}", render(&bars));
}
