//! Parallel-in-time scaling: windowed-adjoint critical path vs W.
//!
//! ```text
//! window [--quick] [--json <path>] [--gate <min-W4-speedup>]
//! ```
//!
//! `--quick` shrinks the ladder and step count (the CI mode); `--json`
//! writes the machine-readable sweep next to the printed table; `--gate`
//! exits nonzero when the modeled W=4 critical-path speedup over the
//! monolithic pipeline falls below the given floor, or when any windowed
//! gradient drifts from the monolithic one (the CI regression gate for
//! the parallel-in-time engine: a broken coarse propagator, a stuck
//! Parareal iteration, or a serialized reverse pass shows up here).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut gate: Option<f64> = None;
    let mut quick = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => json_path = iter.next().cloned(),
            "--gate" => gate = iter.next().and_then(|v| v.parse().ok()),
            "--quick" => quick = true,
            other => {
                eprintln!(
                    "unknown argument {other:?} \
                     (usage: window [--quick] [--json <path>] [--gate <x>])"
                );
                return ExitCode::from(2);
            }
        }
    }

    let window_counts = [1usize, 2, 4, 8];
    eprintln!("running parallel-in-time scaling over W in {window_counts:?} ...");
    let scaling = if quick {
        masc_bench::window::run_opts(&window_counts, 8, 240, 3)
    } else {
        masc_bench::window::run(&window_counts)
    };
    println!("{}", masc_bench::window::render(&scaling));

    if let Some(path) = json_path {
        let json = masc_bench::window::render_json(&scaling);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }

    if let Some(floor) = gate {
        let Some(w4) = scaling.points.iter().find(|p| p.w == 4) else {
            eprintln!("gate FAILED: scaling sweep is missing the W=4 point");
            return ExitCode::FAILURE;
        };
        // Gate invariants: the speedup is monolithic-measured-serially
        // over the modeled W-lane critical path (from the engine's own
        // lane-time tables), never wall clock of a threaded run — a
        // 1–2 core CI box must produce the same ratio as a 32-core one.
        // Correctness is part of the gate: a "fast" windowed run with
        // drifted gradients is a regression, not a win.
        if w4.max_rel_err > 1e-6 {
            eprintln!(
                "gate FAILED: W=4 gradient error {:.3e} exceeds 1e-6",
                w4.max_rel_err
            );
            return ExitCode::FAILURE;
        }
        if w4.speedup >= floor {
            eprintln!(
                "gate ok: W=4 modeled critical-path speedup {:.2}x >= {floor:.2}x \
                 (gradients within {:.1e} of monolithic)",
                w4.speedup, w4.max_rel_err
            );
        } else {
            eprintln!(
                "gate FAILED: W=4 modeled critical-path speedup {:.2}x < {floor:.2}x floor",
                w4.speedup
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
