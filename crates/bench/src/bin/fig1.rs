//! Regenerates paper Fig. 1 (Jacobian storage cost vs circuit size).
//! `--scale <f>` multiplies the size sweep (default 1.0).

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = masc_bench::parse_scale(&args, 1.0);
    let sizes: Vec<usize> = [10usize, 20, 40, 80, 160]
        .iter()
        .map(|&s| ((s as f64 * scale).round() as usize).max(2))
        .collect();
    eprintln!("running fig1 over sizes {sizes:?} ...");
    let points = masc_bench::fig1::run(&sizes, 60);
    println!("{}", masc_bench::fig1::render(&points));
}
