fn main() {
    let spec = masc_datasets::registry::table2_datasets()
        .into_iter()
        .find(|s| s.name == "smult20")
        .unwrap();
    let (mut ckt, tran) = spec.build_circuit(1.0);
    let t0 = std::time::Instant::now();
    let mut sys = ckt.elaborate().unwrap();
    println!("n = {}", sys.n);
    let dc = masc_circuit::dc::dc_operating_point(
        &ckt,
        &mut sys,
        &masc_circuit::NewtonOptions::default(),
    );
    println!(
        "dc: {:?} in {:.1}s",
        dc.as_ref()
            .map(|d| (d.stats.iterations, d.gmin_stages))
            .map_err(|e| e.to_string()),
        t0.elapsed().as_secs_f64()
    );
    let t0 = std::time::Instant::now();
    let r = masc_circuit::transient::transient(&ckt, &mut sys, &tran, &mut masc_circuit::NullSink);
    match r {
        Ok(r) => println!(
            "tran: {} steps, {} newton iters, {:.1}s",
            r.stats.steps,
            r.stats.newton_iterations,
            t0.elapsed().as_secs_f64()
        ),
        Err(e) => println!("tran failed: {e}"),
    }
}
