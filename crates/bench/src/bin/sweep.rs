//! Batched-sweep scaling: per-instance marginal cost vs batch size.
//!
//! ```text
//! sweep [--quick] [--json <path>] [--gate <max-N8-marginal-over-N1>]
//! ```
//!
//! `--quick` shrinks the ladder and step count (the CI mode); `--json`
//! writes the machine-readable sweep next to the printed table; `--gate`
//! exits nonzero when the per-instance marginal cost at N=8 — seconds on
//! the modeled critical path, or bytes on the wire — fails to come in
//! under the given fraction of the N=1 cost (the CI regression gate for
//! the batch engine's economy of scale: a broken cross-instance predictor
//! or a serialized solver section shows up here).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut gate: Option<f64> = None;
    let mut quick = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => json_path = iter.next().cloned(),
            "--gate" => gate = iter.next().and_then(|v| v.parse().ok()),
            "--quick" => quick = true,
            other => {
                eprintln!(
                    "unknown argument {other:?} \
                     (usage: sweep [--quick] [--json <path>] [--gate <x>])"
                );
                return ExitCode::from(2);
            }
        }
    }

    let batch_sizes = [1usize, 2, 4, 8];
    eprintln!("running batched-sweep scaling over N in {batch_sizes:?} ...");
    let sweep = if quick {
        masc_bench::sweep::run_opts(&batch_sizes, 12, 60, 2)
    } else {
        masc_bench::sweep::run(&batch_sizes)
    };
    println!("{}", masc_bench::sweep::render(&sweep));

    if let Some(path) = json_path {
        let json = masc_bench::sweep::render_json(&sweep);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }

    if let Some(ceiling) = gate {
        let (Some(one), Some(eight)) = (
            sweep.points.iter().find(|p| p.n == 1),
            sweep.points.iter().find(|p| p.n == 8),
        ) else {
            eprintln!("gate FAILED: sweep is missing the N=1 or N=8 point");
            return ExitCode::FAILURE;
        };
        // Gate invariant: both sides of the seconds ratio come from the
        // *modeled* critical path (serial + parallel/N from a serially
        // measured split), never from wall clock of a threaded run — a
        // 1–2 core CI box must produce the same ratio as a 32-core one.
        // (At N=1 the modeled path equals the serial measurement by
        // construction; using `modeled_seconds` keeps the invariant
        // explicit rather than coincidental.)
        let sec_ratio = eight.marginal_seconds / one.modeled_seconds.max(1e-12);
        let byte_ratio = eight.marginal_bytes / (one.super_tensor_bytes.max(1)) as f64;
        if sec_ratio < ceiling && byte_ratio < ceiling {
            eprintln!(
                "gate ok: N=8 marginal cost at {sec_ratio:.2}x (seconds) and \
                 {byte_ratio:.2}x (bytes) of the N=1 cost, both < {ceiling:.2}x"
            );
        } else {
            eprintln!(
                "gate FAILED: N=8 marginal cost {sec_ratio:.2}x (seconds), \
                 {byte_ratio:.2}x (bytes) vs the {ceiling:.2}x ceiling"
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
