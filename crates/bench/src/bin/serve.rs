//! Serve-cache economics: cold (miss) vs replay (hit) latency.
//!
//! ```text
//! serve [--quick] [--json <path>] [--gate <min-speedup>]
//! ```
//!
//! `--quick` shrinks the ladder and step count (the CI mode); `--json`
//! writes the machine-readable results next to the printed table;
//! `--gate` exits nonzero when the largest workload's hit latency fails
//! to come in at least the given factor under its miss latency (the CI
//! regression gate for the serve cache: a hit that silently re-runs the
//! forward pass, or a decode path that got pathologically slow, shows up
//! here).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut gate: Option<f64> = None;
    let mut quick = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => json_path = iter.next().cloned(),
            "--gate" => gate = iter.next().and_then(|v| v.parse().ok()),
            "--quick" => quick = true,
            other => {
                eprintln!(
                    "unknown argument {other:?} \
                     (usage: serve [--quick] [--json <path>] [--gate <x>])"
                );
                return ExitCode::from(2);
            }
        }
    }

    eprintln!("running serve miss-vs-hit latency ...");
    let bench = if quick {
        masc_bench::serve::run_opts(&[8, 16], 150, 2)
    } else {
        masc_bench::serve::run()
    };
    println!("{}", masc_bench::serve::render(&bench));

    if let Some(path) = json_path {
        let json = masc_bench::serve::render_json(&bench);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }

    if let Some(floor) = gate {
        // Gate on the largest workload: the bigger the forward pass, the
        // more a hit has to gain — a regression that shrinks the margin
        // shows first where the margin should be widest.
        let Some(p) = bench.points.last() else {
            eprintln!("gate FAILED: bench produced no points");
            return ExitCode::FAILURE;
        };
        if p.speedup >= floor {
            eprintln!(
                "gate ok: cache hit {:.1}x faster than miss at {} stages, >= {floor:.1}x",
                p.speedup, p.stages
            );
        } else {
            eprintln!(
                "gate FAILED: cache hit only {:.1}x faster than miss at {} stages \
                 vs the {floor:.1}x floor",
                p.speedup, p.stages
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
