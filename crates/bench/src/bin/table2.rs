//! Regenerates paper Table2 (see `masc_bench::table2`). `--scale <f>` sizes
//! the workloads (default 0.25; the paper's full sizes need a large server).

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = masc_bench::parse_scale(&args, 0.25);
    eprintln!("running table2 at scale {scale} ...");
    let rows = masc_bench::table2::run(scale);
    println!("{}", masc_bench::table2::render(&rows));
}
