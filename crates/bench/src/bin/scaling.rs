//! Thread-scaling sweep of the parallel compressor (paper §6.4).
//!
//! ```text
//! scaling [--quick] [--json <path>] [--gate <min-4-thread-comp-speedup>]
//! ```
//!
//! `--quick` profiles a subset of the matrix pairs (the CI mode);
//! `--json` writes the machine-readable sweep next to the printed table;
//! `--gate` exits nonzero when the modeled 4-thread compression speedup
//! falls below the floor (the CI regression gate for chunk independence —
//! a cross-chunk dependency or serial-section regression shows up here).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut gate: Option<f64> = None;
    let mut quick = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => json_path = iter.next().cloned(),
            "--gate" => gate = iter.next().and_then(|v| v.parse().ok()),
            "--quick" => quick = true,
            other => {
                eprintln!(
                    "unknown argument {other:?} \
                     (usage: scaling [--quick] [--json <path>] [--gate <x>])"
                );
                return ExitCode::from(2);
            }
        }
    }

    let counts = [1usize, 2, 4, 8, 16];
    eprintln!("running thread scaling over {counts:?} (critical-path model) ...");
    let sweep = if quick {
        masc_bench::scaling::run_opts(&counts, 60, 2)
    } else {
        masc_bench::scaling::run(&counts)
    };
    println!("{}", masc_bench::scaling::render(&sweep));

    if let Some(path) = json_path {
        let json = masc_bench::scaling::render_json(&sweep);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }

    if let Some(floor) = gate {
        match sweep.points.iter().find(|p| p.threads == 4) {
            Some(p) if p.comp_speedup >= floor => {
                eprintln!(
                    "gate ok: 4-thread compress speedup {:.2}x >= {floor:.2}x \
                     (decompress {:.2}x)",
                    p.comp_speedup, p.decomp_speedup
                );
            }
            Some(p) => {
                eprintln!(
                    "gate FAILED: 4-thread compress speedup {:.2}x < {floor:.2}x",
                    p.comp_speedup
                );
                return ExitCode::FAILURE;
            }
            None => {
                eprintln!("gate FAILED: sweep has no 4-thread point");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
