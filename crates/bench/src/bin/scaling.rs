//! Thread-scaling sweep of the parallel compressor (paper §6.4).

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut counts = vec![1usize, 2, 4, 8, 16];
    counts.retain(|&c| c <= cores.max(2) * 2);
    eprintln!("running thread scaling over {counts:?} ({cores} cores available) ...");
    let points = masc_bench::scaling::run(&counts);
    println!("{}", masc_bench::scaling::render(&points));
}
