//! Serve-layer cache economics: cold (miss) vs replay (hit) latency.
//!
//! The claim this bench pins is the tentpole of `masc-serve`: a cache hit
//! answers a sensitivity job by replaying **only the reverse pass** from
//! the content-addressed compressed tensors — the Newton-iterated forward
//! transient, the device evaluations, and the compression encode are all
//! skipped. On a workload whose forward pass does real nonlinear work
//! (a sine-driven diode ladder, several Newton iterations per step), the
//! hit must come in far under the miss.
//!
//! Both sides are measured serially on one worker (min over repeats, the
//! stable estimate under additive timer noise), so the ratio is
//! independent of the machine's core count — the same invariant the
//! scaling and sweep gates rely on.

use crate::render_table;
use masc_serve::{JobRequest, ObjectiveSpec, ParamSelector, ServeConfig, Server};
use std::time::Instant;

/// One ladder-size measurement.
#[derive(Debug, Clone)]
pub struct Point {
    /// Diode-ladder stages (one nonlinear node each).
    pub stages: usize,
    /// Accepted forward steps of the cold run.
    pub forward_steps: usize,
    /// Newton iterations of the cold run's forward pass.
    pub newton_iterations: usize,
    /// Cold-run latency: full pipeline, cache cold (min over repeats).
    pub miss_seconds: f64,
    /// Hit latency: reverse replay from the cached tensors (min over
    /// repeats).
    pub hit_seconds: f64,
    /// `miss_seconds / hit_seconds`.
    pub speedup: f64,
    /// Encoded cache-entry footprint in the memory tier.
    pub entry_bytes: usize,
}

/// One full miss-vs-hit sweep over ladder sizes.
#[derive(Debug, Clone)]
pub struct ServeBench {
    /// Per-size results, in the order requested.
    pub points: Vec<Point>,
    /// Transient steps per job.
    pub steps: usize,
    /// Timing repeats (minimum taken).
    pub repeats: usize,
}

/// The workload deck: a sine-driven diode RC ladder. The diodes put
/// several Newton iterations behind every accepted step, so the forward
/// pass the cache hit skips carries real cost.
fn ladder_deck(stages: usize, steps: usize) -> String {
    let mut deck = String::from("* serve bench diode ladder\nV1 n0 0 SIN(0 1.5 2e7)\n");
    for s in 0..stages {
        deck.push_str(&format!("RS{s} n{s} n{} 220\n", s + 1));
        deck.push_str(&format!("CL{s} n{} 0 3e-12\n", s + 1));
        deck.push_str(&format!("DL{s} n{} 0 IS=1e-14 CJ0=2p\n", s + 1));
        deck.push_str(&format!("RG{s} n{} 0 1e5\n", s + 1));
    }
    let dt = 5e-9;
    deck.push_str(&format!(".tran {} {}\n.end\n", dt, dt * steps as f64));
    deck
}

fn ladder_request(stages: usize, steps: usize) -> JobRequest {
    JobRequest {
        id: "bench".to_string(),
        objectives: vec![ObjectiveSpec::FinalValue {
            node: format!("n{stages}"),
        }],
        // One parameter keeps the reverse pass lean — the quantity under
        // test is forward-work avoidance, not gradient fan-out.
        params: ParamSelector::Named(vec!["RS0.r".to_string()]),
        deck: ladder_deck(stages, steps),
    }
}

/// Runs the miss-vs-hit sweep at default scale.
pub fn run() -> ServeBench {
    run_opts(&[8, 16, 32], 400, 3)
}

/// Runs the sweep over `stage_sizes` ladders for `steps` transient steps,
/// timing each side `repeats` times and keeping the minimum.
///
/// # Panics
///
/// Panics if the workload deck fails to run or a resubmission misses the
/// cache — both indicate a broken serve layer, not a slow machine.
pub fn run_opts(stage_sizes: &[usize], steps: usize, repeats: usize) -> ServeBench {
    let mut points = Vec::new();
    for &stages in stage_sizes {
        let req = ladder_request(stages, steps);
        let cfg = ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        };

        // Miss side: every repeat gets a fresh server so the cache is
        // genuinely cold.
        let mut miss_seconds = f64::INFINITY;
        let mut forward_steps = 0;
        let mut newton_iterations = 0;
        for _ in 0..repeats.max(1) {
            let server = Server::new(cfg.clone()).expect("bench server");
            let t0 = Instant::now();
            let cold = server.submit(&req).expect("bench cold run");
            miss_seconds = miss_seconds.min(t0.elapsed().as_secs_f64());
            assert!(!cold.hit, "fresh server must miss");
            forward_steps = cold.tran_stats.steps;
            newton_iterations = cold.tran_stats.newton_iterations;
        }

        // Hit side: one warm server, repeated replays.
        let server = Server::new(cfg).expect("bench server");
        let cold = server.submit(&req).expect("bench warmup run");
        assert!(!cold.hit);
        let entry_bytes = server.cache_metrics().mem_bytes;
        let mut hit_seconds = f64::INFINITY;
        // A hit is ~an order of magnitude cheaper than a miss, so its
        // single-shot timing is proportionally noisier; triple the repeat
        // count on this side to stabilize the min.
        for _ in 0..repeats.max(1) * 3 {
            let t0 = Instant::now();
            let hit = server.submit(&req).expect("bench hit run");
            hit_seconds = hit_seconds.min(t0.elapsed().as_secs_f64());
            assert!(hit.hit, "warm resubmission must hit");
            assert_eq!(hit.tran_stats.steps, 0, "hit must skip the forward pass");
        }

        points.push(Point {
            stages,
            forward_steps,
            newton_iterations,
            miss_seconds,
            hit_seconds,
            speedup: miss_seconds / hit_seconds.max(1e-12),
            entry_bytes,
        });
    }
    ServeBench {
        points,
        steps,
        repeats,
    }
}

/// Renders the sweep as the human-readable results table.
pub fn render(bench: &ServeBench) -> String {
    let data: Vec<Vec<String>> = bench
        .points
        .iter()
        .map(|p| {
            vec![
                p.stages.to_string(),
                p.forward_steps.to_string(),
                p.newton_iterations.to_string(),
                format!("{:.2}", p.miss_seconds * 1e3),
                format!("{:.2}", p.hit_seconds * 1e3),
                format!("{:.1}x", p.speedup),
                p.entry_bytes.to_string(),
            ]
        })
        .collect();
    let mut out = render_table(
        &[
            "Stages",
            "Steps",
            "Newton",
            "Miss ms",
            "Hit ms",
            "Speedup",
            "Entry bytes",
        ],
        &data,
    );
    out.push_str(&format!(
        "({} transient steps, min of {} repeats; both sides single-worker serial \
         wall time, so the ratio is core-count independent)\n",
        bench.steps, bench.repeats
    ));
    out
}

/// Renders the sweep as the machine-readable `BENCH_serve.json` payload.
pub fn render_json(bench: &ServeBench) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"workload\": {{\"family\": \"diode-ladder\", \"steps\": {}, \"repeats\": {}}},\n",
        bench.steps, bench.repeats
    ));
    out.push_str("  \"model\": \"serial-single-worker\",\n  \"points\": [\n");
    for (i, p) in bench.points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"stages\": {}, \"forward_steps\": {}, \"newton_iterations\": {}, \
             \"miss_seconds\": {:.6}, \"hit_seconds\": {:.6}, \"speedup\": {:.2}, \
             \"entry_bytes\": {}}}{}\n",
            p.stages,
            p.forward_steps,
            p.newton_iterations,
            p.miss_seconds,
            p.hit_seconds,
            p.speedup,
            p.entry_bytes,
            if i + 1 == bench.points.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_beat_misses() {
        let bench = run_opts(&[4], 60, 1);
        assert_eq!(bench.points.len(), 1);
        let p = &bench.points[0];
        assert!(p.forward_steps > 0);
        assert!(p.newton_iterations > p.forward_steps, "diodes must iterate");
        assert!(p.entry_bytes > 0);
        // The CI gate asserts the real margin; at test scale just pin the
        // direction.
        assert!(
            p.speedup > 1.0,
            "hit must be faster than miss: {:?}",
            bench.points
        );
        let text = render(&bench);
        assert!(text.contains("Speedup"));
        let json = render_json(&bench);
        assert!(json.contains("\"speedup\""));
    }
}
