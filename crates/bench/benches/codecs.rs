//! Criterion micro-benchmarks: the compression stack's hot loops.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use masc_baselines::all_baselines;
use masc_bitio::{BitReader, BitWriter};
use masc_compress::residual::{decode_residual, encode_residual, ResidualState};
use masc_compress::{compress_matrix, decompress_matrix, CompressStats, MascConfig, StampMaps};
use masc_sparse::TripletMatrix;

/// A Jacobian-like value stream: mostly constant with a varying minority.
fn jacobian_stream(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let base = if i % 3 == 0 { 2e-3 } else { -1e-3 };
            if i % 4 == 0 {
                base * (1.0 + 1e-5 * (i as f64 * 0.001).sin())
            } else {
                base
            }
        })
        .collect()
}

fn bench_bitio(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitio");
    group.throughput(Throughput::Bytes(8 * 4096));
    group.bench_function("write_bits_mixed", |b| {
        b.iter(|| {
            let mut w = BitWriter::with_capacity(8 * 4096);
            for i in 0..4096u64 {
                w.write_bits(i, ((i % 63) + 1) as u32);
            }
            w.into_bytes()
        })
    });
    let mut w = BitWriter::new();
    for i in 0..4096u64 {
        w.write_bits(i, ((i % 63) + 1) as u32);
    }
    let bytes = w.into_bytes();
    group.bench_function("read_bits_mixed", |b| {
        b.iter(|| {
            let mut r = BitReader::new(&bytes);
            let mut acc = 0u64;
            for i in 0..4096u64 {
                acc ^= r.read_bits(((i % 63) + 1) as u32).expect("in range");
            }
            acc
        })
    });
    group.finish();
}

fn bench_residual_coder(c: &mut Criterion) {
    let values = jacobian_stream(65_536);
    let residuals: Vec<u64> = values
        .windows(2)
        .map(|w| w[0].to_bits() ^ w[1].to_bits())
        .collect();
    let mut group = c.benchmark_group("residual");
    group.throughput(Throughput::Bytes(8 * residuals.len() as u64));
    group.bench_function("encode", |b| {
        b.iter(|| {
            let mut stats = CompressStats::new();
            let mut w = BitWriter::with_capacity(residuals.len());
            let mut st = ResidualState::new();
            for &r in &residuals {
                encode_residual(&mut w, &mut st, r, &mut stats);
            }
            w.into_bytes()
        })
    });
    let mut stats = CompressStats::new();
    let mut w = BitWriter::new();
    let mut st = ResidualState::new();
    for &r in &residuals {
        encode_residual(&mut w, &mut st, r, &mut stats);
    }
    let bytes = w.into_bytes();
    group.bench_function("decode", |b| {
        b.iter(|| {
            let mut r = BitReader::new(&bytes);
            let mut st = ResidualState::new();
            let mut acc = 0u64;
            for _ in 0..residuals.len() {
                acc ^= decode_residual(&mut r, &mut st).expect("valid");
            }
            acc
        })
    });
    group.finish();
}

fn bench_masc_matrix(c: &mut Criterion) {
    // A banded pattern like a mid-size circuit.
    let n = 2000usize;
    let mut t = TripletMatrix::new(n, n);
    for i in 0..n {
        for j in i.saturating_sub(2)..(i + 3).min(n) {
            t.add(i, j, 1.0);
        }
    }
    let pattern = t.to_csr().pattern().clone();
    let maps = StampMaps::new(&pattern);
    let nnz = pattern.nnz();
    let cur = jacobian_stream(nnz);
    let reference: Vec<f64> = cur.iter().map(|v| v * (1.0 + 1e-9)).collect();

    let mut group = c.benchmark_group("masc_matrix");
    group.throughput(Throughput::Bytes(8 * nnz as u64));
    for (label, config) in [
        ("bestfit", MascConfig::default().with_markov(false)),
        ("markov", MascConfig::default()),
    ] {
        group.bench_with_input(BenchmarkId::new("compress", label), &config, |b, cfg| {
            b.iter(|| compress_matrix(&cur, &reference, &maps, cfg))
        });
        let (bytes, _) = compress_matrix(&cur, &reference, &maps, &config);
        group.bench_with_input(BenchmarkId::new("decompress", label), &bytes, |b, bytes| {
            b.iter(|| decompress_matrix(bytes, &reference, &maps).expect("valid"))
        });
    }
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let values = jacobian_stream(32_768);
    let mut group = c.benchmark_group("baselines");
    group.throughput(Throughput::Bytes(8 * values.len() as u64));
    group.sample_size(20);
    for compressor in all_baselines() {
        group.bench_function(BenchmarkId::new("compress", compressor.name()), |b| {
            b.iter(|| compressor.compress(&values))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_bitio,
    bench_residual_coder,
    bench_masc_matrix,
    bench_baselines
);
criterion_main!(benches);
