//! Micro-benchmarks of the compression stack's hot loops (testkit bench
//! runner; run with `cargo bench -p masc-bench --bench codecs`).

use masc_baselines::all_baselines;
use masc_bitio::{BitReader, BitWriter};
use masc_compress::residual::{decode_residual, encode_residual, ResidualState};
use masc_compress::{compress_matrix, decompress_matrix, CompressStats, MascConfig, StampMaps};
use masc_sparse::TripletMatrix;
use masc_testkit::bench::{black_box, Bench};

/// A Jacobian-like value stream: mostly constant with a varying minority.
fn jacobian_stream(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let base = if i % 3 == 0 { 2e-3 } else { -1e-3 };
            if i % 4 == 0 {
                base * (1.0 + 1e-5 * (i as f64 * 0.001).sin())
            } else {
                base
            }
        })
        .collect()
}

fn bench_bitio(bench: &mut Bench) {
    let mut group = bench.group("bitio");
    group.throughput_bytes(8 * 4096);
    group.bench("write_bits_mixed", || {
        let mut w = BitWriter::with_capacity(8 * 4096);
        for i in 0..4096u64 {
            w.write_bits(i, ((i % 63) + 1) as u32);
        }
        w.into_bytes()
    });
    let mut w = BitWriter::new();
    for i in 0..4096u64 {
        w.write_bits(i, ((i % 63) + 1) as u32);
    }
    let bytes = w.into_bytes();
    group.bench("read_bits_mixed", || {
        let mut r = BitReader::new(&bytes);
        let mut acc = 0u64;
        for i in 0..4096u64 {
            acc ^= r.read_bits(((i % 63) + 1) as u32).expect("in range");
        }
        acc
    });
}

fn bench_residual_coder(bench: &mut Bench) {
    let values = jacobian_stream(65_536);
    let residuals: Vec<u64> = values
        .windows(2)
        .map(|w| w[0].to_bits() ^ w[1].to_bits())
        .collect();
    let mut group = bench.group("residual");
    group.throughput_bytes(8 * residuals.len() as u64);
    group.bench("encode", || {
        let mut stats = CompressStats::new();
        let mut w = BitWriter::with_capacity(residuals.len());
        let mut st = ResidualState::new();
        for &r in &residuals {
            encode_residual(&mut w, &mut st, r, &mut stats);
        }
        w.into_bytes()
    });
    let mut stats = CompressStats::new();
    let mut w = BitWriter::new();
    let mut st = ResidualState::new();
    for &r in &residuals {
        encode_residual(&mut w, &mut st, r, &mut stats);
    }
    let bytes = w.into_bytes();
    group.bench("decode", || {
        let mut r = BitReader::new(&bytes);
        let mut st = ResidualState::new();
        let mut acc = 0u64;
        for _ in 0..residuals.len() {
            acc ^= decode_residual(&mut r, &mut st).expect("valid");
        }
        acc
    });
}

fn bench_masc_matrix(bench: &mut Bench) {
    // A banded pattern like a mid-size circuit.
    let n = 2000usize;
    let mut t = TripletMatrix::new(n, n);
    for i in 0..n {
        for j in i.saturating_sub(2)..(i + 3).min(n) {
            t.add(i, j, 1.0);
        }
    }
    let pattern = t.to_csr().pattern().clone();
    let maps = StampMaps::new(&pattern);
    let nnz = pattern.nnz();
    let cur = jacobian_stream(nnz);
    let reference: Vec<f64> = cur.iter().map(|v| v * (1.0 + 1e-9)).collect();

    let mut group = bench.group("masc_matrix");
    group.throughput_bytes(8 * nnz as u64);
    for (label, config) in [
        ("bestfit", MascConfig::default().with_markov(false)),
        ("markov", MascConfig::default()),
    ] {
        group.bench(&format!("compress/{label}"), || {
            compress_matrix(&cur, &reference, &maps, &config)
        });
        let (bytes, _) = compress_matrix(&cur, &reference, &maps, &config);
        group.bench(&format!("decompress/{label}"), || {
            decompress_matrix(black_box(&bytes), &reference, &maps).expect("valid")
        });
    }
}

fn bench_baselines(bench: &mut Bench) {
    let values = jacobian_stream(32_768);
    let mut group = bench.group("baselines");
    group.throughput_bytes(8 * values.len() as u64);
    group.sample_size(10);
    for compressor in all_baselines() {
        group.bench(&format!("compress/{}", compressor.name()), || {
            compressor.compress(&values)
        });
    }
}

fn main() {
    let mut bench = Bench::from_args();
    bench_bitio(&mut bench);
    bench_residual_coder(&mut bench);
    bench_masc_matrix(&mut bench);
    bench_baselines(&mut bench);
    bench.finish();
}
