//! Benchmarks of the simulation pipeline: sparse LU, transient stepping,
//! and the per-store adjoint reverse pass (testkit bench runner; run with
//! `cargo bench -p masc-bench --bench pipeline`).

use masc_adjoint::{adjoint_sensitivities, ForwardRecord, Objective, StoreConfig, TensorLayout};
use masc_circuit::transient::{transient, NullSink, TranOptions};
use masc_compress::MascConfig;
use masc_datasets::generators::mos_inverter_chain;
use masc_sparse::{LuFactors, TripletMatrix};
use masc_testkit::bench::Bench;

fn bench_sparse_lu(bench: &mut Bench) {
    let mut group = bench.group("sparse_lu");
    group.sample_size(30);
    for &n in &[200usize, 1000] {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.add(i, i, 4.0 + (i as f64) * 1e-3);
            if i > 0 {
                t.add(i, i - 1, -1.0);
                t.add(i - 1, i, -1.0);
            }
            let far = (i * 17) % n;
            if far != i {
                t.add(i, far, -0.1);
                t.add(far, i, -0.1);
            }
        }
        let a = t.to_csr();
        group.bench(&format!("factor/{n}"), || {
            LuFactors::factor(&a).expect("solvable")
        });
        let lu = LuFactors::factor(&a).expect("solvable");
        let rhs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        group.bench(&format!("solve_transpose/{n}"), || lu.solve_transpose(&rhs));
    }
}

fn bench_transient(bench: &mut Bench) {
    let mut group = bench.group("transient");
    group.sample_size(10);
    for &stages in &[10usize, 40] {
        group.bench(&format!("mos_chain/{stages}"), || {
            let mut ckt = mos_inverter_chain(stages, 1e-6);
            let mut sys = ckt.elaborate().expect("elaborates");
            let opts = TranOptions::new(1e-6, 2e-8);
            transient(&ckt, &mut sys, &opts, &mut NullSink).expect("runs")
        });
    }
}

fn bench_adjoint_stores(bench: &mut Bench) {
    let mut group = bench.group("adjoint_reverse");
    group.sample_size(10);
    let stores: Vec<(&str, StoreConfig)> = vec![
        ("recompute", StoreConfig::Recompute),
        ("raw", StoreConfig::RawMemory),
        ("masc", StoreConfig::Compressed(MascConfig::default())),
        (
            "hybrid",
            StoreConfig::hybrid(std::env::temp_dir().join("masc-bench"), None),
        ),
        (
            "pipelined",
            StoreConfig::pipelined(StoreConfig::hybrid(
                std::env::temp_dir().join("masc-bench"),
                None,
            )),
        ),
    ];
    for (label, store) in stores {
        group.bench(&format!("store/{label}"), || {
            let mut ckt = mos_inverter_chain(20, 1e-6);
            let mut sys = ckt.elaborate().expect("elaborates");
            let opts = TranOptions::new(1e-6, 1e-8);
            let mut record =
                ForwardRecord::new(TensorLayout::of(&sys), &store).expect("store init");
            transient(&ckt, &mut sys, &opts, &mut record).expect("runs");
            let objectives = [Objective::Integral { unknown: 2 }];
            let params = [ckt.find_param("RL0.r").expect("param")];
            let (meta, reader) = record.into_parts().expect("reader");
            adjoint_sensitivities(&ckt, &mut sys, &meta, reader, &objectives, &params)
                .expect("adjoint runs")
        });
    }
}

fn main() {
    let mut bench = Bench::from_args();
    bench_sparse_lu(&mut bench);
    bench_transient(&mut bench);
    bench_adjoint_stores(&mut bench);
    bench.finish();
}
