//! Property tests: sparse LU vs dense reference, pattern invariants
//! (masc-testkit).

use masc_sparse::{
    lu::LuOptions, CsrMatrix, LuFactors, NumericLu, Pattern, SymbolicLu, TripletMatrix,
};
use masc_testkit::gen::{self, Gen};
use masc_testkit::rng::Rng;
use masc_testkit::{prop, prop_assert, prop_assert_eq};

/// Random diagonally-dominant sparse matrices (always solvable).
fn matrices(n: usize) -> impl Gen<Value = CsrMatrix> {
    gen::sparse_coords(n..n + 1, 3 * n).map(move |(_, coords)| {
        // Re-derive deterministic values from the coordinates themselves so
        // the map stays a pure function of the generated input.
        let mut t = TripletMatrix::new(n, n);
        let mut rowsum = vec![0.0f64; n];
        for (k, &(r, c)) in coords.iter().enumerate() {
            if r != c {
                let v = ((k as f64) * 0.37 + 0.11).sin();
                t.add(r, c, v);
                rowsum[r] += v.abs();
            }
        }
        for (r, s) in rowsum.iter().enumerate() {
            t.add(r, r, s + 1.0 + (r as f64) * 0.01);
        }
        t.to_csr()
    })
}

/// A matrix plus a compatible right-hand side.
fn matrix_and_rhs(n: usize) -> impl Gen<Value = (CsrMatrix, Vec<f64>)> {
    matrices(n).flat_map(move |a| {
        (
            gen::just(a),
            gen::vecs(gen::range_f64(-10.0, 10.0), n..n + 1),
        )
    })
}

prop! {
    #![cases = 64]

    fn lu_solves_match_dense((a, b) in matrix_and_rhs(12)) {
        let dense = a.to_dense();
        let x_ref = dense.solve(&b).expect("diagonally dominant is solvable");
        let lu = LuFactors::factor(&a).expect("sparse LU");
        let x = lu.solve(&b);
        for (s, d) in x.iter().zip(&x_ref) {
            prop_assert!((s - d).abs() < 1e-8 * (1.0 + d.abs()));
        }
        let xt = lu.solve_transpose(&b);
        let xt_ref = dense.solve_transpose(&b).expect("transpose solvable");
        for (s, d) in xt.iter().zip(&xt_ref) {
            prop_assert!((s - d).abs() < 1e-8 * (1.0 + d.abs()));
        }
    }

    fn lu_residual_is_small(a in matrices(20)) {
        let n = a.rows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        for rcm in [false, true] {
            let lu = LuFactors::factor_with(&a, LuOptions { rcm_ordering: rcm, ..LuOptions::default() }).unwrap();
            let x = lu.solve(&b);
            let ax = a.mul_vec(&x);
            for (l, r) in ax.iter().zip(&b) {
                prop_assert!((l - r).abs() < 1e-8);
            }
        }
    }

    fn pattern_round_trips_and_maps_are_involutions(a in matrices(15)) {
        let p = a.pattern();
        let bytes = p.to_compressed_bytes();
        let q = Pattern::from_compressed_bytes(&bytes).unwrap();
        prop_assert_eq!(p.as_ref(), &q);
        for k in 0..p.nnz() {
            if let Some(t) = p.transpose_of(k) {
                prop_assert_eq!(p.transpose_of(t), Some(k));
            }
        }
        let part = p.partition_uld();
        prop_assert_eq!(part.upper.len() + part.lower.len() + part.diag.len(), p.nnz());
    }

    fn split_factorization_is_bit_identical_to_one_shot(a in matrices(14)) {
        // Symbolic analysis + values-only refactor must reproduce the
        // one-shot factorization exactly: same fill, same pivots, and
        // bit-identical solves.
        let n = a.rows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 1.3).sin() * 2.0).collect();
        for rcm in [false, true] {
            let opts = LuOptions { rcm_ordering: rcm, ..LuOptions::default() };
            let one_shot = LuFactors::factor_with(&a, opts).unwrap();
            let sym = SymbolicLu::analyze_with(&a, opts).unwrap();
            prop_assert!(sym.matches(&a));
            let mut num = NumericLu::new(&sym);
            num.refactor(&sym, &a).unwrap();
            let split = num.factors();
            prop_assert_eq!(split.l_nnz(), one_shot.l_nnz());
            prop_assert_eq!(split.u_nnz(), one_shot.u_nnz());
            let xs = split.solve(&b);
            let xo = one_shot.solve(&b);
            for (s, o) in xs.iter().zip(&xo) {
                prop_assert_eq!(s.to_bits(), o.to_bits());
            }
            let ts = split.solve_transpose(&b);
            let to = one_shot.solve_transpose(&b);
            for (s, o) in ts.iter().zip(&to) {
                prop_assert_eq!(s.to_bits(), o.to_bits());
            }
        }
    }

    fn refactor_with_new_values_matches_fresh_factor(a in matrices(14)) {
        // Reusing one symbolic analysis across a family of matrices with
        // the same pattern must give the same answers as factoring each
        // matrix from scratch.
        let n = a.rows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.9).cos() + 0.25).collect();
        let sym = SymbolicLu::analyze(&a).unwrap();
        let mut num = NumericLu::new(&sym);
        for scale in [1.0, 1.5, 0.25, 7.0] {
            let mut scaled = a.clone();
            for v in scaled.values_mut() {
                *v *= scale;
            }
            num.refactor(&sym, &scaled).unwrap();
            let fresh = LuFactors::factor_with(&scaled, sym.options()).unwrap();
            let xr = num.factors().solve(&b);
            let xf = fresh.solve(&b);
            for (r, f) in xr.iter().zip(&xf) {
                prop_assert_eq!(r.to_bits(), f.to_bits());
            }
        }
    }

    fn mul_vec_transpose_consistent(a in matrices(10)) {
        // xᵀ(A y) == (Aᵀ x)ᵀ y for random x, y.
        let n = a.rows();
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin() + 0.5).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64).cos() - 0.3).collect();
        let ay = a.mul_vec(&y);
        let atx = a.mul_vec_transpose(&x);
        let lhs: f64 = x.iter().zip(&ay).map(|(p, q)| p * q).sum();
        let rhs: f64 = atx.iter().zip(&y).map(|(p, q)| p * q).sum();
        prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()));
    }
}

/// Matrix sizes the random sweep keeps fixed: make sure the smallest cases
/// hold too.
#[test]
fn tiny_matrices_factor_and_solve() {
    let mut rng = Rng::new(0x5041_5253);
    for n in 1..=4usize {
        let g = matrices(n);
        for _ in 0..20 {
            let a = g.generate(&mut rng);
            let b: Vec<f64> = (0..n).map(|i| i as f64 - 1.5).collect();
            let lu = LuFactors::factor(&a).expect("solvable");
            let x = lu.solve(&b);
            let ax = a.mul_vec(&x);
            for (l, r) in ax.iter().zip(&b) {
                assert!((l - r).abs() < 1e-8, "n={n}: {l} vs {r}");
            }
        }
    }
}
