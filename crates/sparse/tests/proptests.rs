//! Property tests: sparse LU vs dense reference, pattern invariants.

use masc_sparse::{lu::LuOptions, CsrMatrix, LuFactors, Pattern, TripletMatrix};
use proptest::prelude::*;

/// Random diagonally-dominant sparse matrices (always solvable).
fn matrix_strategy(n: usize) -> impl Strategy<Value = CsrMatrix> {
    let offdiag = proptest::collection::vec(
        ((0..n), (0..n), -1.0f64..1.0),
        0..(3 * n),
    );
    offdiag.prop_map(move |entries| {
        let mut t = TripletMatrix::new(n, n);
        let mut rowsum = vec![0.0f64; n];
        for &(r, c, v) in &entries {
            if r != c {
                t.add(r, c, v);
                rowsum[r] += v.abs();
            }
        }
        for (r, s) in rowsum.iter().enumerate() {
            t.add(r, r, s + 1.0 + (r as f64) * 0.01);
        }
        t.to_csr()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lu_solves_match_dense((a, b) in matrix_strategy(12).prop_flat_map(|a| {
        let n = a.rows();
        (Just(a), proptest::collection::vec(-10.0f64..10.0, n))
    })) {
        let dense = a.to_dense();
        let x_ref = dense.solve(&b).expect("diagonally dominant is solvable");
        let lu = LuFactors::factor(&a).expect("sparse LU");
        let x = lu.solve(&b);
        for (s, d) in x.iter().zip(&x_ref) {
            prop_assert!((s - d).abs() < 1e-8 * (1.0 + d.abs()));
        }
        let xt = lu.solve_transpose(&b);
        let xt_ref = dense.solve_transpose(&b).expect("transpose solvable");
        for (s, d) in xt.iter().zip(&xt_ref) {
            prop_assert!((s - d).abs() < 1e-8 * (1.0 + d.abs()));
        }
    }

    #[test]
    fn lu_residual_is_small(a in matrix_strategy(20)) {
        let n = a.rows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        for rcm in [false, true] {
            let lu = LuFactors::factor_with(&a, LuOptions { rcm_ordering: rcm, ..LuOptions::default() }).unwrap();
            let x = lu.solve(&b);
            let ax = a.mul_vec(&x);
            for (l, r) in ax.iter().zip(&b) {
                prop_assert!((l - r).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn pattern_round_trips_and_maps_are_involutions(a in matrix_strategy(15)) {
        let p = a.pattern();
        let bytes = p.to_compressed_bytes();
        let q = Pattern::from_compressed_bytes(&bytes).unwrap();
        prop_assert_eq!(p.as_ref(), &q);
        for k in 0..p.nnz() {
            if let Some(t) = p.transpose_of(k) {
                prop_assert_eq!(p.transpose_of(t), Some(k));
            }
        }
        let part = p.partition_uld();
        prop_assert_eq!(part.upper.len() + part.lower.len() + part.diag.len(), p.nnz());
    }

    #[test]
    fn mul_vec_transpose_consistent(a in matrix_strategy(10)) {
        // xᵀ(A y) == (Aᵀ x)ᵀ y for random x, y.
        let n = a.rows();
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin() + 0.5).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64).cos() - 0.3).collect();
        let ay = a.mul_vec(&y);
        let atx = a.mul_vec_transpose(&x);
        let lhs: f64 = x.iter().zip(&ay).map(|(p, q)| p * q).sum();
        let rhs: f64 = atx.iter().zip(&y).map(|(p, q)| p * q).sum();
        prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()));
    }
}
