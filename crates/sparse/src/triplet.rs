//! COO (triplet) assembly buffer for MNA stamping.
//!
//! Devices stamp contributions as `(row, col, value)` triplets; duplicate
//! coordinates accumulate, exactly like SPICE matrix stamping. The buffer is
//! converted once to CSR (establishing the shared [`Pattern`]); subsequent
//! timesteps restamp values directly into a [`CsrMatrix`] over the same
//! pattern.

use crate::{CsrMatrix, Pattern, SparseError};
use std::sync::Arc;

/// A mutable COO assembly buffer.
#[derive(Debug, Clone, Default)]
pub struct TripletMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl TripletMatrix {
    /// Creates an empty `rows`×`cols` buffer.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of raw (pre-deduplication) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no entries have been added.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Accumulates `value` at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds; stamping code indexes with
    /// compiler-verified node ids, so a violation is a programming error.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "triplet ({row}, {col}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.entries.push((row, col, value));
    }

    /// Fallible variant of [`add`](Self::add) for externally-supplied data.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] for a bad coordinate.
    pub fn try_add(&mut self, row: usize, col: usize, value: f64) -> Result<(), SparseError> {
        if row >= self.rows || col >= self.cols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                rows: self.rows,
                cols: self.cols,
            });
        }
        self.entries.push((row, col, value));
        Ok(())
    }

    /// Converts to CSR, summing duplicate coordinates.
    ///
    /// The resulting matrix owns a freshly-built shared [`Pattern`].
    pub fn to_csr(&self) -> CsrMatrix {
        let mut sorted = self.entries.clone();
        sorted.sort_by_key(|&(r, c, _)| (r, c));
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        let mut current_row = 0usize;
        let mut prev: Option<(usize, usize)> = None;
        for (r, c, v) in sorted {
            if prev == Some((r, c)) {
                *values.last_mut().expect("duplicate follows a value") += v;
                continue;
            }
            while current_row < r {
                row_ptr.push(col_idx.len());
                current_row += 1;
            }
            col_idx.push(c);
            values.push(v);
            prev = Some((r, c));
        }
        while current_row < self.rows {
            row_ptr.push(col_idx.len());
            current_row += 1;
        }
        let pattern = Pattern::new_unchecked(self.rows, self.cols, row_ptr, col_idx);
        CsrMatrix::from_parts(Arc::new(pattern), values)
            .expect("triplet assembly produces matching value count")
    }
}

impl FromIterator<(usize, usize, f64)> for TripletMatrix {
    /// Collects triplets, inferring dimensions from the maximum indices.
    fn from_iter<I: IntoIterator<Item = (usize, usize, f64)>>(iter: I) -> Self {
        let entries: Vec<_> = iter.into_iter().collect();
        let rows = entries.iter().map(|&(r, _, _)| r + 1).max().unwrap_or(0);
        let cols = entries.iter().map(|&(_, c, _)| c + 1).max().unwrap_or(0);
        Self {
            rows,
            cols,
            entries,
        }
    }
}

impl Extend<(usize, usize, f64)> for TripletMatrix {
    fn extend<I: IntoIterator<Item = (usize, usize, f64)>>(&mut self, iter: I) {
        for (r, c, v) in iter {
            self.add(r, c, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_accumulate() {
        let mut t = TripletMatrix::new(2, 2);
        t.add(0, 0, 1.0);
        t.add(0, 0, 2.5);
        t.add(1, 1, -1.0);
        let m = t.to_csr();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 0), Some(3.5));
        assert_eq!(m.get(1, 1), Some(-1.0));
        assert_eq!(m.get(0, 1), None);
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let mut t = TripletMatrix::new(3, 3);
        t.add(2, 1, 5.0);
        t.add(0, 2, 1.0);
        t.add(1, 0, 2.0);
        t.add(0, 0, 3.0);
        let m = t.to_csr();
        assert_eq!(m.pattern().col_idx(), &[0, 2, 0, 1]);
        assert_eq!(m.values(), &[3.0, 1.0, 2.0, 5.0]);
    }

    #[test]
    fn empty_rows_are_handled() {
        let mut t = TripletMatrix::new(4, 4);
        t.add(0, 0, 1.0);
        t.add(3, 3, 2.0);
        let m = t.to_csr();
        assert_eq!(m.pattern().row_ptr(), &[0, 1, 1, 1, 2]);
    }

    #[test]
    fn fully_empty_matrix() {
        let t = TripletMatrix::new(3, 3);
        let m = t.to_csr();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.pattern().row_ptr(), &[0, 0, 0, 0]);
    }

    #[test]
    fn out_of_bounds_panics() {
        let mut t = TripletMatrix::new(2, 2);
        assert!(t.try_add(2, 0, 1.0).is_err());
        assert!(t.try_add(0, 2, 1.0).is_err());
        assert!(t.try_add(1, 1, 1.0).is_ok());
        let result = std::panic::catch_unwind(move || {
            let mut t = TripletMatrix::new(2, 2);
            t.add(5, 0, 1.0);
        });
        assert!(result.is_err());
    }

    #[test]
    fn from_iterator_infers_shape() {
        let t: TripletMatrix = vec![(0, 0, 1.0), (4, 2, 2.0)].into_iter().collect();
        assert_eq!(t.rows(), 5);
        assert_eq!(t.cols(), 3);
    }

    #[test]
    fn cancellation_keeps_structural_zero() {
        // +1 and -1 at the same slot: value 0 but structurally present,
        // as required for a stable shared pattern across timesteps.
        let mut t = TripletMatrix::new(1, 1);
        t.add(0, 0, 1.0);
        t.add(0, 0, -1.0);
        let m = t.to_csr();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 0), Some(0.0));
    }
}
