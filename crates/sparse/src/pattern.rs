//! The shared CSR sparsity pattern ("shared indices").
//!
//! MASC's first technique: because every Jacobian of a transient run has the
//! same structure, the integer index arrays are stored **once**, in a
//! long-lived heap allocation, and every per-timestep matrix holds only its
//! float values plus an `Arc` to the pattern. The pattern also precomputes
//! the structural maps the spatiotemporal predictor needs:
//!
//! - `transpose_map[k]` — the value index of entry `(j, i)` for entry `k` at
//!   `(i, j)` (or `NONE` if the symmetric slot is structurally absent);
//! - `diag_index[r]` — the value index of `(r, r)`;
//! - a triangular partition of value indices into the paper's `U`, `L`, `D`
//!   regions.

use crate::SparseError;
use masc_bitio::varint;

/// Sentinel for "no such entry" in structural maps.
pub const NONE: usize = usize::MAX;

/// An immutable CSR sparsity pattern, shared between all matrices of a
/// transient run.
///
/// Construct with [`Pattern::new`] (validated) or via
/// [`TripletMatrix::to_csr`](crate::TripletMatrix::to_csr).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    /// For nz `k` at (i, j): value index of (j, i), or `NONE`.
    transpose_map: Vec<usize>,
    /// For row `r`: value index of (r, r), or `NONE`.
    diag_index: Vec<usize>,
}

impl Pattern {
    /// Builds a validated pattern from CSR index arrays.
    ///
    /// `col_idx` must be sorted and duplicate-free within each row.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidPattern`] if the arrays are
    /// inconsistent (bad lengths, unsorted or out-of-range columns, or a
    /// non-monotone `row_ptr`).
    pub fn new(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
    ) -> Result<Self, SparseError> {
        if row_ptr.len() != rows + 1 {
            return Err(SparseError::InvalidPattern(
                "row_ptr length must be rows + 1",
            ));
        }
        if row_ptr.first() != Some(&0) || row_ptr.last() != Some(&col_idx.len()) {
            return Err(SparseError::InvalidPattern(
                "row_ptr endpoints inconsistent",
            ));
        }
        for w in row_ptr.windows(2) {
            if w[0] > w[1] {
                return Err(SparseError::InvalidPattern("row_ptr not monotone"));
            }
        }
        for r in 0..rows {
            let row = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            for w in row.windows(2) {
                if w[0] >= w[1] {
                    return Err(SparseError::InvalidPattern(
                        "columns not strictly increasing within a row",
                    ));
                }
            }
            if let Some(&last) = row.last() {
                if last >= cols {
                    return Err(SparseError::InvalidPattern("column index out of range"));
                }
            }
        }
        Ok(Self::new_unchecked(rows, cols, row_ptr, col_idx))
    }

    /// Builds a pattern without validation (inputs known-good, e.g. from
    /// triplet assembly).
    pub(crate) fn new_unchecked(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
    ) -> Self {
        let mut pattern = Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            transpose_map: Vec::new(),
            diag_index: Vec::new(),
        };
        pattern.build_maps();
        pattern
    }

    fn build_maps(&mut self) {
        let nnz = self.col_idx.len();
        self.diag_index = vec![NONE; self.rows];
        self.transpose_map = vec![NONE; nnz];
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k];
                if c == r {
                    self.diag_index[r] = k;
                }
                // Locate (c, r) by binary search in row c (if square).
                if c < self.rows {
                    if let Some(t) = self.find(c, r) {
                        self.transpose_map[k] = t;
                    }
                }
            }
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of structural non-zeros.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// CSR row pointer array (length `rows + 1`).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// CSR column index array (length `nnz`).
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Value index of entry `(row, col)`, if structurally present.
    pub fn find(&self, row: usize, col: usize) -> Option<usize> {
        if row >= self.rows {
            return None;
        }
        let span = &self.col_idx[self.row_ptr[row]..self.row_ptr[row + 1]];
        span.binary_search(&col).ok().map(|i| self.row_ptr[row] + i)
    }

    /// Row of the `k`-th non-zero (linear scan over `row_ptr` via binary
    /// search).
    pub fn row_of(&self, k: usize) -> usize {
        debug_assert!(k < self.nnz());
        // partition_point gives the first row whose row_ptr exceeds k.
        self.row_ptr.partition_point(|&p| p <= k) - 1
    }

    /// Value index of the transpose partner of non-zero `k`, if present.
    pub fn transpose_of(&self, k: usize) -> Option<usize> {
        match self.transpose_map[k] {
            NONE => None,
            t => Some(t),
        }
    }

    /// Value index of the diagonal entry of `row`, if present.
    pub fn diag_of(&self, row: usize) -> Option<usize> {
        match self.diag_index.get(row) {
            Some(&NONE) | None => None,
            Some(&d) => Some(d),
        }
    }

    /// Raw transpose map (internal to the predictor; `NONE` = absent).
    pub fn transpose_map(&self) -> &[usize] {
        &self.transpose_map
    }

    /// Raw diagonal map (`NONE` = absent).
    pub fn diag_index(&self) -> &[usize] {
        &self.diag_index
    }

    /// Returns `true` if the structural pattern is symmetric (every `(i,j)`
    /// has a matching `(j,i)`). MNA matrices are structurally symmetric.
    pub fn is_structurally_symmetric(&self) -> bool {
        self.transpose_map.iter().all(|&t| t != NONE)
    }

    /// Partitions the value indices into the paper's three regions:
    /// strictly-upper `U`, strictly-lower `L`, and diagonal `D`.
    ///
    /// Returned vectors list value indices in row-major order.
    pub fn partition_uld(&self) -> Partition {
        let mut upper = Vec::new();
        let mut lower = Vec::new();
        let mut diag = Vec::new();
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k];
                if c > r {
                    upper.push(k);
                } else if c < r {
                    lower.push(k);
                } else {
                    diag.push(k);
                }
            }
        }
        Partition { upper, lower, diag }
    }

    /// Heap bytes used by the index arrays (the cost "shared indices"
    /// amortizes over all timesteps).
    pub fn index_bytes(&self) -> usize {
        (self.row_ptr.len() + self.col_idx.len()) * std::mem::size_of::<usize>()
    }

    /// Serializes the pattern with delta + varint coding (the paper's
    /// optional further index compression).
    pub fn to_compressed_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        varint::write_u64(&mut out, self.rows as u64);
        varint::write_u64(&mut out, self.cols as u64);
        let rp = varint::encode_deltas(&self.row_ptr);
        let ci = varint::encode_deltas(&self.col_idx);
        varint::write_u64(&mut out, rp.len() as u64);
        out.extend_from_slice(&rp);
        out.extend_from_slice(&ci);
        out
    }

    /// Deserializes a pattern written by [`Pattern::to_compressed_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidPattern`] on truncation or if the
    /// decoded arrays fail validation.
    pub fn from_compressed_bytes(bytes: &[u8]) -> Result<Self, SparseError> {
        let truncated = SparseError::InvalidPattern("truncated pattern bytes");
        let mut pos = 0usize;
        let take = |pos: &mut usize| -> Result<u64, SparseError> {
            let rest = bytes.get(*pos..).ok_or_else(|| truncated.clone())?;
            let (v, used) = varint::read_u64(rest).map_err(|_| truncated.clone())?;
            *pos += used;
            Ok(v)
        };
        let rows = take(&mut pos)?;
        let cols = take(&mut pos)?;
        let rp_len = take(&mut pos)?;
        let rp_end = pos
            .checked_add(rp_len as usize)
            .ok_or_else(|| truncated.clone())?;
        if rp_end > bytes.len() {
            return Err(truncated);
        }
        let row_ptr = varint::decode_deltas(&bytes[pos..rp_end]).map_err(|_| truncated.clone())?;
        let col_idx = varint::decode_deltas(&bytes[rp_end..]).map_err(|_| truncated.clone())?;
        Self::new(rows as usize, cols as usize, row_ptr, col_idx)
    }
}

/// The U/L/D partition of a pattern's value indices (paper Algorithm 1,
/// line 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Value indices with `col > row`.
    pub upper: Vec<usize>,
    /// Value indices with `col < row`.
    pub lower: Vec<usize>,
    /// Value indices with `col == row`.
    pub diag: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3×3 pattern:
    /// ```text
    /// [x x .]
    /// [x x x]
    /// [. x x]
    /// ```
    fn tridiag3() -> Pattern {
        Pattern::new(3, 3, vec![0, 2, 5, 7], vec![0, 1, 0, 1, 2, 1, 2]).unwrap()
    }

    #[test]
    fn basic_accessors() {
        let p = tridiag3();
        assert_eq!(p.rows(), 3);
        assert_eq!(p.cols(), 3);
        assert_eq!(p.nnz(), 7);
        assert_eq!(p.find(0, 0), Some(0));
        assert_eq!(p.find(1, 2), Some(4));
        assert_eq!(p.find(0, 2), None);
        assert_eq!(p.row_of(0), 0);
        assert_eq!(p.row_of(4), 1);
        assert_eq!(p.row_of(6), 2);
    }

    #[test]
    fn transpose_map_is_consistent() {
        let p = tridiag3();
        assert!(p.is_structurally_symmetric());
        for k in 0..p.nnz() {
            let t = p.transpose_of(k).unwrap();
            // transpose of transpose is self
            assert_eq!(p.transpose_of(t).unwrap(), k);
            let (i, j) = (p.row_of(k), p.col_idx()[k]);
            let (ti, tj) = (p.row_of(t), p.col_idx()[t]);
            assert_eq!((i, j), (tj, ti));
        }
    }

    #[test]
    fn diag_map() {
        let p = tridiag3();
        for r in 0..3 {
            let d = p.diag_of(r).unwrap();
            assert_eq!(p.row_of(d), r);
            assert_eq!(p.col_idx()[d], r);
        }
    }

    #[test]
    fn asymmetric_pattern_detected() {
        // (0,1) present, (1,0) absent.
        let p = Pattern::new(2, 2, vec![0, 2, 3], vec![0, 1, 1]).unwrap();
        assert!(!p.is_structurally_symmetric());
        assert_eq!(p.transpose_of(1), None);
        assert_eq!(p.transpose_of(0), Some(0)); // diagonal maps to itself
    }

    #[test]
    fn missing_diagonal() {
        let p = Pattern::new(2, 2, vec![0, 1, 2], vec![1, 0]).unwrap();
        assert_eq!(p.diag_of(0), None);
        assert_eq!(p.diag_of(1), None);
    }

    #[test]
    fn partition_uld_covers_everything() {
        let p = tridiag3();
        let part = p.partition_uld();
        assert_eq!(part.upper, vec![1, 4]);
        assert_eq!(part.lower, vec![2, 5]);
        assert_eq!(part.diag, vec![0, 3, 6]);
        let total = part.upper.len() + part.lower.len() + part.diag.len();
        assert_eq!(total, p.nnz());
    }

    #[test]
    fn validation_rejects_bad_inputs() {
        assert!(Pattern::new(2, 2, vec![0, 1], vec![0]).is_err()); // row_ptr short
        assert!(Pattern::new(2, 2, vec![0, 2, 1], vec![0, 1]).is_err()); // not monotone
        assert!(Pattern::new(2, 2, vec![0, 2, 2], vec![1, 0]).is_err()); // unsorted row
        assert!(Pattern::new(2, 2, vec![0, 1, 2], vec![0, 5]).is_err()); // col range
        assert!(Pattern::new(2, 2, vec![0, 2, 2], vec![0, 0]).is_err()); // duplicate col
        assert!(Pattern::new(2, 2, vec![1, 2, 2], vec![0, 0]).is_err()); // row_ptr[0] != 0
    }

    #[test]
    fn compressed_round_trip() {
        let p = tridiag3();
        let bytes = p.to_compressed_bytes();
        let q = Pattern::from_compressed_bytes(&bytes).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn compressed_is_smaller_than_raw_for_sorted_indices() {
        // A banded 1000×1000 pattern.
        let n = 1000usize;
        let mut row_ptr = vec![0usize];
        let mut col_idx = Vec::new();
        for r in 0..n {
            for c in r.saturating_sub(1)..(r + 2).min(n) {
                col_idx.push(c);
            }
            row_ptr.push(col_idx.len());
        }
        let p = Pattern::new(n, n, row_ptr, col_idx).unwrap();
        let bytes = p.to_compressed_bytes();
        assert!(
            bytes.len() * 4 < p.index_bytes(),
            "{} vs {}",
            bytes.len(),
            p.index_bytes()
        );
        assert_eq!(Pattern::from_compressed_bytes(&bytes).unwrap(), p);
    }

    #[test]
    fn corrupt_bytes_rejected() {
        let p = tridiag3();
        let mut bytes = p.to_compressed_bytes();
        bytes.truncate(3);
        assert!(Pattern::from_compressed_bytes(&bytes).is_err());
        assert!(Pattern::from_compressed_bytes(&[]).is_err());
    }

    #[test]
    fn empty_pattern() {
        let p = Pattern::new(0, 0, vec![0], vec![]).unwrap();
        assert_eq!(p.nnz(), 0);
        let bytes = p.to_compressed_bytes();
        assert_eq!(Pattern::from_compressed_bytes(&bytes).unwrap(), p);
    }
}
