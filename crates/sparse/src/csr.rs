//! Numeric CSR matrices over a shared [`Pattern`].
//!
//! A [`CsrMatrix`] is just a `Vec<f64>` of non-zero values plus an
//! `Arc<Pattern>`; cloning a run's thousandth Jacobian costs one `Vec`
//! clone and one reference-count bump — this is the memory layout the MASC
//! paper's shared-indices technique prescribes.

use crate::{Pattern, SparseError};
use std::sync::Arc;

/// A sparse matrix in CSR form with a shared sparsity pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    pattern: Arc<Pattern>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Creates a matrix from a pattern and matching value array.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] if `values.len() != nnz`.
    pub fn from_parts(pattern: Arc<Pattern>, values: Vec<f64>) -> Result<Self, SparseError> {
        if values.len() != pattern.nnz() {
            return Err(SparseError::ShapeMismatch(
                "value count does not match pattern nnz",
            ));
        }
        Ok(Self { pattern, values })
    }

    /// Creates an all-zero matrix over `pattern`.
    pub fn zeros(pattern: Arc<Pattern>) -> Self {
        let values = vec![0.0; pattern.nnz()];
        Self { pattern, values }
    }

    /// The shared sparsity pattern.
    pub fn pattern(&self) -> &Arc<Pattern> {
        &self.pattern
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.pattern.rows()
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.pattern.cols()
    }

    /// Number of structural non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Non-zero values in row-major order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable non-zero values (for in-place restamping).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Consumes the matrix, returning its value array.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// Value at `(row, col)`, if structurally present.
    pub fn get(&self, row: usize, col: usize) -> Option<f64> {
        self.pattern.find(row, col).map(|k| self.values[k])
    }

    /// Sets all values to zero, keeping the structure.
    pub fn clear(&mut self) {
        self.values.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Adds `value` at `(row, col)`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] if the slot is not in the
    /// pattern — stamping must stay within the pre-elaborated structure.
    pub fn add_at(&mut self, row: usize, col: usize, value: f64) -> Result<(), SparseError> {
        match self.pattern.find(row, col) {
            Some(k) => {
                self.values[k] += value;
                Ok(())
            }
            None => Err(SparseError::IndexOutOfBounds {
                row,
                col,
                rows: self.rows(),
                cols: self.cols(),
            }),
        }
    }

    /// Dense matrix–vector product `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols(), "mul_vec dimension mismatch");
        let mut y = vec![0.0; self.rows()];
        let rp = self.pattern.row_ptr();
        let ci = self.pattern.col_idx();
        for r in 0..self.rows() {
            let mut acc = 0.0;
            for k in rp[r]..rp[r + 1] {
                acc += self.values[k] * x[ci[k]];
            }
            y[r] = acc;
        }
        y
    }

    /// Transposed product `y = Aᵀ x` without materializing the transpose.
    ///
    /// The adjoint recursion needs `Cᵀ w` at every step; doing it directly
    /// on CSR keeps the shared-pattern layout intact.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn mul_vec_transpose(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows(), "mul_vec_transpose dimension mismatch");
        let mut y = vec![0.0; self.cols()];
        let rp = self.pattern.row_ptr();
        let ci = self.pattern.col_idx();
        for r in 0..self.rows() {
            let xr = x[r];
            if xr == 0.0 {
                continue;
            }
            for k in rp[r]..rp[r + 1] {
                y[ci[k]] += self.values[k] * xr;
            }
        }
        y
    }

    /// In-place `self += alpha * other` for matrices sharing one pattern.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] if the patterns differ.
    pub fn add_scaled(&mut self, alpha: f64, other: &CsrMatrix) -> Result<(), SparseError> {
        if !Arc::ptr_eq(&self.pattern, &other.pattern) && self.pattern != other.pattern {
            return Err(SparseError::ShapeMismatch("patterns differ in add_scaled"));
        }
        for (a, &b) in self.values.iter_mut().zip(&other.values) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Builds `J = G + (1/h) C` over the common pattern — the transient
    /// Newton matrix. `self` is `G`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] if the patterns differ.
    pub fn combine_jacobian(&self, c: &CsrMatrix, h: f64) -> Result<CsrMatrix, SparseError> {
        let mut j = self.clone();
        j.add_scaled(1.0 / h, c)?;
        Ok(j)
    }

    /// Converts to a dense row-major matrix (testing / tiny systems only).
    pub fn to_dense(&self) -> crate::DenseMatrix {
        let mut d = crate::DenseMatrix::zeros(self.rows(), self.cols());
        let rp = self.pattern.row_ptr();
        let ci = self.pattern.col_idx();
        for r in 0..self.rows() {
            for k in rp[r]..rp[r + 1] {
                d[(r, ci[k])] = self.values[k];
            }
        }
        d
    }

    /// Iterator over `(row, col, value)` of all structural non-zeros.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        let rp = self.pattern.row_ptr();
        let ci = self.pattern.col_idx();
        (0..self.rows())
            .flat_map(move |r| (rp[r]..rp[r + 1]).map(move |k| (r, ci[k], self.values[k])))
    }

    /// Heap bytes of the value array (what MASC compresses per timestep).
    pub fn value_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    fn sample() -> CsrMatrix {
        let mut t = TripletMatrix::new(3, 3);
        t.add(0, 0, 4.0);
        t.add(0, 1, -1.0);
        t.add(1, 0, -1.0);
        t.add(1, 1, 4.0);
        t.add(1, 2, -1.0);
        t.add(2, 1, -1.0);
        t.add(2, 2, 4.0);
        t.to_csr()
    }

    #[test]
    fn mul_vec_matches_dense() {
        let m = sample();
        let x = [1.0, 2.0, 3.0];
        let y = m.mul_vec(&x);
        assert_eq!(y, vec![2.0, 4.0, 10.0]);
    }

    #[test]
    fn transpose_product_matches_explicit_transpose() {
        let mut t = TripletMatrix::new(2, 3);
        t.add(0, 0, 1.0);
        t.add(0, 2, 2.0);
        t.add(1, 1, 3.0);
        let m = t.to_csr();
        let x = [5.0, 7.0];
        let y = m.mul_vec_transpose(&x);
        // Aᵀ is 3×2: rows [1,0],[0,3],[2,0]
        assert_eq!(y, vec![5.0, 21.0, 10.0]);
    }

    #[test]
    fn add_scaled_and_combine() {
        let g = sample();
        let mut c = CsrMatrix::zeros(g.pattern().clone());
        for v in c.values_mut() {
            *v = 2.0;
        }
        let j = g.combine_jacobian(&c, 0.5).unwrap();
        for (k, &v) in j.values().iter().enumerate() {
            assert_eq!(v, g.values()[k] + 4.0);
        }
    }

    #[test]
    fn pattern_mismatch_rejected() {
        let a = sample();
        let mut t = TripletMatrix::new(3, 3);
        t.add(0, 0, 1.0);
        let b = t.to_csr();
        let mut a2 = a.clone();
        assert!(a2.add_scaled(1.0, &b).is_err());
    }

    #[test]
    fn equal_patterns_in_different_arcs_are_compatible() {
        let a = sample();
        let b = sample(); // separate Arc, identical structure
        let mut a2 = a.clone();
        assert!(a2.add_scaled(1.0, &b).is_ok());
    }

    #[test]
    fn add_at_respects_structure() {
        let mut m = sample();
        assert!(m.add_at(0, 0, 1.0).is_ok());
        assert_eq!(m.get(0, 0), Some(5.0));
        assert!(m.add_at(0, 2, 1.0).is_err()); // not in pattern
    }

    #[test]
    fn clear_keeps_structure() {
        let mut m = sample();
        m.clear();
        assert_eq!(m.nnz(), 7);
        assert!(m.values().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn iter_yields_row_major_triplets() {
        let m = sample();
        let triplets: Vec<_> = m.iter().collect();
        assert_eq!(triplets[0], (0, 0, 4.0));
        assert_eq!(triplets.len(), 7);
        assert!(triplets
            .windows(2)
            .all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)));
    }

    #[test]
    fn to_dense_round_trip_values() {
        let m = sample();
        let d = m.to_dense();
        for (r, c, v) in m.iter() {
            assert_eq!(d[(r, c)], v);
        }
        assert_eq!(d[(0, 2)], 0.0);
    }

    #[test]
    fn cloning_shares_the_pattern() {
        let m = sample();
        let m2 = m.clone();
        assert!(Arc::ptr_eq(m.pattern(), m2.pattern()));
    }

    #[test]
    fn value_count_validated() {
        let m = sample();
        let p = m.pattern().clone();
        assert!(CsrMatrix::from_parts(p, vec![0.0; 3]).is_err());
    }
}
