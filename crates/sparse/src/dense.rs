//! Small dense matrices: the reference implementation used by tests and a
//! fallback solver for tiny systems.
//!
//! The dense LU here (partial pivoting, `O(n³)`) is the oracle that the
//! sparse Gilbert–Peierls factorization in [`crate::lu`] is verified
//! against.

use core::fmt;
use core::ops::{Index, IndexMut};

/// A row-major dense matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a zero-filled `rows`×`cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n`×`n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "dense data length mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        (0..self.rows)
            .map(|r| {
                (0..self.cols)
                    .map(|c| self.data[r * self.cols + c] * x[c])
                    .sum()
            })
            .collect()
    }

    /// Solves `A x = b` by LU with partial pivoting.
    ///
    /// Returns `None` if the matrix is numerically singular.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `b.len() != rows`.
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(b.len(), self.rows);
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        let mut piv: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Partial pivot.
            let (mut pmax, mut prow) = (a[piv[k] * n + k].abs(), k);
            for r in (k + 1)..n {
                let v = a[piv[r] * n + k].abs();
                if v > pmax {
                    pmax = v;
                    prow = r;
                }
            }
            if pmax == 0.0 || !pmax.is_finite() {
                return None;
            }
            piv.swap(k, prow);
            let pk = piv[k];
            let diag = a[pk * n + k];
            for &pr in &piv[(k + 1)..n] {
                let factor = a[pr * n + k] / diag;
                if factor == 0.0 {
                    continue;
                }
                a[pr * n + k] = factor;
                for c in (k + 1)..n {
                    a[pr * n + c] -= factor * a[pk * n + c];
                }
            }
        }
        // Forward substitution (L has unit diagonal, stored in-place).
        let mut y = vec![0.0; n];
        for r in 0..n {
            let mut acc = x[piv[r]];
            for c in 0..r {
                acc -= a[piv[r] * n + c] * y[c];
            }
            y[r] = acc;
        }
        // Backward substitution with U.
        for r in (0..n).rev() {
            let mut acc = y[r];
            for c in (r + 1)..n {
                acc -= a[piv[r] * n + c] * x[c];
            }
            let d = a[piv[r] * n + r];
            if d == 0.0 || !d.is_finite() {
                return None;
            }
            x[r] = acc / d;
        }
        Some(x)
    }

    /// Solves `Aᵀ x = b` (via an explicit transpose; dense path is for
    /// testing only).
    ///
    /// Returns `None` if the matrix is numerically singular.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `b.len() != rows`.
    pub fn solve_transpose(&self, b: &[f64]) -> Option<Vec<f64>> {
        self.transpose().solve(b)
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self.data[r * self.cols + c];
            }
        }
        t
    }

    /// Maximum absolute entry (for error norms in tests).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, v| m.max(v.abs()))
    }
}

impl Index<(usize, usize)> for DenseMatrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for DenseMatrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                write!(f, "{:>12.4e} ", self.data[r * self.cols + c])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solves_trivially() {
        let a = DenseMatrix::identity(4);
        let b = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(a.solve(&b).unwrap(), b.to_vec());
    }

    #[test]
    fn known_system() {
        // [2 1; 1 3] x = [3; 5] → x = [4/5, 7/5]
        let a = DenseMatrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, 3.0]);
        let x = a.solve(&[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = DenseMatrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_detected() {
        let a = DenseMatrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(a.solve(&[1.0, 1.0]).is_none());
    }

    #[test]
    fn transpose_solve_matches_transposed_system() {
        let a = DenseMatrix::from_rows(2, 2, vec![2.0, 1.0, 0.0, 3.0]);
        let x = a.solve_transpose(&[2.0, 7.0]).unwrap();
        // Aᵀ = [2 0; 1 3]; x = [1, 2]
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn residual_is_small_for_random_system() {
        let n = 20;
        let mut a = DenseMatrix::zeros(n, n);
        let mut seed = 0x1234_5678u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / (1u64 << 31) as f64 - 0.5
        };
        for r in 0..n {
            for c in 0..n {
                a[(r, c)] = next();
            }
            a[(r, r)] += (n as f64) * 2.0; // diagonally dominant
        }
        let b: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let x = a.solve(&b).unwrap();
        let ax = a.mul_vec(&x);
        for (l, r) in ax.iter().zip(&b) {
            assert!((l - r).abs() < 1e-9, "{l} vs {r}");
        }
    }
}
