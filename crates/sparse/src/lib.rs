//! Sparse linear-algebra substrate for the MASC stack.
//!
//! Circuit simulation via Modified Nodal Analysis produces a sequence of
//! sparse Jacobian matrices that all share one sparsity pattern (the union
//! of all device stamps, fixed after netlist elaboration). This crate models
//! that directly:
//!
//! - [`Pattern`] — an immutable, shareable CSR sparsity pattern. This *is*
//!   the paper's "shared indices" object: one allocation of `row_ptr` /
//!   `col_idx` serves every timestep's matrix, and the stamp-partner maps
//!   (transpose map, diagonal map) that the spatiotemporal predictor needs
//!   are precomputed here once.
//! - [`CsrMatrix`] — numeric values over an `Arc<Pattern>`.
//! - [`TripletMatrix`] — a COO assembly buffer for stamping.
//! - [`lu`] — sparse LU factorization (Gilbert–Peierls, partial pivoting)
//!   with forward and **transpose** solves; the adjoint pass is built on
//!   `solve_transpose`.
//! - [`dense`] — small dense matrices used as reference implementations in
//!   tests and for tiny systems.
//! - [`rcm`] — reverse Cuthill–McKee ordering for bandwidth/fill reduction.
//!
//! # Examples
//!
//! ```
//! use masc_sparse::TripletMatrix;
//!
//! let mut t = TripletMatrix::new(2, 2);
//! t.add(0, 0, 2.0);
//! t.add(0, 1, -1.0);
//! t.add(1, 0, -1.0);
//! t.add(1, 1, 2.0);
//! let m = t.to_csr();
//! assert_eq!(m.nnz(), 4);
//! let y = m.mul_vec(&[1.0, 1.0]);
//! assert_eq!(y, vec![1.0, 1.0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csr;
pub mod dense;
pub mod lu;
pub mod pattern;
pub mod rcm;
pub mod triplet;

pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use lu::{LuError, LuFactors, LuWorkspace, NumericLu, SymbolicLu};
pub use pattern::Pattern;
pub use triplet::TripletMatrix;

use core::fmt;

/// Errors produced by sparse-matrix operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// A row or column index was outside the matrix dimensions.
    IndexOutOfBounds {
        /// Offending row.
        row: usize,
        /// Offending column.
        col: usize,
        /// Number of matrix rows.
        rows: usize,
        /// Number of matrix columns.
        cols: usize,
    },
    /// Two operands had incompatible shapes or patterns.
    ShapeMismatch(&'static str),
    /// A serialized pattern failed validation.
    InvalidPattern(&'static str),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds {
                row,
                col,
                rows,
                cols,
            } => write!(
                f,
                "index ({row}, {col}) out of bounds for {rows}x{cols} matrix"
            ),
            SparseError::ShapeMismatch(what) => write!(f, "shape mismatch: {what}"),
            SparseError::InvalidPattern(what) => write!(f, "invalid pattern: {what}"),
        }
    }
}

impl std::error::Error for SparseError {}
