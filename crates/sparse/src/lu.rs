//! Sparse LU factorization (left-looking Gilbert–Peierls) with threshold
//! partial pivoting, transpose solves, and a symbolic/numeric split.
//!
//! Transient circuit simulation solves `J Δx = -r` at every Newton
//! iteration, and the adjoint pass solves `Jᵀ w = v` at every reverse step
//! — both on the same factorization, and every one of those matrices shares
//! one sparsity pattern. The factorization here follows the classic CSparse
//! `cs_lu` structure: per-column symbolic reachability via depth-first
//! search on the partially-built `L`, a sparse triangular solve, then
//! threshold partial pivoting with a preference for the diagonal entry
//! (KLU-style), which keeps MNA matrices stable without destroying the
//! fill-reducing column ordering.
//!
//! The expensive parts of that pipeline — RCM ordering, the per-column
//! reachability DFS, and pivot search — depend only on the pattern and the
//! chosen pivot sequence, so they are captured once in a [`SymbolicLu`] and
//! replayed by [`NumericLu::refactor`], a values-only elimination into
//! preallocated `L`/`U` storage (KLU's *refactorization*). [`LuWorkspace`]
//! bundles the pair behind the same call shape as the one-shot
//! [`LuFactors::factor`], falling back to a fresh analysis when the recorded
//! pivot sequence goes numerically bad.
//!
//! # Examples
//!
//! ```
//! use masc_sparse::{lu::LuFactors, TripletMatrix};
//!
//! # fn main() -> Result<(), masc_sparse::LuError> {
//! let mut t = TripletMatrix::new(2, 2);
//! t.add(0, 0, 4.0);
//! t.add(0, 1, 1.0);
//! t.add(1, 0, 2.0);
//! t.add(1, 1, 3.0);
//! let a = t.to_csr();
//! let lu = LuFactors::factor(&a)?;
//! let x = lu.solve(&[9.0, 11.0]);
//! assert!((x[0] - 1.6).abs() < 1e-12);
//! assert!((x[1] - 2.6).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```
//!
//! Reusing the symbolic analysis across a matrix sequence:
//!
//! ```
//! use masc_sparse::{lu::LuWorkspace, TripletMatrix};
//!
//! # fn main() -> Result<(), masc_sparse::LuError> {
//! let mut t = TripletMatrix::new(2, 2);
//! t.add(0, 0, 4.0);
//! t.add(0, 1, 1.0);
//! t.add(1, 0, 2.0);
//! t.add(1, 1, 3.0);
//! let mut a = t.to_csr();
//! let mut ws = LuWorkspace::new();
//! let x0 = ws.factor(&a)?.solve(&[9.0, 11.0]); // full analysis
//! a.values_mut()[0] = 5.0;
//! let x1 = ws.factor(&a)?.solve(&[9.0, 11.0]); // values-only refactor
//! assert!((x0[0] - 1.6).abs() < 1e-12 && x1[0] < x0[0]);
//! # Ok(())
//! # }
//! ```

use crate::{rcm, CsrMatrix, Pattern};
use core::fmt;
use std::sync::Arc;

/// Sentinel for "not yet pivotal".
const UNPIVOTED: usize = usize::MAX;

/// Errors from sparse LU factorization.
#[derive(Debug, Clone, PartialEq)]
pub enum LuError {
    /// The matrix is not square.
    NotSquare {
        /// Row count.
        rows: usize,
        /// Column count.
        cols: usize,
    },
    /// No acceptable pivot was found for a column (matrix is singular to
    /// working precision). Carries the failing column (in factor order).
    Singular(usize),
    /// A non-finite value (NaN/∞) appeared during factorization.
    NotFinite,
    /// A refactorization was attempted with a matrix whose sparsity pattern
    /// does not match the one the [`SymbolicLu`] was analyzed on.
    PatternMismatch {
        /// Non-zero count the symbolic analysis was built for.
        expected_nnz: usize,
        /// Non-zero count of the offending matrix.
        got_nnz: usize,
    },
}

impl fmt::Display for LuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LuError::NotSquare { rows, cols } => {
                write!(f, "matrix is {rows}x{cols}, LU requires square")
            }
            LuError::Singular(col) => {
                write!(f, "matrix numerically singular at column {col}")
            }
            LuError::NotFinite => write!(f, "non-finite value during factorization"),
            LuError::PatternMismatch {
                expected_nnz,
                got_nnz,
            } => write!(
                f,
                "refactor pattern mismatch: symbolic analysis has {expected_nnz} \
                 non-zeros, matrix has {got_nnz}"
            ),
        }
    }
}

impl std::error::Error for LuError {}

/// Options controlling factorization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LuOptions {
    /// Threshold for accepting the diagonal pivot: the diagonal is used if
    /// `|a_diag| >= diag_preference * max_col`. `1.0` = strict partial
    /// pivoting, `0.001` = strong diagonal preference.
    pub diag_preference: f64,
    /// Absolute magnitude below which a pivot is declared singular.
    pub pivot_epsilon: f64,
    /// Use RCM column ordering (otherwise natural order).
    pub rcm_ordering: bool,
}

impl Default for LuOptions {
    fn default() -> Self {
        Self {
            // KLU's default: prefer the structural diagonal unless it is
            // more than 1000× smaller than the column maximum. MNA chains
            // (gm ≫ 1/R) are destroyed by strict partial pivoting: the
            // anti-triangular pivot cascade underflows after a few hundred
            // stages.
            diag_preference: 0.001,
            pivot_epsilon: 1e-300,
            rcm_ordering: true,
        }
    }
}

/// Compressed-column storage for one triangular factor.
#[derive(Debug, Clone)]
struct CscFactor {
    colptr: Vec<usize>,
    rowidx: Vec<usize>,
    values: Vec<f64>,
}

impl CscFactor {
    fn with_capacity(n: usize, nnz: usize) -> Self {
        Self {
            colptr: Vec::with_capacity(n + 1),
            rowidx: Vec::with_capacity(nnz),
            values: Vec::with_capacity(nnz),
        }
    }
}

/// A computed LU factorization `P·A·Q = L·U`.
///
/// `L` is unit-lower-triangular (unit diagonal implied), `U` upper
/// triangular; `P` is the row pivot permutation, `Q` the fill-reducing
/// column permutation.
#[derive(Debug, Clone)]
pub struct LuFactors {
    n: usize,
    l: CscFactor,
    u: CscFactor,
    /// `p[factor_row] = original_row`.
    p: Vec<usize>,
    /// `q[factor_col] = original_col`.
    q: Vec<usize>,
}

impl LuFactors {
    /// Factors a square CSR matrix with default options.
    ///
    /// # Errors
    ///
    /// Returns [`LuError`] if the matrix is not square, is singular, or
    /// produces non-finite intermediates.
    pub fn factor(a: &CsrMatrix) -> Result<Self, LuError> {
        Self::factor_with(a, LuOptions::default())
    }

    /// Factors with explicit [`LuOptions`].
    ///
    /// # Errors
    ///
    /// See [`LuFactors::factor`].
    pub fn factor_with(a: &CsrMatrix, opts: LuOptions) -> Result<Self, LuError> {
        Ok(gp_factor(a, opts)?.1)
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Non-zeros in `L` (excluding the implied unit diagonal).
    pub fn l_nnz(&self) -> usize {
        self.l.rowidx.len()
    }

    /// Non-zeros in `U` (including the diagonal).
    pub fn u_nnz(&self) -> usize {
        self.u.rowidx.len()
    }

    /// Solves `A x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut work = Vec::new();
        let mut out = Vec::new();
        self.solve_into(b, &mut work, &mut out);
        out
    }

    /// Solves `A x = b` into caller-provided buffers, allocating nothing
    /// once `work` and `out` have grown to `dim()` elements.
    ///
    /// The transient Newton loop and the adjoint reverse pass call a solve
    /// every iteration; this is the allocation-free variant they reuse
    /// buffers through. Produces bit-identical results to [`solve`].
    ///
    /// [`solve`]: LuFactors::solve
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    pub fn solve_into(&self, b: &[f64], work: &mut Vec<f64>, out: &mut Vec<f64>) {
        assert_eq!(b.len(), self.n, "solve dimension mismatch");
        // c = P b
        work.clear();
        work.extend((0..self.n).map(|i| b[self.p[i]]));
        let y = &mut work[..];
        // L y' = c (unit lower, column-oriented forward substitution)
        for j in 0..self.n {
            let yj = y[j];
            if yj == 0.0 {
                continue;
            }
            for t in self.l.colptr[j]..self.l.colptr[j + 1] {
                y[self.l.rowidx[t]] -= self.l.values[t] * yj;
            }
        }
        // U z = y' (column-oriented backward substitution; diagonal entry
        // is the last element of each column).
        for j in (0..self.n).rev() {
            let start = self.u.colptr[j];
            let end = self.u.colptr[j + 1];
            let diag = self.u.values[end - 1];
            let zj = y[j] / diag;
            y[j] = zj;
            if zj != 0.0 {
                for t in start..end - 1 {
                    y[self.u.rowidx[t]] -= self.u.values[t] * zj;
                }
            }
        }
        // x = Q z
        out.clear();
        out.resize(self.n, 0.0);
        for j in 0..self.n {
            out[self.q[j]] = y[j];
        }
    }

    /// Solves `Aᵀ x = b` on the same factorization.
    ///
    /// This is the workhorse of the adjoint reverse pass: one transpose
    /// solve per timestep per objective.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    pub fn solve_transpose(&self, b: &[f64]) -> Vec<f64> {
        let mut work = Vec::new();
        let mut out = Vec::new();
        self.solve_transpose_into(b, &mut work, &mut out);
        out
    }

    /// Solves `Aᵀ x = b` into caller-provided buffers, allocating nothing
    /// once `work` and `out` have grown to `dim()` elements. Produces
    /// bit-identical results to [`solve_transpose`].
    ///
    /// [`solve_transpose`]: LuFactors::solve_transpose
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    pub fn solve_transpose_into(&self, b: &[f64], work: &mut Vec<f64>, out: &mut Vec<f64>) {
        assert_eq!(b.len(), self.n, "solve_transpose dimension mismatch");
        // c = Qᵀ b
        work.clear();
        work.extend((0..self.n).map(|j| b[self.q[j]]));
        let y = &mut work[..];
        // Uᵀ w = c : Uᵀ is lower triangular; row-oriented over U's columns.
        for j in 0..self.n {
            let start = self.u.colptr[j];
            let end = self.u.colptr[j + 1];
            let mut acc = y[j];
            for t in start..end - 1 {
                acc -= self.u.values[t] * y[self.u.rowidx[t]];
            }
            y[j] = acc / self.u.values[end - 1];
        }
        // Lᵀ z = w : Lᵀ is unit upper triangular.
        for j in (0..self.n).rev() {
            let mut acc = y[j];
            for t in self.l.colptr[j]..self.l.colptr[j + 1] {
                acc -= self.l.values[t] * y[self.l.rowidx[t]];
            }
            y[j] = acc;
        }
        // x = Pᵀ z  (x[p[i]] = z[i])
        out.clear();
        out.resize(self.n, 0.0);
        for i in 0..self.n {
            out[self.p[i]] = y[i];
        }
    }

    /// Total fill-in ratio `(l_nnz + u_nnz) / a_nnz` given the original nnz.
    pub fn fill_ratio(&self, a_nnz: usize) -> f64 {
        (self.l_nnz() + self.u_nnz()) as f64 / a_nnz.max(1) as f64
    }
}

/// The structure half of an LU factorization: ordering, pivot sequence, and
/// fill pattern, computed once per sparsity pattern.
///
/// An analysis runs the full Gilbert–Peierls factorization (values are
/// needed to *choose* pivots) and records everything that does not depend on
/// values given that pivot sequence: the RCM column permutation `Q`, the
/// final row permutation `P`, a scatter plan mapping each CSR value slot of
/// `A` into factor coordinates, and the complete `L`/`U` fill skeletons with
/// `U`'s per-column entries stored in elimination order. Note the skeleton
/// emits *every* reached fill position — no value-dependent pruning — so a
/// later [`NumericLu::refactor`] with different values on the same pattern
/// (e.g. the transient `J = G + C/h` after a DC-only `G` analysis) never
/// lacks a slot.
///
/// Pivot validity is the one value-dependent thing a refactorization must
/// re-check; [`NumericLu::refactor`] reports [`LuError::Singular`] when the
/// recorded pivot goes numerically bad, and [`LuWorkspace`] answers that
/// with a fresh analysis.
#[derive(Debug, Clone)]
pub struct SymbolicLu {
    n: usize,
    nnz: usize,
    opts: LuOptions,
    pattern: Arc<Pattern>,
    /// `q[factor_col] = original_col`.
    q: Vec<usize>,
    /// `p[factor_row] = original_row`.
    p: Vec<usize>,
    /// Scatter plan: per factor column `j`, slots `a_colptr[j]..a_colptr[j+1]`
    /// give (destination factor row, source CSR value slot) pairs for the
    /// entries of `A(:, q[j])`.
    a_colptr: Vec<usize>,
    a_rows: Vec<usize>,
    a_src: Vec<usize>,
    /// `L` skeleton: factor rows `> j` per column, in emission order.
    l_colptr: Vec<usize>,
    l_rows: Vec<usize>,
    /// `U` skeleton: factor rows `< j` per column in elimination order,
    /// then the diagonal `j` as the last entry.
    u_colptr: Vec<usize>,
    u_rows: Vec<usize>,
}

impl SymbolicLu {
    /// Analyzes a matrix with default [`LuOptions`].
    ///
    /// # Errors
    ///
    /// Returns [`LuError`] under the same conditions as
    /// [`LuFactors::factor`] — the analysis performs a full pivoting
    /// factorization on the given values.
    pub fn analyze(a: &CsrMatrix) -> Result<Self, LuError> {
        Self::analyze_with(a, LuOptions::default())
    }

    /// Analyzes with explicit [`LuOptions`].
    ///
    /// # Errors
    ///
    /// See [`SymbolicLu::analyze`].
    pub fn analyze_with(a: &CsrMatrix, opts: LuOptions) -> Result<Self, LuError> {
        Ok(gp_factor(a, opts)?.0)
    }

    /// Whether `a` has the pattern this analysis was computed on.
    pub fn matches(&self, a: &CsrMatrix) -> bool {
        Arc::ptr_eq(&self.pattern, a.pattern())
            || (self.n == a.rows() && self.n == a.cols() && *self.pattern == **a.pattern())
    }

    /// Matrix dimension the analysis was computed for.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// The options the analysis was computed with.
    pub fn options(&self) -> LuOptions {
        self.opts
    }
}

/// The values half of an LU factorization: preallocated `L`/`U` storage
/// refilled by replaying a [`SymbolicLu`]'s recorded elimination.
///
/// A refactorization skips ordering, reachability DFS, and pivot search —
/// it scatters values through the symbolic scatter plan and streams through
/// the recorded skeleton, which is the KLU refactorization fast path. On
/// the matrix the analysis was computed from, the resulting factors are
/// bit-identical to the one-shot [`LuFactors::factor`].
#[derive(Debug, Clone)]
pub struct NumericLu {
    factors: LuFactors,
    /// Scatter/elimination scratch in factor-row coordinates. Invariant:
    /// all zeros between calls (error paths re-zero it wholesale).
    x: Vec<f64>,
}

impl NumericLu {
    /// Allocates numeric storage shaped for `sym`.
    pub fn new(sym: &SymbolicLu) -> Self {
        let factors = LuFactors {
            n: sym.n,
            l: CscFactor {
                colptr: sym.l_colptr.clone(),
                rowidx: sym.l_rows.clone(),
                values: vec![0.0; sym.l_rows.len()],
            },
            u: CscFactor {
                colptr: sym.u_colptr.clone(),
                rowidx: sym.u_rows.clone(),
                values: vec![0.0; sym.u_rows.len()],
            },
            p: sym.p.clone(),
            q: sym.q.clone(),
        };
        Self {
            factors,
            x: vec![0.0; sym.n],
        }
    }

    /// Wraps already-computed factors from the analysis pass itself, so the
    /// first factorization through a [`LuWorkspace`] costs one elimination.
    fn from_analysis(sym: &SymbolicLu, factors: LuFactors) -> Self {
        debug_assert_eq!(factors.n, sym.n);
        Self {
            factors,
            x: vec![0.0; sym.n],
        }
    }

    /// Replays the recorded elimination with `a`'s values.
    ///
    /// # Errors
    ///
    /// - [`LuError::PatternMismatch`] if `a`'s pattern is not the analyzed
    ///   one (the factors keep their previous contents).
    /// - [`LuError::Singular`] if a recorded pivot position is too small or
    ///   non-finite for the new values — the recorded pivot *sequence* is
    ///   no longer valid and a fresh analysis is needed.
    /// - [`LuError::NotFinite`] if `a` contains or produces non-finite
    ///   values. After any error the factor contents are unspecified.
    pub fn refactor(&mut self, sym: &SymbolicLu, a: &CsrMatrix) -> Result<(), LuError> {
        if !sym.matches(a) {
            return Err(LuError::PatternMismatch {
                expected_nnz: sym.nnz,
                got_nnz: a.nnz(),
            });
        }
        let n = sym.n;
        let vals = a.values();
        let x = &mut self.x[..];
        let l_colptr = &self.factors.l.colptr;
        let l_rows = &self.factors.l.rowidx;
        let l_vals = &mut self.factors.l.values;
        let u_colptr = &self.factors.u.colptr;
        let u_rows = &self.factors.u.rowidx;
        let u_vals = &mut self.factors.u.values;
        for j in 0..n {
            // Scatter A(:, q[j]) into factor-row coordinates.
            for k in sym.a_colptr[j]..sym.a_colptr[j + 1] {
                let v = vals[sym.a_src[k]];
                if !v.is_finite() {
                    x.fill(0.0);
                    return Err(LuError::NotFinite);
                }
                x[sym.a_rows[k]] = v;
            }
            // Eliminate with the already-refactored columns, in recorded
            // order. U's column j (minus the trailing diagonal) *is* the
            // elimination schedule: each entry is a pivotal row in reverse
            // topological order, so by the time row ρ is read here every
            // update targeting it has been applied — the value emitted into
            // U is final, exactly as in the one-shot analysis.
            let us = u_colptr[j];
            let ue = u_colptr[j + 1];
            for t in us..ue - 1 {
                let rho = u_rows[t];
                let xr = x[rho];
                u_vals[t] = xr;
                if xr == 0.0 {
                    continue;
                }
                for s in l_colptr[rho]..l_colptr[rho + 1] {
                    x[l_rows[s]] -= l_vals[s] * xr;
                }
            }
            // Validate the recorded pivot against the new values.
            let pivot = x[j];
            if !pivot.is_finite() || pivot.abs() < sym.opts.pivot_epsilon {
                x.fill(0.0);
                return Err(LuError::Singular(j));
            }
            u_vals[ue - 1] = pivot;
            // Emit L column j.
            let ls = l_colptr[j];
            let le = l_colptr[j + 1];
            for t in ls..le {
                let v = x[l_rows[t]] / pivot;
                if !v.is_finite() {
                    x.fill(0.0);
                    return Err(LuError::NotFinite);
                }
                l_vals[t] = v;
            }
            // Clear scratch: the touched set is exactly U column j
            // (including the diagonal) plus L column j.
            for t in us..ue {
                x[u_rows[t]] = 0.0;
            }
            for t in ls..le {
                x[l_rows[t]] = 0.0;
            }
        }
        Ok(())
    }

    /// The current factors (valid after a successful [`refactor`]).
    ///
    /// [`refactor`]: NumericLu::refactor
    pub fn factors(&self) -> &LuFactors {
        &self.factors
    }

    /// Consumes the numeric storage, yielding the factors.
    pub fn into_factors(self) -> LuFactors {
        self.factors
    }
}

/// A reusable factor-solve workspace: one symbolic analysis amortized
/// across a whole sequence of same-pattern matrices.
///
/// `factor` behaves like [`LuFactors::factor`] call-for-call, but when the
/// incoming matrix shares the pattern of the cached [`SymbolicLu`] it takes
/// the values-only [`NumericLu::refactor`] fast path. If a refactorization
/// reports [`LuError::Singular`] — the recorded pivot sequence went bad for
/// the new values — the workspace transparently falls back to a fresh
/// analysis, preserving the one-shot path's per-call pivoting behavior.
///
/// Workspaces are how the split threads through the stack: the Newton loop,
/// transient stepper, DC solver, and adjoint reverse pass each hold one
/// across all their iterations, and `masc-sweep` seeds one per sweep
/// instance from a single shared analysis via [`LuWorkspace::with_symbolic`].
#[derive(Debug, Clone, Default)]
pub struct LuWorkspace {
    opts: Option<LuOptions>,
    symbolic: Option<Arc<SymbolicLu>>,
    numeric: Option<NumericLu>,
}

impl LuWorkspace {
    /// An empty workspace with default [`LuOptions`].
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty workspace with explicit [`LuOptions`].
    pub fn with_options(opts: LuOptions) -> Self {
        Self {
            opts: Some(opts),
            symbolic: None,
            numeric: None,
        }
    }

    /// A workspace seeded with an existing (possibly shared) analysis.
    ///
    /// The first `factor` call on a matching pattern refactors immediately
    /// instead of analyzing — this is how sweep instances share one
    /// [`SymbolicLu`] across threads.
    pub fn with_symbolic(sym: Arc<SymbolicLu>) -> Self {
        Self {
            opts: Some(sym.opts),
            symbolic: Some(sym),
            numeric: None,
        }
    }

    /// The cached analysis, if any.
    pub fn symbolic(&self) -> Option<&Arc<SymbolicLu>> {
        self.symbolic.as_ref()
    }

    /// Factors `a`, reusing the cached symbolic analysis when the pattern
    /// matches and re-analyzing otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`LuError`] under the same conditions as
    /// [`LuFactors::factor`]; a stale pivot sequence is retried with a
    /// fresh analysis rather than surfaced as an error.
    pub fn factor(&mut self, a: &CsrMatrix) -> Result<&LuFactors, LuError> {
        let mut refactored = false;
        if self.symbolic.as_ref().is_some_and(|s| s.matches(a)) {
            // Clone the Arc so `self.numeric` can be borrowed mutably.
            if let Some(sym) = self.symbolic.clone() {
                let num = self
                    .numeric
                    .get_or_insert_with(|| NumericLu::new(sym.as_ref()));
                match num.refactor(sym.as_ref(), a) {
                    Ok(()) => refactored = true,
                    // Pivot sequence went numerically bad: fall through to
                    // a fresh analysis, like an independent factor() would.
                    Err(LuError::Singular(_)) => {}
                    Err(e) => return Err(e),
                }
            }
        }
        if !refactored {
            let opts = self.opts.unwrap_or_default();
            let (sym, factors) = gp_factor(a, opts)?;
            let num = NumericLu::from_analysis(&sym, factors);
            self.symbolic = Some(Arc::new(sym));
            self.numeric = Some(num);
        }
        match self.numeric.as_ref() {
            Some(num) => Ok(num.factors()),
            // Unreachable: `numeric` is populated on every path above;
            // structured for panic-freedom instead of unwrap.
            None => Err(LuError::Singular(0)),
        }
    }
}

/// One-pass Gilbert–Peierls factorization that records the symbolic
/// skeleton alongside the numeric factors.
///
/// This is the single implementation behind [`LuFactors::factor_with`]
/// (which drops the skeleton), [`SymbolicLu::analyze_with`] (which drops
/// the factors), and [`LuWorkspace::factor`] (which keeps both).
fn gp_factor(a: &CsrMatrix, opts: LuOptions) -> Result<(SymbolicLu, LuFactors), LuError> {
    if a.rows() != a.cols() {
        return Err(LuError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    let q = if opts.rcm_ordering {
        rcm::rcm_order(a.pattern())
    } else {
        rcm::natural_order(n)
    };

    // CSC view of A: csc_col[j] lists (row, value, CSR slot) of column j.
    let mut csc_colptr = vec![0usize; n + 1];
    let rp = a.pattern().row_ptr();
    let ci = a.pattern().col_idx();
    let vals = a.values();
    for &c in ci {
        csc_colptr[c + 1] += 1;
    }
    for j in 0..n {
        csc_colptr[j + 1] += csc_colptr[j];
    }
    let nnz = a.nnz();
    let mut csc_rowidx = vec![0usize; nnz];
    let mut csc_values = vec![0.0f64; nnz];
    let mut csc_src = vec![0usize; nnz];
    let mut next = csc_colptr.clone();
    for r in 0..n {
        for k in rp[r]..rp[r + 1] {
            let c = ci[k];
            let slot = next[c];
            next[c] += 1;
            csc_rowidx[slot] = r;
            csc_values[slot] = vals[k];
            csc_src[slot] = k;
        }
    }

    let mut l = CscFactor::with_capacity(n, nnz * 4);
    let mut u = CscFactor::with_capacity(n, nnz * 4);
    l.colptr.push(0);
    u.colptr.push(0);

    // pinv[original_row] = factor position, or UNPIVOTED.
    let mut pinv = vec![UNPIVOTED; n];
    let mut p = vec![0usize; n];

    // Work arrays.
    let mut x = vec![0.0f64; n]; // scattered column values, by original row
    let mut mark = vec![usize::MAX; n]; // last column that visited this row
    let mut topo: Vec<usize> = Vec::with_capacity(n); // reach, topological order
    let mut dfs_stack: Vec<(usize, usize)> = Vec::new(); // (row, child cursor)

    for j in 0..n {
        let col = q[j];
        // --- Symbolic: compute reach of A(:, col) in the graph of L.
        topo.clear();
        for &r0 in &csc_rowidx[csc_colptr[col]..csc_colptr[col + 1]] {
            if mark[r0] == j {
                continue;
            }
            // Iterative DFS from r0.
            dfs_stack.push((r0, 0));
            mark[r0] = j;
            while let Some(&mut (r, ref mut cursor)) = dfs_stack.last_mut() {
                let pk = pinv[r];
                let mut descended = false;
                if pk != UNPIVOTED {
                    let start = l.colptr[pk];
                    let end = l.colptr[pk + 1];
                    while start + *cursor < end {
                        let child = l.rowidx[start + *cursor];
                        *cursor += 1;
                        if mark[child] != j {
                            mark[child] = j;
                            dfs_stack.push((child, 0));
                            descended = true;
                            break;
                        }
                    }
                }
                if !descended {
                    dfs_stack.pop();
                    topo.push(r);
                }
            }
        }
        // topo is in post-order = reverse topological order for the
        // elimination DAG; process it reversed.

        // --- Numeric: scatter A(:, col) then eliminate.
        for k in csc_colptr[col]..csc_colptr[col + 1] {
            x[csc_rowidx[k]] = csc_values[k];
        }
        // Entries reached purely through fill start at zero; x was
        // zeroed after the previous column, but fill rows not in A's
        // column still hold stale zeros — ensure they are reset.
        for &r in topo.iter() {
            if !x[r].is_finite() {
                return Err(LuError::NotFinite);
            }
        }
        for idx in (0..topo.len()).rev() {
            let r = topo[idx];
            let pk = pinv[r];
            if pk == UNPIVOTED {
                continue;
            }
            let xr = x[r];
            if xr == 0.0 {
                continue;
            }
            for t in l.colptr[pk]..l.colptr[pk + 1] {
                x[l.rowidx[t]] -= l.values[t] * xr;
            }
        }

        // --- Pivot selection among unpivoted reached rows.
        let mut max_abs = 0.0f64;
        let mut max_row = UNPIVOTED;
        for &r in &topo {
            if pinv[r] == UNPIVOTED {
                let v = x[r].abs();
                if v > max_abs {
                    max_abs = v;
                    max_row = r;
                }
            }
        }
        if max_row == UNPIVOTED || max_abs < opts.pivot_epsilon || !max_abs.is_finite() {
            return Err(LuError::Singular(j));
        }
        // Prefer the structural diagonal (original row == col) when it
        // is large enough.
        let mut pivot_row = max_row;
        if pinv[col] == UNPIVOTED
            && mark[col] == j
            && x[col].abs() >= opts.diag_preference * max_abs
            && x[col].abs() >= opts.pivot_epsilon
        {
            pivot_row = col;
        }
        let pivot_val = x[pivot_row];

        // --- Emit U column j: eliminated rows, then the diagonal.
        for idx in (0..topo.len()).rev() {
            let r = topo[idx];
            let pk = pinv[r];
            if pk != UNPIVOTED {
                u.rowidx.push(pk);
                u.values.push(x[r]);
            }
        }
        u.rowidx.push(j);
        u.values.push(pivot_val);
        u.colptr.push(u.rowidx.len());

        // --- Emit L column j (original row ids for now). Every unpivoted
        // reached row is emitted, including exact zeros: the skeleton must
        // depend only on (pattern, pivot sequence), never on values, or a
        // refactorization with different values on the same pattern would
        // silently lack fill slots.
        pinv[pivot_row] = j;
        p[j] = pivot_row;
        for &r in &topo {
            if pinv[r] == UNPIVOTED {
                let v = x[r] / pivot_val;
                if !v.is_finite() {
                    return Err(LuError::NotFinite);
                }
                l.rowidx.push(r);
                l.values.push(v);
            }
        }
        l.colptr.push(l.rowidx.len());

        // Clear x for the next column.
        for &r in &topo {
            x[r] = 0.0;
        }
    }

    // Convert L's row indices from original rows to factor positions.
    for r in &mut l.rowidx {
        debug_assert!(pinv[*r] != UNPIVOTED);
        *r = pinv[*r];
    }

    // --- Record the symbolic skeleton in factor coordinates.
    let mut a_colptr = Vec::with_capacity(n + 1);
    let mut a_rows = Vec::with_capacity(nnz);
    let mut a_src = Vec::with_capacity(nnz);
    a_colptr.push(0);
    for &col in q.iter() {
        for k in csc_colptr[col]..csc_colptr[col + 1] {
            a_rows.push(pinv[csc_rowidx[k]]);
            a_src.push(csc_src[k]);
        }
        a_colptr.push(a_rows.len());
    }
    let sym = SymbolicLu {
        n,
        nnz,
        opts,
        pattern: Arc::clone(a.pattern()),
        q: q.clone(),
        p: p.clone(),
        a_colptr,
        a_rows,
        a_src,
        l_colptr: l.colptr.clone(),
        l_rows: l.rowidx.clone(),
        u_colptr: u.colptr.clone(),
        u_rows: u.rowidx.clone(),
    };

    Ok((sym, LuFactors { n, l, u, p, q }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    fn csr_from(entries: &[(usize, usize, f64)], n: usize) -> CsrMatrix {
        let mut t = TripletMatrix::new(n, n);
        for &(r, c, v) in entries {
            t.add(r, c, v);
        }
        t.to_csr()
    }

    fn assert_solves(a: &CsrMatrix, b: &[f64]) {
        let lu = LuFactors::factor(a).expect("factorization");
        let x = lu.solve(b);
        let ax = a.mul_vec(&x);
        for (l, r) in ax.iter().zip(b) {
            assert!((l - r).abs() < 1e-8 * (1.0 + r.abs()), "Ax={l} b={r}");
        }
        let xt = lu.solve_transpose(b);
        let atx = a.mul_vec_transpose(&xt);
        for (l, r) in atx.iter().zip(b) {
            assert!((l - r).abs() < 1e-8 * (1.0 + r.abs()), "Atx={l} b={r}");
        }
    }

    #[test]
    fn two_by_two() {
        let a = csr_from(&[(0, 0, 4.0), (0, 1, 1.0), (1, 0, 2.0), (1, 1, 3.0)], 2);
        assert_solves(&a, &[9.0, 11.0]);
    }

    #[test]
    fn requires_pivoting() {
        // Zero diagonal at (0,0): strict diagonal methods would die.
        let a = csr_from(&[(0, 0, 0.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 0.0)], 2);
        assert_solves(&a, &[2.0, 3.0]);
    }

    #[test]
    fn tridiagonal_chain() {
        let n = 50;
        let mut entries = Vec::new();
        for i in 0..n {
            entries.push((i, i, 2.0 + i as f64 * 0.01));
            if i > 0 {
                entries.push((i, i - 1, -1.0));
                entries.push((i - 1, i, -1.0));
            }
        }
        let a = csr_from(&entries, n);
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        assert_solves(&a, &b);
    }

    #[test]
    fn matches_dense_reference() {
        let n = 30;
        let mut seed = 42u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / (1u64 << 31) as f64 - 0.5
        };
        let mut entries = Vec::new();
        for i in 0..n {
            entries.push((i, i, 5.0 + next()));
            for _ in 0..3 {
                let j = ((next().abs() * n as f64) as usize).min(n - 1);
                if j != i {
                    entries.push((i, j, next()));
                }
            }
        }
        let a = csr_from(&entries, n);
        let b: Vec<f64> = (0..n).map(|i| next() * i as f64).collect();
        let dense = a.to_dense();
        let x_ref = dense.solve(&b).expect("dense solvable");
        let lu = LuFactors::factor(&a).unwrap();
        let x = lu.solve(&b);
        for (s, d) in x.iter().zip(&x_ref) {
            assert!((s - d).abs() < 1e-8 * (1.0 + d.abs()), "{s} vs {d}");
        }
        let xt = lu.solve_transpose(&b);
        let xt_ref = dense.solve_transpose(&b).expect("dense transpose solvable");
        for (s, d) in xt.iter().zip(&xt_ref) {
            assert!((s - d).abs() < 1e-8 * (1.0 + d.abs()), "{s} vs {d}");
        }
    }

    #[test]
    fn singular_matrix_detected() {
        let a = csr_from(&[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 2.0), (1, 1, 4.0)], 2);
        assert!(matches!(LuFactors::factor(&a), Err(LuError::Singular(_))));
    }

    #[test]
    fn structurally_singular_detected() {
        // Empty column 1.
        let a = csr_from(&[(0, 0, 1.0), (1, 0, 1.0), (1, 1, 0.0)], 2);
        assert!(LuFactors::factor(&a).is_err());
    }

    #[test]
    fn non_square_rejected() {
        let mut t = TripletMatrix::new(2, 3);
        t.add(0, 0, 1.0);
        let a = t.to_csr();
        assert!(matches!(
            LuFactors::factor(&a),
            Err(LuError::NotSquare { rows: 2, cols: 3 })
        ));
    }

    #[test]
    fn nan_input_rejected() {
        let a = csr_from(&[(0, 0, f64::NAN), (1, 1, 1.0)], 2);
        assert!(LuFactors::factor(&a).is_err());
    }

    #[test]
    fn natural_vs_rcm_same_solution() {
        let n = 40;
        let mut entries = Vec::new();
        for i in 0..n {
            entries.push((i, i, 3.0));
            let far = (i * 13) % n;
            if far != i {
                entries.push((i, far, -0.5));
                entries.push((far, i, -0.5));
            }
        }
        let a = csr_from(&entries, n);
        let b: Vec<f64> = (0..n).map(|i| i as f64 * 0.1).collect();
        let x1 = LuFactors::factor_with(
            &a,
            LuOptions {
                rcm_ordering: true,
                ..LuOptions::default()
            },
        )
        .unwrap()
        .solve(&b);
        let x2 = LuFactors::factor_with(
            &a,
            LuOptions {
                rcm_ordering: false,
                ..LuOptions::default()
            },
        )
        .unwrap()
        .solve(&b);
        for (p, q) in x1.iter().zip(&x2) {
            assert!((p - q).abs() < 1e-9 * (1.0 + q.abs()));
        }
    }

    fn assert_factors_bit_equal(a: &LuFactors, b: &LuFactors) {
        assert_eq!(a.n, b.n);
        assert_eq!(a.p, b.p);
        assert_eq!(a.q, b.q);
        assert_eq!(a.l.colptr, b.l.colptr);
        assert_eq!(a.l.rowidx, b.l.rowidx);
        assert_eq!(a.u.colptr, b.u.colptr);
        assert_eq!(a.u.rowidx, b.u.rowidx);
        for (x, y) in a.l.values.iter().zip(&b.l.values) {
            assert_eq!(x.to_bits(), y.to_bits(), "L value mismatch");
        }
        for (x, y) in a.u.values.iter().zip(&b.u.values) {
            assert_eq!(x.to_bits(), y.to_bits(), "U value mismatch");
        }
    }

    #[test]
    fn split_bit_identical_to_oneshot() {
        let a = csr_from(&[(0, 0, 4.0), (0, 1, 1.0), (1, 0, 2.0), (1, 1, 3.0)], 2);
        let oneshot = LuFactors::factor(&a).unwrap();
        let sym = SymbolicLu::analyze(&a).unwrap();
        let mut num = NumericLu::new(&sym);
        num.refactor(&sym, &a).unwrap();
        assert_factors_bit_equal(&oneshot, num.factors());
    }

    #[test]
    fn refactor_new_values_matches_fresh_factor() {
        let n = 50;
        let mut entries = Vec::new();
        for i in 0..n {
            entries.push((i, i, 2.0 + i as f64 * 0.01));
            if i > 0 {
                entries.push((i, i - 1, -1.0));
                entries.push((i - 1, i, -1.0));
            }
        }
        let a = csr_from(&entries, n);
        let sym = SymbolicLu::analyze(&a).unwrap();
        let mut num = NumericLu::new(&sym);
        // New values on the same pattern (still diagonally dominant so the
        // recorded pivot sequence stays the one a fresh factor would pick).
        let mut b = a.clone();
        for (k, v) in b.values_mut().iter_mut().enumerate() {
            *v *= 1.0 + 0.003 * k as f64;
        }
        num.refactor(&sym, &b).unwrap();
        let fresh = LuFactors::factor(&b).unwrap();
        assert_factors_bit_equal(&fresh, num.factors());
    }

    #[test]
    fn refactor_fills_slots_dropped_by_dc_zeros() {
        // Analysis values with exact zeros at some slots (a DC conductance
        // matrix scattered onto the G∪C union pattern); refactor with those
        // slots populated. The skeleton must carry the fill regardless.
        let zeroed = csr_from(
            &[
                (0, 0, 2.0),
                (0, 1, 0.0),
                (1, 0, -1.0),
                (1, 1, 2.0),
                (1, 2, 0.0),
                (2, 1, -1.0),
                (2, 2, 2.0),
            ],
            3,
        );
        let sym = SymbolicLu::analyze(&zeroed).unwrap();
        let mut full = zeroed.clone();
        for v in full.values_mut().iter_mut() {
            if *v == 0.0 {
                *v = -0.5;
            }
        }
        let mut num = NumericLu::new(&sym);
        num.refactor(&sym, &full).unwrap();
        let fresh = LuFactors::factor(&full).unwrap();
        assert_factors_bit_equal(&fresh, num.factors());
        let b = [1.0, 2.0, 3.0];
        let x = num.factors().solve(&b);
        let ax = full.mul_vec(&x);
        for (l, r) in ax.iter().zip(&b) {
            assert!((l - r).abs() < 1e-12);
        }
    }

    #[test]
    fn refactor_pattern_mismatch_rejected() {
        let a = csr_from(&[(0, 0, 4.0), (0, 1, 1.0), (1, 0, 2.0), (1, 1, 3.0)], 2);
        let other = csr_from(&[(0, 0, 4.0), (1, 1, 3.0)], 2);
        let sym = SymbolicLu::analyze(&a).unwrap();
        let mut num = NumericLu::new(&sym);
        assert!(matches!(
            num.refactor(&sym, &other),
            Err(LuError::PatternMismatch { .. })
        ));
    }

    #[test]
    fn workspace_refactors_and_falls_back_on_singular() {
        // First matrix picks the diagonal pivots; second has zero diagonals
        // so the recorded sequence is singular — the workspace must fall
        // back to a fresh analysis and still solve.
        let a = csr_from(&[(0, 0, 4.0), (0, 1, 1.0), (1, 0, 2.0), (1, 1, 3.0)], 2);
        let mut ws = LuWorkspace::new();
        ws.factor(&a).unwrap();
        let sym0 = Arc::clone(ws.symbolic().unwrap());
        let b = csr_from(&[(0, 0, 0.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 0.0)], 2);
        let x = ws.factor(&b).unwrap().solve(&[2.0, 3.0]);
        assert!((x[0] - 3.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
        // The fallback replaced the cached analysis.
        assert!(!Arc::ptr_eq(&sym0, ws.symbolic().unwrap()));
        // And refactoring `a` again through the new symbolic still works.
        let x = ws.factor(&a).unwrap().solve(&[9.0, 11.0]);
        assert!((x[0] - 1.6).abs() < 1e-12 && (x[1] - 2.6).abs() < 1e-12);
    }

    #[test]
    fn workspace_matches_oneshot_across_sequence() {
        let n = 30;
        let mut entries = Vec::new();
        for i in 0..n {
            entries.push((i, i, 3.0 + i as f64 * 0.1));
            let far = (i * 7) % n;
            if far != i {
                entries.push((i, far, -0.25));
                entries.push((far, i, -0.25));
            }
        }
        let base = csr_from(&entries, n);
        let mut ws = LuWorkspace::new();
        for step in 0..4 {
            let mut m = base.clone();
            for (k, v) in m.values_mut().iter_mut().enumerate() {
                *v *= 1.0 + 0.001 * (step * 31 + k) as f64;
            }
            let oneshot = LuFactors::factor(&m).unwrap();
            let ws_factors = ws.factor(&m).unwrap();
            assert_factors_bit_equal(&oneshot, ws_factors);
        }
    }

    #[test]
    fn solve_into_bit_identical_and_reusable() {
        let a = csr_from(&[(0, 0, 4.0), (0, 1, 1.0), (1, 0, 2.0), (1, 1, 3.0)], 2);
        let lu = LuFactors::factor(&a).unwrap();
        let mut work = Vec::new();
        let mut out = Vec::new();
        for b in [[9.0, 11.0], [1.0, -2.0], [0.0, 5.0]] {
            lu.solve_into(&b, &mut work, &mut out);
            let reference = lu.solve(&b);
            assert_eq!(
                out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
            lu.solve_transpose_into(&b, &mut work, &mut out);
            let reference = lu.solve_transpose(&b);
            assert_eq!(
                out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn fill_ratio_reported() {
        let a = csr_from(&[(0, 0, 1.0), (1, 1, 2.0)], 2);
        let lu = LuFactors::factor(&a).unwrap();
        assert!(lu.fill_ratio(a.nnz()) >= 1.0);
        assert_eq!(lu.dim(), 2);
        assert!(lu.u_nnz() >= 2);
    }
}
