//! Sparse LU factorization (left-looking Gilbert–Peierls) with threshold
//! partial pivoting and transpose solves.
//!
//! Transient circuit simulation solves `J Δx = -r` at every Newton
//! iteration, and the adjoint pass solves `Jᵀ w = v` at every reverse step
//! — both on the same factorization. The factorization here follows the
//! classic CSparse `cs_lu` structure: per-column symbolic reachability via
//! depth-first search on the partially-built `L`, a sparse triangular solve,
//! then threshold partial pivoting with a preference for the diagonal entry
//! (KLU-style), which keeps MNA matrices stable without destroying the
//! fill-reducing column ordering.
//!
//! # Examples
//!
//! ```
//! use masc_sparse::{lu::LuFactors, TripletMatrix};
//!
//! # fn main() -> Result<(), masc_sparse::LuError> {
//! let mut t = TripletMatrix::new(2, 2);
//! t.add(0, 0, 4.0);
//! t.add(0, 1, 1.0);
//! t.add(1, 0, 2.0);
//! t.add(1, 1, 3.0);
//! let a = t.to_csr();
//! let lu = LuFactors::factor(&a)?;
//! let x = lu.solve(&[9.0, 11.0]);
//! assert!((x[0] - 1.6).abs() < 1e-12);
//! assert!((x[1] - 2.6).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

use crate::{rcm, CsrMatrix};
use core::fmt;

/// Sentinel for "not yet pivotal".
const UNPIVOTED: usize = usize::MAX;

/// Errors from sparse LU factorization.
#[derive(Debug, Clone, PartialEq)]
pub enum LuError {
    /// The matrix is not square.
    NotSquare {
        /// Row count.
        rows: usize,
        /// Column count.
        cols: usize,
    },
    /// No acceptable pivot was found for a column (matrix is singular to
    /// working precision). Carries the failing column (in factor order).
    Singular(usize),
    /// A non-finite value (NaN/∞) appeared during factorization.
    NotFinite,
}

impl fmt::Display for LuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LuError::NotSquare { rows, cols } => {
                write!(f, "matrix is {rows}x{cols}, LU requires square")
            }
            LuError::Singular(col) => {
                write!(f, "matrix numerically singular at column {col}")
            }
            LuError::NotFinite => write!(f, "non-finite value during factorization"),
        }
    }
}

impl std::error::Error for LuError {}

/// Options controlling factorization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LuOptions {
    /// Threshold for accepting the diagonal pivot: the diagonal is used if
    /// `|a_diag| >= diag_preference * max_col`. `1.0` = strict partial
    /// pivoting, `0.001` = strong diagonal preference.
    pub diag_preference: f64,
    /// Absolute magnitude below which a pivot is declared singular.
    pub pivot_epsilon: f64,
    /// Use RCM column ordering (otherwise natural order).
    pub rcm_ordering: bool,
}

impl Default for LuOptions {
    fn default() -> Self {
        Self {
            // KLU's default: prefer the structural diagonal unless it is
            // more than 1000× smaller than the column maximum. MNA chains
            // (gm ≫ 1/R) are destroyed by strict partial pivoting: the
            // anti-triangular pivot cascade underflows after a few hundred
            // stages.
            diag_preference: 0.001,
            pivot_epsilon: 1e-300,
            rcm_ordering: true,
        }
    }
}

/// Compressed-column storage for one triangular factor.
#[derive(Debug, Clone)]
struct CscFactor {
    colptr: Vec<usize>,
    rowidx: Vec<usize>,
    values: Vec<f64>,
}

impl CscFactor {
    fn with_capacity(n: usize, nnz: usize) -> Self {
        Self {
            colptr: Vec::with_capacity(n + 1),
            rowidx: Vec::with_capacity(nnz),
            values: Vec::with_capacity(nnz),
        }
    }
}

/// A computed LU factorization `P·A·Q = L·U`.
///
/// `L` is unit-lower-triangular (unit diagonal implied), `U` upper
/// triangular; `P` is the row pivot permutation, `Q` the fill-reducing
/// column permutation.
#[derive(Debug, Clone)]
pub struct LuFactors {
    n: usize,
    l: CscFactor,
    u: CscFactor,
    /// `p[factor_row] = original_row`.
    p: Vec<usize>,
    /// `q[factor_col] = original_col`.
    q: Vec<usize>,
}

impl LuFactors {
    /// Factors a square CSR matrix with default options.
    ///
    /// # Errors
    ///
    /// Returns [`LuError`] if the matrix is not square, is singular, or
    /// produces non-finite intermediates.
    pub fn factor(a: &CsrMatrix) -> Result<Self, LuError> {
        Self::factor_with(a, LuOptions::default())
    }

    /// Factors with explicit [`LuOptions`].
    ///
    /// # Errors
    ///
    /// See [`LuFactors::factor`].
    pub fn factor_with(a: &CsrMatrix, opts: LuOptions) -> Result<Self, LuError> {
        if a.rows() != a.cols() {
            return Err(LuError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let q = if opts.rcm_ordering {
            rcm::rcm_order(a.pattern())
        } else {
            rcm::natural_order(n)
        };

        // CSC view of A: csc_col[j] lists (row, value) of column j.
        let mut csc_colptr = vec![0usize; n + 1];
        let rp = a.pattern().row_ptr();
        let ci = a.pattern().col_idx();
        let vals = a.values();
        for &c in ci {
            csc_colptr[c + 1] += 1;
        }
        for j in 0..n {
            csc_colptr[j + 1] += csc_colptr[j];
        }
        let nnz = a.nnz();
        let mut csc_rowidx = vec![0usize; nnz];
        let mut csc_values = vec![0.0f64; nnz];
        let mut next = csc_colptr.clone();
        for r in 0..n {
            for k in rp[r]..rp[r + 1] {
                let c = ci[k];
                let slot = next[c];
                next[c] += 1;
                csc_rowidx[slot] = r;
                csc_values[slot] = vals[k];
            }
        }

        let mut l = CscFactor::with_capacity(n, nnz * 4);
        let mut u = CscFactor::with_capacity(n, nnz * 4);
        l.colptr.push(0);
        u.colptr.push(0);

        // pinv[original_row] = factor position, or UNPIVOTED.
        let mut pinv = vec![UNPIVOTED; n];
        let mut p = vec![0usize; n];

        // Work arrays.
        let mut x = vec![0.0f64; n]; // scattered column values, by original row
        let mut mark = vec![usize::MAX; n]; // last column that visited this row
        let mut topo: Vec<usize> = Vec::with_capacity(n); // reach, topological order
        let mut dfs_stack: Vec<(usize, usize)> = Vec::new(); // (row, child cursor)

        for j in 0..n {
            let col = q[j];
            // --- Symbolic: compute reach of A(:, col) in the graph of L.
            topo.clear();
            for &r0 in &csc_rowidx[csc_colptr[col]..csc_colptr[col + 1]] {
                if mark[r0] == j {
                    continue;
                }
                // Iterative DFS from r0.
                dfs_stack.push((r0, 0));
                mark[r0] = j;
                while let Some(&mut (r, ref mut cursor)) = dfs_stack.last_mut() {
                    let pk = pinv[r];
                    let mut descended = false;
                    if pk != UNPIVOTED {
                        let start = l.colptr[pk];
                        let end = l.colptr[pk + 1];
                        while start + *cursor < end {
                            let child = l.rowidx[start + *cursor];
                            *cursor += 1;
                            if mark[child] != j {
                                mark[child] = j;
                                dfs_stack.push((child, 0));
                                descended = true;
                                break;
                            }
                        }
                    }
                    if !descended {
                        dfs_stack.pop();
                        topo.push(r);
                    }
                }
            }
            // topo is in post-order = reverse topological order for the
            // elimination DAG; process it reversed.

            // --- Numeric: scatter A(:, col) then eliminate.
            for k in csc_colptr[col]..csc_colptr[col + 1] {
                x[csc_rowidx[k]] = csc_values[k];
            }
            // Entries reached purely through fill start at zero; x was
            // zeroed after the previous column, but fill rows not in A's
            // column still hold stale zeros — ensure they are reset.
            for &r in topo.iter() {
                if !x[r].is_finite() {
                    return Err(LuError::NotFinite);
                }
            }
            for idx in (0..topo.len()).rev() {
                let r = topo[idx];
                let pk = pinv[r];
                if pk == UNPIVOTED {
                    continue;
                }
                let xr = x[r];
                if xr == 0.0 {
                    continue;
                }
                for t in l.colptr[pk]..l.colptr[pk + 1] {
                    x[l.rowidx[t]] -= l.values[t] * xr;
                }
            }

            // --- Pivot selection among unpivoted reached rows.
            let mut max_abs = 0.0f64;
            let mut max_row = UNPIVOTED;
            for &r in &topo {
                if pinv[r] == UNPIVOTED {
                    let v = x[r].abs();
                    if v > max_abs {
                        max_abs = v;
                        max_row = r;
                    }
                }
            }
            if max_row == UNPIVOTED || max_abs < opts.pivot_epsilon || !max_abs.is_finite() {
                return Err(LuError::Singular(j));
            }
            // Prefer the structural diagonal (original row == col) when it
            // is large enough.
            let mut pivot_row = max_row;
            if pinv[col] == UNPIVOTED
                && mark[col] == j
                && x[col].abs() >= opts.diag_preference * max_abs
                && x[col].abs() >= opts.pivot_epsilon
            {
                pivot_row = col;
            }
            let pivot_val = x[pivot_row];

            // --- Emit U column j: eliminated rows, then the diagonal.
            for idx in (0..topo.len()).rev() {
                let r = topo[idx];
                let pk = pinv[r];
                if pk != UNPIVOTED {
                    u.rowidx.push(pk);
                    u.values.push(x[r]);
                }
            }
            u.rowidx.push(j);
            u.values.push(pivot_val);
            u.colptr.push(u.rowidx.len());

            // --- Emit L column j (original row ids for now).
            pinv[pivot_row] = j;
            p[j] = pivot_row;
            for &r in &topo {
                if pinv[r] == UNPIVOTED {
                    let v = x[r] / pivot_val;
                    if v != 0.0 {
                        if !v.is_finite() {
                            return Err(LuError::NotFinite);
                        }
                        l.rowidx.push(r);
                        l.values.push(v);
                    }
                }
            }
            l.colptr.push(l.rowidx.len());

            // Clear x for the next column.
            for &r in &topo {
                x[r] = 0.0;
            }
        }

        // Convert L's row indices from original rows to factor positions.
        for r in &mut l.rowidx {
            debug_assert!(pinv[*r] != UNPIVOTED);
            *r = pinv[*r];
        }

        Ok(Self { n, l, u, p, q })
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Non-zeros in `L` (excluding the implied unit diagonal).
    pub fn l_nnz(&self) -> usize {
        self.l.rowidx.len()
    }

    /// Non-zeros in `U` (including the diagonal).
    pub fn u_nnz(&self) -> usize {
        self.u.rowidx.len()
    }

    /// Solves `A x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n, "solve dimension mismatch");
        // c = P b
        let mut y: Vec<f64> = (0..self.n).map(|i| b[self.p[i]]).collect();
        // L y' = c (unit lower, column-oriented forward substitution)
        for j in 0..self.n {
            let yj = y[j];
            if yj == 0.0 {
                continue;
            }
            for t in self.l.colptr[j]..self.l.colptr[j + 1] {
                y[self.l.rowidx[t]] -= self.l.values[t] * yj;
            }
        }
        // U z = y' (column-oriented backward substitution; diagonal entry
        // is the last element of each column).
        for j in (0..self.n).rev() {
            let start = self.u.colptr[j];
            let end = self.u.colptr[j + 1];
            let diag = self.u.values[end - 1];
            let zj = y[j] / diag;
            y[j] = zj;
            if zj != 0.0 {
                for t in start..end - 1 {
                    y[self.u.rowidx[t]] -= self.u.values[t] * zj;
                }
            }
        }
        // x = Q z
        let mut x = vec![0.0; self.n];
        for j in 0..self.n {
            x[self.q[j]] = y[j];
        }
        x
    }

    /// Solves `Aᵀ x = b` on the same factorization.
    ///
    /// This is the workhorse of the adjoint reverse pass: one transpose
    /// solve per timestep per objective.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    pub fn solve_transpose(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n, "solve_transpose dimension mismatch");
        // c = Qᵀ b
        let mut y: Vec<f64> = (0..self.n).map(|j| b[self.q[j]]).collect();
        // Uᵀ w = c : Uᵀ is lower triangular; row-oriented over U's columns.
        for j in 0..self.n {
            let start = self.u.colptr[j];
            let end = self.u.colptr[j + 1];
            let mut acc = y[j];
            for t in start..end - 1 {
                acc -= self.u.values[t] * y[self.u.rowidx[t]];
            }
            y[j] = acc / self.u.values[end - 1];
        }
        // Lᵀ z = w : Lᵀ is unit upper triangular.
        for j in (0..self.n).rev() {
            let mut acc = y[j];
            for t in self.l.colptr[j]..self.l.colptr[j + 1] {
                acc -= self.l.values[t] * y[self.l.rowidx[t]];
            }
            y[j] = acc;
        }
        // x = Pᵀ z  (x[p[i]] = z[i])
        let mut x = vec![0.0; self.n];
        for i in 0..self.n {
            x[self.p[i]] = y[i];
        }
        x
    }

    /// Total fill-in ratio `(l_nnz + u_nnz) / a_nnz` given the original nnz.
    pub fn fill_ratio(&self, a_nnz: usize) -> f64 {
        (self.l_nnz() + self.u_nnz()) as f64 / a_nnz.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    fn csr_from(entries: &[(usize, usize, f64)], n: usize) -> CsrMatrix {
        let mut t = TripletMatrix::new(n, n);
        for &(r, c, v) in entries {
            t.add(r, c, v);
        }
        t.to_csr()
    }

    fn assert_solves(a: &CsrMatrix, b: &[f64]) {
        let lu = LuFactors::factor(a).expect("factorization");
        let x = lu.solve(b);
        let ax = a.mul_vec(&x);
        for (l, r) in ax.iter().zip(b) {
            assert!((l - r).abs() < 1e-8 * (1.0 + r.abs()), "Ax={l} b={r}");
        }
        let xt = lu.solve_transpose(b);
        let atx = a.mul_vec_transpose(&xt);
        for (l, r) in atx.iter().zip(b) {
            assert!((l - r).abs() < 1e-8 * (1.0 + r.abs()), "Atx={l} b={r}");
        }
    }

    #[test]
    fn two_by_two() {
        let a = csr_from(&[(0, 0, 4.0), (0, 1, 1.0), (1, 0, 2.0), (1, 1, 3.0)], 2);
        assert_solves(&a, &[9.0, 11.0]);
    }

    #[test]
    fn requires_pivoting() {
        // Zero diagonal at (0,0): strict diagonal methods would die.
        let a = csr_from(&[(0, 0, 0.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 0.0)], 2);
        assert_solves(&a, &[2.0, 3.0]);
    }

    #[test]
    fn tridiagonal_chain() {
        let n = 50;
        let mut entries = Vec::new();
        for i in 0..n {
            entries.push((i, i, 2.0 + i as f64 * 0.01));
            if i > 0 {
                entries.push((i, i - 1, -1.0));
                entries.push((i - 1, i, -1.0));
            }
        }
        let a = csr_from(&entries, n);
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        assert_solves(&a, &b);
    }

    #[test]
    fn matches_dense_reference() {
        let n = 30;
        let mut seed = 42u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / (1u64 << 31) as f64 - 0.5
        };
        let mut entries = Vec::new();
        for i in 0..n {
            entries.push((i, i, 5.0 + next()));
            for _ in 0..3 {
                let j = ((next().abs() * n as f64) as usize).min(n - 1);
                if j != i {
                    entries.push((i, j, next()));
                }
            }
        }
        let a = csr_from(&entries, n);
        let b: Vec<f64> = (0..n).map(|i| next() * i as f64).collect();
        let dense = a.to_dense();
        let x_ref = dense.solve(&b).expect("dense solvable");
        let lu = LuFactors::factor(&a).unwrap();
        let x = lu.solve(&b);
        for (s, d) in x.iter().zip(&x_ref) {
            assert!((s - d).abs() < 1e-8 * (1.0 + d.abs()), "{s} vs {d}");
        }
        let xt = lu.solve_transpose(&b);
        let xt_ref = dense.solve_transpose(&b).expect("dense transpose solvable");
        for (s, d) in xt.iter().zip(&xt_ref) {
            assert!((s - d).abs() < 1e-8 * (1.0 + d.abs()), "{s} vs {d}");
        }
    }

    #[test]
    fn singular_matrix_detected() {
        let a = csr_from(&[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 2.0), (1, 1, 4.0)], 2);
        assert!(matches!(LuFactors::factor(&a), Err(LuError::Singular(_))));
    }

    #[test]
    fn structurally_singular_detected() {
        // Empty column 1.
        let a = csr_from(&[(0, 0, 1.0), (1, 0, 1.0), (1, 1, 0.0)], 2);
        assert!(LuFactors::factor(&a).is_err());
    }

    #[test]
    fn non_square_rejected() {
        let mut t = TripletMatrix::new(2, 3);
        t.add(0, 0, 1.0);
        let a = t.to_csr();
        assert!(matches!(
            LuFactors::factor(&a),
            Err(LuError::NotSquare { rows: 2, cols: 3 })
        ));
    }

    #[test]
    fn nan_input_rejected() {
        let a = csr_from(&[(0, 0, f64::NAN), (1, 1, 1.0)], 2);
        assert!(LuFactors::factor(&a).is_err());
    }

    #[test]
    fn natural_vs_rcm_same_solution() {
        let n = 40;
        let mut entries = Vec::new();
        for i in 0..n {
            entries.push((i, i, 3.0));
            let far = (i * 13) % n;
            if far != i {
                entries.push((i, far, -0.5));
                entries.push((far, i, -0.5));
            }
        }
        let a = csr_from(&entries, n);
        let b: Vec<f64> = (0..n).map(|i| i as f64 * 0.1).collect();
        let x1 = LuFactors::factor_with(
            &a,
            LuOptions {
                rcm_ordering: true,
                ..LuOptions::default()
            },
        )
        .unwrap()
        .solve(&b);
        let x2 = LuFactors::factor_with(
            &a,
            LuOptions {
                rcm_ordering: false,
                ..LuOptions::default()
            },
        )
        .unwrap()
        .solve(&b);
        for (p, q) in x1.iter().zip(&x2) {
            assert!((p - q).abs() < 1e-9 * (1.0 + q.abs()));
        }
    }

    #[test]
    fn fill_ratio_reported() {
        let a = csr_from(&[(0, 0, 1.0), (1, 1, 2.0)], 2);
        let lu = LuFactors::factor(&a).unwrap();
        assert!(lu.fill_ratio(a.nnz()) >= 1.0);
        assert_eq!(lu.dim(), 2);
        assert!(lu.u_nnz() >= 2);
    }
}
