//! Reverse Cuthill–McKee (RCM) fill-reducing ordering.
//!
//! Circuit MNA matrices are nearly symmetric and often have locality
//! (ladders, meshes, chains); RCM shrinks their bandwidth, which directly
//! reduces fill-in for the Gilbert–Peierls LU in [`crate::lu`].

use crate::Pattern;

/// Computes an RCM permutation of the symmetrized adjacency of `pattern`.
///
/// Returns `perm` with `perm[new_index] = old_index`. Applying the
/// permutation symmetrically (`A(perm, perm)`) clusters non-zeros near the
/// diagonal.
pub fn rcm_order(pattern: &Pattern) -> Vec<usize> {
    let n = pattern.rows();
    // Build symmetrized adjacency lists (excluding self-loops).
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let rp = pattern.row_ptr();
    let ci = pattern.col_idx();
    for r in 0..n {
        for &c in &ci[rp[r]..rp[r + 1]] {
            if c == r || c >= n {
                continue;
            }
            adj[r].push(c);
            adj[c].push(r);
        }
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }
    let degree: Vec<usize> = adj.iter().map(Vec::len).collect();

    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    // Process components, starting each from a minimum-degree node.
    let mut nodes_by_degree: Vec<usize> = (0..n).collect();
    nodes_by_degree.sort_by_key(|&v| degree[v]);
    for &start in &nodes_by_degree {
        if visited[start] {
            continue;
        }
        visited[start] = true;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut neighbors: Vec<usize> =
                adj[v].iter().copied().filter(|&u| !visited[u]).collect();
            neighbors.sort_by_key(|&u| degree[u]);
            for u in neighbors {
                visited[u] = true;
                queue.push_back(u);
            }
        }
    }
    order.reverse();
    order
}

/// Bandwidth of `pattern` under permutation `perm` (`perm[new] = old`).
///
/// Useful for asserting that RCM actually helped.
pub fn bandwidth(pattern: &Pattern, perm: &[usize]) -> usize {
    let n = pattern.rows();
    let mut inv = vec![0usize; n];
    for (new, &old) in perm.iter().enumerate() {
        inv[old] = new;
    }
    let rp = pattern.row_ptr();
    let ci = pattern.col_idx();
    let mut bw = 0usize;
    for r in 0..n {
        for &c in &ci[rp[r]..rp[r + 1]] {
            if c < n {
                bw = bw.max(inv[r].abs_diff(inv[c]));
            }
        }
    }
    bw
}

/// The identity permutation (natural ordering).
pub fn natural_order(n: usize) -> Vec<usize> {
    (0..n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    fn pattern_of(edges: &[(usize, usize)], n: usize) -> Pattern {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.add(i, i, 1.0);
        }
        for &(a, b) in edges {
            t.add(a, b, 1.0);
            t.add(b, a, 1.0);
        }
        t.to_csr().pattern().as_ref().clone()
    }

    #[test]
    fn permutation_is_valid() {
        let p = pattern_of(&[(0, 5), (5, 2), (2, 7), (1, 4)], 8);
        let perm = rcm_order(&p);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn rcm_reduces_bandwidth_of_shuffled_chain() {
        // A chain 0-1-2-...-19 relabelled by a stride permutation has huge
        // bandwidth; RCM should recover ~1.
        let n = 20usize;
        let relabel: Vec<usize> = (0..n).map(|i| (i * 7) % n).collect();
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (relabel[i], relabel[i + 1])).collect();
        let p = pattern_of(&edges, n);
        let natural_bw = bandwidth(&p, &natural_order(n));
        let rcm_bw = bandwidth(&p, &rcm_order(&p));
        assert!(rcm_bw <= 2, "rcm bandwidth {rcm_bw}");
        assert!(rcm_bw < natural_bw);
    }

    #[test]
    fn disconnected_components_all_ordered() {
        let p = pattern_of(&[(0, 1), (2, 3), (4, 5)], 7); // node 6 isolated
        let perm = rcm_order(&p);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn empty_pattern() {
        let p = Pattern::new(0, 0, vec![0], vec![]).unwrap();
        assert!(rcm_order(&p).is_empty());
    }

    #[test]
    fn star_graph_center_last_in_cm() {
        // RCM on a star: center has max degree; leaves cluster around it.
        let edges: Vec<(usize, usize)> = (1..10).map(|i| (0, i)).collect();
        let p = pattern_of(&edges, 10);
        let perm = rcm_order(&p);
        let bw = bandwidth(&p, &perm);
        assert!(bw <= 9);
    }
}
