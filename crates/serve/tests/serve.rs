//! End-to-end serve tests: miss→hit bit-identity, the forward-pass-skip
//! telemetry proof, disk-tier restarts, resolution errors, and the wire
//! protocol loop.

#![allow(clippy::disallowed_methods)] // tests may unwrap/expect

use masc_serve::server::run_lines;
use masc_serve::{JobRequest, ObjectiveSpec, ParamSelector, ServeConfig, ServeError, Server};
use std::path::PathBuf;

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("masc-serve-it-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A diode-free RC ladder driven by a DC current source: deterministic,
/// a few hundred accepted steps, every internal node grounded through a
/// bleed resistor.
fn ladder_deck(sections: usize) -> String {
    let mut deck = String::from("* serve test ladder\nI1 n0 0 DC 1e-3\nR0 n0 0 2000\n");
    for s in 0..sections {
        deck.push_str(&format!("RL{s} n{s} n{} {}\n", s + 1, 1000 + 10 * s));
        deck.push_str(&format!("CL{s} n{} 0 1e-9\n", s + 1));
        deck.push_str(&format!("RG{s} n{} 0 1e6\n", s + 1));
    }
    deck.push_str(".tran 0.2u 20u\n.end\n");
    deck
}

fn ladder_request(id: &str, sections: usize) -> JobRequest {
    JobRequest {
        id: id.to_string(),
        objectives: vec![
            ObjectiveSpec::FinalValue {
                node: "n1".to_string(),
            },
            ObjectiveSpec::Integral {
                node: format!("n{sections}"),
            },
        ],
        params: ParamSelector::All,
        deck: ladder_deck(sections),
    }
}

fn bits(rows: &[Vec<f64>]) -> Vec<Vec<u64>> {
    rows.iter()
        .map(|r| r.iter().map(|v| v.to_bits()).collect())
        .collect()
}

#[test]
fn hit_skips_forward_pass_and_is_bit_identical() {
    let server = Server::new(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .expect("server");
    let req = ladder_request("j", 3);

    let cold = server.submit(&req).expect("cold run");
    assert!(!cold.hit);
    assert!(
        cold.tran_stats.steps > 0,
        "cold run must step the transient"
    );
    assert!(cold.store_metrics.bytes_written > 0);
    assert_eq!(cold.objective_values.len(), 2);
    assert!(!cold.sensitivities.is_empty());

    let hit = server.submit(&req).expect("hit run");
    assert!(hit.hit);
    assert_eq!(
        hit.tran_stats.steps, 0,
        "hit must not run the forward transient"
    );
    assert_eq!(hit.tran_stats.newton_iterations, 0);
    assert_eq!(hit.store_metrics.bytes_written, 0);
    assert_eq!(hit.objective_values, cold.objective_values);
    assert_eq!(
        bits(&hit.sensitivities),
        bits(&cold.sensitivities),
        "hit sensitivities must be bit-identical to the cold run"
    );

    let m = server.cache_metrics();
    assert_eq!(m.misses, 1);
    assert_eq!(m.hits, 1);
    assert_eq!(m.mem_hits, 1);
    assert_eq!(m.inserts, 1);
    assert_eq!(server.cold_runs(), 1);
    assert_eq!(server.jobs(), 2);
}

#[test]
fn disk_tier_survives_server_restart() {
    let dir = scratch_dir("restart");
    let cfg = ServeConfig {
        workers: 1,
        cache_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    let req = ladder_request("j", 2);

    let first = Server::new(cfg.clone()).expect("server");
    let cold = first.submit(&req).expect("cold run");
    drop(first);

    let second = Server::new(cfg).expect("reopened server");
    let hit = second.submit(&req).expect("disk hit");
    assert!(hit.hit);
    assert_eq!(hit.tran_stats.steps, 0);
    assert_eq!(bits(&hit.sensitivities), bits(&cold.sensitivities));
    let m = second.cache_metrics();
    assert_eq!(m.disk_hits, 1);
    assert_eq!(second.cold_runs(), 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resolution_errors_are_structured() {
    let server = Server::new(ServeConfig::default()).expect("server");

    let mut bad_node = ladder_request("j", 2);
    bad_node.objectives = vec![ObjectiveSpec::FinalValue {
        node: "zz".to_string(),
    }];
    assert!(matches!(
        server.submit(&bad_node),
        Err(ServeError::UnknownNode(n)) if n == "zz"
    ));

    let mut no_tran = ladder_request("j", 2);
    no_tran.deck = "R1 n1 0 1000\n.end\n".to_string();
    assert!(matches!(server.submit(&no_tran), Err(ServeError::NoTran)));

    let mut bad_param = ladder_request("j", 2);
    bad_param.params = ParamSelector::Named(vec!["R9.r".to_string()]);
    assert!(matches!(
        server.submit(&bad_param),
        Err(ServeError::UnknownParam(p)) if p == "R9.r"
    ));

    let mut bad_step = ladder_request("j", 2);
    bad_step.objectives = vec![ObjectiveSpec::AtStep {
        node: "n1".to_string(),
        step: 1_000_000,
    }];
    assert!(matches!(
        server.submit(&bad_step),
        Err(ServeError::StepOutOfRange {
            step: 1_000_000,
            ..
        })
    ));

    // Errors never populate the cache.
    assert_eq!(server.cache_metrics().inserts, 0);
}

/// A line past the protocol cap answers `ERR … line-too-long` without
/// buffering the oversized payload, and the connection keeps serving.
#[test]
fn oversized_line_is_rejected_and_connection_survives() {
    let server = Server::new(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .expect("server");
    let huge = "x".repeat(2 * masc_serve::protocol::MAX_LINE_BYTES);
    let input = format!("{huge}\nSTATS\nSHUTDOWN\n");
    let mut output = Vec::new();
    let got_shutdown =
        run_lines(&server, input.as_bytes(), &mut output).expect("loop survives the long line");
    assert!(got_shutdown);

    let text = String::from_utf8(output).expect("utf8 output");
    assert!(
        text.lines()
            .any(|l| l.starts_with("ERR - protocol ") && l.contains("exceeds")),
        "over-long line answers with a structured error: {text}"
    );
    assert!(
        text.lines().any(|l| l.starts_with("STATS jobs=0 ")),
        "commands after the long line still answer: {text}"
    );
    assert!(text.lines().any(|l| l == "BYE"), "{text}");
}

/// End-of-input with idle workers always drains and says `BYE` — a
/// stress for the close/wait handshake (a lost wake-up here hangs the
/// scoped worker join forever).
#[test]
fn eof_with_idle_workers_never_hangs() {
    for _ in 0..200 {
        let server = Server::new(ServeConfig {
            workers: 4,
            ..ServeConfig::default()
        })
        .expect("server");
        let mut output = Vec::new();
        let got_shutdown = run_lines(&server, &b""[..], &mut output).expect("empty input drains");
        assert!(!got_shutdown);
        assert_eq!(String::from_utf8(output).expect("utf8 output"), "BYE\n");
    }
}

#[test]
fn line_protocol_round_trip() {
    let server = Server::new(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .expect("server");
    let deck = masc_serve::protocol::escape_deck(&ladder_deck(2));
    let input = format!(
        "SOLVE j1 final:n1 * {deck}\nSOLVE j2 final:n1 * {deck}\nSTATS\nnot a command\nSHUTDOWN\n"
    );
    let mut output = Vec::new();
    let got_shutdown =
        run_lines(&server, input.as_bytes(), &mut output).expect("protocol loop succeeds");
    assert!(got_shutdown);

    let text = String::from_utf8(output).expect("utf8 output");
    // The reader thread answers malformed lines immediately, so the ERR
    // line may interleave anywhere before BYE; the worker answers queued
    // requests in FIFO order.
    assert!(
        text.lines().any(|l| l.starts_with("ERR - protocol ")),
        "malformed line answers with a protocol error: {text}"
    );
    let lines: Vec<&str> = text
        .lines()
        .filter(|l| !l.starts_with("ERR - protocol "))
        .collect();
    assert!(
        lines[0].starts_with("OK j1 miss steps="),
        "first solve is a miss: {}",
        lines[0]
    );
    assert!(
        lines[1].starts_with("OK j2 hit steps=0 "),
        "second solve hits with zero forward steps: {}",
        lines[1]
    );
    // Identical job ⇒ identical payload after the hit/miss and steps
    // tokens (steps legitimately differ: cold counts, hit is 0).
    let payload = |l: &str| l.splitn(5, ' ').nth(4).map(str::to_string);
    assert_eq!(payload(lines[0]), payload(lines[1]));
    assert!(
        lines[2].starts_with("STATS jobs=2 cold_runs=1 "),
        "{}",
        lines[2]
    );
    assert_eq!(*lines.last().expect("BYE line"), "BYE");
}

/// Two clients connecting *sequentially* over `--socket` share one
/// server process and one cache: the first connection's cold run primes
/// the cache, the second connection (after the first hangs up without
/// `SHUTDOWN`) hits it bit-identically, and an explicit `SHUTDOWN` stops
/// the listener and removes the socket file.
#[test]
fn socket_serves_sequential_connections_from_one_cache() {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;

    let sock = std::env::temp_dir().join(format!(
        "masc-serve-multiclient-{}.sock",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&sock);

    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_masc-serve"))
        .args(["--socket"])
        .arg(&sock)
        .args(["--workers", "1"])
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn masc-serve");

    // Wait for the listener to bind.
    let mut bound = false;
    for _ in 0..200 {
        if sock.exists() {
            bound = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    assert!(bound, "server never bound {}", sock.display());

    let deck = masc_serve::protocol::escape_deck(&ladder_deck(2));
    let solve = format!("SOLVE j final:n1 * {deck}\n");
    let ask = |input: &str| -> Vec<String> {
        let mut stream = UnixStream::connect(&sock).expect("connect");
        stream.write_all(input.as_bytes()).expect("send");
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        BufReader::new(stream)
            .lines()
            .map(|l| l.expect("response line"))
            .collect()
    };

    // Client 1: cold run, then hangs up (no SHUTDOWN).
    let first = ask(&solve);
    assert!(
        first[0].starts_with("OK j miss "),
        "first client's solve is a miss: {first:?}"
    );
    assert_eq!(first.last().map(String::as_str), Some("BYE"));

    // Client 2: a fresh connection against the same still-running server
    // hits the cache primed by client 1, then shuts the server down.
    let second = ask(&format!("{solve}STATS\nSHUTDOWN\n"));
    assert!(
        second[0].starts_with("OK j hit steps=0 "),
        "second client must hit the first client's cache entry: {second:?}"
    );
    // Identical payload after the hit/miss and steps tokens.
    let payload = |l: &str| l.splitn(5, ' ').nth(4).map(str::to_string);
    assert_eq!(payload(&first[0]), payload(&second[0]));
    assert!(
        second[1].starts_with("STATS jobs=2 cold_runs=1 "),
        "one cold run across both connections: {second:?}"
    );
    assert_eq!(second.last().map(String::as_str), Some("BYE"));

    // SHUTDOWN stops the process and removes the socket file.
    let status = child.wait().expect("server exit");
    assert!(status.success(), "clean exit after SHUTDOWN: {status:?}");
    assert!(
        !sock.exists(),
        "socket file must be removed on shutdown: {}",
        sock.display()
    );
}
