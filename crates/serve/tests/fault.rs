//! Fault-injection suite: worker death mid-job, corrupt disk cache
//! entries, concurrent identical jobs, and shutdown with queued work.

#![allow(clippy::disallowed_methods)] // tests may unwrap/expect

use masc_serve::engine::{resolve, run_cold, run_hit, WorkspacePool};
use masc_serve::server::run_lines;
use masc_serve::{JobRequest, ObjectiveSpec, ParamSelector, ServeConfig, ServeError, Server};
use std::path::PathBuf;
use std::sync::Mutex;

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("masc-serve-fault-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn ladder_deck(sections: usize) -> String {
    let mut deck = String::from("* fault test ladder\nI1 n0 0 DC 1e-3\nR0 n0 0 2000\n");
    for s in 0..sections {
        deck.push_str(&format!("RL{s} n{s} n{} {}\n", s + 1, 1000 + 10 * s));
        deck.push_str(&format!("CL{s} n{} 0 1e-9\n", s + 1));
        deck.push_str(&format!("RG{s} n{} 0 1e6\n", s + 1));
    }
    deck.push_str(".tran 0.2u 20u\n.end\n");
    deck
}

fn ladder_request(id: &str, sections: usize) -> JobRequest {
    JobRequest {
        id: id.to_string(),
        objectives: vec![ObjectiveSpec::FinalValue {
            node: "n1".to_string(),
        }],
        params: ParamSelector::All,
        deck: ladder_deck(sections),
    }
}

fn bits(rows: &[Vec<f64>]) -> Vec<Vec<u64>> {
    rows.iter()
        .map(|r| r.iter().map(|v| v.to_bits()).collect())
        .collect()
}

/// A worker that dies mid-job answers that job with an `ERR … panic` line
/// and keeps serving subsequent jobs on the same connection.
#[test]
fn worker_death_mid_job_is_absorbed() {
    let server = Server::new(ServeConfig {
        workers: 1,
        fault_panic_job: Some("boom".to_string()),
        ..ServeConfig::default()
    })
    .expect("server");
    let deck = masc_serve::protocol::escape_deck(&ladder_deck(2));
    let input =
        format!("SOLVE boom final:n1 * {deck}\nSOLVE ok final:n1 * {deck}\nSTATS\nSHUTDOWN\n");
    let mut output = Vec::new();

    // The injected panic unwinds inside the worker; the default panic hook
    // would spam stderr, so silence it for the duration.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = run_lines(&server, input.as_bytes(), &mut output);
    std::panic::set_hook(prev_hook);
    assert!(result.expect("loop survives the panic"));

    let text = String::from_utf8(output).expect("utf8 output");
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines[0].starts_with("ERR boom panic "),
        "panicking job answers with a structured error: {}",
        lines[0]
    );
    assert!(
        lines[1].starts_with("OK ok miss "),
        "the same worker keeps serving: {}",
        lines[1]
    );
    assert!(lines[2].contains("worker_panics=1"), "{}", lines[2]);
    assert_eq!(server.worker_panics(), 1);
}

/// A corrupt on-disk entry is a miss plus a cold rerun, never a panic,
/// and the rerun's answer is bit-identical to an uncorrupted run.
#[test]
fn corrupt_disk_entry_degrades_to_cold_rerun() {
    let dir = scratch_dir("corrupt");
    let cfg = ServeConfig {
        workers: 1,
        cache_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    let req = ladder_request("j", 2);

    let first = Server::new(cfg.clone()).expect("server");
    let cold = first.submit(&req).expect("cold run");
    drop(first);

    // Flip a byte in the middle of every persisted entry.
    let mut flipped = 0;
    for f in std::fs::read_dir(&dir).expect("cache dir") {
        let path = f.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "msc") {
            let mut bytes = std::fs::read(&path).expect("entry bytes");
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x40;
            std::fs::write(&path, bytes).expect("rewrite entry");
            flipped += 1;
        }
    }
    assert_eq!(flipped, 1, "exactly one entry persisted");

    let second = Server::new(cfg).expect("reopened server");
    let rerun = second
        .submit(&req)
        .expect("corrupt entry degrades, not fails");
    assert!(!rerun.hit, "corrupt entry must not present as a hit");
    assert_eq!(bits(&rerun.sensitivities), bits(&cold.sensitivities));
    let m = second.cache_metrics();
    assert_eq!(m.corrupt_entries, 1);
    assert_eq!(m.disk_hits, 0);
    assert_eq!(second.cold_runs(), 1);
    // The rerun re-persisted a good entry; a fresh probe hits.
    let hit = second.submit(&req).expect("hit after repair");
    assert!(hit.hit);

    let _ = std::fs::remove_dir_all(&dir);
}

/// An entry whose embedded fingerprint belongs to a *different* job —
/// what a constructed 64-bit key collision between same-topology,
/// different-value decks would look like — is rejected as a cache
/// mismatch, never replayed as the wrong answer.
#[test]
fn colliding_entry_with_foreign_fingerprint_is_rejected() {
    let masc = ServeConfig::default().masc;
    let mut other = ladder_request("other", 2);
    // Same topology and sparsity pattern, different element value: the
    // structural (pattern/shape) checks alone cannot tell these apart.
    other.deck = other.deck.replace("R0 n0 0 2000", "R0 n0 0 2001");

    let job = resolve(&ladder_request("j", 2), &masc).expect("resolve job");
    let other_job = resolve(&other, &masc).expect("resolve other");
    assert_ne!(job.fingerprint, other_job.fingerprint);

    let pool = Mutex::new(WorkspacePool::default());
    let (_, foreign_entry) = run_cold(&other_job, &pool).expect("cold run");
    assert!(
        matches!(
            run_hit(&job, &foreign_entry),
            Err(ServeError::CacheMismatch)
        ),
        "an entry carrying another job's fingerprint must be a mismatch"
    );
    // The entry still replays fine for the job that owns it.
    let replay = run_hit(&other_job, &foreign_entry).expect("owner replay");
    assert!(replay.hit);
}

/// Two identical jobs submitted concurrently run the pipeline once; the
/// follower coalesces behind the leader and replays the cached entry.
#[test]
fn concurrent_identical_jobs_single_flight() {
    let server = Server::new(ServeConfig::default()).expect("server");
    let req = ladder_request("j", 3);

    let (a, b) = std::thread::scope(|scope| {
        let ta = scope.spawn(|| server.submit(&req).expect("submit a"));
        let tb = scope.spawn(|| server.submit(&req).expect("submit b"));
        (ta.join().expect("join a"), tb.join().expect("join b"))
    });

    assert_eq!(
        server.cold_runs(),
        1,
        "identical concurrent jobs must share one pipeline run"
    );
    assert_eq!(bits(&a.sensitivities), bits(&b.sensitivities));
    assert_eq!(a.objective_values, b.objective_values);
    // One of the two was served without a cold run (hit or coalesced
    // replay); the cache saw at most one insert.
    assert_eq!(server.cache_metrics().inserts, 1);
}

/// `SHUTDOWN` behind a queue of jobs drains the queue — every queued job
/// is answered before `BYE`, and no temp files are stranded on disk.
#[test]
fn shutdown_drains_queued_jobs_and_strands_no_files() {
    let dir = scratch_dir("drain");
    let server = Server::new(ServeConfig {
        workers: 1,
        cache_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .expect("server");
    // Three distinct decks so each queued job is real work.
    let mut input = String::new();
    for (i, sections) in [2usize, 3, 4].iter().enumerate() {
        let deck = masc_serve::protocol::escape_deck(&ladder_deck(*sections));
        input.push_str(&format!("SOLVE q{i} final:n1 * {deck}\n"));
    }
    input.push_str("SHUTDOWN\n");
    let mut output = Vec::new();
    let got_shutdown = run_lines(&server, input.as_bytes(), &mut output).expect("loop completes");
    assert!(got_shutdown);

    let text = String::from_utf8(output).expect("utf8 output");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 4, "three answers plus BYE: {text}");
    for i in 0..3 {
        assert!(
            lines
                .iter()
                .any(|l| l.starts_with(&format!("OK q{i} miss "))),
            "queued job q{i} must be answered before shutdown: {text}"
        );
    }
    assert_eq!(*lines.last().expect("BYE line"), "BYE");
    assert_eq!(server.jobs(), 3);

    let stranded: Vec<_> = std::fs::read_dir(&dir)
        .expect("cache dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "tmp"))
        .collect();
    assert!(
        stranded.is_empty(),
        "no temp files after shutdown: {stranded:?}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
