//! The concurrent job server: scoped worker pool, single-flight
//! coalescing, and the line-protocol loop.
//!
//! [`Server::submit`] is the synchronous core: probe the cache, replay on
//! a hit (discarding corrupt or mismatched entries and falling through to
//! a cold run), otherwise run the full pipeline exactly once per key —
//! concurrent identical jobs coalesce behind the first submitter instead
//! of racing the forward transient N times. [`run_lines`] wraps it in the
//! wire protocol over any `BufRead`/`Write` pair, sharding `SOLVE` lines
//! across a scoped worker pool. Worker panics are caught per job
//! (`catch_unwind`): the job answers with an `ERR … panic` line and the
//! worker keeps serving. `SHUTDOWN` (or end of input) stops intake,
//! drains every queued job, answers it, then says `BYE` — queued work is
//! never stranded and the cache directory is left with no temp files.

use crate::cache::{CacheMetrics, TensorCache};
use crate::engine::{resolve, run_cold, run_hit, JobOutcome, WorkspacePool};
use crate::protocol::{self, JobRequest, Request, MAX_LINE_BYTES};
use crate::ServeError;
use masc_compress::MascConfig;
use std::collections::{HashSet, VecDeque};
use std::io::{BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads answering `SOLVE` lines.
    pub workers: usize,
    /// In-memory cache tier budget (encoded-entry bytes).
    pub mem_budget: usize,
    /// Disk cache tier budget (file bytes).
    pub disk_budget: usize,
    /// Disk tier directory (`None` = memory tier only).
    pub cache_dir: Option<PathBuf>,
    /// Compression configuration for captured tensors (part of every
    /// cache key).
    pub masc: MascConfig,
    /// Fault injection for tests: a job id whose submission panics
    /// mid-worker, exercising the catch-unwind / worker-survival path.
    pub fault_panic_job: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            mem_budget: 64 << 20,
            disk_budget: 256 << 20,
            cache_dir: None,
            masc: MascConfig::default(),
            fault_panic_job: None,
        }
    }
}

/// The job server: cache, workspace pool, and single-flight state.
#[derive(Debug)]
pub struct Server {
    cfg: ServeConfig,
    cache: Mutex<TensorCache>,
    pool: Mutex<WorkspacePool>,
    inflight: Mutex<HashSet<u64>>,
    inflight_done: Condvar,
    jobs: AtomicU64,
    cold_runs: AtomicU64,
    worker_panics: AtomicU64,
}

impl Server {
    /// Opens the cache tiers and builds a server.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Cache`] if the cache directory cannot be
    /// opened.
    pub fn new(cfg: ServeConfig) -> Result<Self, ServeError> {
        let cache = TensorCache::open(cfg.cache_dir.clone(), cfg.mem_budget, cfg.disk_budget)?;
        Ok(Self {
            cfg,
            cache: Mutex::new(cache),
            pool: Mutex::new(WorkspacePool::default()),
            inflight: Mutex::new(HashSet::new()),
            inflight_done: Condvar::new(),
            jobs: AtomicU64::new(0),
            cold_runs: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
        })
    }

    /// Cache telemetry snapshot.
    pub fn cache_metrics(&self) -> CacheMetrics {
        lock(&self.cache).metrics()
    }

    /// Jobs submitted so far.
    pub fn jobs(&self) -> u64 {
        self.jobs.load(Ordering::Relaxed)
    }

    /// Full pipeline (forward + reverse) executions so far — the number
    /// the single-flight and cache layers exist to minimize.
    pub fn cold_runs(&self) -> u64 {
        self.cold_runs.load(Ordering::Relaxed)
    }

    /// Worker panics absorbed so far.
    pub fn worker_panics(&self) -> u64 {
        self.worker_panics.load(Ordering::Relaxed)
    }

    /// Resolves and runs one job: cache hit replay, or a single-flighted
    /// cold run that populates the cache.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] describing the first failing stage.
    ///
    /// # Panics
    ///
    /// Panics only when [`ServeConfig::fault_panic_job`] names this job —
    /// the fault-injection hook behind the worker-death tests.
    pub fn submit(&self, req: &JobRequest) -> Result<JobOutcome, ServeError> {
        self.jobs.fetch_add(1, Ordering::Relaxed);
        if self.cfg.fault_panic_job.as_deref() == Some(req.id.as_str()) {
            panic!("injected fault: job {} configured to panic", req.id);
        }
        let job = resolve(req, &self.cfg.masc)?;
        loop {
            let cached = lock(&self.cache).get(job.key);
            if let Some(entry) = cached {
                // A `None` replay means the entry was discarded as
                // corrupt/stale; fall through to a cold run.
                if let Some(result) = self.replay(&job, &entry) {
                    return result;
                }
            }

            // Single flight: exactly one submitter per key runs the
            // pipeline; the rest wait and re-probe the cache.
            let leader = lock(&self.inflight).insert(job.key);
            if !leader {
                lock(&self.cache).note_coalesced();
                let mut inflight = lock(&self.inflight);
                while inflight.contains(&job.key) {
                    inflight = self
                        .inflight_done
                        .wait(inflight)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                drop(inflight);
                continue;
            }

            // Leader: make sure the key is released and waiters woken on
            // every exit path, panics included.
            let guard = InflightGuard {
                server: self,
                key: job.key,
            };
            // Close the probe→leadership race: a previous leader may have
            // populated the cache between our probe and our acquisition.
            let raced = lock(&self.cache).recheck(job.key);
            if let Some(entry) = raced {
                drop(guard);
                match self.replay(&job, &entry) {
                    Some(result) => return result,
                    None => continue,
                }
            }
            self.cold_runs.fetch_add(1, Ordering::Relaxed);
            let result = run_cold(&job, &self.pool);
            let (outcome, entry) = result?; // guard releases on error
            lock(&self.cache).put(job.key, std::sync::Arc::new(entry));
            drop(guard);
            return Ok(outcome);
        }
    }

    /// Replays a cached entry; `None` means the entry was corrupt or
    /// structurally stale, has been discarded, and the caller should run
    /// cold.
    fn replay(
        &self,
        job: &crate::engine::ResolvedJob,
        entry: &crate::cache::CacheEntry,
    ) -> Option<Result<JobOutcome, ServeError>> {
        match run_hit(job, entry) {
            Ok(outcome) => Some(Ok(outcome)),
            Err(e) if e.is_cache_fault() => {
                lock(&self.cache).discard(job.key);
                None
            }
            Err(e) => Some(Err(e)),
        }
    }
}

/// Releases a single-flight key on drop (normal return, error, or
/// unwind) and wakes every waiter.
struct InflightGuard<'a> {
    server: &'a Server,
    key: u64,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        lock(&self.server.inflight).remove(&self.key);
        self.server.inflight_done.notify_all();
    }
}

fn render_stats(server: &Server) -> String {
    let m = server.cache_metrics();
    format!(
        "STATS jobs={} cold_runs={} worker_panics={} hits={} mem_hits={} disk_hits={} \
         misses={} coalesced={} inserts={} evictions={} corrupt_entries={} \
         mem_bytes={} disk_bytes={}",
        server.jobs(),
        server.cold_runs(),
        server.worker_panics(),
        m.hits,
        m.mem_hits,
        m.disk_hits,
        m.misses,
        m.coalesced,
        m.inserts,
        m.evictions,
        m.corrupt_entries,
        m.mem_bytes,
        m.disk_bytes,
    )
}

fn respond<W: Write>(out: &Mutex<W>, line: &str) {
    let mut w = lock(out);
    let _ = writeln!(w, "{line}");
    let _ = w.flush();
}

fn answer_solve<W: Write>(server: &Server, req: &JobRequest, out: &Mutex<W>) {
    let result = catch_unwind(AssertUnwindSafe(|| server.submit(req)));
    let line = match result {
        Ok(Ok(outcome)) => protocol::render_ok(
            &req.id,
            outcome.hit,
            outcome.tran_stats.steps,
            &outcome.objective_values,
            &outcome.sensitivities,
        ),
        Ok(Err(e)) => protocol::render_err(&req.id, e.code(), &e.to_string()),
        Err(_) => {
            server.worker_panics.fetch_add(1, Ordering::Relaxed);
            protocol::render_err(&req.id, "panic", "job aborted by panic; worker recovered")
        }
    };
    respond(out, &line);
}

/// The worker queue. `closed` lives *inside* the mutex-guarded state:
/// a worker that observed `closed == false` under the lock is either
/// still holding it or already parked in `Condvar::wait` (which releases
/// the lock atomically) when the reader sets the flag under the same
/// lock — so the close can never interleave between a worker's check and
/// its wait, and the wake-up is never lost.
struct JobQueue {
    items: VecDeque<Request>,
    closed: bool,
}

/// The outcome of reading one length-capped request line.
enum LineRead {
    /// End of input.
    Eof,
    /// A complete line, within the cap.
    Line,
    /// The line exceeded [`MAX_LINE_BYTES`]; its bytes were discarded
    /// without buffering and the reader is positioned after it.
    TooLong {
        /// Total line length consumed (saturating).
        len: usize,
    },
}

/// Reads one `\n`-terminated line into `line`, buffering at most
/// [`MAX_LINE_BYTES`] + 1 bytes. An over-long line is consumed chunk by
/// chunk and discarded, so a client streaming gigabytes without a
/// newline costs bounded memory, not an OOM.
fn read_capped_line<R: BufRead>(input: &mut R, line: &mut String) -> std::io::Result<LineRead> {
    line.clear();
    let mut buf: Vec<u8> = Vec::new();
    let mut total = 0usize;
    let mut saw_any = false;
    let mut done = false;
    while !done {
        let chunk = input.fill_buf()?;
        if chunk.is_empty() {
            if !saw_any {
                return Ok(LineRead::Eof);
            }
            break;
        }
        saw_any = true;
        let take = match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                done = true;
                pos + 1
            }
            None => chunk.len(),
        };
        total = total.saturating_add(take);
        if total <= MAX_LINE_BYTES + 1 {
            buf.extend_from_slice(&chunk[..take]);
        } else {
            // Over the cap: stop buffering and just drain to the newline.
            buf.clear();
        }
        input.consume(take);
    }
    if total > MAX_LINE_BYTES + 1 {
        return Ok(LineRead::TooLong { len: total });
    }
    match String::from_utf8(buf) {
        Ok(s) => {
            *line = s;
            Ok(LineRead::Line)
        }
        Err(_) => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "request line is not valid UTF-8",
        )),
    }
}

/// Serves the line protocol from `input` to `output` until `SHUTDOWN` or
/// end of input, sharding jobs across [`ServeConfig::workers`] scoped
/// threads. Returns `true` if an explicit `SHUTDOWN` was received.
///
/// # Errors
///
/// Returns [`ServeError::Io`] if reading `input` fails.
pub fn run_lines<R: BufRead, W: Write + Send>(
    server: &Server,
    mut input: R,
    output: W,
) -> Result<bool, ServeError> {
    let out = Mutex::new(output);
    let queue = Mutex::new(JobQueue {
        items: VecDeque::new(),
        closed: false,
    });
    let queue_ready = Condvar::new();
    let mut got_shutdown = false;
    let mut read_error: Option<std::io::Error> = None;
    // Injected-defect switch: armed, the close protocol regresses to
    // tracking `closed` outside the queue mutex (the pre-fix shape whose
    // lost wakeup the interleaving explorer must expose). Unarmed and in
    // normal builds the flag below is never consulted.
    #[cfg(feature = "mutation-hooks")]
    let closed_outside = std::sync::atomic::AtomicBool::new(false);

    std::thread::scope(|scope| {
        let workers = server.cfg.workers.max(1);
        let mut lanes = Vec::with_capacity(workers);
        for _ in 0..workers {
            lanes.push(scope.spawn(|| loop {
                let item = {
                    let mut q = lock(&queue);
                    loop {
                        if let Some(item) = q.items.pop_front() {
                            break Some(item);
                        }
                        #[cfg(feature = "mutation-hooks")]
                        if crate::mutation::active(crate::mutation::Defect::LostWakeupClose) {
                            if closed_outside.load(Ordering::Relaxed) {
                                break None;
                            }
                            q = queue_ready.wait(q).unwrap_or_else(PoisonError::into_inner);
                            continue;
                        }
                        if q.closed {
                            break None;
                        }
                        q = queue_ready.wait(q).unwrap_or_else(PoisonError::into_inner);
                    }
                };
                match item {
                    Some(Request::Solve(req)) => answer_solve(server, &req, &out),
                    Some(Request::Stats) => respond(&out, &render_stats(server)),
                    Some(Request::Shutdown) | None => break,
                }
            }));
        }

        let mut line = String::new();
        loop {
            match read_capped_line(&mut input, &mut line) {
                Ok(LineRead::Eof) => break,
                Ok(LineRead::Line) => {}
                Ok(LineRead::TooLong { len }) => {
                    let e = protocol::ProtocolError::LineTooLong { len };
                    respond(&out, &protocol::render_err("-", "protocol", &e.to_string()));
                    continue;
                }
                Err(e) => {
                    read_error = Some(e);
                    break;
                }
            }
            if line.trim().is_empty() {
                continue;
            }
            match protocol::parse_request(&line) {
                Ok(Request::Shutdown) => {
                    got_shutdown = true;
                    break;
                }
                Ok(req) => {
                    lock(&queue).items.push_back(req);
                    queue_ready.notify_one();
                }
                Err(e) => respond(&out, &protocol::render_err("-", "protocol", &e.to_string())),
            }
        }
        // Drain: workers finish everything already queued, then exit.
        // The flag flips under the queue lock (see [`JobQueue`]).
        #[cfg(feature = "mutation-hooks")]
        if crate::mutation::active(crate::mutation::Defect::LostWakeupClose) {
            // BUG (injected): the close is published outside the queue
            // mutex, so it can land between a worker's predicate check
            // and its wait — the notify below is then lost forever.
            closed_outside.store(true, Ordering::Relaxed);
        }
        lock(&queue).closed = true;
        queue_ready.notify_all();
        // Consume every lane's join result: `answer_solve` catches
        // per-job panics, so an `Err` here means a lane died outside a
        // job — report it instead of letting scope exit re-raise it
        // after `BYE` has already been written.
        for lane in lanes {
            if lane.join().is_err() {
                respond(
                    &out,
                    &protocol::render_err("-", "worker", "worker lane panicked outside a job"),
                );
            }
        }
    });

    respond(&out, "BYE");
    match read_error {
        Some(e) => Err(ServeError::Io(e)),
        None => Ok(got_shutdown),
    }
}
