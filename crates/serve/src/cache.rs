//! The content-addressed compressed-tensor cache.
//!
//! A cache entry is everything the reverse pass needs to replay a job
//! without re-running the forward transient: the recorded trajectory
//! ([`RunMeta`]) and the two sealed compressed Jacobian tensors. Entries
//! are keyed by [`entry_key`] — an FNV-1a hash over the job's
//! [`job_fingerprint`]: the *canonical* netlist text (the deck
//! re-serialized by
//! [`write_netlist`](masc_circuit::netlist::write_netlist), so
//! whitespace/comment/float-spelling variants of the same deck share an
//! entry), the transient options, and the [`MascConfig`]. The 64-bit key
//! only addresses; the full fingerprint string is embedded in every
//! entry and compared verbatim on each hit, so an FNV collision (chance
//! or constructed) can never serve another job's sensitivities — it is
//! detected and treated as a miss.
//!
//! Two tiers: a byte-bounded in-memory LRU of decoded entries, and a disk
//! tier of encoded entries (`<key>.msc` files, written
//! temp-file-then-rename so a crash never leaves a torn entry visible).
//! The wire format is checksummed; a corrupt disk entry is discarded and
//! reported as a miss, never a panic. This module decodes bytes from disk
//! and is a `wire-decode` class in `lint-manifest.txt`.

use masc_adjoint::RunMeta;
use masc_bitio::bounded::check_claim;
use masc_bitio::varint;
use masc_circuit::transient::TranOptions;
use masc_compress::{CompressError, CompressedTensor, MascConfig};
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Entry wire-format magic (`MSV2` — v2 added the embedded fingerprint).
const MAGIC: [u8; 4] = *b"MSV2";
/// Most time points one entry may claim (a 4M-step transient).
const MAX_TIME_POINTS: usize = 1 << 22;
/// Most state doubles one entry may claim (rows × columns).
const MAX_STATE_VALUES: usize = 1 << 28;
/// Most fingerprint bytes one entry may claim (canonical decks are
/// bounded by the ≤1 MiB wire line they arrived on; 4 MiB leaves room
/// for unescaping and the option debug strings).
const MAX_FINGERPRINT_BYTES: usize = 1 << 22;

/// FNV-1a over `bytes` (same constants as `masc-conform` / `masc-testkit`).
fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut hash = seed;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a of one byte string from the standard offset basis.
pub(crate) fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    fnv1a(FNV_OFFSET, bytes)
}

/// The full identity string of one job: canonical deck text + transient
/// options + compression config, `0x1f`-separated. This is what
/// [`entry_key`] hashes, and it is stored verbatim inside every encoded
/// entry so a hit can prove the entry belongs to the job (a 64-bit FNV
/// key alone is addressable, not collision-proof).
pub fn job_fingerprint(canonical_deck: &str, tran: &TranOptions, masc: &MascConfig) -> String {
    // `TranOptions`/`MascConfig` Debug output round-trips every f64
    // shortest-form, so equal configs fingerprint equal and any field
    // change (tolerances included) changes the fingerprint.
    format!("{canonical_deck}\u{1f}{tran:?}\u{1f}{masc:?}")
}

/// Content-addressed key for one job: FNV-1a over
/// [`job_fingerprint`]. Collisions are defended downstream — a hit whose
/// embedded fingerprint differs from the job's is discarded and treated
/// as a miss — so a 64-bit key is sufficient for addressing.
pub fn entry_key(canonical_deck: &str, tran: &TranOptions, masc: &MascConfig) -> u64 {
    fnv1a_bytes(job_fingerprint(canonical_deck, tran, masc).as_bytes())
}

/// One decoded cache entry: the full replay state for a job.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The [`job_fingerprint`] of the job that produced this entry —
    /// compared verbatim on every hit to rule out key collisions.
    pub fingerprint: String,
    /// The recorded forward trajectory.
    pub meta: RunMeta,
    /// The sealed compressed `G` tensor.
    pub g: CompressedTensor,
    /// The sealed compressed `C` tensor.
    pub c: CompressedTensor,
}

/// Why an entry failed to load, decode, or persist.
#[derive(Debug)]
pub enum CacheError {
    /// The byte stream ended early.
    Truncated,
    /// The magic header is wrong.
    BadMagic,
    /// The trailing checksum does not match the content.
    Checksum,
    /// A claimed length exceeds its bound.
    Bound(masc_bitio::bounded::AllocBoundError),
    /// A varint failed to decode.
    Varint(masc_bitio::varint::VarintError),
    /// The embedded fingerprint is not valid UTF-8.
    BadFingerprint,
    /// The entry's internal lengths disagree.
    LengthMismatch,
    /// An embedded tensor failed to decode.
    Tensor(CompressError),
    /// Disk I/O failed.
    Io(std::io::Error),
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::Truncated => write!(f, "cache entry truncated"),
            CacheError::BadMagic => write!(f, "cache entry has wrong magic"),
            CacheError::Checksum => write!(f, "cache entry checksum mismatch"),
            CacheError::Bound(e) => write!(f, "cache entry length claim: {e}"),
            CacheError::Varint(e) => write!(f, "cache entry varint: {e}"),
            CacheError::BadFingerprint => write!(f, "cache entry fingerprint is not UTF-8"),
            CacheError::LengthMismatch => write!(f, "cache entry internal lengths disagree"),
            CacheError::Tensor(e) => write!(f, "cache entry tensor: {e}"),
            CacheError::Io(e) => write!(f, "cache i/o: {e}"),
        }
    }
}

impl std::error::Error for CacheError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CacheError::Bound(e) => Some(e),
            CacheError::Varint(e) => Some(e),
            CacheError::Tensor(e) => Some(e),
            CacheError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<masc_bitio::bounded::AllocBoundError> for CacheError {
    fn from(e: masc_bitio::bounded::AllocBoundError) -> Self {
        CacheError::Bound(e)
    }
}

impl From<masc_bitio::varint::VarintError> for CacheError {
    fn from(e: masc_bitio::varint::VarintError) -> Self {
        CacheError::Varint(e)
    }
}

impl From<CompressError> for CacheError {
    fn from(e: CompressError) -> Self {
        CacheError::Tensor(e)
    }
}

impl From<std::io::Error> for CacheError {
    fn from(e: std::io::Error) -> Self {
        CacheError::Io(e)
    }
}

/// Serializes an entry (magic, varint-framed meta + tensors, trailing
/// FNV-1a checksum).
pub fn encode_entry(entry: &CacheEntry) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    varint::write_u64(&mut out, entry.fingerprint.len() as u64);
    out.extend_from_slice(entry.fingerprint.as_bytes());
    varint::write_u64(&mut out, entry.meta.times.len() as u64);
    for &t in &entry.meta.times {
        out.extend_from_slice(&t.to_le_bytes());
    }
    for &h in &entry.meta.hs {
        out.extend_from_slice(&h.to_le_bytes());
    }
    let state_len = entry.meta.states.first().map_or(0, Vec::len);
    varint::write_u64(&mut out, state_len as u64);
    for row in &entry.meta.states {
        for &x in row {
            out.extend_from_slice(&x.to_le_bytes());
        }
    }
    for tensor in [&entry.g, &entry.c] {
        let bytes = tensor.to_bytes();
        varint::write_u64(&mut out, bytes.len() as u64);
        out.extend_from_slice(&bytes);
    }
    let checksum = fnv1a(FNV_OFFSET, &out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// A bounds-checked forward reader over an entry's payload bytes.
struct EntryReader<'a> {
    bytes: &'a [u8],
}

impl<'a> EntryReader<'a> {
    fn u64(&mut self) -> Result<u64, CacheError> {
        let (v, used) = varint::read_u64(self.bytes)?;
        self.bytes = self.bytes.get(used..).ok_or(CacheError::Truncated)?;
        Ok(v)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CacheError> {
        let taken = self.bytes.get(..n).ok_or(CacheError::Truncated)?;
        self.bytes = self.bytes.get(n..).ok_or(CacheError::Truncated)?;
        Ok(taken)
    }

    /// Reads `n` f64 values, bounding the allocation by the bytes
    /// actually present.
    fn f64s(&mut self, n: usize, what: &'static str) -> Result<Vec<f64>, CacheError> {
        check_claim(what, n, self.bytes.len() / 8)?;
        let raw = self.take(n * 8)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| {
                let mut b = [0u8; 8];
                b.copy_from_slice(c);
                f64::from_le_bytes(b)
            })
            .collect())
    }
}

/// Decodes an entry, verifying the checksum before trusting any length
/// field.
///
/// # Errors
///
/// Returns [`CacheError`] on any framing, bound, checksum, or embedded
/// tensor failure — hostile bytes never panic and never over-allocate.
pub fn decode_entry(bytes: &[u8]) -> Result<CacheEntry, CacheError> {
    let body_len = bytes
        .len()
        .checked_sub(8)
        .filter(|&l| l >= MAGIC.len())
        .ok_or(CacheError::Truncated)?;
    let (body, tail) = (
        bytes.get(..body_len).ok_or(CacheError::Truncated)?,
        bytes.get(body_len..).ok_or(CacheError::Truncated)?,
    );
    let mut expect = [0u8; 8];
    expect.copy_from_slice(tail);
    if fnv1a(FNV_OFFSET, body) != u64::from_le_bytes(expect) {
        return Err(CacheError::Checksum);
    }
    let (magic, payload) = (
        body.get(..MAGIC.len()).ok_or(CacheError::Truncated)?,
        body.get(MAGIC.len()..).ok_or(CacheError::Truncated)?,
    );
    if magic != MAGIC {
        return Err(CacheError::BadMagic);
    }

    let mut r = EntryReader { bytes: payload };
    let fp_len = check_claim(
        "cache fingerprint bytes",
        r.u64()? as usize,
        MAX_FINGERPRINT_BYTES,
    )?;
    let fingerprint = std::str::from_utf8(r.take(fp_len)?)
        .map_err(|_| CacheError::BadFingerprint)?
        .to_string();
    let n_times = check_claim("cache time points", r.u64()? as usize, MAX_TIME_POINTS)?;
    let times = r.f64s(n_times, "cache times")?;
    let hs = r.f64s(n_times, "cache step sizes")?;
    let state_len = r.u64()? as usize;
    check_claim(
        "cache state values",
        n_times.saturating_mul(state_len),
        MAX_STATE_VALUES,
    )?;
    let mut states = Vec::with_capacity(n_times);
    for _ in 0..n_times {
        states.push(r.f64s(state_len, "cache state row")?);
    }

    let mut tensors = Vec::with_capacity(2);
    for _ in 0..2 {
        let len = check_claim("cache tensor bytes", r.u64()? as usize, r.bytes.len())?;
        tensors.push(CompressedTensor::from_bytes(r.take(len)?)?);
    }
    let (Some(c), Some(g)) = (tensors.pop(), tensors.pop()) else {
        return Err(CacheError::LengthMismatch);
    };
    if !r.bytes.is_empty() || g.len() != n_times || c.len() != n_times {
        return Err(CacheError::LengthMismatch);
    }
    Ok(CacheEntry {
        fingerprint,
        meta: RunMeta { times, hs, states },
        g,
        c,
    })
}

/// Cache telemetry, `StoreMetrics`-style: monotonic counters plus current
/// tier footprints.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheMetrics {
    /// Lookups answered from either tier.
    pub hits: u64,
    /// Hits served by the in-memory tier.
    pub mem_hits: u64,
    /// Hits served by the disk tier (and promoted to memory).
    pub disk_hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Entries inserted after cold runs.
    pub inserts: u64,
    /// Entries evicted from either tier to respect the byte budgets.
    pub evictions: u64,
    /// Disk entries discarded because they failed to decode (or no
    /// longer matched the job structure).
    pub corrupt_entries: u64,
    /// Duplicate in-flight jobs that waited for a leader instead of
    /// running the pipeline themselves.
    pub coalesced: u64,
    /// Current in-memory tier footprint (encoded-entry bytes).
    pub mem_bytes: usize,
    /// Current disk tier footprint (file bytes).
    pub disk_bytes: usize,
}

#[derive(Debug)]
struct MemEntry {
    entry: std::sync::Arc<CacheEntry>,
    bytes: usize,
    last_used: u64,
}

#[derive(Debug)]
struct DiskEntry {
    bytes: usize,
    last_used: u64,
}

/// The two-tier (memory + disk) entry cache. Not internally synchronized:
/// the server wraps it in a mutex.
#[derive(Debug)]
pub struct TensorCache {
    mem: HashMap<u64, MemEntry>,
    disk: HashMap<u64, DiskEntry>,
    dir: Option<PathBuf>,
    mem_budget: usize,
    disk_budget: usize,
    clock: u64,
    metrics: CacheMetrics,
}

fn entry_path(dir: &Path, key: u64) -> PathBuf {
    dir.join(format!("{key:016x}.msc"))
}

impl TensorCache {
    /// Opens a cache. With a directory, existing `<key>.msc` entries are
    /// indexed (oldest-modified treated as least recently used) and any
    /// `*.tmp` files left by a crashed writer are scavenged.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::Io`] if the directory cannot be created or
    /// scanned.
    pub fn open(
        dir: Option<PathBuf>,
        mem_budget: usize,
        disk_budget: usize,
    ) -> Result<Self, CacheError> {
        let mut disk = HashMap::new();
        let mut disk_bytes = 0usize;
        if let Some(dir) = &dir {
            std::fs::create_dir_all(dir)?;
            for entry in std::fs::read_dir(dir)? {
                let entry = entry?;
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if name.ends_with(".tmp") {
                    let _ = std::fs::remove_file(entry.path());
                    continue;
                }
                let Some(hex) = name.strip_suffix(".msc") else {
                    continue;
                };
                let Ok(key) = u64::from_str_radix(hex, 16) else {
                    continue;
                };
                let bytes = entry.metadata().map(|m| m.len() as usize).unwrap_or(0);
                disk_bytes += bytes;
                disk.insert(
                    key,
                    DiskEntry {
                        bytes,
                        last_used: 0,
                    },
                );
            }
        }
        let metrics = CacheMetrics {
            disk_bytes,
            ..CacheMetrics::default()
        };
        Ok(Self {
            mem: HashMap::new(),
            disk,
            dir,
            mem_budget,
            disk_budget,
            clock: 0,
            metrics,
        })
    }

    /// Current telemetry snapshot.
    pub fn metrics(&self) -> CacheMetrics {
        self.metrics
    }

    /// Bumps `coalesced` (the server's single-flight path reports
    /// through the cache so one `STATS` line covers everything).
    pub fn note_coalesced(&mut self) {
        self.metrics.coalesced += 1;
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Looks up `key`. A memory hit returns the shared entry; a disk hit
    /// decodes, promotes to memory, and returns it; a corrupt disk entry
    /// is deleted and counted, and the lookup is a miss.
    pub fn get(&mut self, key: u64) -> Option<std::sync::Arc<CacheEntry>> {
        self.lookup(key, true)
    }

    /// Like [`get`](Self::get) but an absent entry is not counted as a
    /// miss — the single-flight leader's post-acquisition recheck, which
    /// only exists to close a race, must not inflate the miss counter.
    pub fn recheck(&mut self, key: u64) -> Option<std::sync::Arc<CacheEntry>> {
        self.lookup(key, false)
    }

    fn lookup(&mut self, key: u64, count_miss: bool) -> Option<std::sync::Arc<CacheEntry>> {
        let now = self.tick();
        if let Some(m) = self.mem.get_mut(&key) {
            m.last_used = now;
            self.metrics.hits += 1;
            self.metrics.mem_hits += 1;
            if let Some(d) = self.disk.get_mut(&key) {
                d.last_used = now;
            }
            return Some(std::sync::Arc::clone(&m.entry));
        }
        if self.disk.contains_key(&key) {
            match self.load_disk(key) {
                Ok((entry, encoded_len)) => {
                    let entry = std::sync::Arc::new(entry);
                    self.metrics.hits += 1;
                    self.metrics.disk_hits += 1;
                    if let Some(d) = self.disk.get_mut(&key) {
                        d.last_used = now;
                        // Repair a stale indexed size (0 when the open
                        // scan's metadata call failed) now that the true
                        // length is known.
                        if d.bytes != encoded_len {
                            self.metrics.disk_bytes = self
                                .metrics
                                .disk_bytes
                                .saturating_sub(d.bytes)
                                .saturating_add(encoded_len);
                            d.bytes = encoded_len;
                        }
                    }
                    self.admit_mem(key, std::sync::Arc::clone(&entry), encoded_len, now);
                    return Some(entry);
                }
                Err(_) => self.discard(key),
            }
        }
        if count_miss {
            self.metrics.misses += 1;
        }
        None
    }

    /// Reads and decodes a disk entry, returning the decoded entry and
    /// the encoded byte length actually read (the size the memory tier
    /// must account the promotion at).
    fn load_disk(&self, key: u64) -> Result<(CacheEntry, usize), CacheError> {
        let dir = self.dir.as_deref().ok_or(CacheError::Truncated)?;
        let bytes = std::fs::read(entry_path(dir, key))?;
        Ok((decode_entry(&bytes)?, bytes.len()))
    }

    /// Inserts a freshly computed entry into both tiers.
    pub fn put(&mut self, key: u64, entry: std::sync::Arc<CacheEntry>) {
        let now = self.tick();
        let encoded = encode_entry(&entry);
        self.metrics.inserts += 1;
        if let Some(dir) = self.dir.clone() {
            if self.write_disk(&dir, key, &encoded).is_ok() {
                self.disk
                    .entry(key)
                    .and_modify(|d| {
                        self.metrics.disk_bytes =
                            self.metrics.disk_bytes.saturating_sub(d.bytes) + encoded.len();
                        d.bytes = encoded.len();
                        d.last_used = now;
                    })
                    .or_insert_with(|| {
                        self.metrics.disk_bytes += encoded.len();
                        DiskEntry {
                            bytes: encoded.len(),
                            last_used: now,
                        }
                    });
                self.evict_disk(key);
            }
        }
        let bytes = encoded.len();
        if let Some(old) = self.mem.insert(
            key,
            MemEntry {
                entry,
                bytes,
                last_used: now,
            },
        ) {
            self.metrics.mem_bytes = self.metrics.mem_bytes.saturating_sub(old.bytes);
        }
        self.metrics.mem_bytes += bytes;
        self.evict_mem(key);
    }

    /// Admits a disk-promoted entry to the memory tier, accounted at the
    /// encoded byte length it was actually read at (never the disk
    /// index's recorded size, which can be stale or zero).
    fn admit_mem(&mut self, key: u64, entry: std::sync::Arc<CacheEntry>, bytes: usize, now: u64) {
        if let Some(old) = self.mem.insert(
            key,
            MemEntry {
                entry,
                bytes,
                last_used: now,
            },
        ) {
            self.metrics.mem_bytes = self.metrics.mem_bytes.saturating_sub(old.bytes);
        }
        self.metrics.mem_bytes += bytes;
        self.evict_mem(key);
    }

    /// Evicts least-recently-used memory entries (never `keep`) until the
    /// tier fits its budget.
    fn evict_mem(&mut self, keep: u64) {
        while self.metrics.mem_bytes > self.mem_budget {
            let victim = self
                .mem
                .iter()
                .filter(|(k, _)| **k != keep)
                .min_by_key(|(_, m)| m.last_used)
                .map(|(k, _)| *k);
            let Some(victim) = victim else { break };
            if let Some(old) = self.mem.remove(&victim) {
                self.metrics.mem_bytes = self.metrics.mem_bytes.saturating_sub(old.bytes);
                self.metrics.evictions += 1;
            }
        }
    }

    /// Evicts least-recently-used disk entries (never `keep`) until the
    /// tier fits its budget.
    fn evict_disk(&mut self, keep: u64) {
        while self.metrics.disk_bytes > self.disk_budget {
            let victim = self
                .disk
                .iter()
                .filter(|(k, _)| **k != keep)
                .min_by_key(|(_, d)| d.last_used)
                .map(|(k, _)| *k);
            let Some(victim) = victim else { break };
            if let Some(old) = self.disk.remove(&victim) {
                self.metrics.disk_bytes = self.metrics.disk_bytes.saturating_sub(old.bytes);
                self.metrics.evictions += 1;
                if let Some(dir) = &self.dir {
                    let _ = std::fs::remove_file(entry_path(dir, victim));
                }
            }
        }
    }

    fn write_disk(&self, dir: &Path, key: u64, encoded: &[u8]) -> Result<(), CacheError> {
        let tmp = dir.join(format!("{key:016x}-{}.tmp", std::process::id()));
        std::fs::write(&tmp, encoded)?;
        match std::fs::rename(&tmp, entry_path(dir, key)) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(CacheError::Io(e))
            }
        }
    }

    /// Drops `key` from both tiers and counts it as corrupt — used when
    /// an entry decodes but fails downstream validation, or fails to
    /// decode at all.
    pub fn discard(&mut self, key: u64) {
        if let Some(old) = self.mem.remove(&key) {
            self.metrics.mem_bytes = self.metrics.mem_bytes.saturating_sub(old.bytes);
        }
        if let Some(old) = self.disk.remove(&key) {
            self.metrics.disk_bytes = self.metrics.disk_bytes.saturating_sub(old.bytes);
            if let Some(dir) = &self.dir {
                let _ = std::fs::remove_file(entry_path(dir, key));
            }
        }
        self.metrics.corrupt_entries += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use masc_compress::TensorCompressor;
    use masc_sparse::TripletMatrix;
    use std::sync::Arc;

    fn sample_entry(seed: f64) -> CacheEntry {
        let mut t = TripletMatrix::new(3, 3);
        for i in 0..3 {
            t.add(i, i, 1.0);
        }
        let pattern = t.to_csr().pattern().clone();
        let mut g = TensorCompressor::new(pattern.clone(), MascConfig::default());
        let mut c = TensorCompressor::new(pattern, MascConfig::default());
        for s in 0..4 {
            let v: Vec<f64> = (0..3).map(|k| seed + (s * 3 + k) as f64).collect();
            g.push(&v);
            c.push(&v);
        }
        g.seal();
        c.seal();
        CacheEntry {
            fingerprint: format!("deck-{seed}\u{1f}tran\u{1f}masc"),
            meta: RunMeta {
                times: vec![0.0, 1.0, 2.0, 3.0],
                hs: vec![1.0; 4],
                states: (0..4).map(|s| vec![seed * s as f64; 2]).collect(),
            },
            g: g.finish(),
            c: c.finish(),
        }
    }

    #[test]
    fn entry_round_trips() {
        let entry = sample_entry(0.5);
        let bytes = encode_entry(&entry);
        let back = decode_entry(&bytes).unwrap();
        assert_eq!(back.fingerprint, entry.fingerprint);
        assert_eq!(back.meta.times, entry.meta.times);
        assert_eq!(back.meta.hs, entry.meta.hs);
        assert_eq!(back.meta.states, entry.meta.states);
        assert_eq!(back.g.to_bytes(), entry.g.to_bytes());
        assert_eq!(back.c.to_bytes(), entry.c.to_bytes());
    }

    #[test]
    fn every_truncation_and_corruption_is_structured() {
        let bytes = encode_entry(&sample_entry(1.25));
        for cut in 0..bytes.len() {
            assert!(decode_entry(&bytes[..cut]).is_err(), "cut {cut}");
        }
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x41;
            assert!(decode_entry(&corrupt).is_err(), "flip at {i}");
        }
    }

    #[test]
    fn key_separates_deck_tran_and_config() {
        let tran = TranOptions::new(1e-3, 1e-5);
        let base = entry_key("R0 n0 0 1000\n", &tran, &MascConfig::default());
        assert_ne!(
            base,
            entry_key("R0 n0 0 1001\n", &tran, &MascConfig::default())
        );
        assert_ne!(
            base,
            entry_key(
                "R0 n0 0 1000\n",
                &TranOptions::new(1e-3, 2e-5),
                &MascConfig::default()
            )
        );
        let masc = MascConfig {
            markov: false,
            ..MascConfig::default()
        };
        assert_ne!(base, entry_key("R0 n0 0 1000\n", &tran, &masc));
        assert_eq!(
            base,
            entry_key("R0 n0 0 1000\n", &tran, &MascConfig::default())
        );
    }

    #[test]
    fn lru_eviction_respects_budget() {
        let mut cache = TensorCache::open(None, 1, usize::MAX).unwrap();
        let e = Arc::new(sample_entry(2.0));
        cache.put(1, Arc::clone(&e));
        cache.put(2, Arc::clone(&e));
        // Budget of 1 byte: only the newest entry survives.
        assert!(cache.get(1).is_none());
        assert!(cache.get(2).is_some());
        let m = cache.metrics();
        assert!(m.evictions >= 1);
        assert_eq!(m.misses, 1);
        assert_eq!(m.mem_hits, 1);
    }

    #[test]
    fn disk_tier_round_trips_and_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("masc-serve-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut cache = TensorCache::open(Some(dir.clone()), usize::MAX, usize::MAX).unwrap();
            cache.put(7, Arc::new(sample_entry(3.0)));
        }
        let mut cache = TensorCache::open(Some(dir.clone()), usize::MAX, usize::MAX).unwrap();
        let entry = cache.get(7).expect("disk entry should load");
        assert_eq!(entry.meta.times.len(), 4);
        assert_eq!(cache.metrics().disk_hits, 1);
        // Second lookup is a memory hit (promotion worked).
        assert!(cache.get(7).is_some());
        assert_eq!(cache.metrics().mem_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entry_is_discarded_not_fatal() {
        let dir = std::env::temp_dir().join(format!("masc-serve-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut cache = TensorCache::open(Some(dir.clone()), usize::MAX, usize::MAX).unwrap();
            cache.put(9, Arc::new(sample_entry(4.0)));
        }
        let path = dir.join(format!("{:016x}.msc", 9u64));
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[10] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let mut cache = TensorCache::open(Some(dir.clone()), usize::MAX, usize::MAX).unwrap();
        assert!(cache.get(9).is_none());
        let m = cache.metrics();
        assert_eq!(m.corrupt_entries, 1);
        assert_eq!(m.misses, 1);
        assert!(!path.exists(), "corrupt entry file should be removed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn promoted_entry_is_accounted_at_read_size_not_indexed_size() {
        let dir = std::env::temp_dir().join(format!("masc-serve-promote-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let encoded_len = {
            let mut cache = TensorCache::open(Some(dir.clone()), usize::MAX, usize::MAX).unwrap();
            let entry = sample_entry(5.0);
            let len = encode_entry(&entry).len();
            cache.put(11, Arc::new(entry));
            len
        };
        let mut cache = TensorCache::open(Some(dir.clone()), usize::MAX, usize::MAX).unwrap();
        // Simulate the open scan's metadata call failing: the disk index
        // then records a 0-byte entry.
        cache.disk.get_mut(&11).unwrap().bytes = 0;
        cache.metrics.disk_bytes = 0;
        assert!(cache.get(11).is_some());
        let m = cache.metrics();
        assert_eq!(
            m.mem_bytes, encoded_len,
            "promotion must charge the memory tier the bytes actually read"
        );
        assert_eq!(
            m.disk_bytes, encoded_len,
            "a stale disk index size is repaired on load"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_tmp_files_are_scavenged_on_open() {
        let dir = std::env::temp_dir().join(format!("masc-serve-tmp-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let tmp = dir.join("deadbeef-1.tmp");
        std::fs::write(&tmp, b"partial").unwrap();
        let _ = TensorCache::open(Some(dir.clone()), usize::MAX, usize::MAX).unwrap();
        assert!(!tmp.exists(), "leftover tmp file should be scavenged");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
