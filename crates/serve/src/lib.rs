//! `masc-serve`: a long-running sensitivity job server with a
//! content-addressed compressed-tensor cache.
//!
//! The server accepts netlist + objective jobs over a line-delimited text
//! protocol ([`protocol`]), shards them across a scoped worker pool
//! ([`server`]), and fronts the whole MASC pipeline with a two-tier
//! (memory + disk) cache of compressed Jacobian tensors ([`cache`]) keyed
//! by the *content* of the job: the canonical re-serialized netlist, the
//! transient options, and the compression configuration.
//!
//! A cache miss runs the full forward transient through an asynchronous
//! [`PipelinedStore`](masc_adjoint::PipelinedStore) and persists the two
//! sealed tensors; a cache hit replays **only the reverse pass** — the
//! tensors decode newest-first straight into an
//! [`AdjointCursor`](masc_adjoint::AdjointCursor), the forward pass is
//! skipped entirely (`steps = 0` in the hit telemetry), and the
//! sensitivities are bit-identical to the cold run because the compressed
//! tensors are lossless and the reverse arithmetic is deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::disallowed_methods))]

pub mod cache;
pub mod engine;
#[cfg(feature = "mutation-hooks")]
pub mod mutation;
pub mod protocol;
pub mod server;

pub use cache::{CacheError, CacheMetrics, TensorCache};
pub use engine::{JobOutcome, ResolvedJob};
pub use protocol::{JobRequest, ObjectiveSpec, ParamSelector, ProtocolError, Request};
pub use server::{ServeConfig, Server};

use masc_adjoint::{AdjointError, StoreError};
use masc_circuit::parser::ParseNetlistError;
use masc_circuit::transient::TranError;
use masc_circuit::CircuitError;
use masc_compress::CompressError;

/// Everything that can go wrong while resolving or running one job.
#[derive(Debug)]
pub enum ServeError {
    /// The request line failed to parse.
    Protocol(ProtocolError),
    /// The deck text failed to parse.
    Parse(ParseNetlistError),
    /// The deck has no `.tran` directive, so there is nothing to run.
    NoTran,
    /// An objective references a node name the deck does not define (or
    /// the ground node, which has no unknown).
    UnknownNode(String),
    /// A parameter path does not resolve in the deck.
    UnknownParam(String),
    /// An `at:<step>` objective points past the end of the transient.
    StepOutOfRange {
        /// The requested step.
        step: usize,
        /// The last valid step index.
        max: usize,
    },
    /// The circuit failed to elaborate.
    Circuit(CircuitError),
    /// The forward transient failed.
    Tran(TranError),
    /// The reverse pass failed.
    Adjoint(AdjointError),
    /// The Jacobian store failed.
    Store(StoreError),
    /// A cached tensor failed to decode.
    Compress(CompressError),
    /// A cache entry failed to load or persist.
    Cache(CacheError),
    /// A cache entry decoded but does not match the job's circuit
    /// structure (hash collision or stale entry) — treated as a miss.
    CacheMismatch,
    /// Server-side I/O (socket, stdin) failed.
    Io(std::io::Error),
}

impl ServeError {
    /// Stable one-token error code for the wire protocol's `ERR` line.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::Protocol(_) => "protocol",
            ServeError::Parse(_) => "parse",
            ServeError::NoTran => "no-tran",
            ServeError::UnknownNode(_) => "unknown-node",
            ServeError::UnknownParam(_) => "unknown-param",
            ServeError::StepOutOfRange { .. } => "step-range",
            ServeError::Circuit(_) => "circuit",
            ServeError::Tran(_) => "tran",
            ServeError::Adjoint(_) => "adjoint",
            ServeError::Store(_) => "store",
            ServeError::Compress(_) => "compress",
            ServeError::Cache(_) => "cache",
            ServeError::CacheMismatch => "cache-mismatch",
            ServeError::Io(_) => "io",
        }
    }

    /// Whether the error indicts the cached entry rather than the job —
    /// the caller should drop the entry and re-run cold.
    pub fn is_cache_fault(&self) -> bool {
        matches!(
            self,
            ServeError::Compress(_) | ServeError::Cache(_) | ServeError::CacheMismatch
        )
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Protocol(e) => write!(f, "protocol error: {e}"),
            ServeError::Parse(e) => write!(f, "deck parse error: {e}"),
            ServeError::NoTran => write!(f, "deck has no .tran directive"),
            ServeError::UnknownNode(n) => write!(f, "objective node {n:?} not in deck"),
            ServeError::UnknownParam(p) => write!(f, "parameter {p:?} not in deck"),
            ServeError::StepOutOfRange { step, max } => {
                write!(f, "objective step {step} out of range (last step {max})")
            }
            ServeError::Circuit(e) => write!(f, "elaboration failed: {e}"),
            ServeError::Tran(e) => write!(f, "transient failed: {e}"),
            ServeError::Adjoint(e) => write!(f, "adjoint failed: {e}"),
            ServeError::Store(e) => write!(f, "store failed: {e}"),
            ServeError::Compress(e) => write!(f, "tensor decode failed: {e}"),
            ServeError::Cache(e) => write!(f, "cache failed: {e}"),
            ServeError::CacheMismatch => write!(f, "cache entry does not match job structure"),
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Protocol(e) => Some(e),
            ServeError::Parse(e) => Some(e),
            ServeError::Circuit(e) => Some(e),
            ServeError::Tran(e) => Some(e),
            ServeError::Adjoint(e) => Some(e),
            ServeError::Store(e) => Some(e),
            ServeError::Compress(e) => Some(e),
            ServeError::Cache(e) => Some(e),
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProtocolError> for ServeError {
    fn from(e: ProtocolError) -> Self {
        ServeError::Protocol(e)
    }
}

impl From<ParseNetlistError> for ServeError {
    fn from(e: ParseNetlistError) -> Self {
        ServeError::Parse(e)
    }
}

impl From<CircuitError> for ServeError {
    fn from(e: CircuitError) -> Self {
        ServeError::Circuit(e)
    }
}

impl From<TranError> for ServeError {
    fn from(e: TranError) -> Self {
        ServeError::Tran(e)
    }
}

impl From<AdjointError> for ServeError {
    fn from(e: AdjointError) -> Self {
        ServeError::Adjoint(e)
    }
}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> Self {
        ServeError::Store(e)
    }
}

impl From<CompressError> for ServeError {
    fn from(e: CompressError) -> Self {
        ServeError::Compress(e)
    }
}

impl From<CacheError> for ServeError {
    fn from(e: CacheError) -> Self {
        ServeError::Cache(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}
