//! The line-delimited request/response protocol.
//!
//! Requests, one per line:
//!
//! ```text
//! SOLVE <job-id> <objectives> <params> <deck>
//! STATS
//! SHUTDOWN
//! ```
//!
//! - `<job-id>`: `[A-Za-z0-9._-]{1,128}`.
//! - `<objectives>`: comma-separated `final:<node>`, `at:<step>:<node>`,
//!   `integral:<node>`, `integral2:<node>`.
//! - `<params>`: `*` (every parameter in the deck) or a comma-separated
//!   list of parameter paths (`R0.r,C1.c`).
//! - `<deck>`: the netlist text, newline-escaped (`\n` → newline,
//!   `\\` → backslash), extending to the end of the line.
//!
//! Responses, one per request (plus a final `BYE` on shutdown):
//!
//! ```text
//! OK <job-id> <hit|miss> steps=<n> values=<v,…> sens=<r;r;…>
//! ERR <job-id> <code> <message>
//! STATS <k>=<v> …
//! BYE
//! ```
//!
//! This module only parses and renders text; it allocates nothing larger
//! than its (size-capped) input line and never panics on hostile input —
//! it is a `wire-decode` class in `lint-manifest.txt`.

/// Longest accepted request line (bytes), escaped deck included.
pub const MAX_LINE_BYTES: usize = 1 << 20;
/// Longest accepted job id.
pub const MAX_JOB_ID: usize = 128;
/// Most objectives in one job.
pub const MAX_OBJECTIVES: usize = 64;
/// Most explicitly named parameters in one job.
pub const MAX_PARAMS: usize = 256;

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run (or replay) a sensitivity job.
    Solve(JobRequest),
    /// Report cache/server telemetry.
    Stats,
    /// Drain queued jobs, answer them, then stop.
    Shutdown,
}

/// A sensitivity job as it arrives on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// Client-chosen id echoed on the response line.
    pub id: String,
    /// Objectives, by node name.
    pub objectives: Vec<ObjectiveSpec>,
    /// Which parameters to differentiate with respect to.
    pub params: ParamSelector,
    /// The netlist text (unescaped).
    pub deck: String,
}

/// One objective, referencing a node by name.
#[derive(Debug, Clone, PartialEq)]
pub enum ObjectiveSpec {
    /// The node voltage at the final time point.
    FinalValue {
        /// Node name.
        node: String,
    },
    /// The node voltage at a specific accepted step.
    AtStep {
        /// Node name.
        node: String,
        /// Step index (0 = DC point).
        step: usize,
    },
    /// The time integral of the node voltage.
    Integral {
        /// Node name.
        node: String,
    },
    /// The time integral of the squared node voltage.
    IntegralSquared {
        /// Node name.
        node: String,
    },
}

impl ObjectiveSpec {
    /// The node name this objective observes.
    pub fn node(&self) -> &str {
        match self {
            ObjectiveSpec::FinalValue { node }
            | ObjectiveSpec::AtStep { node, .. }
            | ObjectiveSpec::Integral { node }
            | ObjectiveSpec::IntegralSquared { node } => node,
        }
    }
}

/// Which parameters a job differentiates with respect to.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamSelector {
    /// Every parameter the deck defines, in deck order.
    All,
    /// An explicit list of parameter paths.
    Named(Vec<String>),
}

/// Why a request line was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// The line was empty.
    Empty,
    /// The line is longer than [`MAX_LINE_BYTES`].
    LineTooLong {
        /// Observed length.
        len: usize,
    },
    /// The first token is not a known command.
    UnknownCommand(String),
    /// A required field is missing.
    MissingField(&'static str),
    /// The job id is empty, too long, or has characters outside
    /// `[A-Za-z0-9._-]`.
    BadJobId,
    /// An objective spec failed to parse.
    BadObjective(String),
    /// Too many objectives or parameters.
    TooMany {
        /// Which list overflowed.
        what: &'static str,
        /// The cap that was exceeded.
        max: usize,
    },
    /// The deck field ends inside an escape sequence or uses an unknown
    /// escape.
    BadEscape,
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Empty => write!(f, "empty request line"),
            ProtocolError::LineTooLong { len } => {
                write!(f, "request line of {len} bytes exceeds {MAX_LINE_BYTES}")
            }
            ProtocolError::UnknownCommand(c) => write!(f, "unknown command {c:?}"),
            ProtocolError::MissingField(what) => write!(f, "missing field: {what}"),
            ProtocolError::BadJobId => {
                write!(f, "job id must be 1..={MAX_JOB_ID} chars of [A-Za-z0-9._-]")
            }
            ProtocolError::BadObjective(s) => write!(f, "bad objective spec {s:?}"),
            ProtocolError::TooMany { what, max } => {
                write!(f, "too many {what} (max {max})")
            }
            ProtocolError::BadEscape => write!(f, "bad escape sequence in deck field"),
        }
    }
}

impl std::error::Error for ProtocolError {}

fn valid_job_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= MAX_JOB_ID
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
}

fn parse_objective(spec: &str) -> Result<ObjectiveSpec, ProtocolError> {
    let bad = || ProtocolError::BadObjective(spec.to_string());
    let (kind, rest) = spec.split_once(':').ok_or_else(bad)?;
    match kind {
        "final" | "integral" | "integral2" => {
            if rest.is_empty() || rest.contains(':') {
                return Err(bad());
            }
            let node = rest.to_string();
            Ok(match kind {
                "final" => ObjectiveSpec::FinalValue { node },
                "integral" => ObjectiveSpec::Integral { node },
                _ => ObjectiveSpec::IntegralSquared { node },
            })
        }
        "at" => {
            let (step, node) = rest.split_once(':').ok_or_else(bad)?;
            if node.is_empty() || node.contains(':') {
                return Err(bad());
            }
            let step: usize = step.parse().map_err(|_| bad())?;
            Ok(ObjectiveSpec::AtStep {
                node: node.to_string(),
                step,
            })
        }
        _ => Err(bad()),
    }
}

/// Unescapes the deck field (`\n` → newline, `\\` → backslash).
///
/// The output is never longer than the input, so this allocates at most
/// one input-sized buffer.
fn unescape_deck(field: &str) -> Result<String, ProtocolError> {
    let mut out = String::with_capacity(field.len());
    let mut chars = field.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('\\') => out.push('\\'),
            _ => return Err(ProtocolError::BadEscape),
        }
    }
    Ok(out)
}

/// Escapes a deck for the `SOLVE` line (inverse of the parser's
/// unescaping). Carriage returns are dropped: the protocol is
/// line-delimited and decks are `\n`-separated card text.
pub fn escape_deck(deck: &str) -> String {
    let mut out = String::with_capacity(deck.len() + deck.len() / 8);
    for c in deck.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => {}
            c => out.push(c),
        }
    }
    out
}

/// Parses one request line (no trailing newline).
///
/// # Errors
///
/// Returns [`ProtocolError`] describing the first malformed field.
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    if line.len() > MAX_LINE_BYTES {
        return Err(ProtocolError::LineTooLong { len: line.len() });
    }
    let line = line.trim_end_matches(['\r', '\n']);
    if line.trim().is_empty() {
        return Err(ProtocolError::Empty);
    }
    let (command, rest) = match line.split_once(' ') {
        Some((c, r)) => (c, r),
        None => (line, ""),
    };
    match command {
        "STATS" => Ok(Request::Stats),
        "SHUTDOWN" => Ok(Request::Shutdown),
        "SOLVE" => {
            let (id, rest) = rest
                .split_once(' ')
                .ok_or(ProtocolError::MissingField("objectives"))?;
            if !valid_job_id(id) {
                return Err(ProtocolError::BadJobId);
            }
            let (objectives, rest) = rest
                .split_once(' ')
                .ok_or(ProtocolError::MissingField("params"))?;
            let (params, deck) = rest
                .split_once(' ')
                .ok_or(ProtocolError::MissingField("deck"))?;
            if deck.is_empty() {
                return Err(ProtocolError::MissingField("deck"));
            }

            let specs: Vec<&str> = objectives.split(',').collect();
            if specs.len() > MAX_OBJECTIVES {
                return Err(ProtocolError::TooMany {
                    what: "objectives",
                    max: MAX_OBJECTIVES,
                });
            }
            let mut parsed = Vec::with_capacity(specs.len());
            for spec in specs {
                parsed.push(parse_objective(spec)?);
            }
            if parsed.is_empty() {
                return Err(ProtocolError::MissingField("objectives"));
            }

            let selector = if params == "*" {
                ParamSelector::All
            } else {
                let paths: Vec<&str> = params.split(',').collect();
                if paths.len() > MAX_PARAMS {
                    return Err(ProtocolError::TooMany {
                        what: "params",
                        max: MAX_PARAMS,
                    });
                }
                if paths.iter().any(|p| p.is_empty()) {
                    return Err(ProtocolError::MissingField("params"));
                }
                ParamSelector::Named(paths.iter().map(|p| p.to_string()).collect())
            };

            Ok(Request::Solve(JobRequest {
                id: id.to_string(),
                objectives: parsed,
                params: selector,
                deck: unescape_deck(deck)?,
            }))
        }
        other => Err(ProtocolError::UnknownCommand(other.to_string())),
    }
}

/// Renders a successful job response.
pub fn render_ok(id: &str, hit: bool, steps: usize, values: &[f64], sens: &[Vec<f64>]) -> String {
    let mut out = String::new();
    out.push_str("OK ");
    out.push_str(id);
    out.push_str(if hit { " hit" } else { " miss" });
    out.push_str(&format!(" steps={steps} values="));
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{v:?}"));
    }
    out.push_str(" sens=");
    for (i, row) in sens.iter().enumerate() {
        if i > 0 {
            out.push(';');
        }
        for (j, v) in row.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("{v:?}"));
        }
    }
    out
}

/// Renders an error response (`message` is flattened to one line).
pub fn render_err(id: &str, code: &str, message: &str) -> String {
    let flat: String = message
        .chars()
        .map(|c| if c == '\n' || c == '\r' { ' ' } else { c })
        .collect();
    format!("ERR {id} {code} {flat}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_round_trip() {
        let deck = "I1 n0 0 DC 1e-3\nR0 n0 0 1000\n.tran 1u 10u\n.end";
        let line = format!(
            "SOLVE job-1 final:n0,at:3:n0,integral:n0 * {}",
            escape_deck(deck)
        );
        let req = parse_request(&line).unwrap();
        let Request::Solve(job) = req else {
            panic!("not a solve")
        };
        assert_eq!(job.id, "job-1");
        assert_eq!(job.deck, deck);
        assert_eq!(job.objectives.len(), 3);
        assert_eq!(
            job.objectives[1],
            ObjectiveSpec::AtStep {
                node: "n0".into(),
                step: 3
            }
        );
        assert_eq!(job.params, ParamSelector::All);
    }

    #[test]
    fn named_params_parse() {
        let line = "SOLVE j final:n1 R0.r,C1.c R0 n1 0 1k\\n.tran 1u 2u";
        let Request::Solve(job) = parse_request(line).unwrap() else {
            panic!("not a solve")
        };
        assert_eq!(
            job.params,
            ParamSelector::Named(vec!["R0.r".into(), "C1.c".into()])
        );
        assert!(job.deck.contains('\n'));
    }

    #[test]
    fn control_lines_parse() {
        assert_eq!(parse_request("STATS").unwrap(), Request::Stats);
        assert_eq!(parse_request("SHUTDOWN\n").unwrap(), Request::Shutdown);
    }

    #[test]
    fn hostile_lines_are_structured_errors() {
        for line in [
            "",
            "   ",
            "NOPE x",
            "SOLVE",
            "SOLVE id",
            "SOLVE id final:n0",
            "SOLVE id final:n0 *",
            "SOLVE id final:n0 * ",
            "SOLVE bad id! final:n0 * deck",
            "SOLVE id final * deck",
            "SOLVE id at:x:n0 * deck",
            "SOLVE id at:3 * deck",
            "SOLVE id wat:n0 * deck",
            "SOLVE id final:n0 * bad\\escape",
            "SOLVE id final:n0 * trailing\\",
            "SOLVE id final:n0 ,R0.r deck",
        ] {
            assert!(parse_request(line).is_err(), "line {line:?} should fail");
        }
        let long = format!("SOLVE id final:n0 * {}", "x".repeat(MAX_LINE_BYTES + 1));
        assert!(matches!(
            parse_request(&long),
            Err(ProtocolError::LineTooLong { .. })
        ));
        let many = format!(
            "SOLVE id {} * deck",
            vec!["final:n0"; MAX_OBJECTIVES + 1].join(",")
        );
        assert!(matches!(
            parse_request(&many),
            Err(ProtocolError::TooMany { .. })
        ));
    }

    #[test]
    fn render_ok_shapes_line() {
        let line = render_ok(
            "j1",
            true,
            0,
            &[1.5, -2.0],
            &[vec![0.25, 1.0], vec![3.0, 4.0]],
        );
        assert_eq!(
            line,
            "OK j1 hit steps=0 values=1.5,-2.0 sens=0.25,1.0;3.0,4.0"
        );
    }

    #[test]
    fn render_err_flattens_newlines() {
        assert_eq!(
            render_err("j", "parse", "line 3:\nbad card"),
            "ERR j parse line 3: bad card"
        );
    }
}
