//! Switchable injected defects for validating the conformance harness.
//!
//! Mirrors `masc_compress::mutation` / `masc_adjoint::mutation` for the
//! job-server layer. Only compiled with the `mutation-hooks` feature,
//! and inert until [`set_defect`] selects a defect at run time.
//!
//! The defect here is a *scheduling* bug, so its validating check is not
//! a fuzz oracle but the deterministic interleaving explorer
//! (`masc-conform --model-check`): arming [`Defect::LostWakeupClose`]
//! switches the worker-queue close protocol to the pre-PR-8 shape —
//! `closed` tracked outside the queue mutex — whose lost wakeup only a
//! schedule-exploring harness can expose reliably.

use std::sync::atomic::{AtomicU8, Ordering};

/// Selectable injected defects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Defect {
    /// No defect (the default state).
    None = 0,
    /// The worker-queue `closed` flag is set *outside* the queue mutex
    /// before `notify_all`, so the close can interleave between a
    /// worker's predicate check and its `Condvar::wait` — the classic
    /// lost wakeup: that worker parks forever and shutdown hangs.
    LostWakeupClose = 1,
}

static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// Activates `defect` process-wide. Tests must serialize around this.
pub fn set_defect(defect: Defect) {
    ACTIVE.store(defect as u8, Ordering::SeqCst);
}

/// Whether `defect` is currently active.
pub fn active(defect: Defect) -> bool {
    ACTIVE.load(Ordering::SeqCst) == defect as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hooks_are_inert_by_default() {
        set_defect(Defect::None);
        assert!(active(Defect::None));
        assert!(!active(Defect::LostWakeupClose));
    }
}
