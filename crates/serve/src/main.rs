//! `masc-serve` binary: line protocol over stdin/stdout by default, or a
//! Unix domain socket with `--socket <path>` (one connection at a time;
//! `SHUTDOWN` on any connection stops the listener).

use masc_serve::server::run_lines;
use masc_serve::{ServeConfig, Server};
use std::io::BufReader;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    cfg: ServeConfig,
    socket: Option<PathBuf>,
}

fn usage() -> &'static str {
    "usage: masc-serve [--socket PATH] [--cache-dir DIR] [--workers N] \
     [--mem-mb N] [--disk-mb N] [--panic-on JOB_ID]"
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut cfg = ServeConfig::default();
    let mut socket = None;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |what: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{what} needs a value"))
        };
        match flag.as_str() {
            "--socket" => socket = Some(PathBuf::from(value("--socket")?)),
            "--cache-dir" => cfg.cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
            "--workers" => {
                cfg.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--mem-mb" => {
                let mb: usize = value("--mem-mb")?
                    .parse()
                    .map_err(|e| format!("--mem-mb: {e}"))?;
                cfg.mem_budget = mb.saturating_mul(1 << 20);
            }
            "--disk-mb" => {
                let mb: usize = value("--disk-mb")?
                    .parse()
                    .map_err(|e| format!("--disk-mb: {e}"))?;
                cfg.disk_budget = mb.saturating_mul(1 << 20);
            }
            "--panic-on" => cfg.fault_panic_job = Some(value("--panic-on")?.clone()),
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    Ok(Args { cfg, socket })
}

fn serve_socket(server: &Server, path: &PathBuf) -> Result<(), masc_serve::ServeError> {
    // A stale socket file from a previous run would make bind fail.
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    eprintln!("masc-serve: listening on {}", path.display());
    // One faulting connection (ECONNRESET mid-read, accept hiccup) must
    // not take down the listener: log it and keep serving. Only an
    // explicit SHUTDOWN stops the loop.
    for conn in listener.incoming() {
        let stream = match conn {
            Ok(stream) => stream,
            Err(e) => {
                eprintln!("masc-serve: accept failed: {e}");
                continue;
            }
        };
        let reader = match stream.try_clone() {
            Ok(clone) => BufReader::new(clone),
            Err(e) => {
                eprintln!("masc-serve: connection setup failed: {e}");
                continue;
            }
        };
        match run_lines(server, reader, stream) {
            Ok(true) => break, // explicit SHUTDOWN stops the listener
            Ok(false) => {}
            Err(e) => eprintln!("masc-serve: connection error: {e}"),
        }
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::new(args.cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("masc-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match &args.socket {
        Some(path) => serve_socket(&server, path),
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            run_lines(&server, stdin.lock(), stdout).map(|_| ())
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("masc-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
