//! Job execution: the cold (full-pipeline) and hit (reverse-only) paths.
//!
//! [`resolve`] canonicalizes a wire-level [`JobRequest`] into a
//! [`ResolvedJob`] — the deck is parsed and re-serialized through
//! [`write_netlist`] so the cache key addresses deck *content*, not
//! spelling. [`run_cold`] runs the forward transient through an
//! asynchronous [`PipelinedStore`] wrapped around a [`CaptureStore`]
//! (a compressing store that also hands the two sealed tensors back for
//! caching), then the reverse pass. [`run_hit`] skips the forward pass
//! entirely: the cached tensors decode newest-first straight into an
//! [`AdjointCursor`] and the objective values come from the cached
//! trajectory, so its [`TranStats`] stay at zero steps — the telemetry
//! proof that the transient never ran.
//!
//! Both paths drive the reverse arithmetic identically (same canonical
//! deck, same fresh per-job cursor workspace, bit-identical decoded
//! matrices), which is what makes hit results bit-identical to the cold
//! run that populated the entry.

use crate::cache::{entry_key, job_fingerprint, CacheEntry};
use crate::protocol::{JobRequest, ObjectiveSpec, ParamSelector};
use crate::ServeError;
use masc_adjoint::store::{StepMatrices, StoreError, TensorLayout};
use masc_adjoint::{
    adjoint_sensitivities, AdjointCursor, CaptureStore, ForwardRecord, Objective, PipelinedStore,
    StoreMetrics,
};
use masc_circuit::netlist::write_netlist;
use masc_circuit::parser::parse_netlist;
use masc_circuit::transient::{transient_ws, TranOptions, TranStats};
use masc_circuit::{Circuit, ParamRef, System};
use masc_compress::MascConfig;
use masc_sparse::{LuWorkspace, Pattern, SymbolicLu};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};

/// A job after deck canonicalization and name resolution.
#[derive(Debug, Clone)]
pub struct ResolvedJob {
    /// Content-addressed cache key (FNV-1a of `fingerprint`).
    pub key: u64,
    /// The full identity string the key hashes
    /// ([`job_fingerprint`]) — compared against a cached entry's
    /// embedded fingerprint on every hit to rule out key collisions.
    pub fingerprint: String,
    /// The canonical (re-serialized) deck text.
    pub canonical_deck: String,
    /// Transient options from the deck's `.tran` card.
    pub tran: TranOptions,
    /// Objectives resolved to unknown indices.
    pub objectives: Vec<Objective>,
    /// Parameters resolved to device-local references.
    pub params: Vec<ParamRef>,
    /// Compression configuration (part of the key).
    pub masc: MascConfig,
}

/// The answer to one job.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Whether the reverse pass replayed a cached tensor.
    pub hit: bool,
    /// One value per objective.
    pub objective_values: Vec<f64>,
    /// `sensitivities[objective][param]`.
    pub sensitivities: Vec<Vec<f64>>,
    /// Forward-transient telemetry: `steps == 0` on a cache hit (the
    /// forward pass never ran).
    pub tran_stats: TranStats,
    /// Store telemetry from the run (all zeros on a hit).
    pub store_metrics: StoreMetrics,
}

/// Resolves a wire request against its deck: canonicalize, look up
/// objective nodes and parameter paths, derive the cache key.
///
/// # Errors
///
/// Returns [`ServeError`] for unparsable decks, decks without `.tran`,
/// and unknown node/parameter names.
pub fn resolve(req: &JobRequest, masc: &MascConfig) -> Result<ResolvedJob, ServeError> {
    let parsed = parse_netlist(&req.deck)?;
    let tran = parsed.tran.clone().ok_or(ServeError::NoTran)?;
    let canonical_deck = write_netlist(&parsed);
    let circuit = &parsed.circuit;

    let mut objectives = Vec::with_capacity(req.objectives.len());
    for spec in &req.objectives {
        let unknown = circuit
            .find_node(spec.node())
            .and_then(masc_circuit::Node::unknown)
            .ok_or_else(|| ServeError::UnknownNode(spec.node().to_string()))?;
        objectives.push(match *spec {
            ObjectiveSpec::FinalValue { .. } => Objective::FinalValue { unknown },
            ObjectiveSpec::AtStep { step, .. } => Objective::AtStep { unknown, step },
            ObjectiveSpec::Integral { .. } => Objective::Integral { unknown },
            ObjectiveSpec::IntegralSquared { .. } => Objective::IntegralSquared { unknown },
        });
    }

    let params = match &req.params {
        ParamSelector::All => circuit.params(),
        ParamSelector::Named(paths) => {
            let mut params = Vec::with_capacity(paths.len());
            for path in paths {
                params.push(
                    circuit
                        .find_param(path)
                        .ok_or_else(|| ServeError::UnknownParam(path.clone()))?,
                );
            }
            params
        }
    };

    let fingerprint = job_fingerprint(&canonical_deck, &tran, masc);
    let key = entry_key(&canonical_deck, &tran, masc);
    Ok(ResolvedJob {
        key,
        fingerprint,
        canonical_deck,
        tran,
        objectives,
        params,
        masc: masc.clone(),
    })
}

/// Rejects `at:<step>` objectives that point past the recorded waveform
/// (they would otherwise index out of bounds when evaluated).
fn validate_steps(objectives: &[Objective], n_times: usize) -> Result<(), ServeError> {
    let max = n_times.saturating_sub(1);
    for o in objectives {
        if let Objective::AtStep { step, .. } = *o {
            if step > max {
                return Err(ServeError::StepOutOfRange { step, max });
            }
        }
    }
    Ok(())
}

fn lock_ignoring_poison<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Most sparsity patterns whose symbolic analyses the pool retains.
const MAX_POOL_PATTERNS: usize = 64;

/// A keep-alive pool of [`SymbolicLu`] analyses keyed by sparsity
/// pattern, so jobs over structurally identical circuits (re-submissions,
/// parameter studies over one topology) skip the symbolic phase of the
/// forward solves. The reverse passes deliberately do **not** draw from
/// the pool: both the cold and hit paths factor their cursors fresh, so
/// hit results stay bit-identical to cold results regardless of what ran
/// before.
#[derive(Debug, Default)]
pub struct WorkspacePool {
    map: HashMap<u64, Arc<SymbolicLu>>,
}

fn pattern_key(pattern: &Pattern) -> u64 {
    crate::cache::fnv1a_bytes(&pattern.to_compressed_bytes())
}

impl WorkspacePool {
    /// A forward-solve workspace, seeded with the pooled symbolic
    /// analysis when one exists for this pattern.
    pub fn checkout(&self, pattern: &Pattern) -> LuWorkspace {
        match self.map.get(&pattern_key(pattern)) {
            Some(sym) => LuWorkspace::with_symbolic(Arc::clone(sym)),
            None => LuWorkspace::new(),
        }
    }

    /// Returns a workspace's symbolic analysis to the pool.
    pub fn deposit(&mut self, pattern: &Pattern, ws: &LuWorkspace) {
        let Some(sym) = ws.symbolic().cloned() else {
            return;
        };
        if self.map.len() >= MAX_POOL_PATTERNS {
            // The pool is bounded; drop an arbitrary resident analysis.
            if let Some(k) = self.map.keys().next().copied() {
                self.map.remove(&k);
            }
        }
        self.map.insert(pattern_key(pattern), sym);
    }

    /// Number of pooled analyses.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

fn elaborate_canonical(job: &ResolvedJob) -> Result<(Circuit, System), ServeError> {
    let parsed = parse_netlist(&job.canonical_deck)?;
    let mut circuit = parsed.circuit;
    let system = circuit.elaborate()?;
    Ok((circuit, system))
}

/// Runs the full pipeline for a cache miss: forward transient through a
/// pipelined capture store, reverse pass over the captured tensors, and
/// the cache entry to persist.
///
/// # Errors
///
/// Returns [`ServeError`] if any pipeline stage fails; on error no cache
/// entry is produced and the pipelined store's worker cleans up after
/// itself.
pub fn run_cold(
    job: &ResolvedJob,
    pool: &Mutex<WorkspacePool>,
) -> Result<(JobOutcome, CacheEntry), ServeError> {
    let (circuit, mut system) = elaborate_canonical(job)?;
    let layout = TensorLayout::of(&system);
    let capture = CaptureStore::new(&layout, job.masc.clone());
    let slot = capture.slot();
    let store = PipelinedStore::spawn_pool(Box::new(capture), 2, 2, 1);
    let mut record = ForwardRecord::with_store(layout, Box::new(store));

    let mut lu = lock_ignoring_poison(pool).checkout(&system.pattern);
    let tran_result = transient_ws(&circuit, &mut system, &job.tran, &mut record, &mut lu)?;
    lock_ignoring_poison(pool).deposit(&system.pattern, &lu);

    validate_steps(&job.objectives, tran_result.times.len())?;
    let objective_values: Vec<f64> = job
        .objectives
        .iter()
        .map(|o| o.value(&tran_result.states, &tran_result.steps))
        .collect();

    let (meta, backward) = record.into_parts()?;
    let result = adjoint_sensitivities(
        &circuit,
        &mut system,
        &meta,
        backward,
        &job.objectives,
        &job.params,
    )?;
    let store_metrics = result.stats.store.clone();

    let tensors = lock_ignoring_poison(&slot).take();
    let Some((g, c)) = tensors else {
        // The capture store's finish always fills the slot; an empty slot
        // means the store was never finished (unreachable in this flow).
        return Err(ServeError::Store(StoreError::TensorTruncated { step: 0 }));
    };
    let outcome = JobOutcome {
        hit: false,
        objective_values,
        sensitivities: result.values,
        tran_stats: tran_result.stats,
        store_metrics,
    };
    let entry = CacheEntry {
        fingerprint: job.fingerprint.clone(),
        meta,
        g,
        c,
    };
    Ok((outcome, entry))
}

fn same_pattern(a: &Pattern, b: &Pattern) -> bool {
    a.rows() == b.rows()
        && a.cols() == b.cols()
        && a.row_ptr() == b.row_ptr()
        && a.col_idx() == b.col_idx()
}

/// Replays a cached entry: decodes the tensors newest-first straight into
/// an [`AdjointCursor`], with objective values read off the cached
/// trajectory. The forward transient never runs — the returned
/// [`TranStats`] are all zero.
///
/// # Errors
///
/// Returns a [cache-fault](ServeError::is_cache_fault) error when the
/// entry does not decode or does not match the job's circuit structure
/// (the caller discards the entry and re-runs cold), or an ordinary error
/// if the reverse arithmetic itself fails.
pub fn run_hit(job: &ResolvedJob, entry: &CacheEntry) -> Result<JobOutcome, ServeError> {
    // Hash-collision defense: the entry must carry this exact job's
    // identity, element values included — the structural checks below
    // cannot distinguish same-topology decks with different values.
    if entry.fingerprint != job.fingerprint {
        return Err(ServeError::CacheMismatch);
    }
    let (circuit, mut system) = elaborate_canonical(job)?;
    let layout = TensorLayout::of(&system);
    // Stale-entry defense: the cached tensors must also match the job's
    // exact sparsity structure and trajectory shape.
    if !same_pattern(entry.g.pattern(), &layout.g_pattern)
        || !same_pattern(entry.c.pattern(), &layout.c_pattern)
    {
        return Err(ServeError::CacheMismatch);
    }
    let n_times = entry.meta.times.len();
    if n_times == 0
        || entry.meta.hs.len() != n_times
        || entry.meta.states.len() != n_times
        || entry.g.len() != n_times
        || entry.c.len() != n_times
        || entry.meta.states.iter().any(|row| row.len() != system.n)
    {
        return Err(ServeError::CacheMismatch);
    }
    validate_steps(&job.objectives, n_times)?;

    let objective_values: Vec<f64> = job
        .objectives
        .iter()
        .map(|o| o.value(&entry.meta.states, &entry.meta.hs))
        .collect();

    let mut cursor =
        AdjointCursor::new(&circuit, &system, &entry.meta, &job.objectives, &job.params);
    let mut g_back = entry.g.clone().into_backward();
    let mut c_back = entry.c.clone().into_backward();
    loop {
        match (g_back.next_matrix()?, c_back.next_matrix()?) {
            (None, None) => break,
            (Some((gs, g)), Some((cs, c))) if gs == cs => {
                cursor.offer(&mut system, gs, StepMatrices::Stored { g, c })?;
            }
            _ => return Err(ServeError::CacheMismatch),
        }
    }
    let result = cursor.finish();
    Ok(JobOutcome {
        hit: true,
        objective_values,
        sensitivities: result.values,
        // Zero steps / zero Newton iterations: the telemetry proof that
        // the hit path skipped the forward pass entirely.
        tran_stats: TranStats::default(),
        store_metrics: StoreMetrics::default(),
    })
}
