// lint-corpus: lib
// R3 (payload half): public fallible APIs return structured error types.

/// Structured error used by the compliant functions below.
pub enum PayloadDemoError {
    /// The input ended early.
    Truncated,
}

impl std::fmt::Display for PayloadDemoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("truncated")
    }
}

impl std::error::Error for PayloadDemoError {}

/// Fails with a bare `String`.
pub fn stringly(x: u8) -> Result<u8, String> { //~ error-payload
    Err(format!("bad {x}"))
}

/// Fails with a type-erased box.
pub fn boxed(x: u8) -> Result<u8, Box<dyn std::error::Error>> { //~ error-payload
    Ok(x)
}

/// Fails with a static string slice.
pub fn strref(x: u8) -> Result<u8, &'static str> { //~ error-payload
    Err(if x == 0 { "zero" } else { "nonzero" })
}

/// Fails with the unit type — callers learn nothing.
pub fn unit_err(x: u8) -> Result<u8, ()> { //~ error-payload
    if x > 7 {
        return Err(());
    }
    Ok(x)
}

/// Compliant: a crate-local structured error type.
pub fn structured(x: u8) -> Result<u8, PayloadDemoError> {
    if x == 0 {
        return Err(PayloadDemoError::Truncated);
    }
    Ok(x)
}

/// Infallible public API — no payload to police.
pub fn infallible(x: u8) -> u8 {
    x
}

// Private and crate-visible functions are not public API surface.
fn private_stringly(x: u8) -> Result<u8, String> {
    Err(format!("internal {x}"))
}

pub(crate) fn crate_stringly(x: u8) -> Result<u8, String> {
    private_stringly(x)
}
