// lint-corpus: wire-decode
// R1 panic-index: index expressions need a bounds guard within the window.

fn unguarded(bytes: &[u8]) -> u8 {
    let a = 1usize;
    //
    //
    //
    //
    //
    //
    //
    //
    //
    //
    //
    // Sixteen guard-free lines above: nothing establishes a bound.
    bytes[a] //~ panic-index
}

fn guarded_by_check(bytes: &[u8], i: usize) -> u8 {
    if i >= bytes.len() {
        return 0;
    }
    bytes[i]
}

fn guarded_by_loop(bytes: &[u8]) -> u32 {
    let mut sum = 0u32;
    for i in 0..bytes.len() {
        sum += u32::from(bytes[i]);
    }
    sum
}

fn guarded_by_assert(bytes: &[u8], i: usize) -> u8 {
    debug_assert!(i + 1 < bytes.len(), "caller contract");
    bytes[i + 1]
}

fn full_range_never_panics(bytes: &[u8]) -> &[u8] {
    let borrowed = &bytes[..];
    borrowed
}

fn type_position_brackets(_bytes: &[u8]) -> [u8; 4] {
    // `[u8; 4]` after `->` and in `let` position are types, not indexing.
    let out: [u8; 4] = [0, 1, 2, 3];
    out
}
