// lint-corpus:
// R4: a spawn with no join-on-drop owner anywhere in this file.

fn fire_and_forget() -> std::thread::JoinHandle<()> {
    std::thread::spawn(|| {}) //~ thread-spawn
}

fn not_a_thread_spawn() {
    // Other `spawn` idents do not fire: only the `thread::spawn` path does.
    struct Pool;
    impl Pool {
        fn spawn(&self) {}
    }
    Pool.spawn();
}
