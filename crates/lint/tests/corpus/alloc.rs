// lint-corpus: wire-decode
// R2 unbounded-alloc: decoded sizes reach the allocator only via a guard.

const MAX_ITEMS: usize = 1 << 20;
const FIXED_SLOTS: usize = 256;

fn unguarded_capacity(claimed: usize) -> Vec<u8> {
    let n = claimed;
    //
    //
    //
    //
    //
    //
    //
    //
    //
    //
    //
    //
    // Sixteen guard-free lines above the allocation site.
    Vec::with_capacity(n) //~ unbounded-alloc
}

fn unguarded_vec_macro(claimed: usize) -> Vec<u64> {
    let n = claimed;
    //
    //
    //
    //
    //
    //
    //
    //
    //
    //
    //
    //
    // Sixteen guard-free lines above the allocation site.
    vec![0u64; n] //~ unbounded-alloc
}

fn unguarded_resize(claimed: usize, out: &mut Vec<u8>) {
    let n = claimed;
    //
    //
    //
    //
    //
    //
    //
    //
    //
    //
    //
    //
    // Sixteen guard-free lines above the allocation site.
    out.resize(n, 0); //~ unbounded-alloc
}

fn guarded_by_max(claimed: usize) -> Option<Vec<u8>> {
    if claimed > MAX_ITEMS {
        return None;
    }
    Some(Vec::with_capacity(claimed))
}

fn guarded_by_min_clamp(claimed: usize) -> Vec<u8> {
    Vec::with_capacity(claimed.min(4096))
}

fn sized_from_held_data(input: &[u8]) -> Vec<u8> {
    // `input.len()` derives from data already in memory.
    Vec::with_capacity(input.len())
}

fn const_sized_tables() -> Vec<u32> {
    // SCREAMING_CASE sizes are constants, not decoded claims.
    vec![0u32; FIXED_SLOTS]
}

fn literal_vecs() -> Vec<u8> {
    // Element-list form allocates a fixed literal; no size expression.
    vec![1, 2, 3]
}
