// lint-corpus: concurrency
// R6: condvar discipline — wait loops, predicate guarding, notify under
// the lock. Both directions for each sub-rule.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};

struct Q {
    items: Vec<u32>,
    closed: bool,
}

static STOP: AtomicBool = AtomicBool::new(false);

fn wait_under_if(m: &Mutex<Q>, cv: &Condvar) {
    let mut g = m.lock().unwrap();
    if g.items.is_empty() {
        g = cv.wait(g).unwrap(); //~ condvar-wait-loop
    }
    drop(g);
}

fn wait_with_no_loop_at_all(m: &Mutex<Q>, cv: &Condvar) {
    let g = m.lock().unwrap();
    let _g = cv.wait(g).unwrap(); //~ condvar-wait-loop
}

fn closure_body_wait(m: &Mutex<Q>, cv: &Condvar) {
    let waiter = || {
        let g = m.lock().unwrap();
        let _g = cv.wait(g).unwrap(); //~ condvar-wait-loop
    };
    waiter();
}

fn wait_in_while(m: &Mutex<Q>, cv: &Condvar) {
    let mut g = m.lock().unwrap();
    while g.items.is_empty() && !g.closed {
        g = cv.wait(g).unwrap();
    }
}

fn wait_in_loop_with_breaks(m: &Mutex<Q>, cv: &Condvar) -> Option<u32> {
    let mut g = m.lock().unwrap();
    loop {
        if let Some(x) = g.items.pop() {
            break Some(x);
        }
        if g.closed {
            break None;
        }
        g = cv.wait(g).unwrap();
    }
}

fn wait_while_loops_internally(m: &Mutex<Q>, cv: &Condvar) {
    let g = cv.wait_while(m.lock().unwrap(), |q| q.items.is_empty()).unwrap();
    drop(g);
}

fn predicate_polls_foreign_flag(m: &Mutex<Q>, cv: &Condvar) {
    let mut g = m.lock().unwrap();
    while !STOP.load(Ordering::SeqCst) {
        g = cv.wait(g).unwrap(); //~ condvar-pred-unguarded
    }
    drop(g);
}

fn notify_without_lock(cv: &Condvar) {
    STOP.store(true, Ordering::SeqCst);
    cv.notify_all(); //~ condvar-notify-unguarded
}

fn notify_after_guarded_write(m: &Mutex<Q>, cv: &Condvar) {
    m.lock().unwrap().closed = true;
    cv.notify_all();
}
