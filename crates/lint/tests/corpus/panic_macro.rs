// lint-corpus: wire-decode
// R1 panic-macro: aborting macros in a hardened module.

fn dispatch(tag: u8) -> u8 {
    match tag {
        0 => 10,
        1 => panic!("bad tag"),        //~ panic-macro
        2 => unreachable!("filtered"), //~ panic-macro
        3 => todo!(),                  //~ panic-macro
        4 => unimplemented!(),         //~ panic-macro
        _ => 0,
    }
}

fn panic_free(tag: u8) -> Result<u8, u8> {
    // Mentioning panic in a string or ident is not a macro invocation.
    let no_panic_here = tag;
    if no_panic_here > 4 {
        return Err(no_panic_here);
    }
    Ok(no_panic_here)
}
