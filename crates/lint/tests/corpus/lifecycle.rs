// lint-corpus: concurrency
// R8: worker lifecycle — spawn handles consumed, senders dropped before
// same-block joins, catch_unwind results mapped. Both directions.

fn discards_spawn_handle() {
    std::thread::scope(|s| {
        s.spawn(|| ()); //~ spawn-discard
    });
}

fn consumes_spawn_handle() {
    std::thread::scope(|s| {
        let h = s.spawn(|| ());
        h.join().ok();
    });
}

fn pushes_spawn_handle() {
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        handles.push(s.spawn(|| ()));
        for h in handles {
            let _ = h.join();
        }
    });
}

fn joins_with_live_sender() {
    let (tx, rx) = std::sync::mpsc::channel::<u32>();
    std::thread::scope(|s| {
        let h = s.spawn(move || while rx.recv().is_ok() {});
        tx.send(1).ok();
        h.join().ok(); //~ sender-live-join
    });
}

fn drops_sender_before_join() {
    let (tx, rx) = std::sync::mpsc::channel::<u32>();
    std::thread::scope(|s| {
        let h = s.spawn(move || while rx.recv().is_ok() {});
        tx.send(1).ok();
        drop(tx);
        h.join().ok();
    });
}

fn sender_moved_into_worker() {
    let (tx, rx) = std::sync::mpsc::channel::<u32>();
    std::thread::scope(|s| {
        let h = s.spawn(move || tx.send(1).ok());
        while rx.recv().is_ok() {}
        let _ = h.join();
    });
}

fn discards_unwind_result(f: impl FnOnce() + std::panic::UnwindSafe) {
    let _ = std::panic::catch_unwind(f); //~ unwind-discard
}

fn statement_position_unwind(f: impl FnOnce() + std::panic::UnwindSafe) {
    std::panic::catch_unwind(f); //~ unwind-discard
}

fn maps_unwind_result(f: impl FnOnce() + std::panic::UnwindSafe) -> Result<(), String> {
    match std::panic::catch_unwind(f) {
        Ok(()) => Ok(()),
        Err(_) => Err("worker panicked".to_string()),
    }
}
