// lint-corpus: lib
// R3 (impl half): `pub enum *Error` must implement Display and Error.

/// Declares an error type but implements neither trait.
pub enum BareDemoError { //~ error-impl
    /// Placeholder variant.
    Broken,
}

/// Implements Display but not `std::error::Error`.
pub enum HalfDemoError { //~ error-impl
    /// Placeholder variant.
    Partial,
}

impl std::fmt::Display for HalfDemoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("partial")
    }
}

/// Fully compliant error type.
pub enum CoveredDemoError {
    /// Placeholder variant.
    Covered,
}

impl std::fmt::Display for CoveredDemoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("covered")
    }
}

impl std::error::Error for CoveredDemoError {}

/// Not an error type: the `*Error` suffix is what opts an enum in.
pub enum DemoOutcome {
    /// Placeholder variant.
    Done,
}
