// lint-corpus: concurrency
// R7: lock hygiene — guard liveness across blocking calls, and the
// per-file lock-order graph. Both directions for each sub-rule.

use std::io::Write;
use std::sync::mpsc::Sender;
use std::sync::Mutex;

fn send_under_guard(m: &Mutex<u32>, tx: &Sender<u32>) {
    let g = m.lock().unwrap();
    tx.send(*g).ok(); //~ guard-across-blocking
}

fn send_after_drop(m: &Mutex<u32>, tx: &Sender<u32>) {
    let g = m.lock().unwrap();
    let v = *g;
    drop(g);
    tx.send(v).ok();
}

fn guard_rooted_io_is_the_point(out: &Mutex<std::io::Stdout>) {
    let mut w = out.lock().unwrap();
    w.flush().ok();
}

fn join_under_guard(m: &Mutex<u32>, h: std::thread::JoinHandle<()>) {
    let g = m.lock().unwrap();
    let _ = *g;
    h.join().ok(); //~ guard-across-blocking
}

fn consistent_order(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let ga = a.lock().unwrap();
    let gb = b.lock().unwrap();
    *ga + *gb
}

fn inverted_order(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let gb = b.lock().unwrap();
    let ga = a.lock().unwrap(); //~ lock-order
    *ga + *gb
}
