// lint-corpus: wire-decode
// Test items and macro bodies are outside the lint's jurisdiction: the
// invariants govern shipping decode paths, not assertions about them.

fn shipping_code(x: Option<u8>) -> Option<u8> {
    x
}

#[cfg(test)]
mod tests {
    #[test]
    fn asserts_freely() {
        let v = vec![1u8, 2, 3];
        assert_eq!(*v.first().unwrap(), 1);
        let claimed = 3usize;
        let big = Vec::<u8>::with_capacity(claimed);
        assert!(big.capacity() >= claimed);
        if v[0] != 1 {
            panic!("corpus");
        }
    }
}

#[test]
fn bare_test_item_is_excluded() {
    let w: Vec<u8> = Vec::new();
    w.first().expect("empty");
}

macro_rules! decode_field {
    ($bytes:expr, $idx:expr) => {
        $bytes.get($idx).unwrap()
    };
}

fn uses_the_macro(bytes: &[u8]) -> Option<&u8> {
    // The invocation site is linted (nothing risky here); only the
    // macro's definition body was excluded.
    bytes.first()
}
