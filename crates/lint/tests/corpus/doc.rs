// lint-corpus: lib
// R5: public items in library code need docs.

pub fn undocumented_fn() -> u8 { //~ doc-missing
    0
}

pub struct UndocumentedStruct; //~ doc-missing

pub const UNDOCUMENTED_CONST: u8 = 3; //~ doc-missing

/// Documented the usual way.
pub fn documented_fn() -> u8 {
    1
}

#[doc = "Documented via an explicit attribute."]
pub struct AttrDocumented;

/// Attributes between the doc comment and the item are fine.
#[derive(Debug)]
pub struct DocThenAttr;

// A plain comment is transparent: the doc comment above it still counts.
/// Documented despite the pragma-style comment in between.
// some unrelated note
pub fn doc_above_plain_comment() -> u8 {
    2
}

// Non-public items need no docs.
pub(crate) fn crate_visible() -> u8 {
    4
}

fn private_helper() -> u8 {
    5
}

// `pub mod name;` is exempt: the module file documents itself via `//!`.
pub mod helpers;
