// lint-corpus: wire-decode
// R1 panic-call: `.unwrap()` / `.expect(…)` in a hardened module.

fn decode_header(bytes: &[u8]) -> (u8, u8) {
    let first = bytes.first().unwrap(); //~ panic-call
    let second = bytes.get(1).expect("second byte"); //~ panic-call
    (*first, *second)
}

fn unwrap_like_names_are_fine(x: Option<u8>) -> u8 {
    // Only the exact methods fire; total cousins do not.
    x.unwrap_or_default();
    x.unwrap_or(7);
    x.unwrap_or_else(|| 9)
}

struct Unwrap;
impl Unwrap {
    fn expect_field(&self) -> u8 {
        // `unwrap`/`expect` as path or name (no preceding `.`) are not calls.
        0
    }
}
