// lint-corpus:
// R4: a Drop impl that joins its handle licenses spawns in this file.

struct Owner {
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for Owner {
    fn drop(&mut self) {
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn spawn_owned() -> Owner {
    Owner {
        handle: Some(std::thread::spawn(|| {})),
    }
}
