// lint-corpus: wire-decode
// Pragma handling: suppression, mandatory reasons, staleness policing.
// The caret marker form (pointing at the previous line) is used here
// because a trailing marker would become part of the pragma comment.

fn suppressed_trailing(x: Option<u8>) -> u8 {
    x.unwrap() // masc-lint: allow(panic-call, reason = "corpus: trailing pragma covers its own line")
}

fn suppressed_standalone(x: Option<u8>) -> u8 {
    // masc-lint: allow(panic-call, reason = "corpus: standalone pragma covers the next code line")
    x.unwrap()
}

fn suppressed_by_group(x: Option<u8>) -> u8 {
    // masc-lint: allow(R1, reason = "corpus: a group name expands to all of its rules")
    x.unwrap()
}

fn suppressed_macro(tag: u8) -> u8 {
    match tag {
        0 => 1,
        1 => panic!("boom"), // masc-lint: allow(panic-macro, reason = "corpus: suppressed macro")
        _ => 0,
    }
}

fn missing_reason(x: u8) -> u8 {
    // masc-lint: allow(panic-call)
    //~^ pragma-syntax
    x
}

fn unknown_rule(x: u8) -> u8 {
    // masc-lint: allow(no-such-rule, reason = "not a rule the analyzer knows")
    //~^ pragma-syntax
    x
}

fn unsuppressible_rule(x: u8) -> u8 {
    // masc-lint: allow(pragma-unused, reason = "the policing rules cannot be silenced")
    //~^ pragma-syntax
    x
}

fn stale_pragma(x: u8) -> u8 {
    // masc-lint: allow(panic-macro, reason = "nothing on the next line to suppress")
    //~^ pragma-unused
    x
}

fn wrong_rule_pragma(x: Option<u8>) -> u8 {
    // masc-lint: allow(panic-macro, reason = "names the wrong rule for the call below")
    //~^ pragma-unused
    x.unwrap() //~ panic-call
}
