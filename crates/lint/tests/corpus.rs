//! Self-test corpus: runs the analyzer over `tests/corpus/*.rs` and
//! asserts the reported finding set equals the annotated expectation set,
//! in both directions and at exact file:line granularity.
//!
//! Corpus conventions:
//!
//! - line 1 of every corpus file is `// lint-corpus: <flags>`, where the
//!   comma/space-separated flags pick the hardened classes (`wire-decode`,
//!   `store-io`, `parser`), `concurrency` (enables the R6–R8 concurrency
//!   rules), and/or `lib` (enables the R3 payload and R5 doc rules, as
//!   for library code);
//! - `//~ <rule>` at the end of a line marks an expected finding on that
//!   line;
//! - `//~^ <rule>` marks an expected finding on the *previous* line (used
//!   when the finding anchors to a comment, e.g. pragma rules).
//!
//! The corpus is fed through [`masc_lint::run_sources`] in one batch, so
//! cross-file aggregation (`error-impl`) and pragma resolution run exactly
//! as they do in a real workspace scan.

use masc_lint::{run_sources, ClassSet, SourceFile};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Finding identity compared against markers: (file, line, rule).
type Key = (String, u32, String);

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// Parses the mandatory `// lint-corpus: <flags>` header line.
fn parse_header(name: &str, src: &str) -> (ClassSet, bool) {
    let first = src.lines().next().unwrap_or("");
    let flags = first
        .strip_prefix("// lint-corpus:")
        .unwrap_or_else(|| panic!("{name}: line 1 must be `// lint-corpus: <flags>`"));
    let mut classes = ClassSet::default();
    let mut is_lib = false;
    for flag in flags.split([',', ' ']).filter(|f| !f.is_empty()) {
        match flag {
            "wire-decode" => classes.wire_decode = true,
            "store-io" => classes.store_io = true,
            "parser" => classes.parser = true,
            "concurrency" => classes.concurrency = true,
            "lib" => is_lib = true,
            other => panic!("{name}: unknown lint-corpus flag `{other}`"),
        }
    }
    (classes, is_lib)
}

/// Collects `//~ rule` (own line) and `//~^ rule` (previous line) markers.
fn markers(rel: &str, src: &str) -> Vec<Key> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        let Some(at) = line.find("//~") else {
            continue;
        };
        let rest = &line[at + 3..];
        let (up, rest) = match rest.strip_prefix('^') {
            Some(r) => (1, r),
            None => (0, rest),
        };
        let rule = rest
            .split_whitespace()
            .next()
            .unwrap_or_else(|| panic!("{rel}:{}: empty `//~` marker", i + 1));
        let line_no = (i + 1 - up) as u32;
        out.push((rel.to_string(), line_no, rule.to_string()));
    }
    out
}

/// Loads every corpus file as an in-memory [`SourceFile`] plus its
/// expected-finding set.
fn load_corpus() -> (Vec<SourceFile>, BTreeSet<Key>) {
    let dir = corpus_dir();
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {}: {e}", dir.display()))
        .map(|entry| entry.expect("corpus dir entry").path())
        .filter(|p| p.extension().map(|e| e == "rs").unwrap_or(false))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "corpus directory is empty");

    let mut sources = Vec::new();
    let mut expected = BTreeSet::new();
    for path in &paths {
        let name = path.file_name().expect("file name").to_string_lossy();
        let rel = format!("crates/lint/tests/corpus/{name}");
        let src = std::fs::read_to_string(path).expect("read corpus file");
        let (classes, is_lib) = parse_header(&name, &src);
        expected.extend(markers(&rel, &src));
        sources.push(SourceFile {
            path: rel,
            src,
            classes,
            is_lib,
        });
    }
    (sources, expected)
}

#[test]
fn corpus_findings_match_markers_exactly() {
    let (sources, expected) = load_corpus();
    let report = run_sources(&sources);
    let actual: BTreeSet<Key> = report
        .findings
        .iter()
        .map(|f| (f.file.clone(), f.line, f.rule.to_string()))
        .collect();

    let missing: Vec<&Key> = expected.difference(&actual).collect();
    let unexpected: Vec<&Key> = actual.difference(&expected).collect();
    assert!(
        missing.is_empty() && unexpected.is_empty(),
        "corpus mismatch\n  marked but not reported: {missing:#?}\n  reported but not marked: {unexpected:#?}"
    );
}

#[test]
fn corpus_exercises_every_rule() {
    let (_, expected) = load_corpus();
    let fired: BTreeSet<&str> = expected.iter().map(|(_, _, r)| r.as_str()).collect();
    for rule in masc_lint::diag::ALL_RULES {
        assert!(
            fired.contains(rule.as_str()),
            "no corpus case exercises `{rule}`; add one under tests/corpus/"
        );
    }
}

#[test]
fn corpus_pragma_inventory_is_justified() {
    let (sources, _) = load_corpus();
    let report = run_sources(&sources);
    assert!(
        !report.pragmas.is_empty(),
        "the pragma corpus should contribute at least one parsed pragma"
    );
    for (file, pragma) in &report.pragmas {
        assert!(
            !pragma.reason.trim().is_empty(),
            "{file}:{}: pragma with an empty reason survived parsing",
            pragma.comment_line
        );
    }
}
