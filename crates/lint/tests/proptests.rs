//! Property suite for the hand-rolled Rust lexer (masc-testkit).
//!
//! The lexer underpins every lint rule, so its contract is pinned here:
//!
//! - **totality** — any input, including arbitrary (lossily decoded) byte
//!   soup, lexes without panicking;
//! - **span sanity** — token spans are in-order, non-overlapping, within
//!   bounds, on UTF-8 char boundaries, carry correct 1-based line numbers,
//!   and everything between tokens is whitespace;
//! - **lex–relex stability** — re-lexing a whitespace-normalized rendering
//!   of the token stream yields the same (kind, text) sequence.

use masc_lint::lexer::{lex, Token, TokenKind};
use masc_testkit::gen::{self, Gen};
use masc_testkit::prop;

/// Rust-ish source fragments, biased toward the constructs that defeat
/// naive scanners: raw strings with hash fences, nested block comments,
/// lifetimes vs char literals, byte strings, and numeric suffixes.
/// Unterminated openers are included on purpose — the lexer must absorb
/// them to end of input rather than reject or panic.
const FRAGMENTS: &[&str] = &[
    "fn",
    "pub",
    "let",
    "match",
    "unwrap",
    "expect",
    "r",
    "b",
    "br",
    "x.unwrap()",
    "vec![0u8; n]",
    "// line comment",
    "/// doc",
    "//! inner",
    "/* block */",
    "/* nested /* deeper */ */",
    "/*",
    "\"str\"",
    "\"esc \\\" aped\"",
    "\"unterminated",
    "r\"raw\"",
    "r#\"raw # hash\"#",
    "r##\"r#\"inner\"#\"##",
    "b\"bytes\"",
    "br#\"raw bytes\"#",
    "b'q'",
    "'a",
    "'static",
    "'x'",
    "'\\n'",
    "'\\u{1F600}'",
    "'",
    "0",
    "42",
    "1_000u64",
    "0xFFu8",
    "0b1010",
    "1e-9",
    "2.5f32",
    "1.",
    "::",
    "->",
    "=>",
    "<=",
    ">=",
    "==",
    "#[",
    "]",
    "(",
    ")",
    "{",
    "}",
    "<",
    ">",
    ";",
    ",",
    ".",
    "&",
    "|",
    "!",
    "?",
    "@",
    "$",
    "\\",
    " ",
    "\n",
    "\t",
    "\r\n",
];

fn fragments() -> impl Gen<Value = String> {
    gen::one_of(
        FRAGMENTS
            .iter()
            .map(|s| gen::just(s.to_string()).boxed())
            .collect(),
    )
}

/// Concatenated fragment soup; adjacency (no separators) is deliberate so
/// fragments can merge into suffixed numbers, lifetimes, raw strings, …
fn soups() -> impl Gen<Value = String> {
    gen::vecs(fragments(), 0..60).map(|fs| fs.concat())
}

/// Structural span invariants shared by every property below.
fn check_spans(src: &str, tokens: &[Token]) {
    let mut prev_end = 0usize;
    let mut prev_line = 1u32;
    for t in tokens {
        assert!(t.start >= prev_end, "overlapping spans in {src:?}");
        assert!(t.end > t.start, "empty token in {src:?}");
        assert!(t.end <= src.len(), "span out of bounds in {src:?}");
        let text = src.get(t.start..t.end);
        assert!(text.is_some(), "span off char boundary in {src:?}");
        assert!(!t.text(src).is_empty(), "text() empty for in-bounds span");
        let line = 1 + src[..t.start].bytes().filter(|&b| b == b'\n').count() as u32;
        assert_eq!(t.line, line, "wrong line number in {src:?}");
        assert!(t.line >= prev_line, "line numbers went backwards");
        let gap = src.get(prev_end..t.start).expect("gap on char boundary");
        assert!(
            gap.chars().all(char::is_whitespace),
            "non-whitespace {gap:?} skipped between tokens in {src:?}"
        );
        prev_end = t.end;
        prev_line = t.line;
    }
    let tail = src.get(prev_end..).expect("tail on char boundary");
    assert!(
        tail.chars().all(char::is_whitespace),
        "non-whitespace tail {tail:?} not tokenized in {src:?}"
    );
}

/// Whitespace-normalized rendering: token texts separated by a single
/// space, or a newline after a line comment (which would otherwise swallow
/// its successor). No separator after the last token, so an unterminated
/// final token keeps its exact text.
fn render(src: &str, tokens: &[Token]) -> String {
    let mut out = String::new();
    for (i, t) in tokens.iter().enumerate() {
        if i > 0 {
            match tokens[i - 1].kind {
                TokenKind::LineComment => out.push('\n'),
                _ => out.push(' '),
            }
        }
        out.push_str(t.text(src));
    }
    out
}

prop! {
    fn lexing_arbitrary_bytes_is_total(bytes in gen::vecs(gen::u8s(), 0..400)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let tokens = lex(&src);
        check_spans(&src, &tokens);
    }

    fn lexing_token_soup_is_total(src in soups()) {
        let tokens = lex(&src);
        check_spans(&src, &tokens);
    }

    fn lex_relex_is_stable(src in soups()) {
        let tokens = lex(&src);
        // An unpaired quote lexes as `Unknown`, and the separator a render
        // inserts after it can complete a char literal (`'` + ` ` + `'` =
        // `' '`), so stability is only claimed for streams without one.
        if tokens
            .iter()
            .any(|t| t.kind == TokenKind::Unknown && t.text(&src).contains(['\'', '"']))
        {
            return;
        }
        let rendered = render(&src, &tokens);
        let relexed = lex(&rendered);
        let a: Vec<(TokenKind, &str)> =
            tokens.iter().map(|t| (t.kind, t.text(&src))).collect();
        let b: Vec<(TokenKind, &str)> =
            relexed.iter().map(|t| (t.kind, t.text(&rendered))).collect();
        assert_eq!(a, b, "relex diverged for {src:?} -> {rendered:?}");
    }
}

/// Fixed adversarial inputs: one assertion per construct the doc comment
/// of [`masc_lint::lexer`] promises to handle.
#[test]
fn classifies_the_hard_constructs() {
    let kinds = |src: &str| -> Vec<TokenKind> { lex(src).iter().map(|t| t.kind).collect() };

    assert_eq!(
        kinds(r###"r#"raw "quoted" inner"#"###),
        vec![TokenKind::RawStr]
    );
    assert_eq!(kinds("br##\"bytes\"##"), vec![TokenKind::RawStr]);
    assert_eq!(
        kinds("/* a /* nested */ b */"),
        vec![TokenKind::BlockComment]
    );
    assert_eq!(kinds("'a"), vec![TokenKind::Lifetime]);
    assert_eq!(kinds("'a'"), vec![TokenKind::Char]);
    assert_eq!(kinds("'\\u{1F600}'"), vec![TokenKind::Char]);
    assert_eq!(kinds("b'x'"), vec![TokenKind::Char]);
    assert_eq!(kinds("b\"bytes\""), vec![TokenKind::Str]);
    assert_eq!(kinds("1_000u64"), vec![TokenKind::Num]);
    assert_eq!(kinds("1e-9"), vec![TokenKind::Num]);
    // Unterminated constructs absorb to end of input instead of failing.
    assert_eq!(kinds("\"never closed"), vec![TokenKind::Str]);
    assert_eq!(kinds("/* never closed"), vec![TokenKind::BlockComment]);
    assert_eq!(kinds("r#\"never closed"), vec![TokenKind::RawStr]);
}
