//! `masc-lint`: a zero-dependency static analyzer for the MASC workspace.
//!
//! The DAC'24 paper's lossless decode chain only holds up in production if
//! three invariants hold everywhere bytes cross a trust boundary: wire
//! decoders never panic, attacker-claimed lengths are bounded before they
//! become allocations, and every fallible API surfaces a structured error.
//! PR 4's fuzz harness found violations of all three *dynamically*; this
//! crate fossilizes them as build-time rules:
//!
//! | rule | group | checks |
//! |------|-------|--------|
//! | `panic-call`     | R1 | no `.unwrap()` / `.expect(…)` in hardened modules |
//! | `panic-macro`    | R1 | no `panic!` / `unreachable!` / `todo!` / `unimplemented!` |
//! | `panic-index`    | R1 | index expressions carry a nearby bounds guard |
//! | `unbounded-alloc`| R2 | wire-derived allocation sizes are `MAX_*`-guarded or use `masc_bitio::bounded` |
//! | `error-payload`  | R3 | `pub fn … -> Result` uses structured error types |
//! | `error-impl`     | R3 | `pub enum *Error` implements `Display` + `Error` |
//! | `thread-spawn`   | R4 | `thread::spawn` handles are owned join-on-drop |
//! | `doc-missing`    | R5 | `pub` items in library crates are documented |
//! | `condvar-wait-loop`      | R6 | `Condvar::wait*` sits under a `while`/`loop` re-check, never a bare `if` |
//! | `condvar-pred-unguarded` | R6 | wait predicates read state through the guard passed to the wait |
//! | `condvar-notify-unguarded` | R6 | `notify_*` follows a lock acquisition (the PR 8 lost-wakeup class) |
//! | `guard-across-blocking`  | R7 | no live lock guard across `send`/`recv`/`join`/blocking I/O |
//! | `lock-order`             | R7 | per-file two-lock acquisition order is acyclic |
//! | `spawn-discard`          | R8 | `scope.spawn(…)` results are consumed, never dropped in statement position |
//! | `sender-live-join`       | R8 | channel senders are dropped before the owning worker joins |
//! | `unwind-discard`         | R8 | `catch_unwind` results map to structured errors |
//!
//! R6–R8 apply to modules classified `concurrency` in the manifest and
//! run over a lightweight intra-file [`analysis`] layer: a brace-matched
//! block tree plus `let`-binding def/use resolution on the token stream —
//! no full AST, same tripwire philosophy as R1/R2.
//!
//! "Hardened modules" are declared in `lint-manifest.txt` (see
//! [`manifest`]); suppressions are inline pragmas with mandatory reasons
//! (see [`pragma`]); pre-existing findings live in `lint-baseline.json`
//! which may only shrink (see [`baseline`]). The analyzer has no
//! dependencies: [`lexer`] is a hand-rolled total Rust lexer and the
//! baseline parser is a minimal recursive-descent JSON reader.

pub mod analysis;
pub mod baseline;
pub(crate) mod concurrency;
pub mod diag;
pub mod lexer;
pub mod manifest;
pub mod pragma;
pub mod rules;
pub mod workspace;

pub use diag::{Finding, LintError, RuleId};
pub use manifest::{ClassSet, Manifest};
pub use rules::{analyze, FileInput};
pub use workspace::{find_root, run, run_sources, Report, SourceFile};
