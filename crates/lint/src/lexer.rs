//! A hand-rolled, total Rust lexer.
//!
//! The analyzer cannot depend on `syn`/`proc-macro2` (the workspace is
//! hermetic), so this module tokenizes Rust source directly. It handles the
//! lexical constructs that defeat naive regex scanning:
//!
//! - raw strings `r"…"` / `r#"…"#` with arbitrary hash depth,
//! - byte strings `b"…"` and raw byte strings `br##"…"##`,
//! - nested block comments `/* /* */ */`,
//! - lifetimes `'a` vs char literals `'a'` (including `'\u{…}'` escapes),
//! - numeric literals with type suffixes, float dots, and signed exponents.
//!
//! The lexer is **total**: it never panics and never rejects input. Bytes
//! it cannot classify become [`TokenKind::Unknown`] tokens, and unterminated
//! strings or comments extend to end of input. Every byte of the source is
//! covered by exactly one token or by inter-token whitespace, and lexing a
//! whitespace-normalized rendering of the token stream reproduces the same
//! (kind, text) sequence whenever the stream has no unpaired quote (an
//! unpaired `'` can absorb an inserted separator into a char literal).
//! Both properties are pinned by the suite in `tests/proptests.rs`.

/// Lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unwrap`, `MAX_DECODE_WORDS`, …).
    Ident,
    /// Lifetime such as `'a` or `'static` (no closing quote).
    Lifetime,
    /// Character literal `'a'`, `'\n'`, `'\u{1F600}'` or byte char `b'a'`.
    Char,
    /// String literal `"…"` (escape-aware) or byte string `b"…"`.
    Str,
    /// Raw (byte) string literal `r"…"`, `r#"…"#`, `br##"…"##`.
    RawStr,
    /// Numeric literal, including suffixes (`1_000u64`, `0xFF`, `1e-9`).
    Num,
    /// Line comment `// …`, `/// …`, or `//! …` (without the newline).
    LineComment,
    /// Block comment `/* … */`, nesting-aware; includes `/** … */`.
    BlockComment,
    /// A single punctuation byte (`.`, `(`, `<`, `!`, …).
    Punct,
    /// A byte sequence the lexer cannot classify (kept so lexing is total).
    Unknown,
}

/// One lexed token: class plus byte span and 1-based line number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Byte offset of the first byte of the token.
    pub start: usize,
    /// Byte offset one past the last byte of the token.
    pub end: usize,
    /// 1-based line on which the token starts.
    pub line: u32,
}

impl Token {
    /// The token's text within `src` (the source it was lexed from).
    ///
    /// Returns `""` rather than panicking if the span is out of bounds or
    /// splits a UTF-8 sequence, which cannot happen for spans produced by
    /// [`lex`] on the same source.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        src.get(self.start..self.end).unwrap_or("")
    }
}

/// Tokenizes `src` into a full-fidelity token stream.
///
/// Comments are kept as tokens (pragma scanning and doc-coverage need
/// them); whitespace is dropped. The function is total: any input,
/// including invalid Rust and arbitrary UTF-8, produces a token list
/// without panicking.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

/// Internal cursor over the source bytes.
struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

/// True for bytes that may start an identifier. Non-ASCII bytes count as
/// identifier bytes so the lexer stays total on arbitrary UTF-8.
fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

/// True for bytes that may continue an identifier.
fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Self {
        Self {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            tokens: Vec::new(),
        }
    }

    /// Byte at `pos + ahead`, or `None` past end of input.
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Advances one byte, maintaining the line counter.
    fn bump(&mut self) {
        if self.peek(0) == Some(b'\n') {
            self.line += 1;
        }
        self.pos += 1;
    }

    /// Advances `n` bytes.
    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32) {
        self.tokens.push(Token {
            kind,
            start,
            end: self.pos,
            line,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(b) = self.peek(0) {
            let start = self.pos;
            let line = self.line;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek(1) == Some(b'/') => {
                    self.line_comment();
                    self.push(TokenKind::LineComment, start, line);
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.block_comment();
                    self.push(TokenKind::BlockComment, start, line);
                }
                b'r' if self.raw_string_ahead(1) => {
                    self.bump();
                    self.raw_string_body();
                    self.push(TokenKind::RawStr, start, line);
                }
                b'b' => {
                    match self.peek(1) {
                        Some(b'"') => {
                            self.bump();
                            self.quoted(b'"');
                            self.push(TokenKind::Str, start, line);
                        }
                        Some(b'\'') => {
                            // Byte char `b'x'` (or, degenerately, `b'a`
                            // lexing as `b` + lifetime — invalid Rust, but
                            // the lexer stays total).
                            self.bump();
                            let kind = self.quote();
                            self.push(kind, start, line);
                        }
                        Some(b'r') if self.raw_string_ahead(2) => {
                            self.bump_n(2);
                            self.raw_string_body();
                            self.push(TokenKind::RawStr, start, line);
                        }
                        _ => {
                            self.ident();
                            self.push(TokenKind::Ident, start, line);
                        }
                    }
                }
                b'"' => {
                    self.quoted(b'"');
                    self.push(TokenKind::Str, start, line);
                }
                b'\'' => {
                    let kind = self.quote();
                    self.push(kind, start, line);
                }
                _ if is_ident_start(b) => {
                    self.ident();
                    self.push(TokenKind::Ident, start, line);
                }
                _ if b.is_ascii_digit() => {
                    self.number(start);
                    self.push(TokenKind::Num, start, line);
                }
                _ if b.is_ascii_punctuation() => {
                    self.bump();
                    self.push(TokenKind::Punct, start, line);
                }
                _ => {
                    // Control bytes and stray continuation bytes: consume a
                    // run so pathological input stays O(tokens).
                    while let Some(nb) = self.peek(0) {
                        if nb.is_ascii_graphic()
                            || nb == b' '
                            || nb == b'\t'
                            || nb == b'\r'
                            || nb == b'\n'
                            || nb >= 0x80
                        {
                            break;
                        }
                        self.bump();
                    }
                    if self.pos == start {
                        self.bump();
                    }
                    self.push(TokenKind::Unknown, start, line);
                }
            }
        }
        self.tokens
    }

    /// Consumes `// …` to (not including) the newline.
    fn line_comment(&mut self) {
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
    }

    /// Consumes a nesting-aware `/* … */`; unterminated runs to EOF.
    fn block_comment(&mut self) {
        self.bump_n(2);
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump_n(2);
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump_n(2);
                }
                (Some(_), _) => self.bump(),
                (None, _) => break,
            }
        }
    }

    /// Is `r`/`br` at `pos` followed by `#…#"` or `"` (a raw string)?
    fn raw_string_ahead(&self, mut ahead: usize) -> bool {
        while self.peek(ahead) == Some(b'#') {
            ahead += 1;
        }
        self.peek(ahead) == Some(b'"')
    }

    /// Consumes `#…#"…"#…#` after the introducing `r`; cursor sits on the
    /// first `#` or the opening quote. Unterminated runs to EOF.
    fn raw_string_body(&mut self) {
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        // Opening quote (guaranteed by `raw_string_ahead`).
        self.bump();
        loop {
            match self.peek(0) {
                None => break,
                Some(b'"') => {
                    self.bump();
                    let mut seen = 0usize;
                    while seen < hashes && self.peek(0) == Some(b'#') {
                        seen += 1;
                        self.bump();
                    }
                    if seen == hashes {
                        break;
                    }
                }
                Some(_) => self.bump(),
            }
        }
    }

    /// Consumes an escape-aware quoted literal; cursor sits on the opening
    /// quote. Unterminated runs to EOF.
    fn quoted(&mut self, quote: u8) {
        self.bump();
        while let Some(b) = self.peek(0) {
            if b == b'\\' {
                self.bump();
                if self.peek(0).is_some() {
                    self.bump();
                }
            } else if b == quote {
                self.bump();
                break;
            } else {
                self.bump();
            }
        }
    }

    /// Disambiguates `'a` (lifetime) from `'a'` / `'\n'` (char literal);
    /// cursor sits on the opening `'`.
    fn quote(&mut self) -> TokenKind {
        match self.peek(1) {
            // `'\…'` is always a char literal.
            Some(b'\\') => {
                self.quoted(b'\'');
                TokenKind::Char
            }
            Some(b) if is_ident_continue(b) => {
                // Scan the identifier run after the quote: `'abc'` closes
                // (char literal, even if invalid Rust), `'abc` does not
                // (lifetime).
                let mut ahead = 2usize;
                while let Some(nb) = self.peek(ahead) {
                    if !is_ident_continue(nb) {
                        break;
                    }
                    ahead += 1;
                }
                if self.peek(ahead) == Some(b'\'') {
                    self.bump_n(ahead + 1);
                    TokenKind::Char
                } else {
                    self.bump_n(ahead);
                    TokenKind::Lifetime
                }
            }
            // `'+'`, `' '`, `'('`… — a single non-ident char then a quote.
            Some(_) if self.peek(2) == Some(b'\'') => {
                self.bump_n(3);
                TokenKind::Char
            }
            // Stray quote (`''`, `'` at EOF, `'+x`): lone Unknown byte.
            _ => {
                self.bump();
                TokenKind::Unknown
            }
        }
    }

    /// Consumes an identifier run.
    fn ident(&mut self) {
        while let Some(b) = self.peek(0) {
            if !is_ident_continue(b) {
                break;
            }
            self.bump();
        }
    }

    /// Consumes a numeric literal: digits, `_`, radix prefixes, suffixes,
    /// a float dot (only when followed by a digit, so `1..2` stays a
    /// range), and signed exponents `1e-9`. `start` is the literal's first
    /// byte, used to tell radix-prefixed literals (`0xFF`) — whose `e`/`.`
    /// never extend the token — from decimal ones.
    fn number(&mut self, start: usize) {
        let decimal = !matches!(
            (self.src.get(start), self.src.get(start + 1)),
            (Some(b'0'), Some(b'x' | b'o' | b'b' | b'X' | b'O' | b'B'))
        );
        let mut prev_exp = false;
        while let Some(b) = self.peek(0) {
            if b.is_ascii_alphanumeric() || b == b'_' {
                prev_exp = (b == b'e' || b == b'E') && decimal;
                self.bump();
            } else if ((b == b'.' && decimal) || ((b == b'+' || b == b'-') && prev_exp))
                && self.peek(1).map(|n| n.is_ascii_digit()).unwrap_or(false)
            {
                prev_exp = false;
                self.bump();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    #[test]
    fn raw_strings_and_hashes() {
        let src = r####"let s = r#"a "quoted" b"#; let t = r"x";"####;
        let toks = kinds(src);
        assert!(toks.contains(&(TokenKind::RawStr, r###"r#"a "quoted" b"#"###)));
        assert!(toks.contains(&(TokenKind::RawStr, r#"r"x""#)));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still */ b";
        let toks = kinds(src);
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].0, TokenKind::BlockComment);
        assert_eq!(toks[1].1, "/* outer /* inner */ still */");
    }

    #[test]
    fn lifetime_vs_char() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
        assert_eq!(chars[0].1, "'a'");
        assert_eq!(chars[1].1, "'\\n'");
    }

    #[test]
    fn byte_strings() {
        let toks = kinds(r##"let a = b"bytes"; let b = br#"raw"#; let c = b'x';"##);
        assert!(toks.contains(&(TokenKind::Str, r#"b"bytes""#)));
        assert!(toks.contains(&(TokenKind::RawStr, r##"br#"raw"#"##)));
        assert!(toks.contains(&(TokenKind::Char, "b'x'")));
    }

    #[test]
    fn numbers() {
        let toks = kinds("1_000u64 0xFF_u8 1.5e-9 1..2 3.f64");
        let nums: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Num)
            .map(|(_, t)| *t)
            .collect();
        // `3.f64` is a method-call-like form: `3` then `.` then `f64`.
        assert_eq!(nums, vec!["1_000u64", "0xFF_u8", "1.5e-9", "1", "2", "3"]);
    }

    #[test]
    fn line_numbers_and_totality() {
        let src = "a\nb\n\"multi\nline\"\nc";
        let toks = lex(src);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
        assert_eq!(toks[3].line, 5);
        // Totality on garbage.
        let _ = lex("\u{0}\u{1}'''''r#\"unterminated");
    }
}
