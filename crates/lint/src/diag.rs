//! Diagnostic model: rule identifiers, findings, and output formatting.

use std::fmt;

/// Identifier of one lint rule.
///
/// The `R1`–`R8` groups from the design doc map onto these as:
/// R1 = `PanicCall` + `PanicMacro` + `PanicIndex`, R2 = `UnboundedAlloc`,
/// R3 = `ErrorPayload` + `ErrorImpl`, R4 = `ThreadSpawn`, R5 = `DocMissing`,
/// R6 = `CondvarWaitLoop` + `CondvarPredUnguarded` + `CondvarNotifyUnguarded`,
/// R7 = `GuardAcrossBlocking` + `LockOrder`,
/// R8 = `SpawnDiscard` + `SenderLiveJoin` + `UnwindDiscard`.
/// `PragmaSyntax`/`PragmaUnused` police the suppression mechanism itself
/// and cannot be suppressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// `.unwrap()` / `.expect(…)` in a classified module (R1).
    PanicCall,
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!` in a
    /// classified module (R1).
    PanicMacro,
    /// Unguarded slice/array index expression in a classified module (R1).
    PanicIndex,
    /// Allocation sized by a decoded/wire variable without a nearby
    /// `MAX_*` guard or `bounded` helper (R2).
    UnboundedAlloc,
    /// `pub fn … -> Result<_, String | Box<dyn …> | &str | ()>` (R3).
    ErrorPayload,
    /// `pub enum *Error` without `Display` + `std::error::Error` impls (R3).
    ErrorImpl,
    /// `thread::spawn` outside a join-on-drop owner (R4).
    ThreadSpawn,
    /// Undocumented `pub` item in a library crate (R5).
    DocMissing,
    /// `Condvar::wait*` whose enclosing statement is an `if` (or no loop
    /// at all) instead of a `while`/`loop` predicate re-check (R6).
    CondvarWaitLoop,
    /// Identifier read in a condvar wait predicate that is not rooted at
    /// the guard binding passed to the wait call (R6).
    CondvarPredUnguarded,
    /// `notify_one`/`notify_all` with no lock acquisition in the same or
    /// an enclosing block before the notify (R6 — the lost-wakeup class).
    CondvarNotifyUnguarded,
    /// A live `.lock()` guard held across `.send()`/`.recv()`/`.join()`
    /// or blocking I/O in the same block scope (R7).
    GuardAcrossBlocking,
    /// Inconsistent two-lock acquisition order within one file: the
    /// lock-order graph built from nested acquisitions has a cycle (R7).
    LockOrder,
    /// `scope.spawn(…)` result discarded in statement position (R8).
    SpawnDiscard,
    /// `.join()` on a worker while a channel sender binding is still live
    /// (no preceding `drop(sender)`) in the same function (R8).
    SenderLiveJoin,
    /// `catch_unwind` result discarded or bound to `_` instead of being
    /// mapped to a structured error (R8).
    UnwindDiscard,
    /// Malformed `// masc-lint: allow(…)` pragma.
    PragmaSyntax,
    /// Pragma that suppressed nothing.
    PragmaUnused,
}

/// All rules, in reporting order.
pub const ALL_RULES: [RuleId; 18] = [
    RuleId::PanicCall,
    RuleId::PanicMacro,
    RuleId::PanicIndex,
    RuleId::UnboundedAlloc,
    RuleId::ErrorPayload,
    RuleId::ErrorImpl,
    RuleId::ThreadSpawn,
    RuleId::DocMissing,
    RuleId::CondvarWaitLoop,
    RuleId::CondvarPredUnguarded,
    RuleId::CondvarNotifyUnguarded,
    RuleId::GuardAcrossBlocking,
    RuleId::LockOrder,
    RuleId::SpawnDiscard,
    RuleId::SenderLiveJoin,
    RuleId::UnwindDiscard,
    RuleId::PragmaSyntax,
    RuleId::PragmaUnused,
];

impl RuleId {
    /// Stable string form used in output, pragmas, and the baseline file.
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::PanicCall => "panic-call",
            RuleId::PanicMacro => "panic-macro",
            RuleId::PanicIndex => "panic-index",
            RuleId::UnboundedAlloc => "unbounded-alloc",
            RuleId::ErrorPayload => "error-payload",
            RuleId::ErrorImpl => "error-impl",
            RuleId::ThreadSpawn => "thread-spawn",
            RuleId::DocMissing => "doc-missing",
            RuleId::CondvarWaitLoop => "condvar-wait-loop",
            RuleId::CondvarPredUnguarded => "condvar-pred-unguarded",
            RuleId::CondvarNotifyUnguarded => "condvar-notify-unguarded",
            RuleId::GuardAcrossBlocking => "guard-across-blocking",
            RuleId::LockOrder => "lock-order",
            RuleId::SpawnDiscard => "spawn-discard",
            RuleId::SenderLiveJoin => "sender-live-join",
            RuleId::UnwindDiscard => "unwind-discard",
            RuleId::PragmaSyntax => "pragma-syntax",
            RuleId::PragmaUnused => "pragma-unused",
        }
    }

    /// Parses a rule name as written in pragmas / baselines. Accepts both
    /// the specific id (`panic-call`) and nothing else; group names are
    /// resolved by [`RuleId::group_members`].
    pub fn parse(s: &str) -> Option<RuleId> {
        ALL_RULES.iter().copied().find(|r| r.as_str() == s)
    }

    /// Expands a pragma rule name to the rules it covers: either one
    /// specific rule, or an `R1`–`R5` group.
    pub fn group_members(name: &str) -> Vec<RuleId> {
        match name {
            "R1" => vec![RuleId::PanicCall, RuleId::PanicMacro, RuleId::PanicIndex],
            "R2" => vec![RuleId::UnboundedAlloc],
            "R3" => vec![RuleId::ErrorPayload, RuleId::ErrorImpl],
            "R4" => vec![RuleId::ThreadSpawn],
            "R5" => vec![RuleId::DocMissing],
            "R6" => vec![
                RuleId::CondvarWaitLoop,
                RuleId::CondvarPredUnguarded,
                RuleId::CondvarNotifyUnguarded,
            ],
            "R7" => vec![RuleId::GuardAcrossBlocking, RuleId::LockOrder],
            "R8" => vec![
                RuleId::SpawnDiscard,
                RuleId::SenderLiveJoin,
                RuleId::UnwindDiscard,
            ],
            other => RuleId::parse(other).into_iter().collect(),
        }
    }

    /// True for rules that may be suppressed by an inline pragma.
    pub fn suppressible(self) -> bool {
        !matches!(self, RuleId::PragmaSyntax | RuleId::PragmaUnused)
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One diagnostic: a rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule.
    pub rule: RuleId,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Finding {
    /// Identity used for baseline matching: rule + file + line.
    pub fn key(&self) -> (RuleId, &str, u32) {
        (self.rule, &self.file, self.line)
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Errors surfaced by the analyzer's own I/O and configuration handling.
#[derive(Debug)]
pub enum LintError {
    /// A file or directory could not be read or written.
    Io {
        /// The path involved.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The manifest file is malformed.
    Manifest {
        /// 1-based manifest line.
        line: u32,
        /// What was wrong.
        reason: String,
    },
    /// The baseline file is malformed.
    Baseline {
        /// What was wrong.
        reason: String,
    },
    /// Bad command-line usage.
    Usage(String),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io { path, source } => write!(f, "{path}: {source}"),
            LintError::Manifest { line, reason } => {
                write!(f, "manifest line {line}: {reason}")
            }
            LintError::Baseline { reason } => write!(f, "baseline: {reason}"),
            LintError::Usage(msg) => write!(f, "usage: {msg}"),
        }
    }
}

impl std::error::Error for LintError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LintError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Escapes `s` for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as a JSON array (the `--format json` payload).
pub fn findings_to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{}\n",
            f.rule,
            json_escape(&f.file),
            f.line,
            json_escape(&f.message),
            if i + 1 == findings.len() { "" } else { "," }
        ));
    }
    out.push(']');
    out
}
