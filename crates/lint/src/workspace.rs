//! Workspace walker: file discovery, per-file analysis, cross-file rules,
//! and pragma resolution.

use crate::baseline::BaselineEntry;
use crate::diag::{Finding, LintError, RuleId};
use crate::manifest::Manifest;
use crate::pragma::Pragma;
use crate::rules::{analyze, FileInput};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// The analyzer's full output for one workspace run.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings after pragma suppression, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Every pragma in the workspace, with the file it lives in. This is
    /// the *pragma inventory*: the complete, machine-readable list of
    /// suppressed sites and their justifications.
    pub pragmas: Vec<(String, Pragma)>,
    /// Number of files analyzed.
    pub files: usize,
}

/// One source file presented to [`run_sources`].
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (also the crate key
    /// prefix for cross-file rules).
    pub path: String,
    /// File contents.
    pub src: String,
    /// Hardened-surface classes that apply to this file.
    pub classes: crate::manifest::ClassSet,
    /// Whether R5 doc coverage applies (library code).
    pub is_lib: bool,
}

/// Discovers and lints every workspace source file under `root`.
///
/// Walks `src/` of the root package and of each `crates/*` member
/// (skipping anything the manifest marks `skip`), so integration tests,
/// benches, and the lint corpus are naturally out of scope.
pub fn run(root: &Path, manifest: &Manifest) -> Result<Report, LintError> {
    let mut files = Vec::new();
    collect_rs_files(&root.join("src"), &mut files)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = read_dir_sorted(&crates_dir)?
            .into_iter()
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            collect_rs_files(&member.join("src"), &mut files)?;
        }
    }
    files.sort();

    let mut sources = Vec::new();
    for path in &files {
        let rel = relative_path(root, path);
        if manifest.skipped(&rel) {
            continue;
        }
        let src = std::fs::read_to_string(path).map_err(|source| LintError::Io {
            path: rel.clone(),
            source,
        })?;
        let is_lib = is_library_file(root, &rel);
        sources.push(SourceFile {
            classes: manifest.classify(&rel),
            path: rel,
            src,
            is_lib,
        });
    }
    Ok(run_sources(&sources))
}

/// Lints an in-memory file set: per-file rules, cross-file rules, and
/// pragma resolution. [`run`] is this plus file discovery; the self-test
/// corpus calls it directly.
pub fn run_sources(sources: &[SourceFile]) -> Report {
    let mut report = Report::default();
    // Per-crate error-type inventory for the cross-file half of R3:
    // crate key -> (enums, display targets, error targets).
    type CrateErrors = (Vec<(String, String, u32)>, Vec<String>, Vec<String>);
    let mut crates: BTreeMap<String, CrateErrors> = BTreeMap::new();
    let mut all_findings: Vec<Finding> = Vec::new();
    let mut pragmas: Vec<(String, Pragma)> = Vec::new();

    for file in sources {
        let rel = &file.path;
        let analysis = analyze(FileInput {
            path: rel,
            src: &file.src,
            classes: file.classes,
            is_lib: file.is_lib,
        });
        report.files += 1;
        all_findings.extend(analysis.findings);
        for p in analysis.pragmas {
            pragmas.push((rel.clone(), p));
        }
        let crate_key = crate_of(rel);
        let entry = crates.entry(crate_key).or_default();
        for (name, line) in analysis.error_enums {
            entry.0.push((rel.clone(), name, line));
        }
        entry.1.extend(analysis.display_impls);
        entry.2.extend(analysis.error_impls);
    }

    // Cross-file R3: every `pub enum *Error` needs Display + Error impls
    // somewhere in its crate.
    for (enums, displays, errors) in crates.values() {
        for (file, name, line) in enums {
            let mut missing = Vec::new();
            if !displays.iter().any(|t| t == name) {
                missing.push("Display");
            }
            if !errors.iter().any(|t| t == name) {
                missing.push("std::error::Error");
            }
            if !missing.is_empty() {
                all_findings.push(Finding {
                    rule: RuleId::ErrorImpl,
                    file: file.clone(),
                    line: *line,
                    message: format!("`{}` does not implement {}", name, missing.join(" + ")),
                });
            }
        }
    }

    // Pragma suppression: a pragma covers findings of its rules on its
    // applies-line in its own file.
    let mut used = vec![false; pragmas.len()];
    all_findings.retain(|f| {
        if !f.rule.suppressible() {
            return true;
        }
        let mut suppressed = false;
        for (i, (file, p)) in pragmas.iter().enumerate() {
            if file == &f.file && p.applies_line == f.line && p.rules.contains(&f.rule) {
                used[i] = true;
                suppressed = true;
            }
        }
        !suppressed
    });
    for (i, (file, p)) in pragmas.iter().enumerate() {
        if !used[i] {
            all_findings.push(Finding {
                rule: RuleId::PragmaUnused,
                file: file.clone(),
                line: p.comment_line,
                message: format!(
                    "pragma `allow({})` suppresses nothing; remove it",
                    p.rule_name
                ),
            });
        }
    }

    all_findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    report.findings = all_findings;
    report.pragmas = pragmas;
    report
}

/// Findings that fall within `[start_line, end_line]` of `file`.
pub fn findings_in_region<'f>(
    findings: &'f [Finding],
    file: &str,
    start_line: u32,
    end_line: u32,
) -> Vec<&'f Finding> {
    findings
        .iter()
        .filter(|f| f.file == file && f.line >= start_line && f.line <= end_line)
        .collect()
}

/// Baseline entries that fall within `[start_line, end_line]` of `file`.
pub fn baseline_in_region<'b>(
    entries: &'b [BaselineEntry],
    file: &str,
    start_line: u32,
    end_line: u32,
) -> Vec<&'b BaselineEntry> {
    entries
        .iter()
        .filter(|b| b.file == file && b.line >= start_line && b.line <= end_line)
        .collect()
}

/// Recursively collects `.rs` files under `dir` (sorted, deterministic).
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    if !dir.is_dir() {
        return Ok(());
    }
    for path in read_dir_sorted(dir)? {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(path);
        }
    }
    Ok(())
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, LintError> {
    let iter = std::fs::read_dir(dir).map_err(|source| LintError::Io {
        path: dir.display().to_string(),
        source,
    })?;
    let mut paths = Vec::new();
    for entry in iter {
        let entry = entry.map_err(|source| LintError::Io {
            path: dir.display().to_string(),
            source,
        })?;
        paths.push(entry.path());
    }
    paths.sort();
    Ok(paths)
}

/// Workspace-relative path with `/` separators.
fn relative_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Crate key for cross-file aggregation: `crates/<name>` or `root`.
fn crate_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => format!("crates/{name}"),
        _ => "root".to_string(),
    }
}

/// Library code: under a `src/` whose crate has a `lib.rs`, excluding
/// `main.rs` and `src/bin/`.
fn is_library_file(root: &Path, rel: &str) -> bool {
    if rel.ends_with("/main.rs") || rel.contains("/bin/") {
        return false;
    }
    let crate_dir = match crate_of(rel).as_str() {
        "root" => root.to_path_buf(),
        key => root.join(key),
    };
    crate_dir.join("src/lib.rs").is_file()
}

/// Locates the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
